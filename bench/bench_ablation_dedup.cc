// Ablation: Algorithm 1's push-time node-visited de-duplication vs. the
// exact per-state search (DESIGN.md design-choice callout).
//
// The paper's visited set explores each KG node once per sub-query, which
// bounds the frontier but can return slightly sub-optimal pss for
// lower-ranked matches (it also confines matches to simple paths). The
// exact mode expands each (node, stage, hops) state once and is provably
// optimal over bounded walks. This bench quantifies the trade-off: pushed
// states, response time, and answer quality of both modes.
#include <cstdio>

#include "baselines/adapters.h"
#include "eval/harness.h"
#include "eval/reporter.h"

namespace kgsearch {
namespace {

int Run() {
  auto result = GenerateDataset(DbpediaLikeSpec(2.0));
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();
  SgqEngine engine(ds.graph.get(), ds.space.get(), &ds.library);
  std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 6);
  const size_t k = 100;

  Table table({"Mode", "Precision", "Recall", "F1", "Avg pushed",
               "Avg pruned(τ)", "Time(ms)"});
  const DedupMode modes[2] = {DedupMode::kPaperNodeVisited,
                              DedupMode::kExactState};
  const char* labels[2] = {"Algorithm 1 (node visited)",
                           "exact (state, on pop)"};
  for (int m = 0; m < 2; ++m) {
    std::vector<double> ps, rs, f1s, times;
    double pushed = 0.0, pruned = 0.0;
    size_t searches = 0;
    for (const QueryWithGold& q : workload) {
      EngineOptions options;
      options.k = k;
      options.dedup = modes[m];
      StopWatch watch;
      auto r = engine.Query(q.query, options);
      times.push_back(watch.ElapsedMillis());
      if (!r.ok()) continue;
      for (const SearchStats& s : r.ValueOrDie().subquery_stats) {
        pushed += static_cast<double>(s.pushed);
        pruned += static_cast<double>(s.pruned_tau);
        ++searches;
      }
      std::vector<NodeId> answers =
          ExtractAnswers(r.ValueOrDie().matches,
                         r.ValueOrDie().decomposition, q.answer_node);
      Prf prf = ComputePrf(answers, q.gold);
      ps.push_back(prf.precision);
      rs.push_back(prf.recall);
      f1s.push_back(prf.f1);
    }
    table.AddRow({labels[m], Table::Cell(Mean(ps)), Table::Cell(Mean(rs)),
                  Table::Cell(Mean(f1s)),
                  Table::Cell(pushed / static_cast<double>(searches), 0),
                  Table::Cell(pruned / static_cast<double>(searches), 0),
                  Table::Cell(Mean(times), 2)});
  }
  table.Print("Ablation: de-duplication discipline of the A* search (k=100)");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
