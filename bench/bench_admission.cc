// Tail latency under overload, with and without admission control.
//
// 4x more closed-loop clients than the service has capacity hammer one
// QueryService. Without admission every request is accepted and waits at
// the back of an ever-deeper queue — client-observed p95 grows with the
// backlog. With a bounded admission gate the overflow is rejected in
// microseconds (kResourceExhausted) and the accepted requests' p95 stays
// near the uncontended service time. A third configuration adds a hard
// per-request deadline on top.
//
// Correctness gate (the BENCH_admission record is only written when it
// holds): every accepted answer is bit-identical to serial SgqEngine
// execution, and every non-OK outcome is exactly kResourceExhausted or —
// only for requests that carried a deadline — kDeadlineExceeded.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "gen/synthetic_kg.h"
#include "service/query_service.h"
#include "util/cancel.h"

namespace kgsearch {
namespace {

struct Config {
  std::string name;
  size_t max_in_flight = 0;  // 0 = admission off
  size_t max_queued = 0;
  int64_t deadline_ms = 0;   // 0 = none
};

struct RunResult {
  std::string name;
  size_t clients = 0;
  size_t requests = 0;
  size_t accepted = 0;
  size_t rejected = 0;
  size_t deadline_exceeded = 0;
  double wall_seconds = 0.0;
  double accepted_p50_ms = 0.0;
  double accepted_p95_ms = 0.0;
  double accepted_max_ms = 0.0;
  double rejected_p95_ms = 0.0;  ///< how fast "no" is said
  bool gate_ok = true;
};

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(values->size() - 1));
  return (*values)[rank];
}

RunResult RunConfig(const GeneratedDataset& ds,
                    const std::vector<QueryWithGold>& workload,
                    const std::vector<std::vector<NodeId>>& reference,
                    const Config& config, size_t pool_threads,
                    size_t clients, size_t rounds) {
  QueryServiceOptions soptions;
  soptions.num_threads = pool_threads;
  soptions.max_in_flight = config.max_in_flight;
  soptions.max_queued = config.max_queued;
  QueryService service(ds.graph.get(), ds.space.get(), &ds.library,
                       soptions);

  EngineOptions options;
  options.k = 20;

  struct ClientTally {
    std::vector<double> accepted_ms;
    std::vector<double> rejected_ms;
    size_t rejected = 0;
    size_t deadline_exceeded = 0;
    size_t bad = 0;  // wrong status or wrong answer
  };
  std::vector<ClientTally> tallies(clients);

  StopWatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[c];
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = 0; i < workload.size(); ++i) {
          const size_t w = (i + c) % workload.size();
          EngineOptions request_options = options;
          if (config.deadline_ms > 0) {
            request_options.deadline_micros = DeadlineFromNowMs(
                config.deadline_ms, SystemClock::Default());
          }
          StopWatch latency;
          auto future = service.Submit(workload[w].query, request_options);
          auto r = future.get();
          const double ms = latency.ElapsedMillis();
          if (r.ok()) {
            tally.accepted_ms.push_back(ms);
            if (r.ValueOrDie().AnswerIds() != reference[w]) ++tally.bad;
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            tally.rejected_ms.push_back(ms);
            ++tally.rejected;
          } else if (r.status().code() == StatusCode::kDeadlineExceeded &&
                     config.deadline_ms > 0) {
            ++tally.deadline_exceeded;
          } else {
            ++tally.bad;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  RunResult result;
  result.name = config.name;
  result.clients = clients;
  result.wall_seconds = static_cast<double>(wall.ElapsedMicros()) / 1e6;
  std::vector<double> accepted_ms, rejected_ms;
  for (const ClientTally& tally : tallies) {
    accepted_ms.insert(accepted_ms.end(), tally.accepted_ms.begin(),
                       tally.accepted_ms.end());
    rejected_ms.insert(rejected_ms.end(), tally.rejected_ms.begin(),
                       tally.rejected_ms.end());
    result.rejected += tally.rejected;
    result.deadline_exceeded += tally.deadline_exceeded;
    if (tally.bad > 0) result.gate_ok = false;
  }
  result.accepted = accepted_ms.size();
  result.requests = clients * rounds * workload.size();
  result.accepted_p50_ms = Percentile(&accepted_ms, 0.50);
  result.accepted_p95_ms = Percentile(&accepted_ms, 0.95);
  result.accepted_max_ms = accepted_ms.empty()
                               ? 0.0
                               : *std::max_element(accepted_ms.begin(),
                                                   accepted_ms.end());
  result.rejected_p95_ms = Percentile(&rejected_ms, 0.95);
  if (result.accepted + result.rejected + result.deadline_exceeded !=
      result.requests) {
    result.gate_ok = false;  // a request resolved outside the trichotomy
  }
  // Cross-check the service's own books against the client-side tally.
  const ServiceStatsSnapshot stats = service.Stats();
  if (stats.queries_rejected != result.rejected ||
      stats.queries_deadline_exceeded != result.deadline_exceeded ||
      stats.admitted_outstanding != 0) {
    result.gate_ok = false;
  }
  return result;
}

int Run() {
  auto generated = GenerateDataset(DbpediaLikeSpec(0.5, 42));
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const GeneratedDataset& ds = *generated.ValueOrDie();
  const std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 8);
  if (workload.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  // Serial reference answers (threads = 1) for the correctness gate.
  SgqEngine serial(ds.graph.get(), ds.space.get(), &ds.library);
  std::vector<std::vector<NodeId>> reference;
  for (const QueryWithGold& q : workload) {
    EngineOptions o;
    o.k = 20;
    o.threads = 1;
    auto r = serial.Query(q.query, o);
    if (!r.ok()) {
      std::fprintf(stderr, "serial %s: %s\n", q.description.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    reference.push_back(r.ValueOrDie().AnswerIds());
  }

  // Capacity 4 (2 executing + 2 queued) vs 16 closed-loop clients = 4x.
  const size_t pool_threads = 2;
  const size_t clients = 16;
  const size_t rounds = 4;
  const std::vector<Config> configs = {
      {"no_admission", 0, 0, 0},
      {"admission", 2, 2, 0},
      {"admission_plus_deadline", 2, 2, 50},
  };

  std::vector<RunResult> results;
  for (const Config& config : configs) {
    RunResult r = RunConfig(ds, workload, reference, config, pool_threads,
                            clients, rounds);
    std::fprintf(stderr,
                 "%-24s requests=%4zu accepted=%4zu rejected=%4zu "
                 "ddl=%3zu p95=%8.2fms gate=%s\n",
                 r.name.c_str(), r.requests, r.accepted, r.rejected,
                 r.deadline_exceeded, r.accepted_p95_ms,
                 r.gate_ok ? "ok" : "FAILED");
    if (!r.gate_ok) {
      std::fprintf(stderr, "correctness gate failed in %s\n",
                   r.name.c_str());
      return 1;
    }
    results.push_back(std::move(r));
  }

  // The record is only meaningful when overload control actually sheds
  // load under 4x overload.
  if (results[1].rejected == 0) {
    std::fprintf(stderr, "admission config rejected nothing at 4x load\n");
    return 1;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_admission\",\n");
  std::printf("  \"dataset\": {\"nodes\": %zu, \"edges\": %zu},\n",
              ds.graph->NumNodes(), ds.graph->NumEdges());
  std::printf("  \"workload_queries\": %zu,\n", workload.size());
  std::printf("  \"pool_threads\": %zu,\n", pool_threads);
  std::printf("  \"capacity\": {\"max_in_flight\": 2, \"max_queued\": 2},\n");
  std::printf("  \"overload\": \"%zu closed-loop clients = 4x capacity\",\n",
              clients);
  std::printf("  \"correctness_gate\": \"accepted answers bit-identical to "
              "serial SgqEngine; every non-OK outcome is ResourceExhausted "
              "or (with deadlines) DeadlineExceeded; service counters match "
              "client tallies\",\n");
  std::printf("  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf(
        "    {\"name\": \"%s\", \"requests\": %zu, \"accepted\": %zu, "
        "\"rejected\": %zu, \"deadline_exceeded\": %zu, "
        "\"wall_seconds\": %.3f, \"accepted_p50_ms\": %.3f, "
        "\"accepted_p95_ms\": %.3f, \"accepted_max_ms\": %.3f, "
        "\"rejected_p95_ms\": %.3f}%s\n",
        r.name.c_str(), r.requests, r.accepted, r.rejected,
        r.deadline_exceeded, r.wall_seconds, r.accepted_p50_ms,
        r.accepted_p95_ms, r.accepted_max_ms, r.rejected_p95_ms,
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
