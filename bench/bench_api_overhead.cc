// Facade tax: KgSession::Query (request DTO in, response DTO out) vs a
// direct QueryService::Query call over the same data, caches, and pool
// sizing. The facade adds dataset lookup, Validate(), and answer-DTO
// construction (name/type string copies) around the identical engine
// execution, so its overhead must stay small; this bench gates it at <5%
// on the min-of-passes total and records the trajectory in
// BENCH_api_overhead.json. A correctness gate asserts both paths return
// identical answers before any number is reported.
#include <cstdio>
#include <utility>
#include <vector>

#include "api/session.h"
#include "eval/harness.h"
#include "gen/synthetic_kg.h"

namespace kgsearch {
namespace {

constexpr size_t kPasses = 15;
constexpr double kMaxOverhead = 0.05;  // the acceptance gate: < 5%

int Run() {
  auto generated = GenerateDataset(DbpediaLikeSpec(0.4, 42));
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  GeneratedDataset& ds = *generated.ValueOrDie();
  const std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 8);
  if (workload.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  // The session takes ownership; the direct service borrows the session's
  // pointers so both paths query literally the same data.
  KgSessionOptions session_options;
  session_options.num_threads = 4;
  KgSession session(session_options);
  Status registered =
      session.RegisterDataset("bench", std::move(ds.graph),
                              std::move(ds.space), std::move(ds.library));
  if (!registered.ok()) {
    std::fprintf(stderr, "register: %s\n", registered.ToString().c_str());
    return 1;
  }
  QueryServiceOptions service_options;
  service_options.num_threads = 4;
  QueryService direct(session.graph("bench"), session.space("bench"),
                      session.library("bench"), service_options);

  RequestOptions api_options;
  api_options.k = 20;
  const EngineOptions engine_options = ToEngineOptions(api_options);

  std::vector<QueryRequest> requests;
  for (const QueryWithGold& q : workload) {
    QueryRequest request;
    request.dataset = "bench";
    request.query_graph = q.query;
    request.options = api_options;
    requests.push_back(std::move(request));
  }

  // Correctness gate + cache warmup for both paths.
  for (size_t i = 0; i < workload.size(); ++i) {
    auto api = session.Query(requests[i]);
    auto svc = direct.Query(workload[i].query, engine_options);
    if (api.ok() != svc.ok()) {
      std::fprintf(stderr, "gate: ok mismatch on %s\n",
                   workload[i].description.c_str());
      return 1;
    }
    if (!api.ok()) continue;
    const QueryResponse& a = api.ValueOrDie();
    const QueryResult& s = svc.ValueOrDie();
    bool identical = a.answers.size() == s.matches.size();
    for (size_t r = 0; identical && r < s.matches.size(); ++r) {
      identical = a.answers[r].id == s.matches[r].pivot_match &&
                  a.answers[r].score == s.matches[r].score;
    }
    if (!identical) {
      std::fprintf(stderr, "gate: answers differ on %s\n",
                   workload[i].description.c_str());
      return 1;
    }
  }

  // Alternate measured passes over the whole workload; min-of-passes
  // filters scheduler noise.
  double direct_min_ms = 0.0, facade_min_ms = 0.0;
  std::vector<double> direct_ms, facade_ms;
  for (size_t pass = 0; pass < kPasses; ++pass) {
    StopWatch direct_watch;
    for (const QueryWithGold& q : workload) {
      auto r = direct.Query(q.query, engine_options);
      if (!r.ok()) return 1;
    }
    direct_ms.push_back(direct_watch.ElapsedMillis());

    StopWatch facade_watch;
    for (const QueryRequest& request : requests) {
      auto r = session.Query(request);
      if (!r.ok()) return 1;
    }
    facade_ms.push_back(facade_watch.ElapsedMillis());
  }
  direct_min_ms = direct_ms[0];
  facade_min_ms = facade_ms[0];
  for (size_t pass = 1; pass < kPasses; ++pass) {
    if (direct_ms[pass] < direct_min_ms) direct_min_ms = direct_ms[pass];
    if (facade_ms[pass] < facade_min_ms) facade_min_ms = facade_ms[pass];
  }
  const double overhead = facade_min_ms / direct_min_ms - 1.0;

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_api_overhead\",\n");
  std::printf("  \"workload_queries\": %zu,\n", workload.size());
  std::printf("  \"k\": %zu,\n", api_options.k);
  std::printf("  \"passes\": %zu,\n", kPasses);
  std::printf("  \"correctness_gate\": \"facade answers identical to direct "
              "QueryService\",\n");
  std::printf("  \"direct_min_ms\": %.3f,\n", direct_min_ms);
  std::printf("  \"facade_min_ms\": %.3f,\n", facade_min_ms);
  std::printf("  \"overhead_pct\": %.2f,\n", 100.0 * overhead);
  std::printf("  \"gate_max_pct\": %.1f,\n", 100.0 * kMaxOverhead);
  std::printf("  \"gate_passed\": %s\n", overhead < kMaxOverhead ? "true"
                                                                 : "false");
  std::printf("}\n");
  if (overhead >= kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: facade overhead %.2f%% exceeds the %.1f%% gate\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
