// Figure 12 reproduction: effectiveness (P/R/F1) and efficiency (response
// time) over the DBpedia-like dataset for top-k in {20, 40, 100, 200},
// comparing TBQ-0.9, SGQ, GraB, S4, QGA, and p-hom.
//
// Expected shape: SGQ and TBQ-0.9 dominate on all effectiveness metrics;
// QGA has perfect precision but capped recall; structural methods (GraB,
// p-hom) trail on precision; response time grows with k.
#include "eval/harness.h"

int main() {
  return kgsearch::RunEffectivenessFigure("Figure 12 (DBpedia-like)",
                                          kgsearch::DbpediaLikeSpec(2.0));
}
