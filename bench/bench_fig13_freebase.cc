// Figure 13 reproduction: effectiveness/efficiency vs top-k over the
// Freebase-like dataset (denser, broader than the DBpedia-like profile).
// Expected shape matches Figure 12's ordering of methods.
#include "eval/harness.h"

int main() {
  return kgsearch::RunEffectivenessFigure("Figure 13 (Freebase-like)",
                                          kgsearch::FreebaseLikeSpec(2.0));
}
