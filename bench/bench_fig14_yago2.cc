// Figure 14 reproduction: effectiveness/efficiency vs top-k over the
// YAGO2-like dataset. Its subject pools are the largest, so absolute
// recall@k sits below the other datasets (the paper's Fig. 14 band) while
// the method ordering is unchanged.
#include "eval/harness.h"

int main() {
  return kgsearch::RunEffectivenessFigure("Figure 14 (YAGO2-like)",
                                          kgsearch::Yago2LikeSpec(2.0));
}
