// Figure 15 reproduction: TBQ's response-time/accuracy trade-off over the
// DBpedia-like dataset at k = 100. The time bound sweeps a range around
// SGQ's own query time; effectiveness must rise monotonically with the
// bound (Theorem 4) and the measured response time must stay within a
// small variation of the bound (Fig. 15(b)).
#include <algorithm>
#include <cstdio>

#include "baselines/adapters.h"
#include "core/time_bounded.h"
#include "eval/harness.h"
#include "eval/reporter.h"

namespace kgsearch {
namespace {

int Run() {
  auto result = GenerateDataset(DbpediaLikeSpec(2.0));
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();
  std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 6);
  KG_CHECK(!workload.empty());

  MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};

  // Reference: SGQ's own time per query (to scale the sweep sensibly on
  // this machine) and its answers (for context in the printout).
  SgqMethod sgq(context, EngineOptions{});
  double sgq_total_ms = 0.0;
  {
    StopWatch watch;
    for (const QueryWithGold& q : workload) {
      auto r = sgq.QueryTopK(q.query, q.answer_node, q.gold.size());
      KG_CHECK(r.ok());
    }
    sgq_total_ms = watch.ElapsedMillis();
  }
  const double sgq_avg_ms =
      sgq_total_ms / static_cast<double>(workload.size());
  std::printf("SGQ average query time: %.2f ms (bounds sweep 20%%-180%%)\n",
              sgq_avg_ms);

  TimeBoundedOptions toptions;
  toptions.per_match_assembly_micros =
      TbqEngine::CalibrateAssemblyCostMicros(SystemClock::Default());
  toptions.stop_check_interval = 16;  // sub-ms bounds need fine checks

  Table table({"Bound(ms)", "Precision", "Recall", "F1", "Min(ms)",
               "Avg(ms)", "Max(ms)"});
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 1.8}) {
    const double bound_ms = std::max(0.05, sgq_avg_ms * frac);
    std::vector<double> ps, rs, f1s, times;
    for (const QueryWithGold& q : workload) {
      TbqMethod tbq("TBQ", context, toptions);
      tbq.set_time_bound_micros(static_cast<int64_t>(bound_ms * 1000.0));
      StopWatch watch;
      auto answers = tbq.QueryTopK(q.query, q.answer_node, q.gold.size());
      times.push_back(watch.ElapsedMillis());
      if (!answers.ok()) {
        ps.push_back(0);
        rs.push_back(0);
        f1s.push_back(0);
        continue;
      }
      Prf prf = ComputePrf(answers.ValueOrDie(), q.gold);
      ps.push_back(prf.precision);
      rs.push_back(prf.recall);
      f1s.push_back(prf.f1);
    }
    table.AddRow({Table::Cell(bound_ms, 2), Table::Cell(Mean(ps)),
                  Table::Cell(Mean(rs)), Table::Cell(Mean(f1s)),
                  Table::Cell(*std::min_element(times.begin(), times.end()), 2),
                  Table::Cell(Mean(times), 2),
                  Table::Cell(*std::max_element(times.begin(), times.end()),
                              2)});
  }
  table.Print("Figure 15: TBQ effectiveness & response time vs time bound "
              "(k=|gold|, DBpedia-like)");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
