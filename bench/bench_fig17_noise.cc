// Figure 17 + Table VIII reproduction: robustness of SGQ to query noise on
// the DBpedia-like dataset at k = 100.
//
// Node noise replaces a query label with a random alias (which may not be
// registered in the transformation library); edge noise replaces a query
// predicate with one of its top-10 most similar predicates. The noise ratio
// is the fraction of workload queries that receive noise.
//
// Expected shape: all effectiveness metrics fall as the ratio grows; edge
// noise hurts more than node noise (wrong predicate semantics redirect the
// search); response time grows slightly under node noise and more under
// edge noise (Table VIII).
#include <cstdio>

#include "baselines/adapters.h"
#include "eval/harness.h"
#include "eval/reporter.h"

namespace kgsearch {
namespace {

int Run() {
  auto result = GenerateDataset(DbpediaLikeSpec(2.0));
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();
  MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};

  // A wider workload (all anchors of every intent with enough gold) so the
  // noise ratio resolves to meaningful fractions.
  std::vector<QueryWithGold> base;
  for (size_t i = 0; i < ds.intents.size(); ++i) {
    for (size_t a = 0; a < ds.intents[i].anchor_names.size(); ++a) {
      auto q = MakeIntentQuery(ds, i, a);
      if (q.ok() && q.ValueOrDie().gold.size() >= 3) {
        base.push_back(std::move(q).ValueOrDie());
      }
      if (base.size() >= 40) break;
    }
    if (base.size() >= 40) break;
  }
  KG_CHECK(!base.empty());
  SgqMethod sgq(context, EngineOptions{});

  Table eff({"Noise", "Ratio", "Precision", "Recall", "F1"});
  Table time({"Noise", "Ratio", "Time(ms)"});
  for (int is_edge = 0; is_edge <= 1; ++is_edge) {
    for (double ratio : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      std::vector<double> ps, rs, f1s, times;
      for (size_t qi = 0; qi < base.size(); ++qi) {
        QueryWithGold q = base[qi];
        const bool noisy =
            static_cast<double>(qi) <
            ratio * static_cast<double>(base.size());
        if (noisy) {
          // Per-query seed: a query's noise outcome is identical across
          // ratios, so growing the ratio strictly adds noise.
          Rng rng(999 + qi);
          if (is_edge) {
            AddEdgeNoise(ds, &rng, &q.query);
          } else {
            AddNodeNoise(ds, &rng, &q.query);
          }
        }
        StopWatch watch;
        auto answers =
            sgq.QueryTopK(q.query, q.answer_node, q.gold.size());
        times.push_back(watch.ElapsedMillis());
        if (!answers.ok()) {
          ps.push_back(0);
          rs.push_back(0);
          f1s.push_back(0);
          continue;
        }
        Prf prf = ComputePrf(answers.ValueOrDie(), q.gold);
        ps.push_back(prf.precision);
        rs.push_back(prf.recall);
        f1s.push_back(prf.f1);
      }
      const char* label = is_edge ? "edge" : "node";
      eff.AddRow({label, Table::Cell(ratio, 1), Table::Cell(Mean(ps)),
                  Table::Cell(Mean(rs)), Table::Cell(Mean(f1s))});
      time.AddRow({label, Table::Cell(ratio, 1),
                   Table::Cell(Mean(times), 2)});
    }
  }
  eff.Print("Figure 17: effectiveness vs node/edge noise (k=|gold|)");
  time.Print("Table VIII: response time vs noise (k=|gold|)");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
