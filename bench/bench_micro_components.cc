// Google-benchmark micro-benchmarks of the core components: A* semantic
// search, TA assembly, semantic-graph weight materialization, N-Triples
// parsing, and one TransE epoch. These are throughput numbers for the
// library itself, complementing the experiment tables.
#include <benchmark/benchmark.h>

#include "core/astar_search.h"
#include "core/ta_assembly.h"
#include "embedding/transe.h"
#include "eval/harness.h"
#include "gen/car_domain.h"
#include "kg/triple_io.h"

namespace kgsearch {
namespace {

const GeneratedDataset& SharedDataset() {
  static const GeneratedDataset* ds = [] {
    auto result = GenerateDataset(DbpediaLikeSpec(0.5));
    KG_CHECK(result.ok());
    return std::move(result).ValueOrDie().release();
  }();
  return *ds;
}

void BM_AStarSearch(benchmark::State& state) {
  const GeneratedDataset& ds = SharedDataset();
  NodeMatcher matcher(ds.graph.get(), &ds.library);
  auto q = MakeIntentQuery(ds, 0, 0);
  KG_CHECK(q.ok());
  DecomposeOptions dopts;
  dopts.avg_degree = ds.graph->AverageDegree();
  auto decomposition = DecomposeQuery(q.ValueOrDie().query, dopts);
  KG_CHECK(decomposition.ok());
  auto resolved = ResolveSubQuery(q.ValueOrDie().query,
                                  decomposition.ValueOrDie().subqueries[0],
                                  matcher);
  KG_CHECK(resolved.ok());
  AStarConfig config;
  config.k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto matches =
        AStarSearch(*ds.graph, *ds.space, resolved.ValueOrDie(), config);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_AStarSearch)->Arg(10)->Arg(100);

void BM_TaAssembly(benchmark::State& state) {
  const size_t per_set = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<PathMatch>> sets(3);
  for (auto& set : sets) {
    double pss = 0.999;
    for (size_t i = 0; i < per_set; ++i) {
      PathMatch m;
      m.nodes = {0, static_cast<NodeId>(rng.UniformIndex(per_set))};
      m.predicates = {0};
      m.weights = {pss};
      m.pss = pss;
      pss *= 0.999;
      set.push_back(std::move(m));
    }
  }
  for (auto _ : state) {
    auto result = AssembleTopK(sets, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TaAssembly)->Arg(100)->Arg(1000);

void BM_NTriplesParse(benchmark::State& state) {
  auto car = MakeCarDomainDataset(200, 117);
  KG_CHECK(car.ok());
  const std::string text = WriteNTriples(*car.ValueOrDie()->graph);
  for (auto _ : state) {
    auto graph = ParseNTriples(text);
    benchmark::DoNotOptimize(graph);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_NTriplesParse);

void BM_TransEEpoch(benchmark::State& state) {
  auto car = MakeCarDomainDataset(200, 117);
  KG_CHECK(car.ok());
  TransEConfig config;
  config.dim = 32;
  config.epochs = 1;
  for (auto _ : state) {
    auto embedding = TrainTransE(*car.ValueOrDie()->graph, config);
    benchmark::DoNotOptimize(embedding);
  }
}
BENCHMARK(BM_TransEEpoch);

void BM_SemanticWeightRows(benchmark::State& state) {
  const GeneratedDataset& ds = SharedDataset();
  NodeMatcher matcher(ds.graph.get(), &ds.library);
  auto q = MakeIntentQuery(ds, 0, 0);
  KG_CHECK(q.ok());
  DecomposeOptions dopts;
  auto decomposition = DecomposeQuery(q.ValueOrDie().query, dopts);
  KG_CHECK(decomposition.ok());
  auto resolved = ResolveSubQuery(q.ValueOrDie().query,
                                  decomposition.ValueOrDie().subqueries[0],
                                  matcher);
  KG_CHECK(resolved.ok());
  for (auto _ : state) {
    SemanticWeights weights(*ds.graph, ds.space.get(),
                            &resolved.ValueOrDie());
    benchmark::DoNotOptimize(weights.Weight(0, 0));
  }
}
BENCHMARK(BM_SemanticWeightRows);

}  // namespace
}  // namespace kgsearch

BENCHMARK_MAIN();
