// Scale characterization of the full serving path on scale-generated
// graphs: 10k / 100k / 1M nodes (pass a max node count as argv[1] to cap
// the sweep for quick local runs).
//
// Per scale the bench measures, in order:
//   1. streamed generation  — GenerateScaleKgToFile (O(chunk) memory)
//   2. cold start           — KgSession::LoadDataset on the kgpack file
//   3. serving              — closed-loop clients over the insight mix,
//                             client-observed p50/p95 latency and QPS
//
// Correctness gate (the BENCH_scale record is only written when it holds):
// at 10k and 100k every answer served from the loaded snapshot is
// bit-identical (id and score) to a serial SgqEngine over an independent
// in-memory build of the same spec, cold and warm, with status codes
// agreeing on failures. At 1M — where the in-memory reference would defeat
// the point of streaming — the gate is cold/warm answer stability.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/engine.h"
#include "gen/insight_workload.h"
#include "gen/scale_kg.h"
#include "util/clock.h"

namespace kgsearch {
namespace {

struct ScaleResult {
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint64_t file_bytes = 0;
  uint64_t edge_passes = 0;
  double gen_seconds = 0.0;
  double load_seconds = 0.0;
  std::string gate;  // which gate this scale passed
  size_t requests = 0;
  size_t ok = 0;
  size_t failed = 0;  // unresolvable alias-noised queries; expected
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(values->size() - 1));
  return (*values)[rank];
}

std::vector<std::pair<uint32_t, double>> Fingerprint(
    const QueryResponse& response) {
  std::vector<std::pair<uint32_t, double>> fp;
  fp.reserve(response.answers.size());
  for (const AnswerDto& a : response.answers) {
    fp.emplace_back(a.id, a.score);
  }
  return fp;
}

QueryRequest MakeRequest(const InsightQuery& insight) {
  QueryRequest request;
  request.dataset = "scale";
  request.query_graph = insight.query;
  request.options.k = 10;
  return request;
}

/// Answers from the loaded snapshot must match a serial SgqEngine over the
/// independent in-memory build, cold and warm. Returns false on any drift.
bool GateAgainstSerialReference(KgSession* session, const ScaleKgSpec& spec,
                                const std::vector<InsightQuery>& mix) {
  auto built = BuildScaleKgInMemory(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "in-memory build: %s\n",
                 built.status().ToString().c_str());
    return false;
  }
  const DatasetSnapshot& reference = built.ValueOrDie();
  SgqEngine serial(reference.graph.get(), reference.space.get(),
                   &reference.library);
  for (const InsightQuery& iq : mix) {
    EngineOptions o;
    o.k = 10;
    o.threads = 1;
    auto expected = serial.Query(iq.query, o);
    const auto cold = session->Query(MakeRequest(iq));
    const auto warm = session->Query(MakeRequest(iq));
    if (cold.ok() != expected.ok() || warm.ok() != expected.ok()) {
      std::fprintf(stderr, "gate: status drift on %s\n",
                   iq.description.c_str());
      return false;
    }
    if (!expected.ok()) {
      if (cold.status().code() != expected.status().code() ||
          warm.status().code() != expected.status().code()) {
        std::fprintf(stderr, "gate: status-code drift on %s\n",
                     iq.description.c_str());
        return false;
      }
      continue;
    }
    std::vector<std::pair<uint32_t, double>> fp;
    fp.reserve(expected.ValueOrDie().matches.size());
    for (const FinalMatch& m : expected.ValueOrDie().matches) {
      fp.emplace_back(m.pivot_match, m.score);
    }
    if (Fingerprint(cold.ValueOrDie()) != fp ||
        Fingerprint(warm.ValueOrDie()) != fp) {
      std::fprintf(stderr, "gate: answer drift on %s\n",
                   iq.description.c_str());
      return false;
    }
  }
  return true;
}

/// At 1M nodes the gate is answer stability: a second pass over the mix
/// returns exactly what the first did, statuses included.
bool GateColdWarmStability(KgSession* session,
                           const std::vector<InsightQuery>& mix) {
  for (const InsightQuery& iq : mix) {
    const auto cold = session->Query(MakeRequest(iq));
    const auto warm = session->Query(MakeRequest(iq));
    if (cold.ok() != warm.ok()) return false;
    if (!cold.ok()) {
      if (cold.status().code() != warm.status().code()) return false;
      continue;
    }
    if (Fingerprint(cold.ValueOrDie()) != Fingerprint(warm.ValueOrDie())) {
      return false;
    }
  }
  return true;
}

Result<ScaleResult> RunScale(uint64_t num_nodes, double measure_seconds) {
  const ScaleKgSpec spec = ScaleSpecFor(num_nodes);
  const std::string path =
      "/tmp/bench_scale_" + std::to_string(num_nodes) + ".kgpack";

  ScaleResult result;
  result.nodes = num_nodes;

  StopWatch watch;
  auto report = GenerateScaleKgToFile(spec, path);
  if (!report.ok()) return report.status();
  result.gen_seconds = static_cast<double>(watch.ElapsedMicros()) / 1e6;
  result.edges = report.ValueOrDie().num_edges;
  result.file_bytes = report.ValueOrDie().file_bytes;
  result.edge_passes = report.ValueOrDie().edge_passes;

  KgSessionOptions options;
  options.num_threads = 4;
  KgSession session(options);
  DatasetLoadOptions load;
  load.graph_path = path;
  watch.Restart();
  Status loaded = session.LoadDataset("scale", load);
  result.load_seconds = static_cast<double>(watch.ElapsedMicros()) / 1e6;
  std::remove(path.c_str());
  if (!loaded.ok()) return loaded;

  const InsightProfile profile = MakeInsightProfile(spec);
  InsightMixOptions mix_options;
  mix_options.num_queries = 24;
  const std::vector<InsightQuery> mix = BuildInsightMix(profile, mix_options);

  if (num_nodes <= 100'000) {
    if (!GateAgainstSerialReference(&session, spec, mix)) {
      return Status::Internal("correctness gate failed");
    }
    result.gate = "bit-identical to serial SgqEngine (cold+warm)";
  } else {
    if (!GateColdWarmStability(&session, mix)) {
      return Status::Internal("cold/warm stability gate failed");
    }
    result.gate = "cold/warm answer stability";
  }

  // Closed-loop measurement: 4 clients issue sync queries round-robin over
  // the mix until the time box elapses; per-request latency is client-side.
  const size_t clients = 4;
  struct Tally {
    std::vector<double> ms;
    size_t failed = 0;
  };
  std::vector<Tally> tallies(clients);
  StopWatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Tally& tally = tallies[c];
      size_t i = c;
      while (static_cast<double>(wall.ElapsedMicros()) / 1e6 <
             measure_seconds) {
        StopWatch latency;
        const auto r = session.Query(MakeRequest(mix[i % mix.size()]));
        if (r.ok()) {
          tally.ms.push_back(latency.ElapsedMillis());
        } else {
          ++tally.failed;  // alias-noised misses; gated above as expected
        }
        ++i;
      }
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = static_cast<double>(wall.ElapsedMicros()) / 1e6;

  std::vector<double> all_ms;
  for (Tally& tally : tallies) {
    all_ms.insert(all_ms.end(), tally.ms.begin(), tally.ms.end());
    result.failed += tally.failed;
  }
  result.ok = all_ms.size();
  result.requests = result.ok + result.failed;
  result.qps =
      static_cast<double>(result.requests) / result.wall_seconds;
  result.p50_ms = Percentile(&all_ms, 0.50);
  result.p95_ms = Percentile(&all_ms, 0.95);
  return result;
}

int Run(int argc, char** argv) {
  uint64_t max_nodes = 1'000'000;
  if (argc > 1) max_nodes = std::strtoull(argv[1], nullptr, 10);

  std::vector<uint64_t> scales;
  for (uint64_t n : {10'000ull, 100'000ull, 1'000'000ull}) {
    if (n <= max_nodes) scales.push_back(n);
  }
  if (scales.empty()) {
    std::fprintf(stderr, "max_nodes %llu below smallest scale\n",
                 (unsigned long long)max_nodes);
    return 1;
  }

  std::vector<ScaleResult> results;
  for (uint64_t n : scales) {
    auto r = RunScale(n, /*measure_seconds=*/3.0);
    if (!r.ok()) {
      std::fprintf(stderr, "scale %llu: %s\n", (unsigned long long)n,
                   r.status().ToString().c_str());
      return 1;
    }
    const ScaleResult& s = r.ValueOrDie();
    std::fprintf(stderr,
                 "scale %7llu: edges=%llu file=%.1fMB gen=%.2fs load=%.3fs "
                 "qps=%.0f p50=%.2fms p95=%.2fms (%zu ok / %zu failed)\n",
                 (unsigned long long)s.nodes, (unsigned long long)s.edges,
                 static_cast<double>(s.file_bytes) / 1e6, s.gen_seconds,
                 s.load_seconds, s.qps, s.p50_ms, s.p95_ms, s.ok, s.failed);
    results.push_back(std::move(r).ValueOrDie());
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_scale\",\n");
  std::printf("  \"clients\": 4,\n");
  std::printf("  \"pool_threads\": 4,\n");
  std::printf("  \"insight_mix_queries\": 24,\n");
  std::printf(
      "  \"correctness_gate\": \"<=100k: served answers bit-identical to "
      "serial SgqEngine over an independent in-memory build, cold and "
      "warm; 1M: cold/warm answer stability\",\n");
  std::printf("  \"scales\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& s = results[i];
    std::printf(
        "    {\"nodes\": %llu, \"edges\": %llu, \"file_bytes\": %llu, "
        "\"edge_passes\": %llu, \"gen_seconds\": %.3f, "
        "\"load_seconds\": %.3f, \"gate\": \"%s\", \"requests\": %zu, "
        "\"ok\": %zu, \"failed\": %zu, \"wall_seconds\": %.3f, "
        "\"qps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f}%s\n",
        (unsigned long long)s.nodes, (unsigned long long)s.edges,
        (unsigned long long)s.file_bytes, (unsigned long long)s.edge_passes,
        s.gen_seconds, s.load_seconds, s.gate.c_str(), s.requests, s.ok,
        s.failed, s.wall_seconds, s.qps, s.p50_ms, s.p95_ms,
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main(int argc, char** argv) { return kgsearch::Run(argc, argv); }
