// Concurrent serving throughput of QueryService over one shared executor.
//
// Fires the standard mixed workload (simple + star queries) at the service
// from an increasing number of client threads and reports QPS, latency
// percentiles, and cache hit rates as JSON — the BENCH_service_throughput
// record tracking the concurrency trajectory across PRs. A correctness
// gate compares every concurrent answer set against serial SgqEngine
// execution before any number is reported.
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "gen/synthetic_kg.h"
#include "service/query_service.h"

namespace kgsearch {
namespace {

struct LoadPoint {
  size_t clients = 0;
  size_t queries = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  double decomp_hit_rate = 0.0;
  double matcher_hit_rate = 0.0;
};

int Run() {
  auto generated = GenerateDataset(DbpediaLikeSpec(0.5, 42));
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const GeneratedDataset& ds = *generated.ValueOrDie();
  const std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 8);
  if (workload.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  EngineOptions options;
  options.k = 20;

  // Serial reference answers (threads = 1) for the correctness gate.
  SgqEngine serial(ds.graph.get(), ds.space.get(), &ds.library);
  std::vector<std::vector<NodeId>> reference;
  for (const QueryWithGold& q : workload) {
    EngineOptions o = options;
    o.threads = 1;
    auto r = serial.Query(q.query, o);
    if (!r.ok()) {
      std::fprintf(stderr, "serial %s: %s\n", q.description.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    reference.push_back(r.ValueOrDie().AnswerIds());
  }

  const size_t rounds_per_client = 4;
  std::vector<LoadPoint> points;
  size_t pool_threads = 0;
  for (size_t clients : {1, 2, 4, 8, 16}) {
    // num_threads = 0: size the shared pool to the hardware.
    QueryService service(ds.graph.get(), ds.space.get(), &ds.library);
    pool_threads = service.num_threads();

    size_t mismatches = 0;
    StopWatch watch;
    {
      std::vector<std::thread> threads;
      std::mutex mismatch_mutex;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          size_t local_mismatches = 0;
          for (size_t round = 0; round < rounds_per_client; ++round) {
            for (size_t i = 0; i < workload.size(); ++i) {
              const size_t w = (i + c) % workload.size();
              auto r = service.Query(workload[w].query, options);
              if (!r.ok() ||
                  r.ValueOrDie().AnswerIds() != reference[w]) {
                ++local_mismatches;
              }
            }
          }
          std::lock_guard<std::mutex> lock(mismatch_mutex);
          mismatches += local_mismatches;
        });
      }
      for (auto& t : threads) t.join();
    }
    const double wall = static_cast<double>(watch.ElapsedMicros()) / 1e6;
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "correctness gate failed: %zu mismatched answers at "
                   "%zu clients\n",
                   mismatches, clients);
      return 1;
    }

    const ServiceStatsSnapshot stats = service.Stats();
    LoadPoint p;
    p.clients = clients;
    p.queries = stats.queries_total;
    p.wall_seconds = wall;
    p.qps = wall > 0.0 ? static_cast<double>(stats.queries_total) / wall : 0.0;
    p.p50_ms = stats.latency_p50_ms;
    p.p95_ms = stats.latency_p95_ms;
    p.max_ms = stats.latency_max_ms;
    p.decomp_hit_rate = stats.decomposition_cache_hit_rate();
    p.matcher_hit_rate = stats.matcher_cache_hit_rate();
    points.push_back(p);
    std::fprintf(stderr,
                 "clients=%2zu queries=%4zu wall=%6.2fs qps=%8.1f "
                 "p50=%6.2fms p95=%6.2fms\n",
                 p.clients, p.queries, p.wall_seconds, p.qps, p.p50_ms,
                 p.p95_ms);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_service_throughput\",\n");
  std::printf("  \"dataset\": {\"nodes\": %zu, \"edges\": %zu},\n",
              ds.graph->NumNodes(), ds.graph->NumEdges());
  std::printf("  \"workload_queries\": %zu,\n", workload.size());
  std::printf("  \"k\": %zu,\n", options.k);
  std::printf("  \"pool_threads\": %zu,\n", pool_threads);
  std::printf("  \"correctness_gate\": \"all answers identical to serial "
              "SgqEngine\",\n");
  std::printf("  \"load_points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::printf("    {\"clients\": %zu, \"queries\": %zu, "
                "\"wall_seconds\": %.3f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                "\"p95_ms\": %.3f, \"max_ms\": %.3f, "
                "\"decomposition_cache_hit_rate\": %.3f, "
                "\"matcher_cache_hit_rate\": %.3f}%s\n",
                p.clients, p.queries, p.wall_seconds, p.qps, p.p50_ms,
                p.p95_ms, p.max_ms, p.decomp_hit_rate, p.matcher_hit_rate,
                i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
