// Open-loop load benchmark for the TCP serving stack (src/server).
//
// A real TcpServer serves a synthetic DBpedia-like dataset through an
// admission-controlled KgSession. 16 TCP connections offer load OPEN-LOOP:
// each connection's requests arrive on a fixed Poisson schedule (the
// superposition across connections is Poisson at the offered rate), and a
// request's latency is measured from its SCHEDULED arrival — not from the
// send — so queueing delay the server induces cannot hide by slowing the
// clients down, the defect that makes closed-loop numbers lie under
// overload (bench_admission is the closed-loop counterpart).
//
// Four offered loads (0.5x, 1x, 2x, 4x of the calibrated service
// capacity) each run for a fixed window, recording the
// accepted/rejected/deadline-exceeded split and client-observed p50/p95/p99
// alongside the server's own /stats interval rate.
//
// Correctness gate (the BENCH_serving record is only written when it
// holds): every accepted wire answer is bit-identical to the in-process
// KgSession::Query answer for the same request, every non-OK outcome is
// exactly ResourceExhausted or DeadlineExceeded, and every scheduled
// request resolved (accepted + rejected + deadline_exceeded == sent).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/protocol.h"
#include "api/session.h"
#include "eval/harness.h"
#include "gen/synthetic_kg.h"
#include "server/client.h"
#include "server/tcp_server.h"
#include "util/json.h"
#include "util/rng.h"

namespace kgsearch {
namespace {

constexpr size_t kConnections = 16;
constexpr size_t kPoolThreads = 2;
constexpr size_t kMaxInFlight = 2;
constexpr size_t kMaxQueued = 2;
constexpr int64_t kDeadlineMs = 250;
constexpr double kWindowSeconds = 3.0;

struct LoadPointResult {
  double offered_qps = 0.0;
  size_t sent = 0;
  size_t accepted = 0;
  size_t rejected = 0;
  size_t deadline_exceeded = 0;
  size_t bad = 0;  ///< wrong status, wrong answer, or transport failure
  double wall_seconds = 0.0;
  double achieved_qps = 0.0;        ///< accepted completions per second
  double server_qps_interval = 0.0; ///< the /stats interval rate
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(values->size() - 1));
  return (*values)[rank];
}

/// One pre-scheduled request on one connection.
struct ScheduledRequest {
  int64_t arrival_micros = 0;  ///< offset from the window start
  size_t workload_index = 0;
};

/// "qps_interval" for the dataset from a GET /stats/<name> answer.
double ParseIntervalQps(const std::string& document,
                        const std::string& dataset) {
  Result<JsonValue> parsed = JsonValue::Parse(document);
  if (!parsed.ok()) return -1.0;
  const JsonValue* datasets = parsed.ValueOrDie().Find("datasets");
  if (datasets == nullptr) return -1.0;
  const JsonValue* stats = datasets->Find(dataset);
  if (stats == nullptr) return -1.0;
  const JsonValue* qps = stats->Find("qps_interval");
  return qps == nullptr ? -1.0 : qps->number_value();
}

LoadPointResult RunLoadPoint(uint16_t port,
                             const std::vector<std::string>& request_docs,
                             const std::vector<QueryResponse>& references,
                             double offered_qps, uint64_t seed,
                             double window_seconds = kWindowSeconds) {
  LoadPointResult result;
  result.offered_qps = offered_qps;

  // Pre-compute each connection's Poisson schedule so the send loop does
  // nothing but sleep-and-write. Independent Poisson streams at rate/N per
  // connection superpose to a Poisson stream at the offered rate.
  const double per_conn_rate = offered_qps / kConnections;
  std::vector<std::vector<ScheduledRequest>> schedules(kConnections);
  size_t next_workload = 0;
  for (size_t c = 0; c < kConnections; ++c) {
    FastRng rng(MixSeed(seed, c));
    double t_micros = 0.0;
    while (true) {
      // Exponential inter-arrival gap, mean 1/rate.
      const double u = rng.UniformReal();
      t_micros += -std::log(1.0 - u) / per_conn_rate * 1e6;
      if (t_micros >= window_seconds * 1e6) break;
      schedules[c].push_back({static_cast<int64_t>(t_micros),
                              next_workload++ % request_docs.size()});
    }
    result.sent += schedules[c].size();
  }

  // The /stats probe brackets the window so qps_interval covers exactly
  // this load point.
  Result<NdjsonClient> probe = NdjsonClient::Connect("127.0.0.1", port);
  if (probe.ok()) {
    // The reply content is irrelevant (this read just starts the interval
    // window), but a failed probe would make qps_interval cover the wrong
    // span — surface it instead of dropping the status.
    Result<std::string> primed = probe.ValueOrDie().Call("GET /stats/bench");
    if (!primed.ok()) {
      std::fprintf(stderr, "warning: stats probe failed: %s\n",
                   primed.status().ToString().c_str());
    }
  }

  struct ConnTally {
    std::vector<double> latency_ms;
    size_t accepted = 0;
    size_t rejected = 0;
    size_t deadline_exceeded = 0;
    size_t bad = 0;
  };
  std::vector<ConnTally> tallies(kConnections);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      ConnTally& tally = tallies[c];
      const std::vector<ScheduledRequest>& schedule = schedules[c];
      Result<NdjsonClient> client =
          NdjsonClient::Connect("127.0.0.1", port, /*read_timeout_ms=*/30'000);
      if (!client.ok()) {
        tally.bad += schedule.size();
        return;
      }
      // Sender and receiver are decoupled so a slow answer never delays
      // the next scheduled send (open-loop: arrivals do not wait for
      // completions). The server answers in request order per connection,
      // so the receiver pairs responses with requests by position.
      std::atomic<bool> send_failed{false};
      std::thread sender([&] {
        for (const ScheduledRequest& request : schedule) {
          std::this_thread::sleep_until(
              start + std::chrono::microseconds(request.arrival_micros));
          if (!client.ValueOrDie()
                   .SendLine(request_docs[request.workload_index])
                   .ok()) {
            send_failed = true;
            return;
          }
        }
      });
      for (const ScheduledRequest& request : schedule) {
        Result<std::string> answer = client.ValueOrDie().ReadLine();
        if (!answer.ok()) {
          ++tally.bad;
          if (send_failed) break;
          continue;
        }
        const auto now = std::chrono::steady_clock::now();
        // Latency from the SCHEDULED arrival: includes server queueing and
        // any sender lag, never excuses either.
        const double ms =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - start)
                    .count() -
                request.arrival_micros) /
            1000.0;
        Result<QueryResponse> response =
            DecodeQueryResponseJson(answer.ValueOrDie());
        if (response.ok()) {
          if (response.ValueOrDie().answers ==
              references[request.workload_index].answers) {
            ++tally.accepted;
            tally.latency_ms.push_back(ms);
          } else {
            ++tally.bad;  // accepted but NOT bit-identical
          }
          continue;
        }
        // Error document: only the overload trichotomy is acceptable.
        Result<JsonValue> parsed = JsonValue::Parse(answer.ValueOrDie());
        std::string code;
        if (parsed.ok() && parsed.ValueOrDie().Find("error") != nullptr) {
          const JsonValue* c_field =
              parsed.ValueOrDie().Find("error")->Find("code");
          if (c_field != nullptr) code = c_field->string_value();
        }
        if (code == "ResourceExhausted") {
          ++tally.rejected;
        } else if (code == "DeadlineExceeded") {
          ++tally.deadline_exceeded;
        } else {
          ++tally.bad;
        }
      }
      sender.join();
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()) /
      1e6;

  if (probe.ok()) {
    Result<std::string> stats = probe.ValueOrDie().Call("GET /stats/bench");
    if (stats.ok()) {
      result.server_qps_interval =
          ParseIntervalQps(stats.ValueOrDie(), "bench");
    }
  }

  std::vector<double> latency_ms;
  for (const ConnTally& tally : tallies) {
    latency_ms.insert(latency_ms.end(), tally.latency_ms.begin(),
                      tally.latency_ms.end());
    result.accepted += tally.accepted;
    result.rejected += tally.rejected;
    result.deadline_exceeded += tally.deadline_exceeded;
    result.bad += tally.bad;
  }
  result.achieved_qps =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.accepted) / result.wall_seconds
          : 0.0;
  result.p50_ms = Percentile(&latency_ms, 0.50);
  result.p95_ms = Percentile(&latency_ms, 0.95);
  result.p99_ms = Percentile(&latency_ms, 0.99);
  result.max_ms = latency_ms.empty()
                      ? 0.0
                      : *std::max_element(latency_ms.begin(),
                                          latency_ms.end());
  return result;
}

int Run() {
  auto generated = GenerateDataset(DbpediaLikeSpec(0.5, 42));
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  GeneratedDataset& ds = *generated.ValueOrDie();
  const std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 8);
  if (workload.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }
  const size_t nodes = ds.graph->NumNodes();
  const size_t edges = ds.graph->NumEdges();

  KgSessionOptions session_options;
  session_options.num_threads = kPoolThreads;
  session_options.max_in_flight = kMaxInFlight;
  session_options.max_queued = kMaxQueued;
  session_options.honor_request_priority = false;  // untrusted wire clients
  KgSession session(session_options);
  Status registered = session.RegisterDataset(
      "bench", std::move(ds.graph), std::move(ds.space),
      std::move(ds.library));
  if (!registered.ok()) {
    std::fprintf(stderr, "register: %s\n", registered.ToString().c_str());
    return 1;
  }

  // Build the wire documents once, and the in-process reference answers
  // (same facade, same options) for the bit-identity gate. The sequential
  // reference pass doubles as the service-time calibration.
  std::vector<std::string> request_docs;
  std::vector<QueryResponse> references;
  double total_service_ms = 0.0;
  for (const QueryWithGold& q : workload) {
    QueryRequest request;
    request.dataset = "bench";
    request.query_graph = q.query;
    request.options.k = 20;
    request.deadline_ms = kDeadlineMs;
    StopWatch watch;
    auto r = session.Query(request);
    total_service_ms += watch.ElapsedMillis();
    if (!r.ok()) {
      std::fprintf(stderr, "reference %s: %s\n", q.description.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    references.push_back(r.ValueOrDie());
    request_docs.push_back(EncodeQueryRequestJson(request));
  }
  const double mean_service_ms =
      total_service_ms / static_cast<double>(workload.size());

  TcpServerOptions server_options;
  server_options.max_connections = kConnections + 4;  // probes ride along
  TcpServer server(&session, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }

  // Calibrate the real serving capacity empirically: saturate the socket
  // path for one second and take the accepted-completion rate. The naive
  // in_flight / mean_service_ms estimate ignores everything the socket
  // path adds (framing, per-connection serialization, contention) and
  // overestimates capacity several-fold, which would mislabel every load
  // factor below.
  const double naive_qps =
      static_cast<double>(kMaxInFlight) * 1000.0 / mean_service_ms;
  const LoadPointResult saturation =
      RunLoadPoint(server.port(), request_docs, references,
                   /*offered_qps=*/naive_qps * 4.0, /*seed=*/999,
                   /*window_seconds=*/1.0);
  if (saturation.bad != 0 || saturation.accepted == 0) {
    std::fprintf(stderr, "calibration failed (accepted=%zu bad=%zu)\n",
                 saturation.accepted, saturation.bad);
    server.Stop();
    return 1;
  }
  const double capacity_qps = saturation.achieved_qps;
  std::fprintf(stderr, "calibration: naive=%.1fqps measured=%.1fqps\n",
               naive_qps, capacity_qps);

  const std::vector<double> load_factors = {0.5, 1.0, 2.0, 4.0};
  std::vector<LoadPointResult> points;
  bool gate_ok = true;
  for (size_t i = 0; i < load_factors.size(); ++i) {
    const double offered = capacity_qps * load_factors[i];
    LoadPointResult point = RunLoadPoint(server.port(), request_docs,
                                         references, offered,
                                         /*seed=*/1000 + i);
    std::fprintf(stderr,
                 "%.1fx offered=%7.1fqps sent=%5zu accepted=%5zu "
                 "rejected=%5zu ddl=%4zu bad=%zu p50=%7.2fms p95=%7.2fms\n",
                 load_factors[i], point.offered_qps, point.sent,
                 point.accepted, point.rejected, point.deadline_exceeded,
                 point.bad, point.p50_ms, point.p95_ms);
    if (point.bad != 0 ||
        point.accepted + point.rejected + point.deadline_exceeded !=
            point.sent) {
      gate_ok = false;
    }
    points.push_back(point);
  }
  server.Stop();

  // Cross-check the server's books: everything the clients tallied must
  // be in the service counters, and nothing may still be outstanding.
  const ServiceStatsSnapshot stats = session.Stats("bench").ValueOrDie();
  size_t tallied_rejected = saturation.rejected;
  for (const LoadPointResult& p : points) tallied_rejected += p.rejected;
  if (stats.admitted_outstanding != 0 ||
      stats.queries_rejected != tallied_rejected) {
    gate_ok = false;
  }
  if (!gate_ok) {
    std::fprintf(stderr, "correctness gate FAILED; no record written\n");
    return 1;
  }
  // The record is only meaningful when overload actually sheds load.
  if (points.back().rejected + points.back().deadline_exceeded == 0) {
    std::fprintf(stderr, "4x load shed nothing; no record written\n");
    return 1;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_serving\",\n");
  std::printf("  \"dataset\": {\"nodes\": %zu, \"edges\": %zu},\n", nodes,
              edges);
  std::printf("  \"workload_queries\": %zu,\n", workload.size());
  std::printf("  \"transport\": \"TCP, newline-delimited JSON, %zu "
              "connections\",\n",
              kConnections);
  std::printf("  \"open_loop\": \"Poisson arrivals; latency measured from "
              "scheduled arrival, not send\",\n");
  std::printf("  \"server\": {\"pool_threads\": %zu, \"max_in_flight\": "
              "%zu, \"max_queued\": %zu, \"deadline_ms\": %lld},\n",
              kPoolThreads, kMaxInFlight, kMaxQueued,
              static_cast<long long>(kDeadlineMs));
  std::printf("  \"mean_service_ms\": %.3f,\n", mean_service_ms);
  std::printf("  \"capacity_qps_estimate\": %.1f,\n", capacity_qps);
  std::printf("  \"correctness_gate\": \"accepted answers bit-identical to "
              "in-process KgSession::Query; every non-OK outcome is "
              "ResourceExhausted or DeadlineExceeded; accepted + rejected "
              "+ deadline_exceeded == sent; service counters match\",\n");
  std::printf("  \"load_points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPointResult& p = points[i];
    std::printf(
        "    {\"load_factor\": %.1f, \"offered_qps\": %.1f, \"sent\": %zu, "
        "\"accepted\": %zu, \"rejected\": %zu, \"deadline_exceeded\": %zu, "
        "\"wall_seconds\": %.3f, \"achieved_qps\": %.1f, "
        "\"server_qps_interval\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": "
        "%.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f}%s\n",
        load_factors[i], p.offered_qps, p.sent, p.accepted, p.rejected,
        p.deadline_exceeded, p.wall_seconds, p.achieved_qps,
        p.server_qps_interval, p.p50_ms, p.p95_ms, p.p99_ms, p.max_ms,
        i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
