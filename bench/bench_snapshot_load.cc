// Cold-start tax: parsing N-Triples + training TransE vs restoring the same
// dataset from a kgpack snapshot. The paper's serving model assumes a
// resident knowledge graph; this bench quantifies what a restart costs each
// way and gates the snapshot path at >= 10x faster (it is typically
// 100-1000x: a handful of bulk reads vs epochs of SGD). A correctness gate
// first proves the snapshot-loaded session answers the standard workload
// bit-identically to the parsed-and-trained one; results land in
// BENCH_snapshot_load.json.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "api/session.h"
#include "eval/harness.h"
#include "gen/synthetic_kg.h"
#include "kg/triple_io.h"

namespace kgsearch {
namespace {

constexpr size_t kLoadPasses = 9;
constexpr double kMinSpeedup = 10.0;  // the acceptance gate

int Run() {
  const std::string graph_path = "/tmp/kgsearch_bench_snapshot_graph.nt";
  const std::string library_path = "/tmp/kgsearch_bench_snapshot_lib.tsv";
  const std::string pack_path = "/tmp/kgsearch_bench_snapshot.kgpack";

  auto generated = GenerateDataset(DbpediaLikeSpec(0.4, 42));
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  GeneratedDataset& ds = *generated.ValueOrDie();
  const std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 8);
  if (workload.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }
  if (!WriteStringToFile(graph_path, WriteNTriples(*ds.graph)).ok() ||
      !WriteStringToFile(library_path, ds.library.Serialize()).ok()) {
    std::fprintf(stderr, "cannot write bench inputs\n");
    return 1;
  }

  // --- the expensive path: parse text, train TransE (serving defaults) ---
  DatasetLoadOptions fresh_load;
  fresh_load.graph_path = graph_path;
  fresh_load.library_path = library_path;
  fresh_load.train_transe = true;

  KgSession fresh_session;
  StopWatch parse_train_watch;
  Status fresh = fresh_session.LoadDataset("kg", fresh_load);
  const double parse_train_ms = parse_train_watch.ElapsedMillis();
  if (!fresh.ok()) {
    std::fprintf(stderr, "parse+train load: %s\n", fresh.ToString().c_str());
    return 1;
  }

  StopWatch save_watch;
  Status saved = fresh_session.SaveDataset("kg", pack_path);
  const double save_ms = save_watch.ElapsedMillis();
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  Result<std::string> pack_bytes = ReadFileToString(pack_path);
  if (!pack_bytes.ok()) return 1;
  const size_t pack_size = pack_bytes.ValueOrDie().size();

  // --- the fast path: restore the snapshot, min over several cold loads ---
  DatasetLoadOptions snap_load;
  snap_load.graph_path = pack_path;

  double snapshot_load_min_ms = 0.0;
  KgSession snap_session;  // the last pass's session serves the gate below
  for (size_t pass = 0; pass < kLoadPasses; ++pass) {
    KgSession session;
    StopWatch watch;
    Status loaded = session.LoadDataset("kg", snap_load);
    const double ms = watch.ElapsedMillis();
    if (!loaded.ok()) {
      std::fprintf(stderr, "snapshot load: %s\n", loaded.ToString().c_str());
      return 1;
    }
    if (pass == 0 || ms < snapshot_load_min_ms) snapshot_load_min_ms = ms;
    if (pass + 1 == kLoadPasses) {
      Status again = snap_session.LoadDataset("kg", snap_load);
      if (!again.ok()) return 1;
    }
  }

  // --- correctness gate: identical answers over the standard workload ---
  size_t gated_queries = 0;
  for (const QueryWithGold& q : workload) {
    QueryRequest request;
    request.dataset = "kg";
    request.query_graph = q.query;
    request.options.k = 20;
    auto a = fresh_session.Query(request);
    auto b = snap_session.Query(request);
    if (a.ok() != b.ok()) {
      std::fprintf(stderr, "gate: ok mismatch on %s\n",
                   q.description.c_str());
      return 1;
    }
    if (!a.ok()) continue;
    if (a.ValueOrDie().answers != b.ValueOrDie().answers) {
      std::fprintf(stderr, "gate: answers differ on %s\n",
                   q.description.c_str());
      return 1;
    }
    ++gated_queries;
  }
  if (gated_queries == 0) {
    std::fprintf(stderr, "gate: no successful queries\n");
    return 1;
  }

  const double speedup = parse_train_ms / snapshot_load_min_ms;
  std::vector<DatasetInfo> info = snap_session.ListDatasets();

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_snapshot_load\",\n");
  std::printf("  \"nodes\": %zu,\n", info[0].nodes);
  std::printf("  \"edges\": %zu,\n", info[0].edges);
  std::printf("  \"predicates\": %zu,\n", info[0].predicates);
  std::printf("  \"workload_queries_gated\": %zu,\n", gated_queries);
  std::printf("  \"correctness_gate\": \"snapshot-loaded answers identical "
              "to parse+train\",\n");
  std::printf("  \"parse_train_ms\": %.1f,\n", parse_train_ms);
  std::printf("  \"snapshot_save_ms\": %.1f,\n", save_ms);
  std::printf("  \"snapshot_bytes\": %zu,\n", pack_size);
  std::printf("  \"snapshot_load_passes\": %zu,\n", kLoadPasses);
  std::printf("  \"snapshot_load_min_ms\": %.2f,\n", snapshot_load_min_ms);
  std::printf("  \"speedup\": %.1f,\n", speedup);
  std::printf("  \"gate_min_speedup\": %.1f,\n", kMinSpeedup);
  std::printf("  \"gate_passed\": %s\n",
              speedup >= kMinSpeedup ? "true" : "false");
  std::printf("}\n");

  std::remove(graph_path.c_str());
  std::remove(library_path.c_str());
  std::remove(pack_path.c_str());
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: snapshot load only %.1fx faster than "
                         "parse+train (gate %.1fx)\n",
                 speedup, kMinSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
