// Table X reproduction: sensitivity of SGQ to the user-desired path length
// n̂ and the pss threshold τ, on the DBpedia-like dataset at k = 100.
//
// Expected shape: effectiveness saturates at n̂ = 4 (gold schemas span up
// to 4 hops) while response time keeps growing with n̂; raising τ speeds
// the query up until τ = 0.9 over-prunes the weak-but-correct schemas
// (pss between 0.8 and 0.9) and recall drops.
#include <cstdio>

#include "baselines/adapters.h"
#include "eval/harness.h"
#include "eval/reporter.h"

namespace kgsearch {
namespace {

int Run() {
  auto result = GenerateDataset(DbpediaLikeSpec(2.0));
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();
  MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};
  std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 6);
  // k = |gold| per query (the paper's P = R regime); with a fixed small k
  // the abundant direct-schema matches would mask the n̂/τ effects.
  const size_t k = 0;

  Table nhat_table({"n̂", "Precision", "Recall", "F1", "Time(ms)"});
  for (size_t n_hat : {2u, 3u, 4u, 5u}) {
    EngineOptions options;
    options.n_hat = n_hat;
    SgqMethod sgq(context, options);
    MethodRun run = RunMethodOnWorkload(sgq, workload, k);
    nhat_table.AddRow({std::to_string(n_hat), Table::Cell(run.precision),
                       Table::Cell(run.recall), Table::Cell(run.f1),
                       Table::Cell(run.avg_ms, 2)});
  }
  nhat_table.Print("Table X (left): effect of desired path length n̂ "
                   "(τ=0.8, k=|gold|)");

  Table tau_table({"τ", "Precision", "Recall", "F1", "Time(ms)"});
  for (double tau : {0.6, 0.7, 0.8, 0.9}) {
    EngineOptions options;
    options.tau = tau;
    SgqMethod sgq(context, options);
    MethodRun run = RunMethodOnWorkload(sgq, workload, k);
    tau_table.AddRow({Table::Cell(tau, 1), Table::Cell(run.precision),
                      Table::Cell(run.recall), Table::Cell(run.f1),
                      Table::Cell(run.avg_ms, 2)});
  }
  tau_table.Print(
      "Table X (right): effect of pss threshold τ (n̂=4, k=|gold|)");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
