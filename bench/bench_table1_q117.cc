// Table I + Figure 1 reproduction: precision/recall of all eight methods on
// the four Q117 query-graph variants ("find all cars produced in Germany"),
// over the car-domain fixture. k = |gold|, as in the paper (k = 596 there).
//
// Expected shape (paper's Table I): gStore fails G1-G3 and is P=1/low-R on
// G4; SLQ handles all variants at P=1/low-R; QGA fails G1 only; structural
// methods have sub-1 precision; S4 sits between; SGQ leads on F1 everywhere.
#include <cstdio>

#include "baselines/adapters.h"
#include "baselines/exact_match.h"
#include "baselines/s4.h"
#include "baselines/structural.h"
#include "eval/metrics.h"
#include "eval/reporter.h"
#include "gen/car_domain.h"
#include "util/string_util.h"

namespace kgsearch {
namespace {

int Run() {
  auto result = MakeCarDomainDataset(400, 117);
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();
  MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};

  std::vector<NodeId> gold =
      ds.GoldIds(kCarProducedIntent, kCarGermanyAnchor);
  std::sort(gold.begin(), gold.end());
  const size_t k = gold.size();
  std::printf("Car-domain KG: %zu nodes, %zu edges; |gold| = k = %zu\n",
              ds.graph->NumNodes(), ds.graph->NumEdges(), k);

  // Figure 1: answers per schema (template) for the Germany anchor.
  {
    Table fig1({"schema", "hops", "validated", "#answers"});
    const GeneratedIntent& intent = ds.intents[kCarProducedIntent];
    for (size_t t = 0; t < intent.spec.templates.size(); ++t) {
      const PathTemplate& tmpl = intent.spec.templates[t];
      std::string schema;
      for (size_t h = 0; h < tmpl.predicates.size(); ++h) {
        if (h) schema += "-";
        schema += tmpl.predicates[h];
      }
      fig1.AddRow({schema, std::to_string(tmpl.Hops()),
                   tmpl.correct ? "yes" : "no",
                   std::to_string(
                       intent.gold_by_template[kCarGermanyAnchor][t].size())});
    }
    fig1.Print("Figure 1: schemas and answer counts for Q117 (Germany)");
  }

  // Method roster (Table II feature sets).
  std::vector<std::unique_ptr<GraphQueryMethod>> methods;
  methods.push_back(MakeGStore(context));
  methods.push_back(MakeSlq(context));
  methods.push_back(MakeNeMa(context));
  {
    // S4 prior knowledge: 50% of the gold pairs.
    NodeId germany = ds.graph->FindNode("Germany");
    std::vector<std::pair<NodeId, NodeId>> examples;
    for (size_t i = 0; i < gold.size() / 2; ++i) {
      examples.emplace_back(gold[i], germany);
    }
    std::map<std::string, std::vector<S4Pattern>> patterns;
    patterns["assembly"] = MineS4Patterns(*ds.graph, examples, 3, 2);
    patterns["product"] = patterns["assembly"];
    methods.push_back(std::make_unique<S4Method>(context, std::move(patterns)));
  }
  methods.push_back(MakePHom(context));
  methods.push_back(MakeGraB(context));
  methods.push_back(MakeQga(context));
  methods.push_back(std::make_unique<SgqMethod>(context, EngineOptions{}));

  Table table({"Method", "G1 P", "G1 R", "G2 P", "G2 R", "G3 P", "G3 R",
               "G4 P", "G4 R"});
  for (const auto& method : methods) {
    std::vector<std::string> row{std::string(method->name())};
    for (int variant = 1; variant <= 4; ++variant) {
      QueryGraph q = MakeQ117Variant(variant);
      Result<std::vector<NodeId>> answers = method->QueryTopK(q, 0, k);
      if (!answers.ok() || answers.ValueOrDie().empty()) {
        row.push_back("%");
        row.push_back("%");
        continue;
      }
      Prf prf = ComputePrf(answers.ValueOrDie(), gold);
      row.push_back(Table::Cell(prf.precision, 2));
      row.push_back(Table::Cell(prf.recall, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print(
      "Table I: P/R for Q117 query-graph variants (% = cannot answer)");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
