// Table V reproduction: effect of the pivot node on a complex query.
//
// The paper's complex query (Fig. 16) admits two pivots; the pivot whose
// decomposition contains a 3-hop sub-query is slower and slightly less
// accurate than the pivot with shorter legs. We build the analogous complex
// query (one 2-edge chain leg + two simple legs) and force each feasible
// pivot, sweeping k like the paper's {200,400,800,1200} scaled to our gold
// size.
#include <algorithm>
#include <cstdio>

#include "core/engine.h"
#include "eval/harness.h"
#include "eval/reporter.h"
#include "util/string_util.h"

namespace kgsearch {
namespace {

int Run() {
  auto result = GenerateDataset(DbpediaLikeSpec(2.0));
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();

  // Complex query on group 0: intent 0's 3-hop schema fully exposed plus a
  // simple leg on intent 1 — the subject and both intermediate nodes are
  // feasible pivots with different leg-length profiles, like the paper's
  // v1/v2 choice in Fig. 16.
  auto query = MakeDeepChainQuery(ds, 0, 0, 3, {{1, 0}});
  KG_CHECK(query.ok());
  const QueryWithGold& q = query.ValueOrDie();
  std::printf("complex query: %s, |gold| = %zu\n", q.description.c_str(),
              q.gold.size());

  SgqEngine engine(ds.graph.get(), ds.space.get(), &ds.library);
  DecomposeOptions dopts;
  dopts.avg_degree = ds.graph->AverageDegree();

  Table table({"k", "pivot", "#legs", "max leg", "P", "R", "F1",
               "Time(ms)"});
  for (size_t k : {25u, 50u, 100u, 150u}) {
    for (int pivot : q.query.TargetNodes()) {
      auto decomposition = DecomposeQueryForPivot(q.query, pivot, dopts);
      if (!decomposition.ok()) continue;
      size_t max_leg = 0;
      for (const SubQueryGraph& leg : decomposition.ValueOrDie().subqueries) {
        max_leg = std::max(max_leg, leg.Length());
      }
      EngineOptions options;
      options.k = k;
      // Non-subject pivots read answers off a non-pivot query node; the
      // exact search mode with several matches per target keeps the
      // extraction from collapsing onto one subject per intermediate hub.
      options.dedup = DedupMode::kExactState;
      options.matches_per_target = 8;
      StopWatch watch;
      auto r = engine.QueryDecomposed(q.query, decomposition.ValueOrDie(),
                                      options);
      const double ms = watch.ElapsedMillis();
      if (!r.ok()) continue;
      std::vector<NodeId> answers = ExtractAnswers(
          r.ValueOrDie().matches, r.ValueOrDie().decomposition,
          q.answer_node);
      Prf prf = ComputePrf(answers, q.gold);
      table.AddRow(
          {std::to_string(k), StrFormat("v%d", pivot),
           std::to_string(decomposition.ValueOrDie().subqueries.size()),
           std::to_string(max_leg), Table::Cell(prf.precision, 2),
           Table::Cell(prf.recall, 2), Table::Cell(prf.f1, 2),
           Table::Cell(ms, 1)});
    }
  }
  table.Print("Table V: effectiveness/efficiency per forced pivot node");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
