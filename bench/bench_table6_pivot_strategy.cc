// Table VI reproduction: minCost (Eq. 1) vs Random pivot selection over
// simple (1 sub-query), medium (2 sub-queries), and complex (3 sub-queries)
// query workloads, with k = |gold| so P = R as in the paper.
//
// Expected shape: both strategies slow down as queries grow; Random trails
// minCost on both accuracy and time because a non-optimal pivot yields
// longer sub-query paths and a larger search space.
#include <cstdio>

#include "core/engine.h"
#include "eval/harness.h"
#include "eval/reporter.h"

namespace kgsearch {
namespace {

struct StrategyStats {
  double p_eq_r = 0.0;
  double ms = 0.0;
  size_t runs = 0;
};

int Run() {
  auto result = GenerateDataset(DbpediaLikeSpec(2.0));
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();
  SgqEngine engine(ds.graph.get(), ds.space.get(), &ds.library);

  // Workloads per complexity class.
  std::vector<std::pair<std::string, std::vector<QueryWithGold>>> classes;
  {
    std::vector<QueryWithGold> simple;
    for (size_t i = 0; i < 3; ++i) {
      auto q = MakeIntentQuery(ds, i, 0);
      if (q.ok() && !q.ValueOrDie().gold.empty()) {
        simple.push_back(std::move(q).ValueOrDie());
      }
    }
    classes.emplace_back("Simple (1 sub-query)", std::move(simple));

    // Medium/complex classes use deep-chain queries, whose intermediate
    // nodes are all feasible pivots with different decomposition costs —
    // the regime where pivot selection matters.
    std::vector<QueryWithGold> medium;
    for (size_t intent : {0u, 1u}) {
      auto q = MakeDeepChainQuery(ds, intent, 0, 3, {{2, 0}});
      if (q.ok() && !q.ValueOrDie().gold.empty()) {
        medium.push_back(std::move(q).ValueOrDie());
      }
    }
    classes.emplace_back("Medium (2 sub-queries)", std::move(medium));

    std::vector<QueryWithGold> complex_queries;
    auto q = MakeDeepChainQuery(ds, 0, 0, 5, {{1, 0}});  // 4-hop chain
    if (q.ok() && !q.ValueOrDie().gold.empty()) {
      complex_queries.push_back(std::move(q).ValueOrDie());
    }
    auto q2 = MakeDeepChainQuery(ds, 2, 0, 3, {{0, 0}, {1, 0}});
    if (q2.ok() && !q2.ValueOrDie().gold.empty()) {
      complex_queries.push_back(std::move(q2).ValueOrDie());
    }
    classes.emplace_back("Complex (3 sub-queries)",
                         std::move(complex_queries));
  }

  Table table({"Query type", "minCost P=R", "minCost ms", "Random P=R",
               "Random ms"});
  for (const auto& [label, workload] : classes) {
    if (workload.empty()) continue;
    StrategyStats stats[2];
    const PivotStrategy strategies[2] = {PivotStrategy::kMinCost,
                                         PivotStrategy::kRandom};
    for (int s = 0; s < 2; ++s) {
      // Several seeds so kRandom averages over pivot draws.
      for (uint64_t seed : {11u, 22u, 33u}) {
        for (const QueryWithGold& q : workload) {
          EngineOptions options;
          options.k = q.gold.size();
          options.pivot_strategy = strategies[s];
          options.seed = seed;
          options.dedup = DedupMode::kExactState;
          options.matches_per_target = 8;
          StopWatch watch;
          auto r = engine.Query(q.query, options);
          const double ms = watch.ElapsedMillis();
          if (!r.ok()) continue;
          std::vector<NodeId> answers =
              ExtractAnswers(r.ValueOrDie().matches,
                             r.ValueOrDie().decomposition, q.answer_node);
          Prf prf = ComputePrf(answers, q.gold);
          stats[s].p_eq_r += prf.recall;  // k = |gold| => P tracks R
          stats[s].ms += ms;
          ++stats[s].runs;
        }
        if (strategies[s] == PivotStrategy::kMinCost) break;  // deterministic
      }
    }
    auto cell = [](const StrategyStats& st, bool time) {
      if (st.runs == 0) return std::string("-");
      return Table::Cell(time ? st.ms / static_cast<double>(st.runs)
                              : st.p_eq_r / static_cast<double>(st.runs),
                         time ? 1 : 2);
    };
    const bool single = label.rfind("Simple", 0) == 0;
    table.AddRow({label, cell(stats[0], false), cell(stats[0], true),
                  single ? "-" : cell(stats[1], false),
                  single ? "-" : cell(stats[1], true)});
  }
  table.Print("Table VI: minCost vs Random pivot selection (k = |gold|)");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
