// Table VII reproduction: simulated user study over 20 queries drawn from
// the three dataset profiles (paper: D1-D6, F1-F12, Y1-Y2). For each query,
// SGQ's top-k answers (k = |gold|) are grouped by match score, 30 answer
// pairs are judged by 10 simulated annotators, and the Pearson correlation
// between SGQ rank differences and preference differences is reported.
//
// Expected shape: most queries land in the strong band (PCC >= 0.5), a few
// in the medium band (0.3-0.5), mirroring the paper's 16/4 split.
#include <cstdio>

#include "baselines/adapters.h"
#include "eval/harness.h"
#include "eval/reporter.h"
#include "eval/user_study.h"
#include "util/string_util.h"

namespace kgsearch {
namespace {

struct StudyQuery {
  std::string label;
  const GeneratedDataset* ds;
  QueryWithGold query;
  double noise;
};

int Run() {
  auto db = GenerateDataset(DbpediaLikeSpec(0.8, 42));
  auto fb = GenerateDataset(FreebaseLikeSpec(0.8, 43));
  auto yg = GenerateDataset(Yago2LikeSpec(0.5, 44));
  KG_CHECK(db.ok() && fb.ok() && yg.ok());

  // 20 queries: 6 DBpedia-like, 12 Freebase-like, 2 YAGO2-like, as in the
  // paper's Table VII. Annotator noise varies per query (attention varies
  // across crowd workers), which produces the strong/medium banding.
  std::vector<StudyQuery> queries;
  auto add = [&queries](const char* prefix, const GeneratedDataset& ds,
                        size_t count, uint64_t noise_seed) {
    Rng rng(noise_seed);
    size_t added = 0;
    for (size_t intent = 0; added < count; ++intent) {
      const size_t i = intent % ds.intents.size();
      const size_t anchor = (intent / ds.intents.size()) %
                            ds.intents[i].anchor_names.size();
      auto q = MakeIntentQuery(ds, i, anchor);
      if (!q.ok() || q.ValueOrDie().gold.size() < 8) continue;
      ++added;
      // Crowd workers differ in attention: a fifth judge carelessly.
      const double noise = rng.Bernoulli(0.2) ? 0.42 : 0.12;
      queries.push_back(StudyQuery{StrFormat("%s%zu", prefix, added), &ds,
                                   std::move(q).ValueOrDie(), noise});
    }
  };
  add("D", *db.ValueOrDie(), 6, 1001);
  add("F", *fb.ValueOrDie(), 12, 1002);
  add("Y", *yg.ValueOrDie(), 2, 1003);

  Table table({"Query", "PCC", "band"});
  size_t strong = 0, medium = 0;
  for (const StudyQuery& sq : queries) {
    const GeneratedDataset& ds = *sq.ds;
    SgqEngine engine(ds.graph.get(), ds.space.get(), &ds.library);
    EngineOptions options;
    options.k = sq.query.gold.size();
    auto r = engine.Query(sq.query.query, options);
    if (!r.ok()) continue;
    std::vector<NodeId> ranked;
    std::vector<double> scores;
    for (const FinalMatch& m : r.ValueOrDie().matches) {
      ranked.push_back(m.pivot_match);
      scores.push_back(m.score);
    }
    UserStudyConfig config;
    config.annotator_noise = sq.noise;
    config.seed = 7 + ranked.size();
    const double pcc =
        SimulateUserStudyPcc(ranked, scores, sq.query.gold, config);
    const char* band = pcc >= 0.5 ? "strong" : (pcc >= 0.3 ? "medium" : "low");
    if (pcc >= 0.5) {
      ++strong;
    } else if (pcc >= 0.3) {
      ++medium;
    }
    table.AddRow({sq.label, Table::Cell(pcc, 2), band});
  }
  table.Print("Table VII: PCC per query (simulated 30 pairs x 10 annotators)");
  std::printf("bands: %zu strong, %zu medium (paper: 16 strong, 4 medium)\n",
              strong, medium);
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
