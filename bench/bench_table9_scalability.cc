// Table IX reproduction: scalability of SGQ over three graph scales (the
// paper's G1/G2/G subgraphs of DBpedia), plus the offline TransE embedding
// cost (time and memory) per scale.
//
// Expected shape: online response time grows mildly with graph size (the
// pss-estimate pruning keeps the explored region roughly intent-local);
// embedding time grows linearly with |E| and memory with |V|*dim.
#include <cstdio>

#include "baselines/adapters.h"
#include "embedding/transe.h"
#include "eval/harness.h"
#include "eval/reporter.h"
#include "util/string_util.h"

namespace kgsearch {
namespace {

int Run() {
  Table table({"Graph", "#Nodes", "#Edges", "k=80(ms)", "k=100(ms)",
               "k=120(ms)", "TransE(s)", "TransE mem(MB)"});
  const double scales[] = {1.0, 1.5, 2.0};
  const char* labels[] = {"G1", "G2", "G"};
  for (int i = 0; i < 3; ++i) {
    auto result = GenerateDataset(DbpediaLikeSpec(scales[i]));
    KG_CHECK(result.ok());
    const GeneratedDataset& ds = *result.ValueOrDie();
    MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};
    std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 5);
    SgqMethod sgq(context, EngineOptions{});

    std::vector<std::string> row{labels[i],
                                 std::to_string(ds.graph->NumNodes()),
                                 std::to_string(ds.graph->NumEdges())};
    for (size_t k : {80u, 100u, 120u}) {
      MethodRun run = RunMethodOnWorkload(sgq, workload, k);
      row.push_back(Table::Cell(run.avg_ms, 2));
    }

    // Offline embedding cost (scaled-down TransE: dim 32, 15 epochs).
    TransEConfig config;
    config.dim = 32;
    config.epochs = 15;
    StopWatch watch;
    auto embedding = TrainTransE(*ds.graph, config);
    KG_CHECK(embedding.ok());
    const double seconds = watch.ElapsedMillis() / 1000.0;
    const double mem_mb =
        static_cast<double>((ds.graph->NumNodes() +
                             ds.graph->NumPredicates()) *
                            config.dim * sizeof(float)) /
        (1024.0 * 1024.0);
    row.push_back(Table::Cell(seconds, 2));
    row.push_back(Table::Cell(mem_mb, 2));
    table.AddRow(std::move(row));
  }
  table.Print("Table IX: SGQ online time and TransE offline cost vs scale");
  return 0;
}

}  // namespace
}  // namespace kgsearch

int main() { return kgsearch::Run(); }
