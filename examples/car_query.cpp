// QALD-4 Q117 walkthrough: "Find all cars that are produced in Germany."
//
//   $ ./car_query
//
// Generates the car-domain fixture (a miniature of the DBpedia
// neighbourhood around Q117, with the paper's seven schemas plus a
// distractor), runs the four query-graph variants of Figure 1 through the
// engine, and prints per-variant precision/recall against the validated
// gold answers — the paper's Table I, for the SGQ row.
#include <algorithm>
#include <cstdio>

#include "baselines/adapters.h"
#include "eval/metrics.h"
#include "gen/car_domain.h"

using namespace kgsearch;

int main() {
  auto dataset = MakeCarDomainDataset(/*num_cars=*/300, /*seed=*/117);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const GeneratedDataset& ds = *dataset.ValueOrDie();
  std::printf("car-domain KG: %zu nodes, %zu edges\n", ds.graph->NumNodes(),
              ds.graph->NumEdges());

  std::vector<NodeId> gold =
      ds.GoldIds(kCarProducedIntent, kCarGermanyAnchor);
  std::sort(gold.begin(), gold.end());
  std::printf("QALD gold answers (schemas 1-4): %zu cars\n\n", gold.size());

  MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};
  SgqMethod sgq(context, EngineOptions{});

  const char* descriptions[] = {
      "?<Car>        --assembly-- Germany   (type synonym)",
      "?<Automobile> --assembly-- GER       (name abbreviation)",
      "?<Automobile> --product--  Germany   (query-only predicate)",
      "?<Automobile> --assembly-- Germany   (canonical form)",
  };
  for (int variant = 1; variant <= 4; ++variant) {
    QueryGraph query = MakeQ117Variant(variant);
    Result<std::vector<NodeId>> answers =
        sgq.QueryTopK(query, /*answer_node=*/0, gold.size());
    if (!answers.ok()) {
      std::printf("G%d  %s\n    cannot answer: %s\n", variant,
                  descriptions[variant - 1],
                  answers.status().ToString().c_str());
      continue;
    }
    Prf prf = ComputePrf(answers.ValueOrDie(), gold);
    std::printf("G%d  %s\n    P=%.2f R=%.2f F1=%.2f  (%zu answers)\n",
                variant, descriptions[variant - 1], prf.precision,
                prf.recall, prf.f1, answers.ValueOrDie().size());
  }

  // Show a few answers with their witnessing schemas for the canonical
  // variant, like the paper's detailed Q117 result table.
  std::printf("\nexample answers (G4), with witnessing paths:\n");
  SgqEngine engine(ds.graph.get(), ds.space.get(), &ds.library);
  EngineOptions options;
  options.k = 5;
  auto result = engine.Query(MakeQ117Variant(4), options);
  if (result.ok()) {
    for (const FinalMatch& m : result.ValueOrDie().matches) {
      const PathMatch& path = m.parts[0];
      std::printf("  %-18s pss=%.3f  ",
                  std::string(ds.graph->NodeName(m.pivot_match)).c_str(),
                  path.pss);
      for (size_t i = 0; i < path.predicates.size(); ++i) {
        std::printf("%s--%s-->",
                    std::string(ds.graph->NodeName(path.nodes[i])).c_str(),
                    std::string(ds.graph->PredicateName(path.predicates[i]))
                        .c_str());
      }
      std::printf("%s\n",
                  std::string(ds.graph->NodeName(path.nodes.back())).c_str());
    }
  }
  return 0;
}
