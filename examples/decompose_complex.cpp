// Query decomposition (Section III, Eq. 1): how a complex query graph is
// split into path-shaped sub-queries at a pivot node, and how the pivot
// choice changes the decomposition cost and the query's runtime.
//
//   $ ./decompose_complex
#include <cstdio>

#include "core/engine.h"
#include "eval/metrics.h"
#include "gen/workload.h"

using namespace kgsearch;

namespace {

void PrintDecomposition(const QueryGraph& query, const Decomposition& d) {
  std::printf("  pivot = node %d (%s), cost = %.3g\n", d.pivot,
              query.node(d.pivot).type.c_str(), d.cost);
  for (size_t i = 0; i < d.subqueries.size(); ++i) {
    const SubQueryGraph& sub = d.subqueries[i];
    std::printf("    g%zu: ", i + 1);
    for (size_t j = 0; j < sub.node_seq.size(); ++j) {
      const QueryNode& n = query.node(sub.node_seq[j]);
      std::printf("%s", n.is_specific() ? n.name.c_str()
                                        : ("?" + n.type).c_str());
      if (j < sub.edge_seq.size()) {
        std::printf(" --%s-- ", query.edge(sub.edge_seq[j]).predicate.c_str());
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  auto dataset = GenerateDataset(DbpediaLikeSpec(1.0));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const GeneratedDataset& ds = *dataset.ValueOrDie();

  // A deep chain with a simple leg: ?subject -- ?mid -- ?mid2 -- anchor
  // plus ?subject -- anchor2. Subject and both intermediates are feasible
  // pivots with different costs.
  auto query = MakeDeepChainQuery(ds, 0, 0, 3, {{1, 0}});
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  const QueryWithGold& q = query.ValueOrDie();
  std::printf("query: %s (%zu nodes, %zu edges), |gold| = %zu\n\n",
              q.description.c_str(), q.query.NumNodes(), q.query.NumEdges(),
              q.gold.size());

  DecomposeOptions dopts;
  dopts.avg_degree = ds.graph->AverageDegree();

  std::printf("minimum-cost decomposition (Eq. 1):\n");
  auto best = DecomposeQuery(q.query, dopts);
  if (best.ok()) PrintDecomposition(q.query, best.ValueOrDie());

  std::printf("\nall feasible pivots:\n");
  SgqEngine engine(ds.graph.get(), ds.space.get(), &ds.library);
  for (int pivot : q.query.TargetNodes()) {
    auto d = DecomposeQueryForPivot(q.query, pivot, dopts);
    if (!d.ok()) {
      std::printf("  pivot %d: infeasible\n", pivot);
      continue;
    }
    PrintDecomposition(q.query, d.ValueOrDie());
    EngineOptions options;
    options.k = 50;
    options.dedup = DedupMode::kExactState;
    options.matches_per_target = 8;
    StopWatch watch;
    auto result = engine.QueryDecomposed(q.query, d.ValueOrDie(), options);
    if (result.ok()) {
      std::vector<NodeId> answers =
          ExtractAnswers(result.ValueOrDie().matches,
                         result.ValueOrDie().decomposition, q.answer_node);
      Prf prf = ComputePrf(answers, q.gold);
      std::printf("    -> %zu answers, recall %.2f, %.1f ms\n\n",
                  answers.size(), prf.recall, watch.ElapsedMillis());
    }
  }
  return 0;
}
