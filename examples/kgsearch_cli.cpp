// kgsearch_cli: run semantic-guided queries against a knowledge graph on
// disk, end to end from the shell — a thin shell over the public API
// (KgSession): argument parsing here, everything else (graph loading,
// TransE training, query-text parsing, execution) in src/api.
//
// Usage:
//   kgsearch_cli --graph kg.nt|kg.tsv [--space space.txt] [--library lib.tsv]
//                [--train-transe] [--k 10] [--tau 0.8] [--nhat 4]
//                [--time-bound-ms T] [--deadline-ms D] [--json]
//                --query "?Automobile product Germany"
//   kgsearch_cli save --graph kg.nt [--space f] [--library f] [--train-transe]
//                     --snapshot kg.kgpack
//   kgsearch_cli load --snapshot kg.kgpack [query flags] --query "..."
//
// `save` parses (and, without --space, TransE-trains) a dataset once and
// writes a kgpack snapshot; `load` serves queries from such a snapshot with
// a millisecond cold start — no parsing, no retraining. Passing a .kgpack
// file directly to --graph takes the same fast path.
//
// The query syntax is the api/query_text grammar: edges separated by ';',
// each edge "node predicate node", '?'-prefixed tokens are target nodes
// keyed by type, other tokens are specific entities. Example chain:
//   "?Automobile engine ?Device; ?Device made_in Germany"
//
// Without --space, predicate vectors are trained with TransE on the loaded
// graph (--train-transe forces retraining even when --space is given).
// With --json the raw wire-protocol response document is printed instead
// of the human-readable answer table.
//
// --deadline-ms D is the serving stack's hard per-request wall: a query
// that cannot finish inside D milliseconds aborts with DeadlineExceeded
// (exit code 1) instead of running on. It composes with --time-bound-ms,
// which is the paper's soft budget (graceful approximate answers).
#include <charconv>
#include <cstdio>
#include <string>

#include "api/session.h"

using namespace kgsearch;

namespace {

enum class CliCommand {
  kQuery,  ///< the default: load flags + --query
  kSave,   ///< build a dataset, write a kgpack snapshot, exit
  kLoad,   ///< query a kgpack snapshot (alias for --graph FILE.kgpack)
};

struct CliOptions {
  CliCommand command = CliCommand::kQuery;
  DatasetLoadOptions load;
  std::string snapshot_path;
  std::string query_text;
  bool json = false;
  size_t k = 10;
  double tau = 0.8;
  size_t n_hat = 4;
  int64_t time_bound_ms = 0;  // 0 = optimal SGQ, else TBQ
  int64_t deadline_ms = 0;    // 0 = no hard per-request deadline
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --graph FILE [--space FILE] [--library FILE]\n"
               "          [--train-transe] [--k N] [--tau X] [--nhat N]\n"
               "          [--time-bound-ms T] [--deadline-ms D] [--json]\n"
               "          --query \"?Type pred Name\"\n"
               "   or: %s save --graph FILE [--space FILE] [--library FILE]\n"
               "          [--train-transe] --snapshot OUT.kgpack\n"
               "   or: %s load --snapshot FILE.kgpack [query flags]\n"
               "          --query \"?Type pred Name\"\n",
               argv0, argv0, argv0);
  return 2;
}

/// Parses the whole string as a number; malformed flag values are a
/// Status, not an uncaught std::sto* exception.
template <typename T>
Result<T> ParseNumber(std::string_view flag, const std::string& value) {
  T out{};
  auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Status::InvalidArgument(std::string(flag) +
                                   ": invalid number '" + value + "'");
  }
  return out;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opts;
  int first_flag = 1;
  if (argc > 1 && argv[1][0] != '-') {
    std::string_view command = argv[1];
    if (command == "save") {
      opts.command = CliCommand::kSave;
    } else if (command == "load") {
      opts.command = CliCommand::kLoad;
    } else {
      return Status::InvalidArgument("unknown command: " +
                                     std::string(command));
    }
    first_flag = 2;
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(std::string(arg) + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--graph") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.load.graph_path = v.ValueOrDie();
    } else if (arg == "--space") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.load.space_path = v.ValueOrDie();
    } else if (arg == "--library") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.load.library_path = v.ValueOrDie();
    } else if (arg == "--query") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.query_text = v.ValueOrDie();
    } else if (arg == "--snapshot") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.snapshot_path = v.ValueOrDie();
    } else if (arg == "--train-transe") {
      opts.load.train_transe = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--k") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      auto n = ParseNumber<size_t>(arg, v.ValueOrDie());
      KG_RETURN_NOT_OK(n.status());
      opts.k = n.ValueOrDie();
    } else if (arg == "--tau") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      auto n = ParseNumber<double>(arg, v.ValueOrDie());
      KG_RETURN_NOT_OK(n.status());
      opts.tau = n.ValueOrDie();
    } else if (arg == "--nhat") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      auto n = ParseNumber<size_t>(arg, v.ValueOrDie());
      KG_RETURN_NOT_OK(n.status());
      opts.n_hat = n.ValueOrDie();
    } else if (arg == "--time-bound-ms") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      auto n = ParseNumber<int64_t>(arg, v.ValueOrDie());
      KG_RETURN_NOT_OK(n.status());
      opts.time_bound_ms = n.ValueOrDie();
    } else if (arg == "--deadline-ms") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      auto n = ParseNumber<int64_t>(arg, v.ValueOrDie());
      KG_RETURN_NOT_OK(n.status());
      if (n.ValueOrDie() < 0) {
        return Status::InvalidArgument("--deadline-ms must be >= 0");
      }
      opts.deadline_ms = n.ValueOrDie();
    } else {
      return Status::InvalidArgument("unknown flag: " + std::string(arg));
    }
  }
  switch (opts.command) {
    case CliCommand::kSave:
      if (opts.load.graph_path.empty() || opts.snapshot_path.empty()) {
        return Status::InvalidArgument(
            "save needs --graph and --snapshot");
      }
      break;
    case CliCommand::kLoad:
      if (opts.snapshot_path.empty() || opts.query_text.empty()) {
        return Status::InvalidArgument(
            "load needs --snapshot and --query");
      }
      if (!opts.load.graph_path.empty()) {
        return Status::InvalidArgument(
            "load reads the graph from --snapshot; drop --graph");
      }
      // Route the snapshot through the kgpack fast path. Leftover
      // --space/--library/--train-transe flags are NOT silently dropped:
      // KgSession::LoadDataset rejects them with a precise error, since a
      // snapshot bundles its own space and library.
      opts.load.graph_path = opts.snapshot_path;
      break;
    case CliCommand::kQuery:
      if (opts.load.graph_path.empty() || opts.query_text.empty()) {
        return Status::InvalidArgument("--graph and --query are required");
      }
      if (!opts.snapshot_path.empty()) {
        return Status::InvalidArgument(
            "--snapshot is only for the save/load commands");
      }
      break;
  }
  return opts;
}

int RunSave(const CliOptions& opts) {
  KgSession session;
  if (opts.load.space_path.empty() || opts.load.train_transe) {
    std::fprintf(stderr, "training TransE on the loaded graph...\n");
  }
  StopWatch build_watch;
  Status loaded = session.LoadDataset("default", opts.load);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  const double build_ms = build_watch.ElapsedMillis();
  StopWatch save_watch;
  Status saved = session.SaveDataset("default", opts.snapshot_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot save snapshot: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  for (const DatasetInfo& info : session.ListDatasets()) {
    std::fprintf(stderr,
                 "saved %zu nodes, %zu edges, %zu predicates to %s "
                 "(build %.1f ms, save %.1f ms)\n",
                 info.nodes, info.edges, info.predicates,
                 opts.snapshot_path.c_str(), build_ms,
                 save_watch.ElapsedMillis());
  }
  return 0;
}

int RunCli(const CliOptions& opts) {
  KgSession session;
  const bool from_snapshot =
      opts.command == CliCommand::kLoad ||
      opts.load.graph_path.ends_with(".kgpack");
  if (!from_snapshot &&
      (opts.load.space_path.empty() || opts.load.train_transe)) {
    std::fprintf(stderr, "training TransE on the loaded graph...\n");
  }
  StopWatch load_watch;
  Status loaded = session.LoadDataset("default", opts.load);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  for (const DatasetInfo& info : session.ListDatasets()) {
    std::fprintf(stderr,
                 "loaded %zu nodes, %zu edges, %zu predicates in %.1f ms\n",
                 info.nodes, info.edges, info.predicates,
                 load_watch.ElapsedMillis());
  }

  QueryRequest request;
  request.dataset = "default";
  request.query_text = opts.query_text;
  request.options.k = opts.k;
  request.options.tau = opts.tau;
  request.options.n_hat = opts.n_hat;
  if (opts.time_bound_ms > 0) {
    request.mode = QueryMode::kTbq;
    request.options.time_bound_micros = opts.time_bound_ms * 1000;
  }
  request.deadline_ms = opts.deadline_ms;

  Result<QueryResponse> result = session.Query(request);
  if (opts.json) {
    // The wire path: print the protocol response (or error) document;
    // the exit code still reflects the outcome.
    std::printf("%s\n", result.ok()
                            ? EncodeQueryResponseJson(result.ValueOrDie())
                                  .c_str()
                            : EncodeErrorJson(result.status()).c_str());
    return result.ok() ? 0 : 1;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const QueryResponse& response = result.ValueOrDie();
  if (response.stopped_by_time) {
    std::fprintf(stderr, "(approximate: stopped by the time bound)\n");
  }
  for (const AnswerDto& answer : response.answers) {
    std::printf("%-24s %-16s score=%.3f\n", answer.name.c_str(),
                answer.type.c_str(), answer.score);
  }
  std::fprintf(stderr,
               "%zu answers in %.2f ms (parse %.2f ms, engine %.2f ms; "
               "%llu sub-queries, %llu expansions)\n",
               response.answers.size(), response.timings.total_ms,
               response.timings.parse_ms, response.timings.engine_ms,
               static_cast<unsigned long long>(response.stats.subqueries),
               static_cast<unsigned long long>(response.stats.expanded));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<CliOptions> opts = ParseArgs(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return Usage(argv[0]);
  }
  if (opts.ValueOrDie().command == CliCommand::kSave) {
    return RunSave(opts.ValueOrDie());
  }
  return RunCli(opts.ValueOrDie());
}
