// kgsearch_cli: run semantic-guided queries against a knowledge graph on
// disk, end to end from the shell.
//
// Usage:
//   kgsearch_cli --graph kg.nt|kg.tsv [--space space.txt] [--library lib.tsv]
//                [--train-transe] [--k 10] [--tau 0.8] [--nhat 4]
//                [--time-bound-ms T] --query "?Automobile product Germany"
//
// The query syntax is a list of edges separated by ';':
//   "?Type predicate Name"          target --predicate-- specific
//   "?Type1 predicate ?Type2"       target --predicate-- target (chains)
//   "Name predicate ?Type"          specific --predicate-- target
// The first target node is the answer node. Example chain:
//   "?Automobile engine ?Device; ?Device made_in Germany"
//
// Without --space, predicate vectors are trained with TransE on the loaded
// graph (--train-transe forces retraining even when --space is given).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/engine.h"
#include "core/time_bounded.h"
#include "embedding/transe.h"
#include "kg/triple_io.h"
#include "util/string_util.h"

using namespace kgsearch;

namespace {

struct CliOptions {
  std::string graph_path;
  std::string space_path;
  std::string library_path;
  std::string query_text;
  bool train_transe = false;
  size_t k = 10;
  double tau = 0.8;
  size_t n_hat = 4;
  int64_t time_bound_ms = 0;  // 0 = optimal SGQ, else TBQ
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --graph FILE [--space FILE] [--library FILE]\n"
               "          [--train-transe] [--k N] [--tau X] [--nhat N]\n"
               "          [--time-bound-ms T] --query \"?Type pred Name\"\n",
               argv0);
  return 2;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(std::string(arg) + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--graph") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.graph_path = v.ValueOrDie();
    } else if (arg == "--space") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.space_path = v.ValueOrDie();
    } else if (arg == "--library") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.library_path = v.ValueOrDie();
    } else if (arg == "--query") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.query_text = v.ValueOrDie();
    } else if (arg == "--train-transe") {
      opts.train_transe = true;
    } else if (arg == "--k") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.k = static_cast<size_t>(std::stoul(v.ValueOrDie()));
    } else if (arg == "--tau") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.tau = std::stod(v.ValueOrDie());
    } else if (arg == "--nhat") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.n_hat = static_cast<size_t>(std::stoul(v.ValueOrDie()));
    } else if (arg == "--time-bound-ms") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.time_bound_ms = std::stoll(v.ValueOrDie());
    } else {
      return Status::InvalidArgument("unknown flag: " + std::string(arg));
    }
  }
  if (opts.graph_path.empty() || opts.query_text.empty()) {
    return Status::InvalidArgument("--graph and --query are required");
  }
  return opts;
}

/// Parses the edge-list query syntax into a QueryGraph. Node tokens
/// starting with '?' are target nodes keyed by type; others are specific
/// nodes (type is inferred from the graph when known).
Result<QueryGraph> ParseQuery(const std::string& text,
                              const KnowledgeGraph& graph) {
  QueryGraph query;
  std::map<std::string, int> nodes;  // token -> query node index
  auto node_of = [&](const std::string& token) -> Result<int> {
    auto it = nodes.find(token);
    if (it != nodes.end()) return it->second;
    int idx;
    if (!token.empty() && token[0] == '?') {
      idx = query.AddTargetNode(token.substr(1));
    } else {
      NodeId u = graph.FindNode(token);
      std::string type = "Thing";
      if (u != kInvalidNode) type = std::string(graph.NodeTypeName(u));
      idx = query.AddSpecificNode(type, token);
    }
    nodes.emplace(token, idx);
    return idx;
  };

  for (const std::string& part : Split(text, ';')) {
    std::string_view edge = Trim(part);
    if (edge.empty()) continue;
    std::vector<std::string> tokens;
    for (const std::string& t : Split(edge, ' ')) {
      if (!Trim(t).empty()) tokens.emplace_back(Trim(t));
    }
    if (tokens.size() != 3) {
      return Status::ParseError("each edge needs 'node predicate node': " +
                                std::string(edge));
    }
    Result<int> from = node_of(tokens[0]);
    KG_RETURN_NOT_OK(from.status());
    Result<int> to = node_of(tokens[2]);
    KG_RETURN_NOT_OK(to.status());
    query.AddEdge(from.ValueOrDie(), to.ValueOrDie(), tokens[1]);
  }
  KG_RETURN_NOT_OK(query.Validate());
  return query;
}

int RunCli(const CliOptions& opts) {
  // ---- load graph ----
  auto text = ReadFileToString(opts.graph_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<KnowledgeGraph>> graph_result =
      EndsWith(opts.graph_path, ".tsv")
          ? ParseTsvTriples(text.ValueOrDie())
          : ParseNTriples(text.ValueOrDie());
  if (!graph_result.ok()) {
    std::fprintf(stderr, "cannot parse graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const KnowledgeGraph& graph = *graph_result.ValueOrDie();
  std::fprintf(stderr, "loaded %zu nodes, %zu edges, %zu predicates\n",
               graph.NumNodes(), graph.NumEdges(), graph.NumPredicates());

  // ---- predicate space: load or train ----
  std::unique_ptr<PredicateSpace> space;
  if (!opts.space_path.empty() && !opts.train_transe) {
    auto stext = ReadFileToString(opts.space_path);
    if (!stext.ok()) {
      std::fprintf(stderr, "%s\n", stext.status().ToString().c_str());
      return 1;
    }
    auto parsed = PredicateSpace::Deserialize(stext.ValueOrDie(), &graph);
    if (!parsed.ok()) {
      std::fprintf(stderr, "cannot parse space: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    space = std::make_unique<PredicateSpace>(std::move(parsed).ValueOrDie());
  } else {
    std::fprintf(stderr, "training TransE on the loaded graph...\n");
    TransEConfig config;
    config.dim = 48;
    config.epochs = 60;
    auto emb = TrainTransE(graph, config);
    if (!emb.ok()) {
      std::fprintf(stderr, "%s\n", emb.status().ToString().c_str());
      return 1;
    }
    space = std::make_unique<PredicateSpace>(
        PredicateSpace::FromTransE(graph, emb.ValueOrDie()));
  }

  // ---- transformation library ----
  TransformationLibrary library;
  if (!opts.library_path.empty()) {
    auto ltext = ReadFileToString(opts.library_path);
    if (!ltext.ok()) {
      std::fprintf(stderr, "%s\n", ltext.status().ToString().c_str());
      return 1;
    }
    auto parsed = TransformationLibrary::Deserialize(ltext.ValueOrDie());
    if (!parsed.ok()) {
      std::fprintf(stderr, "cannot parse library: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    library = std::move(parsed).ValueOrDie();
  }

  // ---- query ----
  auto query = ParseQuery(opts.query_text, graph);
  if (!query.ok()) {
    std::fprintf(stderr, "bad query: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  auto print_matches = [&](const std::vector<FinalMatch>& matches,
                           double elapsed_ms) {
    for (const FinalMatch& m : matches) {
      std::printf("%-24s score=%.3f\n",
                  std::string(graph.NodeName(m.pivot_match)).c_str(),
                  m.score);
      for (const PathMatch& path : m.parts) {
        std::printf("  pss=%.3f  ", path.pss);
        for (size_t i = 0; i < path.predicates.size(); ++i) {
          std::printf("%s --%s--> ",
                      std::string(graph.NodeName(path.nodes[i])).c_str(),
                      std::string(graph.PredicateName(path.predicates[i]))
                          .c_str());
        }
        std::printf("%s\n",
                    std::string(graph.NodeName(path.nodes.back())).c_str());
      }
    }
    std::fprintf(stderr, "%zu matches in %.2f ms\n", matches.size(),
                 elapsed_ms);
  };

  if (opts.time_bound_ms > 0) {
    TbqEngine engine(&graph, space.get(), &library);
    TimeBoundedOptions toptions;
    toptions.k = opts.k;
    toptions.tau = opts.tau;
    toptions.n_hat = opts.n_hat;
    toptions.time_bound_micros = opts.time_bound_ms * 1000;
    auto result = engine.Query(query.ValueOrDie(), toptions);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (result.ValueOrDie().stopped_by_time) {
      std::fprintf(stderr, "(approximate: stopped by the time bound)\n");
    }
    print_matches(result.ValueOrDie().matches,
                  result.ValueOrDie().elapsed_ms);
  } else {
    SgqEngine engine(&graph, space.get(), &library);
    EngineOptions options;
    options.k = opts.k;
    options.tau = opts.tau;
    options.n_hat = opts.n_hat;
    auto result = engine.Query(query.ValueOrDie(), options);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    print_matches(result.ValueOrDie().matches,
                  result.ValueOrDie().elapsed_ms);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<CliOptions> opts = ParseArgs(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return Usage(argv[0]);
  }
  return RunCli(opts.ValueOrDie());
}
