// kgsearch_serve: serve a knowledge graph over TCP, end to end from the
// shell — a thin shell over src/server (TcpServer) and the public API
// (KgSession). Argument parsing and signal handling live here; sockets,
// framing, admission, and execution live in the libraries.
//
// Usage:
//   kgsearch_serve --graph kg.nt|kg.tsv|kg.kgpack [--space f] [--library f]
//                  [--train-transe] [--dataset NAME]
//                  [--host 127.0.0.1] [--port 0] [--threads N]
//                  [--max-in-flight N] [--max-queued N] [--honor-priority]
//                  [--max-connections N]
//
// The wire protocol is newline-delimited JSON: one QueryRequest document
// per line in, one QueryResponse (or error) document per line out, plus
// "GET /healthz" and "GET /stats[/<dataset>]" verb lines. Try it with:
//   printf 'GET /healthz\n' | nc 127.0.0.1 <port>
//
// By default wire clients are untrusted: "priority":"high" is clamped to
// normal so self-promoted requests cannot bypass the admission limits
// (--honor-priority restores the trusting in-process behavior). --port 0
// binds an ephemeral port and prints the resolved one. SIGINT/SIGTERM
// stop the server gracefully: in-flight queries are cancelled, every
// connection is closed, all threads joined.
#include <charconv>
#include <csignal>
#include <cstdio>
#include <string>
#include <type_traits>

#include "api/session.h"
#include "server/tcp_server.h"

#include <poll.h>

using namespace kgsearch;

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

struct ServeOptions {
  DatasetLoadOptions load;
  std::string dataset = "default";
  TcpServerOptions server;
  KgSessionOptions session;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --graph FILE [--space FILE] [--library FILE]\n"
      "          [--train-transe] [--dataset NAME] [--host ADDR]\n"
      "          [--port N] [--threads N] [--max-in-flight N]\n"
      "          [--max-queued N] [--honor-priority] [--max-connections N]\n",
      argv0);
  return 2;
}

/// Parses the whole string as a number; malformed flag values are a
/// Status, not an uncaught std::sto* exception.
template <typename T>
Result<T> ParseNumber(std::string_view flag, const std::string& value) {
  T out{};
  auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Status::InvalidArgument(std::string(flag) +
                                   ": invalid number '" + value + "'");
  }
  return out;
}

Result<ServeOptions> ParseArgs(int argc, char** argv) {
  ServeOptions opts;
  // Serving defaults differ from the in-process defaults: bounded
  // admission (so overload rejects instead of queueing without limit) and
  // clamped wire priority (so clients cannot self-promote past it).
  opts.session.max_in_flight = 8;
  opts.session.max_queued = 32;
  opts.session.honor_request_priority = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(std::string(arg) + " needs a value");
      }
      return std::string(argv[++i]);
    };
    auto next_number = [&](auto* out) -> Status {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      auto n = ParseNumber<std::decay_t<decltype(*out)>>(arg,
                                                         v.ValueOrDie());
      KG_RETURN_NOT_OK(n.status());
      *out = n.ValueOrDie();
      return Status::OK();
    };
    if (arg == "--graph") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.load.graph_path = v.ValueOrDie();
    } else if (arg == "--space") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.load.space_path = v.ValueOrDie();
    } else if (arg == "--library") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.load.library_path = v.ValueOrDie();
    } else if (arg == "--dataset") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.dataset = v.ValueOrDie();
    } else if (arg == "--host") {
      auto v = next();
      KG_RETURN_NOT_OK(v.status());
      opts.server.host = v.ValueOrDie();
    } else if (arg == "--train-transe") {
      opts.load.train_transe = true;
    } else if (arg == "--honor-priority") {
      opts.session.honor_request_priority = true;
    } else if (arg == "--port") {
      KG_RETURN_NOT_OK(next_number(&opts.server.port));
    } else if (arg == "--threads") {
      KG_RETURN_NOT_OK(next_number(&opts.session.num_threads));
    } else if (arg == "--max-in-flight") {
      KG_RETURN_NOT_OK(next_number(&opts.session.max_in_flight));
    } else if (arg == "--max-queued") {
      KG_RETURN_NOT_OK(next_number(&opts.session.max_queued));
    } else if (arg == "--max-connections") {
      KG_RETURN_NOT_OK(next_number(&opts.server.max_connections));
    } else {
      return Status::InvalidArgument("unknown flag: " + std::string(arg));
    }
  }
  if (opts.load.graph_path.empty()) {
    return Status::InvalidArgument("--graph is required");
  }
  return opts;
}

int Serve(const ServeOptions& opts) {
  KgSession session(opts.session);
  const bool from_snapshot = opts.load.graph_path.ends_with(".kgpack");
  if (!from_snapshot &&
      (opts.load.space_path.empty() || opts.load.train_transe)) {
    std::fprintf(stderr, "training TransE on the loaded graph...\n");
  }
  StopWatch load_watch;
  Status loaded = session.LoadDataset(opts.dataset, opts.load);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  for (const DatasetInfo& info : session.ListDatasets()) {
    std::fprintf(stderr,
                 "loaded %zu nodes, %zu edges, %zu predicates in %.1f ms\n",
                 info.nodes, info.edges, info.predicates,
                 load_watch.ElapsedMillis());
  }

  TcpServer server(&session, opts.server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serving dataset '%s' on %s:%u (threads=%zu, "
               "max_in_flight=%zu, max_queued=%zu)\n",
               opts.dataset.c_str(), opts.server.host.c_str(),
               static_cast<unsigned>(server.port()),
               session.num_threads(), opts.session.max_in_flight,
               opts.session.max_queued);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop_requested) {
    // poll() with no fds is an interruptible sleep: EINTR on a signal,
    // so shutdown latency is bounded by the signal, not the timeout.
    ::poll(nullptr, 0, 200);
  }
  std::fprintf(stderr, "stopping: cancelling in-flight queries...\n");
  server.Stop();
  std::fprintf(stderr, "served %llu connections\n",
               static_cast<unsigned long long>(server.connections_accepted()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<ServeOptions> opts = ParseArgs(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return Usage(argv[0]);
  }
  return Serve(opts.ValueOrDie());
}
