// Quickstart: build a small knowledge graph, define predicate semantics,
// and run a semantic-guided top-k query.
//
//   $ ./quickstart
//
// The example mirrors the paper's running example (Figure 2): a query edge
// "product" must match the semantically equivalent paths assembly and
// assembly→country, while rejecting designer→nationality.
#include <cstdio>

#include "core/engine.h"
#include "embedding/predicate_space.h"
#include "kg/graph.h"
#include "match/transformation_library.h"

using namespace kgsearch;

int main() {
  // 1. Build the knowledge graph (Definition 1): typed, named entities and
  //    predicate edges.
  KnowledgeGraph graph;
  NodeId audi = graph.AddNode("Audi_TT", "Automobile");
  NodeId bmw = graph.AddNode("BMW_320", "Automobile");
  NodeId kia = graph.AddNode("KIA_K5", "Automobile");
  NodeId lamando = graph.AddNode("Lamando", "Automobile");
  NodeId germany = graph.AddNode("Germany", "Country");
  NodeId regensburg = graph.AddNode("Regensburg", "City");
  NodeId vw = graph.AddNode("Volkswagen", "Company");
  NodeId schreyer = graph.AddNode("Peter_Schreyer", "Person");

  graph.AddEdge(bmw, "assembly", germany);
  graph.AddEdge(audi, "assembly", regensburg);
  graph.AddEdge(regensburg, "country", germany);
  graph.AddEdge(lamando, "manufacturer", vw);
  graph.AddEdge(vw, "location", germany);
  graph.AddEdge(kia, "designer", schreyer);
  graph.AddEdge(schreyer, "nationality", germany);
  graph.InternPredicate("product");  // the query predicate (Figure 2)
  graph.Finalize();

  // 2. Provide the predicate semantic space (Section IV-A). Real systems
  //    train TransE (see TrainTransE / PredicateSpace::FromTransE); here we
  //    write the paper's similarity bands directly as 2-D vectors.
  auto vec = [](double cosine) {
    return FloatVec{static_cast<float>(cosine),
                    static_cast<float>(std::sqrt(1.0 - cosine * cosine))};
  };
  std::vector<FloatVec> vectors(graph.NumPredicates());
  std::vector<std::string> names(graph.NumPredicates());
  auto set_vec = [&](const char* predicate, double cosine_to_product) {
    PredicateId p = graph.FindPredicate(predicate);
    vectors[p] = vec(cosine_to_product);
    names[p] = predicate;
  };
  set_vec("product", 1.0);
  set_vec("assembly", 0.98);
  set_vec("country", 0.91);
  set_vec("manufacturer", 0.93);
  set_vec("location", 0.90);
  set_vec("designer", 0.55);
  set_vec("nationality", 0.50);
  PredicateSpace space(std::move(vectors), std::move(names));

  // 3. Node-match transformations (Definition 3, Table III).
  TransformationLibrary library;
  library.AddTypeSynonym("Car", "Automobile");
  library.AddNameAbbreviation("GER", "Germany");

  // 4. Pose the query graph: ?car --product-- GER. Both the type synonym
  //    and the name abbreviation resolve through the library.
  QueryGraph query;
  int car = query.AddTargetNode("Car");
  int ger = query.AddSpecificNode("Country", "GER");
  query.AddEdge(car, ger, "product");

  // 5. Run the semantic-guided engine (Section V).
  SgqEngine engine(&graph, &space, &library);
  EngineOptions options;
  options.k = 5;
  options.tau = 0.6;   // pss threshold
  options.n_hat = 3;   // a query edge may match up to 3 hops

  Result<QueryResult> result = engine.Query(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("top-%zu answers for '?Car --product-- GER':\n", options.k);
  for (const FinalMatch& m : result.ValueOrDie().matches) {
    std::printf("  %-10s (score %.3f) via",
                std::string(graph.NodeName(m.pivot_match)).c_str(), m.score);
    const PathMatch& path = m.parts[0];
    for (size_t i = 0; i < path.predicates.size(); ++i) {
      std::printf(" %s-[%s]->%s",
                  std::string(graph.NodeName(path.nodes[i])).c_str(),
                  std::string(graph.PredicateName(path.predicates[i])).c_str(),
                  std::string(graph.NodeName(path.nodes[i + 1])).c_str());
    }
    std::printf("  (pss %.3f)\n", path.pss);
  }
  std::printf("elapsed: %.2f ms\n", result.ValueOrDie().elapsed_ms);
  return 0;
}
