// Quickstart: build a small knowledge graph, define predicate semantics,
// register it with a KgSession, and run a semantic-guided top-k query
// through the public API's text syntax.
//
//   $ ./quickstart
//
// The example mirrors the paper's running example (Figure 2): a query edge
// "product" must match the semantically equivalent paths assembly and
// assembly→country, while rejecting designer→nationality.
#include <cmath>
#include <cstdio>

#include "api/session.h"
#include "kg/graph.h"

using namespace kgsearch;

int main() {
  // 1. Build the knowledge graph (Definition 1): typed, named entities and
  //    predicate edges.
  auto graph = std::make_unique<KnowledgeGraph>();
  NodeId audi = graph->AddNode("Audi_TT", "Automobile");
  NodeId bmw = graph->AddNode("BMW_320", "Automobile");
  NodeId kia = graph->AddNode("KIA_K5", "Automobile");
  NodeId lamando = graph->AddNode("Lamando", "Automobile");
  NodeId germany = graph->AddNode("Germany", "Country");
  NodeId regensburg = graph->AddNode("Regensburg", "City");
  NodeId vw = graph->AddNode("Volkswagen", "Company");
  NodeId schreyer = graph->AddNode("Peter_Schreyer", "Person");

  graph->AddEdge(bmw, "assembly", germany);
  graph->AddEdge(audi, "assembly", regensburg);
  graph->AddEdge(regensburg, "country", germany);
  graph->AddEdge(lamando, "manufacturer", vw);
  graph->AddEdge(vw, "location", germany);
  graph->AddEdge(kia, "designer", schreyer);
  graph->AddEdge(schreyer, "nationality", germany);
  graph->InternPredicate("product");  // the query predicate (Figure 2)
  graph->Finalize();

  // 2. Provide the predicate semantic space (Section IV-A). Real systems
  //    train TransE (KgSession::LoadDataset does it for you); here we
  //    write the paper's similarity bands directly as 2-D vectors.
  auto vec = [](double cosine) {
    return FloatVec{static_cast<float>(cosine),
                    static_cast<float>(std::sqrt(1.0 - cosine * cosine))};
  };
  std::vector<FloatVec> vectors(graph->NumPredicates());
  std::vector<std::string> names(graph->NumPredicates());
  auto set_vec = [&](const char* predicate, double cosine_to_product) {
    PredicateId p = graph->FindPredicate(predicate);
    vectors[p] = vec(cosine_to_product);
    names[p] = predicate;
  };
  set_vec("product", 1.0);
  set_vec("assembly", 0.98);
  set_vec("country", 0.91);
  set_vec("manufacturer", 0.93);
  set_vec("location", 0.90);
  set_vec("designer", 0.55);
  set_vec("nationality", 0.50);
  auto space =
      std::make_unique<PredicateSpace>(std::move(vectors), std::move(names));

  // 3. Node-match transformations (Definition 3, Table III).
  TransformationLibrary library;
  library.AddTypeSynonym("Car", "Automobile");
  library.AddNameAbbreviation("GER", "Germany");

  // 4. Register everything as a named dataset of a session — the single
  //    public entry point.
  KgSession session;
  Status registered = session.RegisterDataset(
      "cars", std::move(graph), std::move(space), std::move(library));
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }

  // 5. Pose the query in the text syntax: ?Car --product-- GER. Both the
  //    type synonym and the name abbreviation resolve through the library.
  QueryRequest request;
  request.dataset = "cars";
  request.query_text = "?Car product GER";
  request.options.k = 5;
  request.options.tau = 0.6;   // pss threshold
  request.options.n_hat = 3;   // a query edge may match up to 3 hops

  Result<QueryResponse> result = session.Query(request);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const QueryResponse& response = result.ValueOrDie();
  std::printf("top-%zu answers for '%s':\n", request.options.k,
              request.query_text.c_str());
  for (const AnswerDto& answer : response.answers) {
    std::printf("  %-10s (%s, score %.3f)\n", answer.name.c_str(),
                answer.type.c_str(), answer.score);
  }
  std::printf("elapsed: %.2f ms (%llu sub-queries)\n",
              response.timings.total_ms,
              static_cast<unsigned long long>(response.stats.subqueries));

  // 6. The same request is wire-ready: the JSON round-trip produces an
  //    identical execution.
  std::printf("\nwire form:\n%s\n",
              session.QueryJson(EncodeQueryRequestJson(request)).c_str());
  return 0;
}
