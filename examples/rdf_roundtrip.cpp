// RDF I/O: export a generated knowledge graph to N-Triples, parse it back
// with the hand-rolled parser, and train a TransE predicate space on the
// re-loaded graph — the full offline pipeline of Figure 5's "offline
// operation" box.
//
//   $ ./rdf_roundtrip [output.nt]
#include <cstdio>

#include "embedding/predicate_space.h"
#include "embedding/transe.h"
#include "gen/car_domain.h"
#include "kg/triple_io.h"

using namespace kgsearch;

int main(int argc, char** argv) {
  auto dataset = MakeCarDomainDataset(120, 117);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const KnowledgeGraph& original = *dataset.ValueOrDie()->graph;

  // Serialize to N-Triples (optionally to a file).
  std::string ntriples = WriteNTriples(original);
  std::printf("serialized %zu nodes / %zu edges to %zu bytes of N-Triples\n",
              original.NumNodes(), original.NumEdges(), ntriples.size());
  if (argc > 1) {
    Status s = WriteStringToFile(argv[1], ntriples);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", argv[1]);
  }

  // Parse back.
  auto parsed = ParseNTriples(ntriples);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const KnowledgeGraph& graph = *parsed.ValueOrDie();
  std::printf("parsed back: %zu nodes / %zu edges / %zu predicates\n",
              graph.NumNodes(), graph.NumEdges(), graph.NumPredicates());

  // Train TransE on the re-loaded graph and inspect the learned space.
  TransEConfig config;
  config.dim = 32;
  config.epochs = 40;
  config.learning_rate = 0.02;
  std::printf("training TransE (dim=%zu, %zu epochs)...\n", config.dim,
              config.epochs);
  auto embedding = TrainTransE(graph, config);
  if (!embedding.ok()) {
    std::fprintf(stderr, "%s\n", embedding.status().ToString().c_str());
    return 1;
  }
  std::printf("final epoch mean loss: %.4f\n",
              embedding.ValueOrDie().final_epoch_loss);

  PredicateSpace space =
      PredicateSpace::FromTransE(graph, embedding.ValueOrDie());
  PredicateId assembly = graph.FindPredicate("assembly");
  if (assembly != kInvalidSymbol) {
    std::printf("\nlearned neighbours of 'assembly':\n");
    for (const SimilarPredicate& s : space.TopSimilar(assembly, 5)) {
      std::printf("  sim(assembly, %-16s) = %+.3f\n",
                  std::string(graph.PredicateName(s.predicate)).c_str(),
                  s.similarity);
    }
  }
  return 0;
}
