// Serving demo: one KgSession multiplexing a burst of concurrent SGQ and
// TBQ requests over its shared thread pool, then reporting the dataset's
// serving counters — the interactive-engine deployment shape the paper
// targets (many users, bounded response times), now entirely behind the
// public API facade.
//
//   $ ./example_service_demo [--threads N] [--clients C] [--rounds R]
//                            [--deadline-ms D] [--max-in-flight M]
//                            [--max-queued Q]
//
// Each client thread behaves like one user session: it fires the four Q117
// query variants synchronously, plus an async time-bounded variant, and
// checks every answer against the single-user reference. With
// --deadline-ms every request carries a hard per-request deadline, and
// with --max-in-flight/--max-queued the dataset's service sheds overload
// with ResourceExhausted instead of queueing it — the demo's counters then
// show the rejected/deadline-exceeded traffic alongside the served
// traffic, and a request is only counted as a mismatch when it *succeeds*
// with the wrong answer.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "api/session.h"
#include "gen/car_domain.h"

using namespace kgsearch;

namespace {

/// The Q117 request in public-API form; variants per MakeQ117Variant.
QueryRequest Q117Request(int variant, QueryMode mode) {
  QueryRequest request;
  request.dataset = "car";
  request.mode = mode;
  request.query_graph = MakeQ117Variant(variant);
  request.options.k = 10;
  if (mode == QueryMode::kTbq) {
    request.options.time_bound_micros = 20'000;  // 20ms interactive budget
  }
  return request;
}

std::vector<uint32_t> AnswerIds(const QueryResponse& response) {
  std::vector<uint32_t> out;
  out.reserve(response.answers.size());
  for (const AnswerDto& a : response.answers) out.push_back(a.id);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = std::thread::hardware_concurrency();
  size_t clients = 8;
  size_t rounds = 3;
  int64_t deadline_ms = 0;
  size_t max_in_flight = 0;
  size_t max_queued = 0;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      clients = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      rounds = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      deadline_ms = std::atoll(argv[i + 1]);
      if (deadline_ms < 0) {
        std::fprintf(stderr, "--deadline-ms must be >= 0\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-in-flight") == 0) {
      max_in_flight = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      max_queued = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
  }

  auto dataset = MakeCarDomainDataset(300, 117);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  KgSessionOptions soptions;
  soptions.num_threads = threads;
  soptions.max_in_flight = max_in_flight;
  soptions.max_queued = max_queued;
  KgSession session(soptions);
  GeneratedDataset& ds = *dataset.ValueOrDie();
  Status registered =
      session.RegisterDataset("car", std::move(ds.graph), std::move(ds.space),
                              std::move(ds.library));
  if (!registered.ok()) {
    std::fprintf(stderr, "register: %s\n", registered.ToString().c_str());
    return 1;
  }
  for (const DatasetInfo& info : session.ListDatasets()) {
    std::printf("dataset '%s': %zu nodes, %zu edges\n", info.name.c_str(),
                info.nodes, info.edges);
  }
  std::printf("session up: %zu pool threads, %zu clients x %zu rounds\n\n",
              session.num_threads(), clients, rounds);

  // Single-user reference answers for the four query variants.
  std::vector<std::vector<uint32_t>> reference;
  for (int variant = 1; variant <= 4; ++variant) {
    auto r = session.Query(Q117Request(variant, QueryMode::kSgq));
    if (!r.ok()) {
      std::fprintf(stderr, "variant %d: %s\n", variant,
                   r.status().ToString().c_str());
      return 1;
    }
    const QueryResponse& response = r.ValueOrDie();
    reference.push_back(AnswerIds(response));
    std::printf("Q117 variant %d: %zu answers, top answer %s\n", variant,
                response.answers.size(),
                response.answers.empty() ? "-"
                                         : response.answers[0].name.c_str());
  }

  // Every client request carries the configured deadline; a shed request
  // (rejected by admission or expired) is legitimate overload behavior,
  // not a correctness failure.
  auto make_request = [deadline_ms](int variant, QueryMode mode) {
    QueryRequest request = Q117Request(variant, mode);
    request.deadline_ms = deadline_ms;
    return request;
  };
  auto is_shed = [](const Status& status) {
    return status.code() == StatusCode::kResourceExhausted ||
           status.code() == StatusCode::kDeadlineExceeded;
  };

  std::vector<std::thread> sessions;
  std::vector<size_t> mismatches(clients, 0);
  std::vector<size_t> shed(clients, 0);
  std::vector<size_t> errors(clients, 0);
  std::vector<size_t> tbq_answer_counts(clients, 0);
  for (size_t c = 0; c < clients; ++c) {
    sessions.emplace_back([&, c] {
      for (size_t round = 0; round < rounds; ++round) {
        // An async TBQ request rides along with the synchronous SGQ traffic.
        auto tbq_future =
            session.Submit(make_request(3, QueryMode::kTbq));
        for (int variant = 1; variant <= 4; ++variant) {
          auto r = session.Query(make_request(variant, QueryMode::kSgq));
          if (r.ok()) {
            if (AnswerIds(r.ValueOrDie()) !=
                reference[static_cast<size_t>(variant - 1)]) {
              ++mismatches[c];
            }
          } else if (is_shed(r.status())) {
            ++shed[c];
          } else {
            ++errors[c];
          }
        }
        auto tbq = tbq_future.get();
        if (tbq.ok()) {
          tbq_answer_counts[c] += tbq.ValueOrDie().answers.size();
        } else if (is_shed(tbq.status())) {
          ++shed[c];
        } else {
          ++errors[c];
        }
      }
    });
  }
  for (auto& s : sessions) s.join();

  size_t total_mismatches = 0, total_shed = 0, total_errors = 0;
  for (size_t m : mismatches) total_mismatches += m;
  for (size_t s : shed) total_shed += s;
  for (size_t e : errors) total_errors += e;
  std::printf("\nall sessions done; answer mismatches vs. reference: %zu "
              "(shed by overload control: %zu, other errors: %zu)\n",
              total_mismatches, total_shed, total_errors);

  auto stats_result = session.Stats("car");
  if (!stats_result.ok()) {
    std::fprintf(stderr, "stats: %s\n",
                 stats_result.status().ToString().c_str());
    return 1;
  }
  const ServiceStatsSnapshot stats = stats_result.ValueOrDie();
  std::printf("\n-- serving counters (dataset 'car') --\n");
  std::printf("queries total      %llu (SGQ %llu, TBQ %llu; failed %llu)\n",
              static_cast<unsigned long long>(stats.queries_total),
              static_cast<unsigned long long>(stats.sgq_queries),
              static_cast<unsigned long long>(stats.tbq_queries),
              static_cast<unsigned long long>(stats.queries_failed));
  std::printf("overload control   rejected %llu, deadline-exceeded %llu, "
              "cancelled %llu\n",
              static_cast<unsigned long long>(stats.queries_rejected),
              static_cast<unsigned long long>(
                  stats.queries_deadline_exceeded),
              static_cast<unsigned long long>(stats.queries_cancelled));
  std::printf("qps (lifetime avg) %.1f over %.2fs uptime\n", stats.qps,
              stats.uptime_seconds);
  std::printf("latency            p50 %.2fms  p95 %.2fms  max %.2fms\n",
              stats.latency_p50_ms, stats.latency_p95_ms,
              stats.latency_max_ms);
  std::printf("decomposition cache %.0f%% hit rate (%llu hits)\n",
              100.0 * stats.decomposition_cache_hit_rate(),
              static_cast<unsigned long long>(stats.decomposition_cache_hits));
  std::printf("matcher cache       %.0f%% hit rate (%llu hits)\n",
              100.0 * stats.matcher_cache_hit_rate(),
              static_cast<unsigned long long>(stats.matcher_cache_hits));
  std::printf("session queue      %zu, in flight %zu\n",
              session.queue_depth(), stats.in_flight);
  return total_mismatches == 0 && total_errors == 0 ? 0 : 1;
}
