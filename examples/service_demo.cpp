// Serving demo: one QueryService multiplexing a burst of concurrent SGQ
// and TBQ queries over a shared thread pool, then reporting its counters —
// the interactive-engine deployment shape the paper targets (many users,
// bounded response times).
//
//   $ ./example_service_demo [--threads N] [--clients C] [--rounds R]
//
// Each client thread behaves like one user session: it fires the four Q117
// query variants synchronously, plus an async time-bounded variant, and
// checks every answer against the single-user reference.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "gen/car_domain.h"
#include "service/query_service.h"

using namespace kgsearch;

int main(int argc, char** argv) {
  size_t threads = std::thread::hardware_concurrency();
  size_t clients = 8;
  size_t rounds = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      clients = static_cast<size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      rounds = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
  }

  auto dataset = MakeCarDomainDataset(300, 117);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const GeneratedDataset& ds = *dataset.ValueOrDie();
  std::printf("car-domain KG: %zu nodes, %zu edges\n", ds.graph->NumNodes(),
              ds.graph->NumEdges());

  QueryServiceOptions soptions;
  soptions.num_threads = threads;
  QueryService service(ds.graph.get(), ds.space.get(), &ds.library,
                       soptions);
  std::printf("service up: %zu pool threads, %zu clients x %zu rounds\n\n",
              service.num_threads(), clients, rounds);

  EngineOptions options;
  options.k = 10;

  // Single-user reference answers for the four query variants.
  std::vector<std::vector<NodeId>> reference;
  for (int variant = 1; variant <= 4; ++variant) {
    auto r = service.Query(MakeQ117Variant(variant), options);
    if (!r.ok()) {
      std::fprintf(stderr, "variant %d: %s\n", variant,
                   r.status().ToString().c_str());
      return 1;
    }
    reference.push_back(r.ValueOrDie().AnswerIds());
    std::printf("Q117 variant %d: %zu answers, top answer %s\n", variant,
                reference.back().size(),
                reference.back().empty()
                    ? "-"
                    : std::string(ds.graph->NodeName(reference.back()[0]))
                          .c_str());
  }

  TimeBoundedOptions toptions;
  toptions.k = 10;
  toptions.time_bound_micros = 20'000;  // 20ms interactive budget

  std::vector<std::thread> sessions;
  std::vector<size_t> mismatches(clients, 0);
  std::vector<size_t> tbq_answer_counts(clients, 0);
  for (size_t c = 0; c < clients; ++c) {
    sessions.emplace_back([&, c] {
      for (size_t round = 0; round < rounds; ++round) {
        // An async TBQ query rides along with the synchronous SGQ traffic.
        auto tbq_future =
            service.SubmitTimeBounded(MakeQ117Variant(3), toptions);
        for (int variant = 1; variant <= 4; ++variant) {
          auto r = service.Query(MakeQ117Variant(variant), options);
          if (!r.ok() || r.ValueOrDie().AnswerIds() !=
                             reference[static_cast<size_t>(variant - 1)]) {
            ++mismatches[c];
          }
        }
        auto tbq = tbq_future.get();
        if (tbq.ok()) {
          tbq_answer_counts[c] += tbq.ValueOrDie().matches.size();
        }
      }
    });
  }
  for (auto& s : sessions) s.join();

  size_t total_mismatches = 0;
  for (size_t m : mismatches) total_mismatches += m;
  std::printf("\nall sessions done; answer mismatches vs. reference: %zu\n",
              total_mismatches);

  const ServiceStatsSnapshot stats = service.Stats();
  std::printf("\n-- service counters --\n");
  std::printf("queries total      %llu (SGQ %llu, TBQ %llu; failed %llu)\n",
              static_cast<unsigned long long>(stats.queries_total),
              static_cast<unsigned long long>(stats.sgq_queries),
              static_cast<unsigned long long>(stats.tbq_queries),
              static_cast<unsigned long long>(stats.queries_failed));
  std::printf("qps                %.1f over %.2fs uptime\n", stats.qps,
              stats.uptime_seconds);
  std::printf("latency            p50 %.2fms  p95 %.2fms  max %.2fms\n",
              stats.latency_p50_ms, stats.latency_p95_ms,
              stats.latency_max_ms);
  std::printf("decomposition cache %.0f%% hit rate (%llu hits)\n",
              100.0 * stats.decomposition_cache_hit_rate(),
              static_cast<unsigned long long>(stats.decomposition_cache_hits));
  std::printf("matcher cache       %.0f%% hit rate (%llu hits)\n",
              100.0 * stats.matcher_cache_hit_rate(),
              static_cast<unsigned long long>(stats.matcher_cache_hits));
  std::printf("queue depth        %zu, in flight %zu\n", stats.queue_depth,
              stats.in_flight);
  return total_mismatches == 0 ? 0 : 1;
}
