// Response-time-bounded querying (Section VI): the same query under
// tightening time bounds, showing the anytime accuracy/latency trade-off
// and the convergence of Theorem 4.
//
//   $ ./time_bounded
#include <algorithm>
#include <cstdio>

#include "core/time_bounded.h"
#include "eval/metrics.h"
#include "gen/workload.h"

using namespace kgsearch;

int main() {
  auto dataset = GenerateDataset(DbpediaLikeSpec(1.0));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const GeneratedDataset& ds = *dataset.ValueOrDie();

  // A star query: subjects related to two anchors at once (Figure 3(b)).
  auto query = MakeStarQuery(ds, {{0, 0}, {1, 0}});
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  const QueryWithGold& q = query.ValueOrDie();
  std::printf("query: %s, |gold| = %zu\n", q.description.c_str(),
              q.gold.size());

  TbqEngine engine(ds.graph.get(), ds.space.get(), &ds.library);

  // Reference answers with a generous bound (M, the optimal answer set).
  TimeBoundedOptions options;
  options.k = q.gold.size();
  options.time_bound_micros = 2'000'000;
  auto reference = engine.Query(q.query, options);
  if (!reference.ok()) {
    std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
    return 1;
  }
  std::vector<NodeId> optimal = reference.ValueOrDie().AnswerIds();

  std::printf("\n%10s %10s %10s %10s %8s\n", "bound(us)", "answers",
              "Jaccard", "recall", "time(ms)");
  for (int64_t bound : {200, 500, 1000, 2000, 5000, 20000, 2000000}) {
    options.time_bound_micros = bound;
    auto result = engine.Query(q.query, options);
    if (!result.ok()) continue;
    const TimeBoundedResult& r = result.ValueOrDie();
    std::vector<NodeId> answers = r.AnswerIds();
    Prf prf = ComputePrf(answers, q.gold);
    std::printf("%10lld %10zu %10.3f %10.3f %8.2f%s\n",
                static_cast<long long>(bound), answers.size(),
                Jaccard(answers, optimal), prf.recall, r.elapsed_ms,
                r.stopped_by_time ? "  (stopped by bound)" : "");
  }
  std::printf("\nApproximate answers improve monotonically with the bound "
              "and converge to the optimal set (Theorem 4).\n");
  return 0;
}
