#include "api/protocol.h"

#include <limits>
#include <utility>

#include "util/string_util.h"

namespace kgsearch {

namespace {

/// Decodes a non-negative integer field into an unsigned type, rejecting
/// values outside T's range (no silent truncation).
template <typename T>
Status GetUnsigned(const JsonValue& object, std::string_view key,
                   T fallback, T* out) {
  Result<uint64_t> v =
      JsonGetUintOr(object, key, static_cast<uint64_t>(fallback));
  if (!v.ok()) {
    // Distinguish "present but negative/fractional" for a clearer message.
    if (object.is_object()) {
      const JsonValue* raw = object.Find(key);
      if (raw != nullptr && raw->is_number()) {
        return Status::InvalidArgument(
            "field \"" + std::string(key) +
            "\" must be a non-negative integer");
      }
    }
    return v.status();
  }
  if (v.ValueOrDie() > static_cast<uint64_t>(std::numeric_limits<T>::max())) {
    return Status::InvalidArgument("field \"" + std::string(key) +
                                   "\" is out of range");
  }
  *out = static_cast<T>(v.ValueOrDie());
  return Status::OK();
}

const char* PivotStrategyName(PivotStrategy strategy) {
  switch (strategy) {
    case PivotStrategy::kMinCost: return "min_cost";
    case PivotStrategy::kRandom: return "random";
  }
  return "?";
}

Result<PivotStrategy> ParsePivotStrategyName(std::string_view name) {
  if (name == "min_cost") return PivotStrategy::kMinCost;
  if (name == "random") return PivotStrategy::kRandom;
  return Status::InvalidArgument("unknown pivot_strategy: " +
                                 std::string(name));
}

const char* DedupModeName(DedupMode mode) {
  switch (mode) {
    case DedupMode::kPaperNodeVisited: return "paper_node_visited";
    case DedupMode::kExactState: return "exact_state";
  }
  return "?";
}

Result<DedupMode> ParseDedupModeName(std::string_view name) {
  if (name == "paper_node_visited") return DedupMode::kPaperNodeVisited;
  if (name == "exact_state") return DedupMode::kExactState;
  return Status::InvalidArgument("unknown dedup mode: " + std::string(name));
}

Status CheckVersion(const JsonValue& json) {
  Result<int64_t> v = JsonGetInt(json, "v");
  KG_RETURN_NOT_OK(v.status());
  return CheckProtocolVersion(v.ValueOrDie());
}

JsonValue EncodeRequestOptions(const RequestOptions& o) {
  JsonValue json = JsonValue::Object();
  json.Set("k", JsonValue::Uint(o.k));
  json.Set("tau", JsonValue::Number(o.tau));
  json.Set("n_hat", JsonValue::Uint(o.n_hat));
  json.Set("pivot_strategy",
           JsonValue::String(PivotStrategyName(o.pivot_strategy)));
  json.Set("seed", JsonValue::Uint(o.seed));
  json.Set("dedup", JsonValue::String(DedupModeName(o.dedup)));
  json.Set("max_expansions", JsonValue::Uint(o.max_expansions));
  json.Set("budget_factor", JsonValue::Uint(o.budget_factor));
  json.Set("max_retry_rounds", JsonValue::Uint(o.max_retry_rounds));
  json.Set("matches_per_target", JsonValue::Uint(o.matches_per_target));
  json.Set("time_bound_micros", JsonValue::Int(o.time_bound_micros));
  json.Set("alert_ratio", JsonValue::Number(o.alert_ratio));
  json.Set("per_match_assembly_micros",
           JsonValue::Number(o.per_match_assembly_micros));
  json.Set("match_cap", JsonValue::Uint(o.match_cap));
  json.Set("stop_check_interval", JsonValue::Uint(o.stop_check_interval));
  return json;
}

Result<RequestOptions> DecodeRequestOptions(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("\"options\" must be an object");
  }
  RequestOptions o;
  KG_RETURN_NOT_OK(GetUnsigned(json, "k", o.k, &o.k));
  Result<double> tau = JsonGetNumberOr(json, "tau", o.tau);
  KG_RETURN_NOT_OK(tau.status());
  o.tau = tau.ValueOrDie();
  KG_RETURN_NOT_OK(GetUnsigned(json, "n_hat", o.n_hat, &o.n_hat));
  Result<std::string> strategy = JsonGetStringOr(
      json, "pivot_strategy", PivotStrategyName(o.pivot_strategy));
  KG_RETURN_NOT_OK(strategy.status());
  Result<PivotStrategy> parsed_strategy =
      ParsePivotStrategyName(strategy.ValueOrDie());
  KG_RETURN_NOT_OK(parsed_strategy.status());
  o.pivot_strategy = parsed_strategy.ValueOrDie();
  KG_RETURN_NOT_OK(GetUnsigned(json, "seed", o.seed, &o.seed));
  Result<std::string> dedup =
      JsonGetStringOr(json, "dedup", DedupModeName(o.dedup));
  KG_RETURN_NOT_OK(dedup.status());
  Result<DedupMode> parsed_dedup = ParseDedupModeName(dedup.ValueOrDie());
  KG_RETURN_NOT_OK(parsed_dedup.status());
  o.dedup = parsed_dedup.ValueOrDie();
  KG_RETURN_NOT_OK(
      GetUnsigned(json, "max_expansions", o.max_expansions, &o.max_expansions));
  KG_RETURN_NOT_OK(
      GetUnsigned(json, "budget_factor", o.budget_factor, &o.budget_factor));
  KG_RETURN_NOT_OK(GetUnsigned(json, "max_retry_rounds", o.max_retry_rounds,
                               &o.max_retry_rounds));
  KG_RETURN_NOT_OK(GetUnsigned(json, "matches_per_target",
                               o.matches_per_target, &o.matches_per_target));
  Result<int64_t> bound =
      JsonGetIntOr(json, "time_bound_micros", o.time_bound_micros);
  KG_RETURN_NOT_OK(bound.status());
  o.time_bound_micros = bound.ValueOrDie();
  Result<double> alert = JsonGetNumberOr(json, "alert_ratio", o.alert_ratio);
  KG_RETURN_NOT_OK(alert.status());
  o.alert_ratio = alert.ValueOrDie();
  Result<double> assembly = JsonGetNumberOr(json, "per_match_assembly_micros",
                                            o.per_match_assembly_micros);
  KG_RETURN_NOT_OK(assembly.status());
  o.per_match_assembly_micros = assembly.ValueOrDie();
  KG_RETURN_NOT_OK(GetUnsigned(json, "match_cap", o.match_cap, &o.match_cap));
  KG_RETURN_NOT_OK(GetUnsigned(json, "stop_check_interval",
                               o.stop_check_interval, &o.stop_check_interval));
  return o;
}

}  // namespace

const char* QueryModeName(QueryMode mode) {
  switch (mode) {
    case QueryMode::kSgq: return "sgq";
    case QueryMode::kTbq: return "tbq";
  }
  return "?";
}

Result<QueryMode> ParseQueryModeName(std::string_view name) {
  if (name == "sgq") return QueryMode::kSgq;
  if (name == "tbq") return QueryMode::kTbq;
  return Status::InvalidArgument("unknown query mode: " + std::string(name));
}

Status CheckProtocolVersion(int64_t version) {
  if (version != kApiProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported protocol version %lld (this build speaks %lld)",
                  static_cast<long long>(version),
                  static_cast<long long>(kApiProtocolVersion)));
  }
  return Status::OK();
}

EngineOptions ToEngineOptions(const RequestOptions& options) {
  EngineOptions o;
  o.k = options.k;
  o.tau = options.tau;
  o.n_hat = options.n_hat;
  o.pivot_strategy = options.pivot_strategy;
  o.seed = options.seed;
  o.budget_factor = options.budget_factor;
  o.max_retry_rounds = options.max_retry_rounds;
  o.max_expansions = options.max_expansions;
  o.dedup = options.dedup;
  o.matches_per_target = options.matches_per_target;
  o.stop_check_interval = options.stop_check_interval;
  return o;
}

TimeBoundedOptions ToTimeBoundedOptions(const RequestOptions& options) {
  TimeBoundedOptions o;
  o.k = options.k;
  o.tau = options.tau;
  o.n_hat = options.n_hat;
  o.pivot_strategy = options.pivot_strategy;
  o.seed = options.seed;
  o.time_bound_micros = options.time_bound_micros;
  o.alert_ratio = options.alert_ratio;
  o.per_match_assembly_micros = options.per_match_assembly_micros;
  o.match_cap = options.match_cap;
  o.stop_check_interval = options.stop_check_interval;
  o.max_expansions = options.max_expansions;
  o.dedup = options.dedup;
  return o;
}

JsonValue EncodeQueryGraph(const QueryGraph& query) {
  JsonValue json = JsonValue::Object();
  JsonValue nodes = JsonValue::Array();
  for (const QueryNode& node : query.nodes()) {
    JsonValue n = JsonValue::Object();
    n.Set("type", JsonValue::String(node.type));
    if (node.is_specific()) n.Set("name", JsonValue::String(node.name));
    nodes.Append(std::move(n));
  }
  json.Set("nodes", std::move(nodes));
  JsonValue edges = JsonValue::Array();
  for (const QueryEdge& edge : query.edges()) {
    JsonValue e = JsonValue::Object();
    e.Set("from", JsonValue::Int(edge.from));
    e.Set("to", JsonValue::Int(edge.to));
    e.Set("predicate", JsonValue::String(edge.predicate));
    edges.Append(std::move(e));
  }
  json.Set("edges", std::move(edges));
  return json;
}

Result<QueryGraph> DecodeQueryGraph(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("query_graph must be an object");
  }
  const JsonValue* nodes = json.Find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return Status::InvalidArgument("query_graph needs a \"nodes\" array");
  }
  QueryGraph query;
  for (const JsonValue& n : nodes->items()) {
    Result<std::string> type = JsonGetString(n, "type");
    KG_RETURN_NOT_OK(type.status());
    if (!n.is_object() || n.Find("name") == nullptr) {
      query.AddTargetNode(std::move(type).ValueOrDie());
      continue;
    }
    // A present "name" means a specific node; an empty one is a client
    // bug, not a target node.
    Result<std::string> name = JsonGetString(n, "name");
    KG_RETURN_NOT_OK(name.status());
    if (name.ValueOrDie().empty()) {
      return Status::InvalidArgument(
          "query_graph node \"name\" must be non-empty (omit it for a "
          "target node)");
    }
    query.AddSpecificNode(std::move(type).ValueOrDie(),
                          std::move(name).ValueOrDie());
  }
  const JsonValue* edges = json.Find("edges");
  if (edges == nullptr || !edges->is_array()) {
    return Status::InvalidArgument("query_graph needs an \"edges\" array");
  }
  const int64_t num_nodes = static_cast<int64_t>(query.NumNodes());
  for (const JsonValue& e : edges->items()) {
    Result<int64_t> from = JsonGetInt(e, "from");
    KG_RETURN_NOT_OK(from.status());
    Result<int64_t> to = JsonGetInt(e, "to");
    KG_RETURN_NOT_OK(to.status());
    Result<std::string> predicate = JsonGetString(e, "predicate");
    KG_RETURN_NOT_OK(predicate.status());
    // AddEdge KG_CHECKs these invariants; a wire document must fail softly.
    if (from.ValueOrDie() < 0 || from.ValueOrDie() >= num_nodes ||
        to.ValueOrDie() < 0 || to.ValueOrDie() >= num_nodes) {
      return Status::InvalidArgument("query_graph edge endpoint out of range");
    }
    if (from.ValueOrDie() == to.ValueOrDie()) {
      return Status::InvalidArgument("query_graph edge is a self-loop");
    }
    query.AddEdge(static_cast<int>(from.ValueOrDie()),
                  static_cast<int>(to.ValueOrDie()),
                  std::move(predicate).ValueOrDie());
  }
  return query;
}

JsonValue EncodeQueryRequest(const QueryRequest& request) {
  JsonValue json = JsonValue::Object();
  json.Set("v", JsonValue::Int(request.version));
  json.Set("dataset", JsonValue::String(request.dataset));
  json.Set("mode", JsonValue::String(QueryModeName(request.mode)));
  if (!request.query_text.empty()) {
    json.Set("query_text", JsonValue::String(request.query_text));
  }
  if (request.query_graph.has_value()) {
    json.Set("query_graph", EncodeQueryGraph(*request.query_graph));
  }
  json.Set("options", EncodeRequestOptions(request.options));
  json.Set("deadline_ms", JsonValue::Int(request.deadline_ms));
  json.Set("priority",
           JsonValue::String(RequestPriorityName(request.priority)));
  return json;
}

Result<QueryRequest> DecodeQueryRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  KG_RETURN_NOT_OK(CheckVersion(json));
  QueryRequest request;
  Result<std::string> dataset = JsonGetString(json, "dataset");
  KG_RETURN_NOT_OK(dataset.status());
  request.dataset = std::move(dataset).ValueOrDie();
  Result<std::string> mode =
      JsonGetStringOr(json, "mode", QueryModeName(request.mode));
  KG_RETURN_NOT_OK(mode.status());
  Result<QueryMode> parsed_mode = ParseQueryModeName(mode.ValueOrDie());
  KG_RETURN_NOT_OK(parsed_mode.status());
  request.mode = parsed_mode.ValueOrDie();
  Result<std::string> text = JsonGetStringOr(json, "query_text", "");
  KG_RETURN_NOT_OK(text.status());
  request.query_text = std::move(text).ValueOrDie();
  if (const JsonValue* graph = json.Find("query_graph")) {
    Result<QueryGraph> decoded = DecodeQueryGraph(*graph);
    KG_RETURN_NOT_OK(decoded.status());
    request.query_graph = std::move(decoded).ValueOrDie();
  }
  if (const JsonValue* options = json.Find("options")) {
    Result<RequestOptions> decoded = DecodeRequestOptions(*options);
    KG_RETURN_NOT_OK(decoded.status());
    request.options = decoded.ValueOrDie();
  }
  // Backward compatible: documents without the overload-control fields
  // decode to "no deadline, normal priority" — the pre-deadline semantics.
  Result<int64_t> deadline = JsonGetIntOr(json, "deadline_ms", 0);
  KG_RETURN_NOT_OK(deadline.status());
  if (deadline.ValueOrDie() < 0) {
    return Status::InvalidArgument("\"deadline_ms\" must be >= 0");
  }
  request.deadline_ms = deadline.ValueOrDie();
  Result<std::string> priority = JsonGetStringOr(
      json, "priority", RequestPriorityName(request.priority));
  KG_RETURN_NOT_OK(priority.status());
  Result<RequestPriority> parsed_priority =
      ParseRequestPriorityName(priority.ValueOrDie());
  KG_RETURN_NOT_OK(parsed_priority.status());
  request.priority = parsed_priority.ValueOrDie();
  return request;
}

std::string EncodeQueryRequestJson(const QueryRequest& request) {
  return EncodeQueryRequest(request).Dump();
}

Result<QueryRequest> DecodeQueryRequestJson(std::string_view text) {
  // Reject oversized documents before the parser touches them: the cap
  // bounds parse work and allocations against hostile senders, and real
  // requests are orders of magnitude smaller.
  if (text.size() > kMaxWireRequestBytes) {
    return Status::InvalidArgument(
        StrFormat("request document of %zu bytes exceeds the %zu-byte wire "
                  "limit",
                  text.size(), kMaxWireRequestBytes));
  }
  Result<JsonValue> json = JsonValue::Parse(text);
  KG_RETURN_NOT_OK(json.status());
  return DecodeQueryRequest(json.ValueOrDie());
}

JsonValue EncodeQueryResponse(const QueryResponse& response) {
  JsonValue json = JsonValue::Object();
  json.Set("v", JsonValue::Int(response.version));
  json.Set("dataset", JsonValue::String(response.dataset));
  json.Set("mode", JsonValue::String(QueryModeName(response.mode)));
  json.Set("stopped_by_time", JsonValue::Bool(response.stopped_by_time));
  json.Set("deadline_ms", JsonValue::Int(response.deadline_ms));
  json.Set("priority",
           JsonValue::String(RequestPriorityName(response.priority)));
  JsonValue answers = JsonValue::Array();
  for (const AnswerDto& answer : response.answers) {
    JsonValue a = JsonValue::Object();
    a.Set("id", JsonValue::Uint(answer.id));
    a.Set("name", JsonValue::String(answer.name));
    a.Set("type", JsonValue::String(answer.type));
    a.Set("score", JsonValue::Number(answer.score));
    answers.Append(std::move(a));
  }
  json.Set("answers", std::move(answers));
  JsonValue timings = JsonValue::Object();
  timings.Set("parse_ms", JsonValue::Number(response.timings.parse_ms));
  timings.Set("engine_ms", JsonValue::Number(response.timings.engine_ms));
  timings.Set("total_ms", JsonValue::Number(response.timings.total_ms));
  json.Set("timings", std::move(timings));
  JsonValue stats = JsonValue::Object();
  stats.Set("subqueries", JsonValue::Uint(response.stats.subqueries));
  stats.Set("expanded", JsonValue::Uint(response.stats.expanded));
  stats.Set("generated", JsonValue::Uint(response.stats.generated));
  stats.Set("ta_sorted_accesses",
            JsonValue::Uint(response.stats.ta_sorted_accesses));
  stats.Set("ta_early_terminated",
            JsonValue::Bool(response.stats.ta_early_terminated));
  json.Set("stats", std::move(stats));
  return json;
}

Result<QueryResponse> DecodeQueryResponse(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  KG_RETURN_NOT_OK(CheckVersion(json));
  QueryResponse response;
  Result<std::string> dataset = JsonGetString(json, "dataset");
  KG_RETURN_NOT_OK(dataset.status());
  response.dataset = std::move(dataset).ValueOrDie();
  Result<std::string> mode =
      JsonGetStringOr(json, "mode", QueryModeName(response.mode));
  KG_RETURN_NOT_OK(mode.status());
  Result<QueryMode> parsed_mode = ParseQueryModeName(mode.ValueOrDie());
  KG_RETURN_NOT_OK(parsed_mode.status());
  response.mode = parsed_mode.ValueOrDie();
  Result<bool> stopped = JsonGetBoolOr(json, "stopped_by_time", false);
  KG_RETURN_NOT_OK(stopped.status());
  response.stopped_by_time = stopped.ValueOrDie();
  Result<int64_t> deadline = JsonGetIntOr(json, "deadline_ms", 0);
  KG_RETURN_NOT_OK(deadline.status());
  // Same validity rule as the request decoder: the echo of a field must
  // not admit values the field itself rejects.
  if (deadline.ValueOrDie() < 0) {
    return Status::InvalidArgument("\"deadline_ms\" must be >= 0");
  }
  response.deadline_ms = deadline.ValueOrDie();
  Result<std::string> priority = JsonGetStringOr(
      json, "priority", RequestPriorityName(response.priority));
  KG_RETURN_NOT_OK(priority.status());
  Result<RequestPriority> parsed_priority =
      ParseRequestPriorityName(priority.ValueOrDie());
  KG_RETURN_NOT_OK(parsed_priority.status());
  response.priority = parsed_priority.ValueOrDie();
  const JsonValue* answers = json.Find("answers");
  if (answers == nullptr || !answers->is_array()) {
    return Status::InvalidArgument("response needs an \"answers\" array");
  }
  for (const JsonValue& a : answers->items()) {
    AnswerDto answer;
    KG_RETURN_NOT_OK(GetUnsigned(a, "id", 0u, &answer.id));
    Result<std::string> name = JsonGetStringOr(a, "name", "");
    KG_RETURN_NOT_OK(name.status());
    answer.name = std::move(name).ValueOrDie();
    Result<std::string> type = JsonGetStringOr(a, "type", "");
    KG_RETURN_NOT_OK(type.status());
    answer.type = std::move(type).ValueOrDie();
    Result<double> score = JsonGetNumberOr(a, "score", 0.0);
    KG_RETURN_NOT_OK(score.status());
    answer.score = score.ValueOrDie();
    response.answers.push_back(std::move(answer));
  }
  if (const JsonValue* timings = json.Find("timings")) {
    Result<double> parse_ms = JsonGetNumberOr(*timings, "parse_ms", 0.0);
    KG_RETURN_NOT_OK(parse_ms.status());
    response.timings.parse_ms = parse_ms.ValueOrDie();
    Result<double> engine_ms = JsonGetNumberOr(*timings, "engine_ms", 0.0);
    KG_RETURN_NOT_OK(engine_ms.status());
    response.timings.engine_ms = engine_ms.ValueOrDie();
    Result<double> total_ms = JsonGetNumberOr(*timings, "total_ms", 0.0);
    KG_RETURN_NOT_OK(total_ms.status());
    response.timings.total_ms = total_ms.ValueOrDie();
  }
  if (const JsonValue* stats = json.Find("stats")) {
    KG_RETURN_NOT_OK(GetUnsigned(*stats, "subqueries",
                                 response.stats.subqueries,
                                 &response.stats.subqueries));
    KG_RETURN_NOT_OK(GetUnsigned(*stats, "expanded", response.stats.expanded,
                                 &response.stats.expanded));
    KG_RETURN_NOT_OK(GetUnsigned(*stats, "generated",
                                 response.stats.generated,
                                 &response.stats.generated));
    KG_RETURN_NOT_OK(GetUnsigned(*stats, "ta_sorted_accesses",
                                 response.stats.ta_sorted_accesses,
                                 &response.stats.ta_sorted_accesses));
    Result<bool> early =
        JsonGetBoolOr(*stats, "ta_early_terminated", false);
    KG_RETURN_NOT_OK(early.status());
    response.stats.ta_early_terminated = early.ValueOrDie();
  }
  return response;
}

std::string EncodeQueryResponseJson(const QueryResponse& response) {
  return EncodeQueryResponse(response).Dump();
}

Result<QueryResponse> DecodeQueryResponseJson(std::string_view text) {
  Result<JsonValue> json = JsonValue::Parse(text);
  KG_RETURN_NOT_OK(json.status());
  return DecodeQueryResponse(json.ValueOrDie());
}

JsonValue EncodeIngestRequest(const IngestRequest& request) {
  JsonValue json = JsonValue::Object();
  json.Set("v", JsonValue::Int(request.version));
  JsonValue body = JsonValue::Object();
  body.Set("dataset", JsonValue::String(request.dataset));
  JsonValue ops = JsonValue::Array();
  for (const IngestOpDto& op : request.ops) {
    JsonValue o = JsonValue::Object();
    o.Set("op", JsonValue::String(op.retract ? "retract" : "add"));
    o.Set("head", JsonValue::String(op.head));
    o.Set("predicate", JsonValue::String(op.predicate));
    o.Set("tail", JsonValue::String(op.tail));
    if (!op.head_type.empty()) {
      o.Set("head_type", JsonValue::String(op.head_type));
    }
    if (!op.tail_type.empty()) {
      o.Set("tail_type", JsonValue::String(op.tail_type));
    }
    ops.Append(std::move(o));
  }
  body.Set("ops", std::move(ops));
  json.Set("ingest", std::move(body));
  return json;
}

Result<IngestRequest> DecodeIngestRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  KG_RETURN_NOT_OK(CheckVersion(json));
  const JsonValue* body = json.Find("ingest");
  if (body == nullptr || !body->is_object()) {
    return Status::InvalidArgument(
        "ingest request needs an \"ingest\" object");
  }
  IngestRequest request;
  Result<std::string> dataset = JsonGetString(*body, "dataset");
  KG_RETURN_NOT_OK(dataset.status());
  request.dataset = std::move(dataset).ValueOrDie();
  const JsonValue* ops = body->Find("ops");
  if (ops == nullptr || !ops->is_array()) {
    return Status::InvalidArgument("ingest request needs an \"ops\" array");
  }
  for (const JsonValue& o : ops->items()) {
    IngestOpDto op;
    Result<std::string> kind = JsonGetStringOr(o, "op", "add");
    KG_RETURN_NOT_OK(kind.status());
    if (kind.ValueOrDie() == "retract") {
      op.retract = true;
    } else if (kind.ValueOrDie() != "add") {
      return Status::InvalidArgument("unknown ingest op (want add/retract): " +
                                     kind.ValueOrDie());
    }
    Result<std::string> head = JsonGetString(o, "head");
    KG_RETURN_NOT_OK(head.status());
    op.head = std::move(head).ValueOrDie();
    Result<std::string> predicate = JsonGetString(o, "predicate");
    KG_RETURN_NOT_OK(predicate.status());
    op.predicate = std::move(predicate).ValueOrDie();
    Result<std::string> tail = JsonGetString(o, "tail");
    KG_RETURN_NOT_OK(tail.status());
    op.tail = std::move(tail).ValueOrDie();
    Result<std::string> head_type = JsonGetStringOr(o, "head_type", "");
    KG_RETURN_NOT_OK(head_type.status());
    op.head_type = std::move(head_type).ValueOrDie();
    Result<std::string> tail_type = JsonGetStringOr(o, "tail_type", "");
    KG_RETURN_NOT_OK(tail_type.status());
    op.tail_type = std::move(tail_type).ValueOrDie();
    if (op.head.empty() || op.predicate.empty() || op.tail.empty()) {
      return Status::InvalidArgument(
          "ingest op needs non-empty head, predicate, and tail");
    }
    request.ops.push_back(std::move(op));
  }
  return request;
}

std::string EncodeIngestRequestJson(const IngestRequest& request) {
  return EncodeIngestRequest(request).Dump();
}

Result<IngestRequest> DecodeIngestRequestJson(std::string_view text) {
  if (text.size() > kMaxWireRequestBytes) {
    return Status::InvalidArgument(
        StrFormat("request document of %zu bytes exceeds the %zu-byte wire "
                  "limit",
                  text.size(), kMaxWireRequestBytes));
  }
  Result<JsonValue> json = JsonValue::Parse(text);
  KG_RETURN_NOT_OK(json.status());
  return DecodeIngestRequest(json.ValueOrDie());
}

JsonValue EncodeIngestResponse(const IngestResponse& response) {
  JsonValue json = JsonValue::Object();
  json.Set("v", JsonValue::Int(response.version));
  JsonValue body = JsonValue::Object();
  body.Set("dataset", JsonValue::String(response.dataset));
  body.Set("epoch", JsonValue::Uint(response.epoch));
  body.Set("ops_applied", JsonValue::Uint(response.ops_applied));
  json.Set("ingest", std::move(body));
  return json;
}

Result<IngestResponse> DecodeIngestResponse(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  KG_RETURN_NOT_OK(CheckVersion(json));
  const JsonValue* body = json.Find("ingest");
  if (body == nullptr || !body->is_object()) {
    return Status::InvalidArgument(
        "ingest response needs an \"ingest\" object");
  }
  IngestResponse response;
  Result<std::string> dataset = JsonGetString(*body, "dataset");
  KG_RETURN_NOT_OK(dataset.status());
  response.dataset = std::move(dataset).ValueOrDie();
  KG_RETURN_NOT_OK(
      GetUnsigned(*body, "epoch", response.epoch, &response.epoch));
  KG_RETURN_NOT_OK(GetUnsigned(*body, "ops_applied", response.ops_applied,
                               &response.ops_applied));
  return response;
}

std::string EncodeIngestResponseJson(const IngestResponse& response) {
  return EncodeIngestResponse(response).Dump();
}

Result<IngestResponse> DecodeIngestResponseJson(std::string_view text) {
  Result<JsonValue> json = JsonValue::Parse(text);
  KG_RETURN_NOT_OK(json.status());
  return DecodeIngestResponse(json.ValueOrDie());
}

std::string EncodeErrorJson(const Status& status) {
  JsonValue json = JsonValue::Object();
  json.Set("v", JsonValue::Int(kApiProtocolVersion));
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeName(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  json.Set("error", std::move(error));
  return json.Dump();
}

}  // namespace kgsearch
