// Versioned request/response DTOs of the public API, with JSON
// encode/decode so requests and results are wire-ready.
//
// Design rules:
//  - The DTOs are plain value types with defaulted equality, so
//    decode(encode(x)) == x is testable exactly (doubles are written with
//    shortest-round-trip precision by util/json).
//  - RequestOptions flattens the per-query knobs of EngineOptions and
//    TimeBoundedOptions into one struct whose defaults match the engine
//    defaults bit-for-bit; ToEngineOptions/ToTimeBoundedOptions are the only
//    mapping, so a default-constructed request behaves exactly like a direct
//    engine call. Serving-layer knobs (threads, executor) are deliberately
//    not part of the wire protocol.
//  - Decoders are total: any malformed document returns
//    kParseError/kInvalidArgument, never an abort.
#ifndef KGSEARCH_API_PROTOCOL_H_
#define KGSEARCH_API_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/time_bounded.h"
#include "service/admission.h"
#include "util/json.h"

namespace kgsearch {

/// Wire protocol version; encoded as "v" and checked by every decoder.
inline constexpr int64_t kApiProtocolVersion = 1;

/// Hard cap on one wire request document (1 MiB). DecodeQueryRequestJson
/// rejects longer text before parsing, bounding the parser's work and
/// allocations against hostile senders; the TCP server additionally
/// enforces it as its default line-length limit. Generous: a real request
/// with a large explicit QueryGraph is a few KiB.
inline constexpr size_t kMaxWireRequestBytes = size_t{1} << 20;

/// Which engine answers the request.
enum class QueryMode {
  kSgq,  ///< optimal semantic-guided query (Problem 1)
  kTbq,  ///< time-bounded approximate query (Problem 2)
};

const char* QueryModeName(QueryMode mode);
Result<QueryMode> ParseQueryModeName(std::string_view name);

/// kInvalidArgument when `version` is not the protocol this build speaks;
/// shared by the JSON decoders and the in-process DTO entry points.
Status CheckProtocolVersion(int64_t version);

/// Flattened per-query knobs covering both modes (TBQ-only fields are
/// ignored in SGQ mode and vice versa). Defaults equal the engine defaults.
struct RequestOptions {
  // Shared.
  size_t k = 10;
  double tau = 0.8;
  size_t n_hat = 4;
  PivotStrategy pivot_strategy = PivotStrategy::kMinCost;
  uint64_t seed = 42;
  DedupMode dedup = DedupMode::kPaperNodeVisited;
  uint64_t max_expansions = 4'000'000;
  // SGQ only.
  size_t budget_factor = 3;
  size_t max_retry_rounds = 2;
  size_t matches_per_target = 1;
  // TBQ only.
  int64_t time_bound_micros = 100'000;
  double alert_ratio = 0.8;
  double per_match_assembly_micros = -1.0;
  size_t match_cap = 0;
  // Both modes: anytime-estimator poll cadence in TBQ, and the
  // deadline/cancellation poll cadence everywhere.
  size_t stop_check_interval = 64;

  bool operator==(const RequestOptions&) const = default;
};

/// The engine options equivalent to `options` (executor/threads left at
/// their defaults; the serving layer injects its own executor).
EngineOptions ToEngineOptions(const RequestOptions& options);
TimeBoundedOptions ToTimeBoundedOptions(const RequestOptions& options);

/// One query request against a named dataset. The query is given either as
/// text (api/query_text grammar) or as an explicit QueryGraph; when both
/// are present the graph wins.
struct QueryRequest {
  int64_t version = kApiProtocolVersion;
  std::string dataset;
  QueryMode mode = QueryMode::kSgq;
  std::string query_text;
  std::optional<QueryGraph> query_graph;
  RequestOptions options;
  /// Relative time budget in milliseconds, stamped into an absolute engine
  /// deadline when the session accepts the request (so queue wait counts).
  /// 0 = no deadline — the pre-deadline wire behavior, and what decoders
  /// assume when the field is absent. Negative values are rejected.
  int64_t deadline_ms = 0;
  /// Admission class; "normal" (the default, also assumed when absent on
  /// the wire) is subject to the service's admission limits, "high"
  /// bypasses them.
  RequestPriority priority = RequestPriority::kNormal;

  bool operator==(const QueryRequest&) const = default;
};

/// One ranked answer: the matched pivot entity with its display metadata.
struct AnswerDto {
  uint32_t id = 0;       ///< NodeId in the dataset's graph
  std::string name;
  std::string type;
  double score = 0.0;    ///< Sm(u^p), descending across the answer list

  bool operator==(const AnswerDto&) const = default;
};

/// Per-stage wall-clock timings of one request.
struct ResponseTimings {
  double parse_ms = 0.0;   ///< query-text parsing (0 for QueryGraph input)
  double engine_ms = 0.0;  ///< engine execution (decompose+search+assembly)
  double total_ms = 0.0;   ///< end-to-end inside the facade

  bool operator==(const ResponseTimings&) const = default;
};

/// Aggregated engine counters of one request.
struct ResponseStats {
  uint64_t subqueries = 0;          ///< sub-query path graphs searched
  uint64_t expanded = 0;            ///< A* states expanded, summed
  uint64_t generated = 0;           ///< sub-query matches emitted, summed
  uint64_t ta_sorted_accesses = 0;  ///< TA assembly sorted accesses
  bool ta_early_terminated = false;

  bool operator==(const ResponseStats&) const = default;
};

/// The answer to one QueryRequest.
struct QueryResponse {
  int64_t version = kApiProtocolVersion;
  std::string dataset;
  QueryMode mode = QueryMode::kSgq;
  /// TBQ only: true when the time estimator stopped a search early.
  bool stopped_by_time = false;
  /// Echo of the request's deadline/priority (0 / "normal" when the
  /// request carried none), so wire clients can correlate responses with
  /// the budget they asked for.
  int64_t deadline_ms = 0;
  RequestPriority priority = RequestPriority::kNormal;
  std::vector<AnswerDto> answers;  ///< descending score
  ResponseTimings timings;
  ResponseStats stats;

  bool operator==(const QueryResponse&) const = default;
};

// ----- live ingest (delta overlay) -----

/// One mutation in an ingest batch. `retract` removes an existing triple;
/// an add may create nodes, in which case `head_type`/`tail_type` name the
/// new node's type (empty = "Thing"; an existing node keeps its type).
struct IngestOpDto {
  bool retract = false;
  std::string head;
  std::string predicate;
  std::string tail;
  std::string head_type;
  std::string tail_type;

  bool operator==(const IngestOpDto&) const = default;
};

/// An atomically applied mutation batch against a named dataset's delta
/// overlay (kg/delta_overlay.h). Wire form:
///   {"v":1,"ingest":{"dataset":"d","ops":[{"op":"add","head":"a",
///    "predicate":"p","tail":"b","head_type":"T"}, ...]}}
/// The top-level "ingest" member is what routes the line away from the
/// query path (server/tcp_server.h).
struct IngestRequest {
  int64_t version = kApiProtocolVersion;
  std::string dataset;
  std::vector<IngestOpDto> ops;

  bool operator==(const IngestRequest&) const = default;
};

/// Acknowledgement of one committed batch. `epoch` is the snapshot epoch
/// the batch published; queries pinned at or after it see every op.
struct IngestResponse {
  int64_t version = kApiProtocolVersion;
  std::string dataset;
  uint64_t epoch = 0;
  uint64_t ops_applied = 0;

  bool operator==(const IngestResponse&) const = default;
};

// ----- JSON codecs -----

JsonValue EncodeQueryGraph(const QueryGraph& query);
Result<QueryGraph> DecodeQueryGraph(const JsonValue& json);

JsonValue EncodeQueryRequest(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequest(const JsonValue& json);
std::string EncodeQueryRequestJson(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequestJson(std::string_view text);

JsonValue EncodeQueryResponse(const QueryResponse& response);
Result<QueryResponse> DecodeQueryResponse(const JsonValue& json);
std::string EncodeQueryResponseJson(const QueryResponse& response);
Result<QueryResponse> DecodeQueryResponseJson(std::string_view text);

JsonValue EncodeIngestRequest(const IngestRequest& request);
Result<IngestRequest> DecodeIngestRequest(const JsonValue& json);
std::string EncodeIngestRequestJson(const IngestRequest& request);
Result<IngestRequest> DecodeIngestRequestJson(std::string_view text);

JsonValue EncodeIngestResponse(const IngestResponse& response);
Result<IngestResponse> DecodeIngestResponse(const JsonValue& json);
std::string EncodeIngestResponseJson(const IngestResponse& response);
Result<IngestResponse> DecodeIngestResponseJson(std::string_view text);

/// Encodes a failure as the wire error document
/// {"v":1,"error":{"code":"InvalidArgument","message":"..."}}.
std::string EncodeErrorJson(const Status& status);

}  // namespace kgsearch

#endif  // KGSEARCH_API_PROTOCOL_H_
