#include "api/query_text.h"

#include <map>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace kgsearch {

namespace {

Result<QueryGraph> ParseQueryTextImpl(std::string_view text,
                                      const GraphView* graph);

}  // namespace

Result<QueryGraph> ParseQueryText(std::string_view text,
                                  const KnowledgeGraph* graph) {
  if (graph == nullptr) return ParseQueryTextImpl(text, nullptr);
  const GraphView view(*graph);
  return ParseQueryTextImpl(text, &view);
}

Result<QueryGraph> ParseQueryText(std::string_view text,
                                  const GraphView& graph) {
  return ParseQueryTextImpl(text, &graph);
}

namespace {

Result<QueryGraph> ParseQueryTextImpl(std::string_view text,
                                      const GraphView* graph) {
  if (Trim(text).empty()) {
    return Status::InvalidArgument("query text is empty");
  }

  QueryGraph query;
  std::map<std::string, int> nodes;  // token -> query node index
  auto node_of = [&](const std::string& token) -> Result<int> {
    auto it = nodes.find(token);
    if (it != nodes.end()) return it->second;
    int idx;
    if (token[0] == '?') {
      if (token.size() == 1) {
        return Status::ParseError("target node '?' needs a type");
      }
      idx = query.AddTargetNode(token.substr(1));
    } else {
      std::string type = "Thing";
      if (graph != nullptr) {
        NodeId u = graph->FindNode(token);
        if (u != kInvalidNode) type = std::string(graph->NodeTypeName(u));
      }
      idx = query.AddSpecificNode(type, token);
    }
    nodes.emplace(token, idx);
    return idx;
  };

  const std::vector<std::string> parts = Split(text, ';');
  for (size_t e = 0; e < parts.size(); ++e) {
    std::string_view edge = Trim(parts[e]);
    if (edge.empty()) {
      // An empty segment is a grammar error, not noise: it means a dangling
      // or doubled ';' and usually a truncated query.
      return Status::ParseError(
          e + 1 == parts.size() ? "dangling ';' after the last edge"
                                : "empty edge (doubled or leading ';')");
    }
    std::vector<std::string> tokens;
    for (const std::string& t : Split(edge, ' ')) {
      if (!Trim(t).empty()) tokens.emplace_back(Trim(t));
    }
    if (tokens.size() != 3) {
      return Status::ParseError(
          StrFormat("each edge needs 'node predicate node', got %zu "
                    "token(s) in '%s'",
                    tokens.size(), std::string(edge).c_str()));
    }
    if (tokens[1][0] == '?') {
      return Status::ParseError("predicate '" + tokens[1] +
                                "' must not start with '?'");
    }
    Result<int> from = node_of(tokens[0]);
    KG_RETURN_NOT_OK(from.status());
    Result<int> to = node_of(tokens[2]);
    KG_RETURN_NOT_OK(to.status());
    if (from.ValueOrDie() == to.ValueOrDie()) {
      return Status::InvalidArgument("self-loop edge on '" + tokens[0] +
                                     "' is not a valid query edge");
    }
    query.AddEdge(from.ValueOrDie(), to.ValueOrDie(), tokens[1]);
  }
  KG_RETURN_NOT_OK(query.Validate());
  return query;
}

}  // namespace

}  // namespace kgsearch
