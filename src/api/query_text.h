// Library-grade parser for the textual query syntax (promoted out of the
// CLI so every caller — CLI, JSON protocol, tests — shares one grammar).
//
// Grammar (whitespace-separated tokens, edges separated by ';'):
//   query     := edge (';' edge)*
//   edge      := node predicate node
//   node      := '?' TYPE        a target node, keyed by its type token
//              | NAME            a specific node (known entity)
//   predicate := LABEL           must not start with '?'
//
// Repeating a node token reuses the same query node, so chains and stars
// compose naturally:
//   "?Automobile engine ?Device; ?Device made_in Germany"
// The first target token is conventionally the answer node (index order
// follows first appearance). Every failure mode is a recoverable Status —
// dangling ';', malformed edges, bare '?', self-loop edges, and empty
// queries return kParseError/kInvalidArgument instead of aborting.
#ifndef KGSEARCH_API_QUERY_TEXT_H_
#define KGSEARCH_API_QUERY_TEXT_H_

#include <string_view>

#include "core/query_graph.h"
#include "kg/graph.h"
#include "kg/graph_view.h"

namespace kgsearch {

/// Parses the edge-list query syntax into a validated QueryGraph.
///
/// `graph` (optional) infers the type of specific nodes whose name resolves
/// to a known entity; unknown or graph-less specific nodes get type
/// "Thing". The result always passes QueryGraph::Validate().
Result<QueryGraph> ParseQueryText(std::string_view text,
                                  const KnowledgeGraph* graph = nullptr);

/// Same grammar, resolving names against a pinned snapshot view instead of
/// a bare graph, so type inference sees live-ingested nodes too (the
/// serving layer's path; see kg/graph_view.h).
Result<QueryGraph> ParseQueryText(std::string_view text,
                                  const GraphView& graph);

}  // namespace kgsearch

#endif  // KGSEARCH_API_QUERY_TEXT_H_
