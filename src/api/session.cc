#include "api/session.h"

#include <chrono>
#include <thread>
#include <utility>

#include "api/query_text.h"
#include "kg/snapshot.h"
#include "kg/triple_io.h"
#include "util/cancel.h"
#include "util/string_util.h"

namespace kgsearch {

namespace {

void FillAnswers(const GraphView& graph,
                 const std::vector<FinalMatch>& matches,
                 QueryResponse* response) {
  response->answers.reserve(matches.size());
  for (const FinalMatch& m : matches) {
    AnswerDto answer;
    answer.id = m.pivot_match;
    answer.name = std::string(graph.NodeName(m.pivot_match));
    answer.type = std::string(graph.NodeTypeName(m.pivot_match));
    answer.score = m.score;
    response->answers.push_back(std::move(answer));
  }
}

void FillStats(const std::vector<SearchStats>& subquery_stats,
               const TaStats& ta_stats, ResponseStats* stats) {
  stats->subqueries = subquery_stats.size();
  for (const SearchStats& s : subquery_stats) {
    stats->expanded += s.expanded;
    stats->generated += s.goals_emitted;
  }
  stats->ta_sorted_accesses = ta_stats.sorted_accesses;
  stats->ta_early_terminated = ta_stats.early_terminated;
}

}  // namespace

KgSession::KgSession(KgSessionOptions options, const Clock* clock)
    : clock_(clock),
      options_(options),
      pool_(std::make_unique<ThreadPool>(
          DefaultPoolThreads(options.num_threads))) {}

KgSession::~KgSession() {
  // Async tasks capture `this` and dataset pointers; finish them before
  // services, datasets, or the pool are torn down.
  outstanding_.Wait();
}

QueryServiceOptions KgSession::ServiceOptions() const {
  QueryServiceOptions service_options;
  service_options.executor = pool_.get();
  service_options.decomposition_cache_capacity =
      options_.decomposition_cache_capacity;
  service_options.matcher_cache_capacity = options_.matcher_cache_capacity;
  service_options.max_in_flight = options_.max_in_flight;
  service_options.max_queued = options_.max_queued;
  return service_options;
}

Result<std::unique_ptr<KgSession::Dataset>> KgSession::BuildDataset(
    std::unique_ptr<KnowledgeGraph> graph,
    std::shared_ptr<PredicateSpace> space,
    std::shared_ptr<TransformationLibrary> library) {
  if (graph == nullptr || space == nullptr) {
    return Status::InvalidArgument("dataset needs a graph and a space");
  }
  if (!graph->finalized()) {
    return Status::InvalidArgument("dataset graph must be finalized");
  }
  if (space->NumPredicates() < graph->NumPredicates()) {
    return Status::InvalidArgument(StrFormat(
        "predicate space covers %zu of the graph's %zu predicates",
        space->NumPredicates(), graph->NumPredicates()));
  }
  auto dataset = std::make_unique<Dataset>();
  dataset->graph = std::move(graph);
  dataset->space = std::move(space);
  dataset->library = std::move(library);
  dataset->overlay = std::make_unique<DeltaOverlay>(dataset->graph.get());
  dataset->service = std::make_unique<QueryService>(
      dataset->graph.get(), dataset->space.get(), dataset->library.get(),
      ServiceOptions(), clock_);
  return dataset;
}

Status KgSession::InstallDataset(const std::string& name,
                                 std::unique_ptr<Dataset> dataset,
                                 bool replace, const Dataset* expected) {
  std::unique_ptr<Dataset> old;
  {
    MutexLock lock(&mutex_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      if (expected != nullptr) {
        return Status::FailedPrecondition(
            "dataset replaced during compaction: " + name);
      }
      datasets_.emplace(name, std::move(dataset));
      return Status::OK();
    }
    if (!replace) {
      return Status::AlreadyExists("dataset already registered: " + name);
    }
    if (expected != nullptr && it->second.get() != expected) {
      return Status::FailedPrecondition(
          "dataset replaced during compaction: " + name);
    }
    old = std::move(it->second);
    it->second = std::move(dataset);
  }
  // Swap done: new arrivals resolve the fresh dataset. Retire the old
  // overlay first so a writer mid-Ingest fails fast (and retries against
  // the new entry) instead of committing into a graph nobody can reach,
  // then drain the leases. Queries never fail from the swap — lease
  // holders finish on the old graph before it is destroyed here.
  old->overlay->Retire();
  old->in_use.Wait();
  return Status::OK();
}

Status KgSession::RegisterDataset(const std::string& name,
                                  std::unique_ptr<KnowledgeGraph> graph,
                                  std::unique_ptr<PredicateSpace> space,
                                  TransformationLibrary library) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  Result<std::unique_ptr<Dataset>> dataset = BuildDataset(
      std::move(graph), std::move(space),
      std::make_shared<TransformationLibrary>(std::move(library)));
  KG_RETURN_NOT_OK(dataset.status());
  return InstallDataset(name, std::move(dataset).ValueOrDie(),
                        /*replace=*/false);
}

Status KgSession::ReplaceDataset(const std::string& name,
                                 std::unique_ptr<KnowledgeGraph> graph,
                                 std::unique_ptr<PredicateSpace> space,
                                 TransformationLibrary library) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  Result<std::unique_ptr<Dataset>> dataset = BuildDataset(
      std::move(graph), std::move(space),
      std::make_shared<TransformationLibrary>(std::move(library)));
  KG_RETURN_NOT_OK(dataset.status());
  return InstallDataset(name, std::move(dataset).ValueOrDie(),
                        /*replace=*/true);
}

Status KgSession::LoadDataset(const std::string& name,
                              const DatasetLoadOptions& options) {
  if (!options.replace_existing && HasDataset(name)) {
    // Checked again under the registry lock, but failing before parsing and
    // training keeps the common mistake cheap.
    return Status::AlreadyExists("dataset already registered: " + name);
  }
  if (options.graph_path.empty()) {
    return Status::InvalidArgument("DatasetLoadOptions.graph_path is empty");
  }

  Result<std::string> text = ReadFileToString(options.graph_path);
  KG_RETURN_NOT_OK(text.status());

  // kgpack fast path: the file bundles graph + space + library already in
  // flat form, so the remaining load options have nothing to apply to.
  if (LooksLikeKgPack(text.ValueOrDie())) {
    if (!options.space_path.empty() || !options.library_path.empty() ||
        options.train_transe) {
      return Status::InvalidArgument(
          "kgpack snapshots bundle their own space and library; clear "
          "space_path/library_path/train_transe when loading " +
          options.graph_path);
    }
    Result<DatasetSnapshot> snapshot = DecodeSnapshot(text.ValueOrDie());
    KG_RETURN_NOT_OK(snapshot.status());
    DatasetSnapshot& parts = snapshot.ValueOrDie();
    return options.replace_existing
               ? ReplaceDataset(name, std::move(parts.graph),
                                std::move(parts.space),
                                std::move(parts.library))
               : RegisterDataset(name, std::move(parts.graph),
                                 std::move(parts.space),
                                 std::move(parts.library));
  }

  Result<std::unique_ptr<KnowledgeGraph>> graph =
      EndsWith(options.graph_path, ".tsv")
          ? ParseTsvTriples(text.ValueOrDie())
          : ParseNTriples(text.ValueOrDie());
  KG_RETURN_NOT_OK(graph.status());

  std::unique_ptr<PredicateSpace> space;
  if (!options.space_path.empty() && !options.train_transe) {
    Result<std::string> space_text = ReadFileToString(options.space_path);
    KG_RETURN_NOT_OK(space_text.status());
    Result<PredicateSpace> parsed = PredicateSpace::Deserialize(
        space_text.ValueOrDie(), graph.ValueOrDie().get());
    KG_RETURN_NOT_OK(parsed.status());
    space = std::make_unique<PredicateSpace>(std::move(parsed).ValueOrDie());
  } else {
    Result<TransEEmbedding> embedding =
        TrainTransE(*graph.ValueOrDie(), options.transe_config);
    KG_RETURN_NOT_OK(embedding.status());
    space = std::make_unique<PredicateSpace>(PredicateSpace::FromTransE(
        *graph.ValueOrDie(), embedding.ValueOrDie()));
  }

  TransformationLibrary library;
  if (!options.library_path.empty()) {
    Result<std::string> library_text = ReadFileToString(options.library_path);
    KG_RETURN_NOT_OK(library_text.status());
    Result<TransformationLibrary> parsed =
        TransformationLibrary::Deserialize(library_text.ValueOrDie());
    KG_RETURN_NOT_OK(parsed.status());
    library = std::move(parsed).ValueOrDie();
  }

  return options.replace_existing
             ? ReplaceDataset(name, std::move(graph).ValueOrDie(),
                              std::move(space), std::move(library))
             : RegisterDataset(name, std::move(graph).ValueOrDie(),
                               std::move(space), std::move(library));
}

Status KgSession::SaveDataset(const std::string& name,
                              const std::string& path) const {
  DatasetLease lease = AcquireDataset(name);
  if (!lease) {
    return Status::NotFound("unknown dataset: \"" + name + "\"");
  }
  Dataset* dataset = lease.get();
  // Snapshot the live view: when anything was ingested, fold base+delta
  // into a fresh graph so the file round-trips the merged state (a later
  // LoadDataset restores exactly what queries were answering).
  std::shared_ptr<const DeltaSnapshot> pinned = dataset->overlay->Snapshot();
  if (pinned != nullptr) {
    Result<std::unique_ptr<KnowledgeGraph>> folded =
        FoldDelta(*dataset->graph, pinned.get());
    KG_RETURN_NOT_OK(folded.status());
    return SaveSnapshot(path, *folded.ValueOrDie(), *dataset->space,
                        *dataset->library);
  }
  return SaveSnapshot(path, *dataset->graph, *dataset->space,
                      *dataset->library);
}

KgSession::DatasetLease KgSession::AcquireDataset(
    const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return DatasetLease();
  it->second->in_use.Add(1);
  return DatasetLease(it->second.get());
}

bool KgSession::HasDataset(const std::string& name) const {
  MutexLock lock(&mutex_);
  return datasets_.find(name) != datasets_.end();
}

std::vector<DatasetInfo> KgSession::ListDatasets() const {
  MutexLock lock(&mutex_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) {
    std::shared_ptr<const DeltaSnapshot> pinned =
        dataset->overlay->Snapshot();
    const GraphView view(dataset->graph.get(), pinned.get());
    DatasetInfo info;
    info.name = name;
    info.nodes = view.NumNodes();
    info.edges = view.NumEdges();
    info.predicates = view.NumPredicates();
    info.epoch = view.epoch();
    out.push_back(std::move(info));
  }
  return out;
}

Result<QueryResponse> KgSession::Query(const QueryRequest& request,
                                       const CancelToken* cancel) {
  if (request.deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  return Execute(request, DeadlineFromNowMs(request.deadline_ms, clock_),
                 cancel);
}

Result<QueryResponse> KgSession::Execute(const QueryRequest& request,
                                         int64_t deadline_micros,
                                         const CancelToken* cancel,
                                         Dataset* dataset,
                                         bool pre_admitted) {
  KG_RETURN_NOT_OK(CheckProtocolVersion(request.version));
  DatasetLease lease;
  if (dataset == nullptr) {
    lease = AcquireDataset(request.dataset);
    dataset = lease.get();
  }
  if (dataset == nullptr) {
    return Status::NotFound("unknown dataset: \"" + request.dataset + "\"");
  }
  // THE snapshot pin: everything below — parsing, decomposition, search,
  // answer fill — reads this one GraphView, so the request sees exactly the
  // epoch current at resolution time regardless of concurrent commits.
  const std::shared_ptr<const DeltaSnapshot> pinned =
      dataset->overlay->Snapshot();
  const GraphView view(dataset->graph.get(), pinned.get());
  // Deliberately no deadline/cancel short-circuit here: the service's own
  // entry check handles a request that spent its whole budget queued (or
  // was revoked while waiting), so the per-dataset overload counters see
  // every such outcome.

  StopWatch total(clock_);
  QueryResponse response;
  response.dataset = request.dataset;
  response.mode = request.mode;
  response.deadline_ms = request.deadline_ms;
  response.priority = request.priority;

  // Hot path: never copy a caller-supplied QueryGraph, just borrow it.
  QueryGraph parsed_storage;
  const QueryGraph* query = nullptr;
  if (request.query_graph.has_value()) {
    query = &*request.query_graph;
  } else if (request.query_text.empty()) {
    return Status::InvalidArgument(
        "request needs query_text or query_graph");
  } else {
    StopWatch parse_watch(clock_);
    Result<QueryGraph> parsed = ParseQueryText(request.query_text, view);
    KG_RETURN_NOT_OK(parsed.status());
    parsed_storage = std::move(parsed).ValueOrDie();
    query = &parsed_storage;
    response.timings.parse_ms = parse_watch.ElapsedMillis();
  }
  // The API boundary check: a malformed QueryGraph (disconnected, no
  // target, empty predicate, ...) must answer kInvalidArgument, never trip
  // a KG_CHECK inside the engine.
  KG_RETURN_NOT_OK(query->Validate());

  if (request.mode == QueryMode::kSgq) {
    EngineOptions engine_options = ToEngineOptions(request.options);
    engine_options.deadline_micros = deadline_micros;
    engine_options.cancel = cancel;
    engine_options.view = &view;
    Result<QueryResult> result =
        pre_admitted
            ? dataset->service->QueryAdmitted(*query, engine_options)
            : dataset->service->Query(*query, engine_options,
                                      EffectivePriority(request));
    KG_RETURN_NOT_OK(result.status());
    const QueryResult& r = result.ValueOrDie();
    FillAnswers(view, r.matches, &response);
    FillStats(r.subquery_stats, r.ta_stats, &response.stats);
    response.timings.engine_ms = r.elapsed_ms;
  } else {
    TimeBoundedOptions tbq_options = ToTimeBoundedOptions(request.options);
    tbq_options.deadline_micros = deadline_micros;
    tbq_options.cancel = cancel;
    tbq_options.view = &view;
    Result<TimeBoundedResult> result =
        pre_admitted ? dataset->service->QueryTimeBoundedAdmitted(
                           *query, tbq_options)
                     : dataset->service->QueryTimeBounded(
                           *query, tbq_options, EffectivePriority(request));
    KG_RETURN_NOT_OK(result.status());
    const TimeBoundedResult& r = result.ValueOrDie();
    FillAnswers(view, r.matches, &response);
    FillStats(r.subquery_stats, r.ta_stats, &response.stats);
    response.stopped_by_time = r.stopped_by_time;
    response.timings.engine_ms = r.elapsed_ms;
  }
  response.timings.total_ms = total.ElapsedMillis();
  return response;
}

std::future<Result<QueryResponse>> KgSession::Submit(
    QueryRequest request, const CancelToken* cancel) {
  if (request.deadline_ms < 0) {
    std::promise<Result<QueryResponse>> invalid;
    invalid.set_value(Status::InvalidArgument("deadline_ms must be >= 0"));
    return invalid.get_future();
  }
  // Stamp the budget NOW: the clock runs while the task waits for a pool
  // worker, so a submission flood cannot stretch anyone's deadline.
  const int64_t deadline_micros =
      DeadlineFromNowMs(request.deadline_ms, clock_);

  // Admission is ALSO decided now, against the dataset's service (async
  // limits), so the session-level queue only ever holds admitted work and
  // overload answers in microseconds. The slot is held across the queue
  // wait and released by the task (or the shutdown path). An unknown
  // dataset skips the gate — Execute resolves it to kNotFound, and if the
  // name is registered between submission and execution the service's
  // synchronous gate still applies. The drain lease taken here rides into
  // the task (shared_ptr: SubmitTracked's std::function needs a copyable
  // closure) so the resolved Dataset — and the gate inside it — survives
  // any replacement until the task finishes.
  auto lease =
      std::make_shared<DatasetLease>(AcquireDataset(request.dataset));
  Dataset* dataset = lease->get();
  AdmissionController* gate = nullptr;
  if (dataset != nullptr) {
    gate = dataset->service->mutable_admission();
    if (!gate->TryAdmit(/*async=*/true, EffectivePriority(request))) {
      std::promise<Result<QueryResponse>> rejected;
      rejected.set_value(gate->OverCapacityStatus(
          /*async=*/true, "dataset \"" + request.dataset + "\""));
      return rejected.get_future();
    }
  }
  return SubmitTracked<Result<QueryResponse>>(
      pool_.get(), &outstanding_, &queued_,
      [this, request = std::move(request), deadline_micros, cancel, lease,
       dataset, gate]() {
        AdmissionSlot slot(gate);  // released even if execution throws
        return Execute(request, deadline_micros, cancel, dataset,
                       /*pre_admitted=*/gate != nullptr);
      },
      Result<QueryResponse>(Status::Internal("session is shutting down")),
      /*on_reject=*/[lease, gate] {
        if (gate != nullptr) gate->Release();
        lease->Release();
      });
}

std::vector<Result<QueryResponse>> KgSession::QueryBatch(
    const std::vector<QueryRequest>& requests, const CancelToken* cancel) {
  std::vector<std::future<Result<QueryResponse>>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(Submit(request, cancel));
  }
  std::vector<Result<QueryResponse>> out;
  out.reserve(requests.size());
  for (auto& fut : futures) {
    out.push_back(fut.get());
  }
  return out;
}

std::string KgSession::QueryJson(std::string_view request_json) {
  Result<QueryRequest> request = DecodeQueryRequestJson(request_json);
  if (!request.ok()) return EncodeErrorJson(request.status());
  Result<QueryResponse> response = Query(request.ValueOrDie());
  if (!response.ok()) return EncodeErrorJson(response.status());
  return EncodeQueryResponseJson(response.ValueOrDie());
}

Result<IngestResponse> KgSession::Ingest(const IngestRequest& request) {
  KG_RETURN_NOT_OK(CheckProtocolVersion(request.version));
  if (request.ops.empty()) {
    return Status::InvalidArgument("ingest request has no ops");
  }
  MutationBatch batch;
  batch.ops.reserve(request.ops.size());
  for (const IngestOpDto& op : request.ops) {
    batch.ops.push_back(
        op.retract ? Mutation::Retract(op.head, op.predicate, op.tail)
                   : Mutation::Add(op.head, op.predicate, op.tail,
                                   op.head_type, op.tail_type));
  }

  // Retry loop: a commit that loses to a concurrent compaction/replacement
  // (retired overlay → kFailedPrecondition) is transparently re-applied
  // against the freshly installed registry entry. Bounded two ways — a
  // wall-clock give-up and an iteration cap (a frozen test clock must not
  // spin forever).
  const int64_t give_up_micros = clock_->NowMicros() + 2'000'000;
  const Dataset* last_retired = nullptr;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    DatasetLease lease = AcquireDataset(request.dataset);
    Dataset* dataset = lease.get();
    if (dataset == nullptr) {
      return Status::NotFound("unknown dataset: \"" + request.dataset +
                              "\"");
    }
    // Adds must use predicates the BASE graph already interned: the
    // predicate space has embedding rows only for base predicate ids, so a
    // new predicate would search with undefined semantics. (The overlay
    // itself allows them — this policy belongs to the serving layer.)
    for (const IngestOpDto& op : request.ops) {
      if (!op.retract &&
          dataset->graph->FindPredicate(op.predicate) == kInvalidSymbol) {
        return Status::InvalidArgument(
            "unknown predicate \"" + op.predicate +
            "\": the dataset's predicate space has no embedding for it");
      }
    }
    Result<uint64_t> epoch = dataset->overlay->Commit(batch);
    if (epoch.ok()) {
      IngestResponse response;
      response.dataset = request.dataset;
      response.epoch = epoch.ValueOrDie();
      response.ops_applied = request.ops.size();
      return response;
    }
    if (epoch.status().code() != StatusCode::kFailedPrecondition) {
      return epoch.status();
    }
    if (clock_->NowMicros() >= give_up_micros) break;
    if (dataset == last_retired) {
      // The retired entry is still installed (the replacer is mid-drain);
      // yield briefly instead of hammering the registry lock.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    last_retired = dataset;
  }
  return Status::FailedPrecondition(
      "ingest into \"" + request.dataset +
      "\" kept racing dataset replacement; giving up");
}

Status KgSession::CompactDataset(const std::string& name) {
  DatasetLease lease = AcquireDataset(name);
  if (!lease) {
    return Status::NotFound("unknown dataset: \"" + name + "\"");
  }
  Dataset* dataset = lease.get();
  // Retire first: from here on no new epoch can be published, so the final
  // snapshot is THE delta to fold and no committed batch can be lost. The
  // fold itself runs without any lock held.
  std::shared_ptr<const DeltaSnapshot> final_delta =
      dataset->overlay->Retire();
  if (final_delta == nullptr) {
    dataset->overlay->Reopen();  // epoch 0: nothing to fold
    return Status::OK();
  }
  Result<std::unique_ptr<KnowledgeGraph>> folded =
      FoldDelta(*dataset->graph, final_delta.get());
  if (!folded.ok()) {
    dataset->overlay->Reopen();  // keep serving the old state
    return folded.status();
  }
  // FoldDelta preserves predicate ids, so the outgoing generation's space
  // and library keep their meaning — the new generation SHARES them.
  auto fresh = std::make_unique<Dataset>();
  fresh->graph = std::move(folded).ValueOrDie();
  fresh->space = dataset->space;
  fresh->library = dataset->library;
  fresh->overlay = std::make_unique<DeltaOverlay>(fresh->graph.get());
  fresh->service = std::make_unique<QueryService>(
      fresh->graph.get(), fresh->space.get(), fresh->library.get(),
      ServiceOptions(), clock_);
  // Release our own lease BEFORE the install drains — holding it across
  // in_use.Wait() would deadlock on ourselves. `expected` pins the swap to
  // the entry we folded: if a racing ReplaceDataset got there first our
  // fold is stale and is simply discarded (kFailedPrecondition).
  const Dataset* expected = dataset;
  lease.Release();
  // kFailedPrecondition = lost the race to a concurrent replacement; the
  // winner's dataset is serving and our fold is simply discarded.
  return InstallDataset(name, std::move(fresh), /*replace=*/true, expected);
}

Result<uint64_t> KgSession::DatasetEpoch(const std::string& name) const {
  DatasetLease lease = AcquireDataset(name);
  if (!lease) {
    return Status::NotFound("unknown dataset: \"" + name + "\"");
  }
  return lease.get()->overlay->epoch();
}

std::string KgSession::IngestJson(std::string_view request_json) {
  Result<IngestRequest> request = DecodeIngestRequestJson(request_json);
  if (!request.ok()) return EncodeErrorJson(request.status());
  Result<IngestResponse> response = Ingest(request.ValueOrDie());
  if (!response.ok()) return EncodeErrorJson(response.status());
  return EncodeIngestResponseJson(response.ValueOrDie());
}

Result<QueryGraph> KgSession::ParseQuery(const std::string& dataset,
                                         std::string_view text) const {
  DatasetLease lease = AcquireDataset(dataset);
  if (!lease) {
    return Status::NotFound("unknown dataset: \"" + dataset + "\"");
  }
  Dataset* found = lease.get();
  const std::shared_ptr<const DeltaSnapshot> pinned =
      found->overlay->Snapshot();
  return ParseQueryText(text, GraphView(found->graph.get(), pinned.get()));
}

Result<ServiceStatsSnapshot> KgSession::Stats(
    const std::string& dataset) const {
  DatasetLease lease = AcquireDataset(dataset);
  if (!lease) {
    return Status::NotFound("unknown dataset: \"" + dataset + "\"");
  }
  return lease.get()->service->Stats();
}

QueryService* KgSession::service(const std::string& dataset) const {
  DatasetLease lease = AcquireDataset(dataset);
  return lease ? lease.get()->service.get() : nullptr;
}

const KnowledgeGraph* KgSession::graph(const std::string& dataset) const {
  DatasetLease lease = AcquireDataset(dataset);
  return lease ? lease.get()->graph.get() : nullptr;
}

const PredicateSpace* KgSession::space(const std::string& dataset) const {
  DatasetLease lease = AcquireDataset(dataset);
  return lease ? lease.get()->space.get() : nullptr;
}

const TransformationLibrary* KgSession::library(
    const std::string& dataset) const {
  DatasetLease lease = AcquireDataset(dataset);
  return lease ? lease.get()->library.get() : nullptr;
}

}  // namespace kgsearch
