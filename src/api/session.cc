#include "api/session.h"

#include <utility>

#include "api/query_text.h"
#include "kg/snapshot.h"
#include "kg/triple_io.h"
#include "util/cancel.h"
#include "util/string_util.h"

namespace kgsearch {

namespace {

void FillAnswers(const KnowledgeGraph& graph,
                 const std::vector<FinalMatch>& matches,
                 QueryResponse* response) {
  response->answers.reserve(matches.size());
  for (const FinalMatch& m : matches) {
    AnswerDto answer;
    answer.id = m.pivot_match;
    answer.name = std::string(graph.NodeName(m.pivot_match));
    answer.type = std::string(graph.NodeTypeName(m.pivot_match));
    answer.score = m.score;
    response->answers.push_back(std::move(answer));
  }
}

void FillStats(const std::vector<SearchStats>& subquery_stats,
               const TaStats& ta_stats, ResponseStats* stats) {
  stats->subqueries = subquery_stats.size();
  for (const SearchStats& s : subquery_stats) {
    stats->expanded += s.expanded;
    stats->generated += s.goals_emitted;
  }
  stats->ta_sorted_accesses = ta_stats.sorted_accesses;
  stats->ta_early_terminated = ta_stats.early_terminated;
}

}  // namespace

KgSession::KgSession(KgSessionOptions options, const Clock* clock)
    : clock_(clock),
      options_(options),
      pool_(std::make_unique<ThreadPool>(
          DefaultPoolThreads(options.num_threads))) {}

KgSession::~KgSession() {
  // Async tasks capture `this` and dataset pointers; finish them before
  // services, datasets, or the pool are torn down.
  outstanding_.Wait();
}

Status KgSession::RegisterDataset(const std::string& name,
                                  std::unique_ptr<KnowledgeGraph> graph,
                                  std::unique_ptr<PredicateSpace> space,
                                  TransformationLibrary library) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (graph == nullptr || space == nullptr) {
    return Status::InvalidArgument("dataset needs a graph and a space");
  }
  if (!graph->finalized()) {
    return Status::InvalidArgument("dataset graph must be finalized");
  }
  if (space->NumPredicates() < graph->NumPredicates()) {
    return Status::InvalidArgument(StrFormat(
        "predicate space covers %zu of the graph's %zu predicates",
        space->NumPredicates(), graph->NumPredicates()));
  }

  auto dataset = std::make_unique<Dataset>();
  dataset->graph = std::move(graph);
  dataset->space = std::move(space);
  dataset->library = std::move(library);
  QueryServiceOptions service_options;
  service_options.executor = pool_.get();
  service_options.decomposition_cache_capacity =
      options_.decomposition_cache_capacity;
  service_options.matcher_cache_capacity = options_.matcher_cache_capacity;
  service_options.max_in_flight = options_.max_in_flight;
  service_options.max_queued = options_.max_queued;
  dataset->service = std::make_unique<QueryService>(
      dataset->graph.get(), dataset->space.get(), &dataset->library,
      service_options, clock_);

  MutexLock lock(&mutex_);
  auto [it, inserted] = datasets_.emplace(name, std::move(dataset));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset already registered: " + name);
  }
  return Status::OK();
}

Status KgSession::LoadDataset(const std::string& name,
                              const DatasetLoadOptions& options) {
  if (HasDataset(name)) {
    // Checked again under the registry lock, but failing before parsing and
    // training keeps the common mistake cheap.
    return Status::AlreadyExists("dataset already registered: " + name);
  }
  if (options.graph_path.empty()) {
    return Status::InvalidArgument("DatasetLoadOptions.graph_path is empty");
  }

  Result<std::string> text = ReadFileToString(options.graph_path);
  KG_RETURN_NOT_OK(text.status());

  // kgpack fast path: the file bundles graph + space + library already in
  // flat form, so the remaining load options have nothing to apply to.
  if (LooksLikeKgPack(text.ValueOrDie())) {
    if (!options.space_path.empty() || !options.library_path.empty() ||
        options.train_transe) {
      return Status::InvalidArgument(
          "kgpack snapshots bundle their own space and library; clear "
          "space_path/library_path/train_transe when loading " +
          options.graph_path);
    }
    Result<DatasetSnapshot> snapshot = DecodeSnapshot(text.ValueOrDie());
    KG_RETURN_NOT_OK(snapshot.status());
    DatasetSnapshot& parts = snapshot.ValueOrDie();
    return RegisterDataset(name, std::move(parts.graph),
                           std::move(parts.space), std::move(parts.library));
  }

  Result<std::unique_ptr<KnowledgeGraph>> graph =
      EndsWith(options.graph_path, ".tsv")
          ? ParseTsvTriples(text.ValueOrDie())
          : ParseNTriples(text.ValueOrDie());
  KG_RETURN_NOT_OK(graph.status());

  std::unique_ptr<PredicateSpace> space;
  if (!options.space_path.empty() && !options.train_transe) {
    Result<std::string> space_text = ReadFileToString(options.space_path);
    KG_RETURN_NOT_OK(space_text.status());
    Result<PredicateSpace> parsed = PredicateSpace::Deserialize(
        space_text.ValueOrDie(), graph.ValueOrDie().get());
    KG_RETURN_NOT_OK(parsed.status());
    space = std::make_unique<PredicateSpace>(std::move(parsed).ValueOrDie());
  } else {
    Result<TransEEmbedding> embedding =
        TrainTransE(*graph.ValueOrDie(), options.transe_config);
    KG_RETURN_NOT_OK(embedding.status());
    space = std::make_unique<PredicateSpace>(PredicateSpace::FromTransE(
        *graph.ValueOrDie(), embedding.ValueOrDie()));
  }

  TransformationLibrary library;
  if (!options.library_path.empty()) {
    Result<std::string> library_text = ReadFileToString(options.library_path);
    KG_RETURN_NOT_OK(library_text.status());
    Result<TransformationLibrary> parsed =
        TransformationLibrary::Deserialize(library_text.ValueOrDie());
    KG_RETURN_NOT_OK(parsed.status());
    library = std::move(parsed).ValueOrDie();
  }

  return RegisterDataset(name, std::move(graph).ValueOrDie(),
                         std::move(space), std::move(library));
}

Status KgSession::SaveDataset(const std::string& name,
                              const std::string& path) const {
  Dataset* dataset = FindDataset(name);
  if (dataset == nullptr) {
    return Status::NotFound("unknown dataset: \"" + name + "\"");
  }
  // Graph, space, and library are immutable after registration, so reading
  // them without the registry lock is safe.
  return SaveSnapshot(path, *dataset->graph, *dataset->space,
                      dataset->library);
}

KgSession::Dataset* KgSession::FindDataset(const std::string& name) const {
  MutexLock lock(&mutex_);
  return FindDatasetLocked(name);
}

KgSession::Dataset* KgSession::FindDatasetLocked(
    const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.get();
}

bool KgSession::HasDataset(const std::string& name) const {
  return FindDataset(name) != nullptr;
}

std::vector<DatasetInfo> KgSession::ListDatasets() const {
  MutexLock lock(&mutex_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) {
    DatasetInfo info;
    info.name = name;
    info.nodes = dataset->graph->NumNodes();
    info.edges = dataset->graph->NumEdges();
    info.predicates = dataset->graph->NumPredicates();
    out.push_back(std::move(info));
  }
  return out;
}

Result<QueryResponse> KgSession::Query(const QueryRequest& request,
                                       const CancelToken* cancel) {
  if (request.deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  return Execute(request, DeadlineFromNowMs(request.deadline_ms, clock_),
                 cancel);
}

Result<QueryResponse> KgSession::Execute(const QueryRequest& request,
                                         int64_t deadline_micros,
                                         const CancelToken* cancel,
                                         Dataset* dataset,
                                         bool pre_admitted) {
  KG_RETURN_NOT_OK(CheckProtocolVersion(request.version));
  if (dataset == nullptr) dataset = FindDataset(request.dataset);
  if (dataset == nullptr) {
    return Status::NotFound("unknown dataset: \"" + request.dataset + "\"");
  }
  // Deliberately no deadline/cancel short-circuit here: the service's own
  // entry check handles a request that spent its whole budget queued (or
  // was revoked while waiting), so the per-dataset overload counters see
  // every such outcome.

  StopWatch total(clock_);
  QueryResponse response;
  response.dataset = request.dataset;
  response.mode = request.mode;
  response.deadline_ms = request.deadline_ms;
  response.priority = request.priority;

  // Hot path: never copy a caller-supplied QueryGraph, just borrow it.
  QueryGraph parsed_storage;
  const QueryGraph* query = nullptr;
  if (request.query_graph.has_value()) {
    query = &*request.query_graph;
  } else if (request.query_text.empty()) {
    return Status::InvalidArgument(
        "request needs query_text or query_graph");
  } else {
    StopWatch parse_watch(clock_);
    Result<QueryGraph> parsed =
        ParseQueryText(request.query_text, dataset->graph.get());
    KG_RETURN_NOT_OK(parsed.status());
    parsed_storage = std::move(parsed).ValueOrDie();
    query = &parsed_storage;
    response.timings.parse_ms = parse_watch.ElapsedMillis();
  }
  // The API boundary check: a malformed QueryGraph (disconnected, no
  // target, empty predicate, ...) must answer kInvalidArgument, never trip
  // a KG_CHECK inside the engine.
  KG_RETURN_NOT_OK(query->Validate());

  if (request.mode == QueryMode::kSgq) {
    EngineOptions engine_options = ToEngineOptions(request.options);
    engine_options.deadline_micros = deadline_micros;
    engine_options.cancel = cancel;
    Result<QueryResult> result =
        pre_admitted
            ? dataset->service->QueryAdmitted(*query, engine_options)
            : dataset->service->Query(*query, engine_options,
                                      EffectivePriority(request));
    KG_RETURN_NOT_OK(result.status());
    const QueryResult& r = result.ValueOrDie();
    FillAnswers(*dataset->graph, r.matches, &response);
    FillStats(r.subquery_stats, r.ta_stats, &response.stats);
    response.timings.engine_ms = r.elapsed_ms;
  } else {
    TimeBoundedOptions tbq_options = ToTimeBoundedOptions(request.options);
    tbq_options.deadline_micros = deadline_micros;
    tbq_options.cancel = cancel;
    Result<TimeBoundedResult> result =
        pre_admitted ? dataset->service->QueryTimeBoundedAdmitted(
                           *query, tbq_options)
                     : dataset->service->QueryTimeBounded(
                           *query, tbq_options, EffectivePriority(request));
    KG_RETURN_NOT_OK(result.status());
    const TimeBoundedResult& r = result.ValueOrDie();
    FillAnswers(*dataset->graph, r.matches, &response);
    FillStats(r.subquery_stats, r.ta_stats, &response.stats);
    response.stopped_by_time = r.stopped_by_time;
    response.timings.engine_ms = r.elapsed_ms;
  }
  response.timings.total_ms = total.ElapsedMillis();
  return response;
}

std::future<Result<QueryResponse>> KgSession::Submit(
    QueryRequest request, const CancelToken* cancel) {
  if (request.deadline_ms < 0) {
    std::promise<Result<QueryResponse>> invalid;
    invalid.set_value(Status::InvalidArgument("deadline_ms must be >= 0"));
    return invalid.get_future();
  }
  // Stamp the budget NOW: the clock runs while the task waits for a pool
  // worker, so a submission flood cannot stretch anyone's deadline.
  const int64_t deadline_micros =
      DeadlineFromNowMs(request.deadline_ms, clock_);

  // Admission is ALSO decided now, against the dataset's service (async
  // limits), so the session-level queue only ever holds admitted work and
  // overload answers in microseconds. The slot is held across the queue
  // wait and released by the task (or the shutdown path). An unknown
  // dataset skips the gate — Execute resolves it to kNotFound, and if the
  // name is registered between submission and execution the service's
  // synchronous gate still applies. Dataset pointers are stable for the
  // session's lifetime, so the lookup is done once and carried into the
  // task.
  Dataset* dataset = FindDataset(request.dataset);
  AdmissionController* gate = nullptr;
  if (dataset != nullptr) {
    gate = dataset->service->mutable_admission();
    if (!gate->TryAdmit(/*async=*/true, EffectivePriority(request))) {
      std::promise<Result<QueryResponse>> rejected;
      rejected.set_value(gate->OverCapacityStatus(
          /*async=*/true, "dataset \"" + request.dataset + "\""));
      return rejected.get_future();
    }
  }
  return SubmitTracked<Result<QueryResponse>>(
      pool_.get(), &outstanding_, &queued_,
      [this, request = std::move(request), deadline_micros, cancel, dataset,
       gate]() {
        AdmissionSlot slot(gate);  // released even if execution throws
        return Execute(request, deadline_micros, cancel, dataset,
                       /*pre_admitted=*/gate != nullptr);
      },
      Result<QueryResponse>(Status::Internal("session is shutting down")),
      /*on_reject=*/[gate] {
        if (gate != nullptr) gate->Release();
      });
}

std::vector<Result<QueryResponse>> KgSession::QueryBatch(
    const std::vector<QueryRequest>& requests, const CancelToken* cancel) {
  std::vector<std::future<Result<QueryResponse>>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(Submit(request, cancel));
  }
  std::vector<Result<QueryResponse>> out;
  out.reserve(requests.size());
  for (auto& fut : futures) {
    out.push_back(fut.get());
  }
  return out;
}

std::string KgSession::QueryJson(std::string_view request_json) {
  Result<QueryRequest> request = DecodeQueryRequestJson(request_json);
  if (!request.ok()) return EncodeErrorJson(request.status());
  Result<QueryResponse> response = Query(request.ValueOrDie());
  if (!response.ok()) return EncodeErrorJson(response.status());
  return EncodeQueryResponseJson(response.ValueOrDie());
}

Result<QueryGraph> KgSession::ParseQuery(const std::string& dataset,
                                         std::string_view text) const {
  Dataset* found = FindDataset(dataset);
  if (found == nullptr) {
    return Status::NotFound("unknown dataset: \"" + dataset + "\"");
  }
  return ParseQueryText(text, found->graph.get());
}

Result<ServiceStatsSnapshot> KgSession::Stats(
    const std::string& dataset) const {
  Dataset* found = FindDataset(dataset);
  if (found == nullptr) {
    return Status::NotFound("unknown dataset: \"" + dataset + "\"");
  }
  return found->service->Stats();
}

QueryService* KgSession::service(const std::string& dataset) const {
  Dataset* found = FindDataset(dataset);
  return found == nullptr ? nullptr : found->service.get();
}

const KnowledgeGraph* KgSession::graph(const std::string& dataset) const {
  Dataset* found = FindDataset(dataset);
  return found == nullptr ? nullptr : found->graph.get();
}

const PredicateSpace* KgSession::space(const std::string& dataset) const {
  Dataset* found = FindDataset(dataset);
  return found == nullptr ? nullptr : found->space.get();
}

const TransformationLibrary* KgSession::library(
    const std::string& dataset) const {
  Dataset* found = FindDataset(dataset);
  return found == nullptr ? nullptr : &found->library;
}

}  // namespace kgsearch
