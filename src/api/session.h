// KgSession: the public front door of the library.
//
// One session owns a named dataset registry — each dataset is a
// (KnowledgeGraph, PredicateSpace, TransformationLibrary) triple served by
// its own QueryService — and one process-wide ThreadPool shared by every
// dataset's service, so N datasets never mean N pools. Datasets come from
// the in-memory builders (RegisterDataset) or from disk (LoadDataset:
// N-Triples/TSV graphs, optional serialized predicate space or on-the-fly
// TransE training, optional transformation-library TSV).
//
// Queries enter as QueryRequest DTOs (api/protocol.h) carrying query text
// (api/query_text grammar) or an explicit QueryGraph, and leave as
// QueryResponse DTOs with ranked answers, per-stage timings, and engine
// stats; QueryJson speaks the JSON wire form end to end. Execution routes
// through the dataset's QueryService unchanged, so facade answers are
// bit-identical to direct engine calls (the api differential tests assert
// this). Malformed input of any kind — unknown dataset, bad text, invalid
// query graph — returns a Status; the facade never KG_CHECK-aborts on user
// input.
//
// Thread-safety: all public methods may be called concurrently. Dataset
// registration is append-only (no removal), so dataset pointers stay valid
// for the session's lifetime.
#ifndef KGSEARCH_API_SESSION_H_
#define KGSEARCH_API_SESSION_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/protocol.h"
#include "embedding/transe.h"
#include "match/transformation_library.h"
#include "service/query_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgsearch {

/// Session-wide knobs; per-dataset services inherit the cache capacities
/// and admission limits.
struct KgSessionOptions {
  /// Worker threads in the shared pool; 0 = hardware concurrency (min 2).
  size_t num_threads = 0;
  /// Decomposition-plan cache entries per dataset; 0 disables.
  size_t decomposition_cache_capacity = 512;
  /// Matcher candidate cache entries per dataset per kind; 0 disables.
  size_t matcher_cache_capacity = 4096;
  /// Per-dataset admission limits (see service/admission.h): requests over
  /// capacity fail fast with kResourceExhausted instead of queueing
  /// without bound. 0 = admission control off (the default).
  size_t max_in_flight = 0;
  size_t max_queued = 0;
  /// Whether request-supplied priority is honored. kHigh bypasses the
  /// admission limits, so a session whose requests come from untrusted
  /// wire clients (QueryJson) should set this to false — every request is
  /// then treated as kNormal and the limits actually bind. True by
  /// default for in-process callers, who are as trusted as the limits
  /// they configured.
  bool honor_request_priority = true;
};

/// How to load one dataset from disk.
struct DatasetLoadOptions {
  /// Graph file. A kgpack snapshot (detected by its magic bytes, see
  /// kg/snapshot.h) restores the whole dataset — graph, predicate space,
  /// and transformation library — directly from flat buffers, in which case
  /// the other fields must be left empty/false. Otherwise ".tsv" parses as
  /// TSV triples and anything else as N-Triples.
  std::string graph_path;
  /// Serialized PredicateSpace (optional; empty = train TransE).
  std::string space_path;
  /// Transformation-library TSV (optional; empty = no alias records).
  std::string library_path;
  /// Train TransE even when space_path is set.
  bool train_transe = false;
  /// TransE hyper-parameters used when training.
  TransEConfig transe_config = {.dim = 48, .epochs = 60};
};

/// Registry listing entry.
struct DatasetInfo {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  size_t predicates = 0;
};

/// The facade: dataset registry + request execution over one shared pool.
class KgSession {
 public:
  explicit KgSession(KgSessionOptions options = {},
                     const Clock* clock = SystemClock::Default());
  /// Waits for in-flight async requests, then tears down services and pool.
  ~KgSession();

  KgSession(const KgSession&) = delete;
  KgSession& operator=(const KgSession&) = delete;

  // ----- dataset registry -----

  /// Registers an in-memory dataset under `name` (graph must be finalized).
  /// kAlreadyExists when the name is taken; kInvalidArgument on null parts.
  Status RegisterDataset(const std::string& name,
                         std::unique_ptr<KnowledgeGraph> graph,
                         std::unique_ptr<PredicateSpace> space,
                         TransformationLibrary library);

  /// Loads a dataset from disk per `options` and registers it. Snapshot
  /// files take the kgpack fast path: no parsing, no training.
  Status LoadDataset(const std::string& name,
                     const DatasetLoadOptions& options);

  /// Serializes a registered dataset to a kgpack snapshot file that a later
  /// LoadDataset (or another process) restores bit-identically —
  /// snapshot-served answers match freshly-trained ones exactly.
  Status SaveDataset(const std::string& name, const std::string& path) const;

  bool HasDataset(const std::string& name) const;
  std::vector<DatasetInfo> ListDatasets() const;

  // ----- query execution -----

  /// Synchronous request execution (SGQ or TBQ per request.mode). A
  /// request.deadline_ms budget is stamped into an absolute engine
  /// deadline HERE, at acceptance; expiry mid-query returns
  /// kDeadlineExceeded. `cancel` (optional, non-owning, must outlive the
  /// call) revokes the request cooperatively: kCancelled. Admission
  /// overload returns kResourceExhausted. request.priority == kHigh
  /// bypasses admission limits.
  Result<QueryResponse> Query(const QueryRequest& request,
                              const CancelToken* cancel = nullptr);

  /// Asynchronous execution on the shared pool. The deadline budget is
  /// stamped at submission, so time spent queued counts against it; a
  /// request that waits out its whole budget resolves to
  /// kDeadlineExceeded without running the engines. Admission against the
  /// dataset's service is ALSO decided at submission (async limits:
  /// max_in_flight + max_queued), so overload resolves the future with
  /// kResourceExhausted immediately instead of after a queue wait — the
  /// session-level queue holds only admitted work. `cancel` must outlive
  /// the future's resolution.
  std::future<Result<QueryResponse>> Submit(QueryRequest request,
                                            const CancelToken* cancel =
                                                nullptr);

  /// Executes a batch concurrently; results come back in request order
  /// (each entry succeeds or fails independently). One optional token
  /// revokes the whole batch.
  std::vector<Result<QueryResponse>> QueryBatch(
      const std::vector<QueryRequest>& requests,
      const CancelToken* cancel = nullptr);

  /// The JSON wire entry point: decodes a request document, executes it,
  /// and encodes the response — or an {"error": ...} document for any
  /// failure. Never throws or aborts on malformed input.
  std::string QueryJson(std::string_view request_json);

  /// Parses query text against `dataset`'s graph (type inference for
  /// specific nodes) without executing it.
  Result<QueryGraph> ParseQuery(const std::string& dataset,
                                std::string_view text) const;

  // ----- introspection (parity tests, demos, stats) -----

  /// Per-dataset serving counters; kNotFound for unknown names. Note that
  /// `queue_depth` there covers only QueryService-level submissions;
  /// facade async requests (Submit/QueryBatch) queue session-wide — read
  /// KgSession::queue_depth() for that load signal.
  Result<ServiceStatsSnapshot> Stats(const std::string& dataset) const;

  /// Facade async requests submitted but not yet started (a load signal,
  /// racy by nature).
  size_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  /// Borrowed pointers, valid for the session's lifetime; nullptr when the
  /// dataset is unknown.
  QueryService* service(const std::string& dataset) const;
  const KnowledgeGraph* graph(const std::string& dataset) const;
  const PredicateSpace* space(const std::string& dataset) const;
  const TransformationLibrary* library(const std::string& dataset) const;

  size_t num_threads() const { return pool_->num_threads(); }

 private:
  struct Dataset {
    std::unique_ptr<KnowledgeGraph> graph;
    std::unique_ptr<PredicateSpace> space;
    TransformationLibrary library;
    std::unique_ptr<QueryService> service;
  };

  /// Stable pointer lookup; takes the registry lock itself. The returned
  /// pointer stays valid for the session's lifetime (registration is
  /// append-only), so callers may use it after the lock is gone.
  Dataset* FindDataset(const std::string& name) const EXCLUDES(mutex_);
  /// Lookup core for callers already inside the registry lock.
  Dataset* FindDatasetLocked(const std::string& name) const
      REQUIRES(mutex_);

  /// The priority admission actually sees: the request's own unless the
  /// session is configured to distrust it. Responses still echo what the
  /// client sent.
  RequestPriority EffectivePriority(const QueryRequest& request) const {
    return options_.honor_request_priority ? request.priority
                                           : RequestPriority::kNormal;
  }

  /// Request execution after the deadline budget has been stamped into an
  /// absolute clock time (0 = none). Query stamps at call time, Submit at
  /// submission time — both before any queueing or parsing. `dataset` is
  /// the pre-resolved registry entry when the caller already looked it up
  /// (pointers are stable for the session's lifetime), null to resolve
  /// here. When `pre_admitted` is set the caller already holds an
  /// admission slot on the dataset's service (Submit's path) and owes its
  /// release; otherwise the service's synchronous gate applies.
  /// Deadline/cancel outcomes are always surfaced (and counted) by the
  /// service, never short-circuited here, so the per-dataset overload
  /// counters stay truthful.
  Result<QueryResponse> Execute(const QueryRequest& request,
                                int64_t deadline_micros,
                                const CancelToken* cancel,
                                Dataset* dataset = nullptr,
                                bool pre_admitted = false);

  const Clock* clock_;
  KgSessionOptions options_;
  /// Declared before datasets_: services (which reference the pool) are
  /// destroyed first, the pool last.
  std::unique_ptr<ThreadPool> pool_;
  /// Registry lock ("session" layer in util/mutex.h's lock ordering):
  /// guards only the map structure — Dataset contents are immutable after
  /// registration and each service synchronizes itself.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Dataset>> datasets_
      GUARDED_BY(mutex_);
  /// Facade async requests enqueued but not yet started.
  std::atomic<size_t> queued_{0};
  /// Async requests not yet finished; drained by the destructor before any
  /// dataset or the pool is torn down.
  WaitGroup outstanding_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_API_SESSION_H_
