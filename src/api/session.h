// KgSession: the public front door of the library.
//
// One session owns a named dataset registry — each dataset is a
// (KnowledgeGraph, PredicateSpace, TransformationLibrary) triple served by
// its own QueryService — and one process-wide ThreadPool shared by every
// dataset's service, so N datasets never mean N pools. Datasets come from
// the in-memory builders (RegisterDataset) or from disk (LoadDataset:
// N-Triples/TSV graphs, optional serialized predicate space or on-the-fly
// TransE training, optional transformation-library TSV).
//
// Queries enter as QueryRequest DTOs (api/protocol.h) carrying query text
// (api/query_text grammar) or an explicit QueryGraph, and leave as
// QueryResponse DTOs with ranked answers, per-stage timings, and engine
// stats; QueryJson speaks the JSON wire form end to end. Execution routes
// through the dataset's QueryService unchanged, so facade answers are
// bit-identical to direct engine calls (the api differential tests assert
// this). Malformed input of any kind — unknown dataset, bad text, invalid
// query graph — returns a Status; the facade never KG_CHECK-aborts on user
// input.
//
// Dynamic graphs (ROADMAP item 3): every dataset carries a DeltaOverlay
// (kg/delta_overlay.h). Ingest() commits mutation batches against it;
// each query pins the overlay's published snapshot at dataset-resolution
// time and runs entirely against that one GraphView, so no query ever sees
// half a batch. CompactDataset() folds base+delta into a fresh graph and
// swaps it in blue-green: the new dataset (sharing the predicate space and
// transformation library of the old) replaces the registry entry
// atomically, in-flight queries finish on the old graph under a drain
// lease, and the old dataset is destroyed only after the drain.
//
// Thread-safety: all public methods may be called concurrently. A registry
// entry can be REPLACED (ReplaceDataset, CompactDataset, LoadDataset with
// replace_existing), so internal access goes through drain leases: a
// lease, taken under the registry lock, keeps the resolved Dataset alive
// until released; replacement waits for every lease before destroying the
// old dataset. The borrowed pointers returned by service()/graph()/...
// are valid until the named dataset is replaced or compacted (forever, if
// the caller never does either — the pre-replacement contract).
#ifndef KGSEARCH_API_SESSION_H_
#define KGSEARCH_API_SESSION_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/protocol.h"
#include "embedding/transe.h"
#include "kg/delta_overlay.h"
#include "match/transformation_library.h"
#include "service/query_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgsearch {

/// Session-wide knobs; per-dataset services inherit the cache capacities
/// and admission limits.
struct KgSessionOptions {
  /// Worker threads in the shared pool; 0 = hardware concurrency (min 2).
  size_t num_threads = 0;
  /// Decomposition-plan cache entries per dataset; 0 disables.
  size_t decomposition_cache_capacity = 512;
  /// Matcher candidate cache entries per dataset per kind; 0 disables.
  size_t matcher_cache_capacity = 4096;
  /// Per-dataset admission limits (see service/admission.h): requests over
  /// capacity fail fast with kResourceExhausted instead of queueing
  /// without bound. 0 = admission control off (the default).
  size_t max_in_flight = 0;
  size_t max_queued = 0;
  /// Whether request-supplied priority is honored. kHigh bypasses the
  /// admission limits, so a session whose requests come from untrusted
  /// wire clients (QueryJson) should set this to false — every request is
  /// then treated as kNormal and the limits actually bind. True by
  /// default for in-process callers, who are as trusted as the limits
  /// they configured.
  bool honor_request_priority = true;
};

/// How to load one dataset from disk.
struct DatasetLoadOptions {
  /// Graph file. A kgpack snapshot (detected by its magic bytes, see
  /// kg/snapshot.h) restores the whole dataset — graph, predicate space,
  /// and transformation library — directly from flat buffers, in which case
  /// the other fields must be left empty/false. Otherwise ".tsv" parses as
  /// TSV triples and anything else as N-Triples.
  std::string graph_path;
  /// Serialized PredicateSpace (optional; empty = train TransE).
  std::string space_path;
  /// Transformation-library TSV (optional; empty = no alias records).
  std::string library_path;
  /// Train TransE even when space_path is set.
  bool train_transe = false;
  /// TransE hyper-parameters used when training.
  TransEConfig transe_config = {.dim = 48, .epochs = 60};
  /// Atomically replace an existing dataset of the same name (blue-green,
  /// with drain) instead of failing kAlreadyExists.
  bool replace_existing = false;
};

/// Registry listing entry. Counts reflect the live view (base graph plus
/// the current delta epoch), not just the base.
struct DatasetInfo {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  size_t predicates = 0;
  /// Current delta epoch (0 = pristine base, nothing ingested since the
  /// last registration/compaction).
  uint64_t epoch = 0;
};

/// The facade: dataset registry + request execution over one shared pool.
class KgSession {
 public:
  explicit KgSession(KgSessionOptions options = {},
                     const Clock* clock = SystemClock::Default());
  /// Waits for in-flight async requests, then tears down services and pool.
  ~KgSession();

  KgSession(const KgSession&) = delete;
  KgSession& operator=(const KgSession&) = delete;

  // ----- dataset registry -----

  /// Registers an in-memory dataset under `name` (graph must be finalized).
  /// kAlreadyExists when the name is taken; kInvalidArgument on null parts.
  Status RegisterDataset(const std::string& name,
                         std::unique_ptr<KnowledgeGraph> graph,
                         std::unique_ptr<PredicateSpace> space,
                         TransformationLibrary library);

  /// Registers like RegisterDataset, but an existing dataset of the same
  /// name is atomically replaced (blue-green): queries resolving the name
  /// after the swap run on the new dataset, in-flight queries finish on the
  /// old one, the old delta overlay is retired (pending Ingests fail fast
  /// and retry onto the new dataset), and the old dataset is destroyed
  /// after its last lease drains. This is the fix for the registration
  /// name-collision bug: previously the only choices were kAlreadyExists
  /// or an unsynchronized unload.
  Status ReplaceDataset(const std::string& name,
                        std::unique_ptr<KnowledgeGraph> graph,
                        std::unique_ptr<PredicateSpace> space,
                        TransformationLibrary library);

  /// Loads a dataset from disk per `options` and registers it. Snapshot
  /// files take the kgpack fast path: no parsing, no training.
  Status LoadDataset(const std::string& name,
                     const DatasetLoadOptions& options);

  /// Serializes a registered dataset to a kgpack snapshot file that a later
  /// LoadDataset (or another process) restores bit-identically —
  /// snapshot-served answers match freshly-trained ones exactly.
  Status SaveDataset(const std::string& name, const std::string& path) const;

  bool HasDataset(const std::string& name) const;
  std::vector<DatasetInfo> ListDatasets() const;

  // ----- live ingest (delta overlay) -----

  /// Commits one mutation batch against the named dataset's delta overlay,
  /// all-or-nothing; the response carries the epoch the batch published.
  /// Queries accepted after the commit returns see every op; queries
  /// already pinned keep their snapshot. Predicates of added triples must
  /// already exist in the dataset (its predicate space has no embedding
  /// rows for new ones): kInvalidArgument otherwise. A batch that races a
  /// concurrent compaction/replacement is retried transparently against
  /// the new registry entry.
  Result<IngestResponse> Ingest(const IngestRequest& request);

  /// Folds the dataset's delta into a fresh finalized base graph
  /// (kg/delta_overlay.h FoldDelta — bit-identical to a from-scratch
  /// build) and swaps it in blue-green, sharing the predicate space and
  /// transformation library with the outgoing generation. The new overlay
  /// starts empty at epoch 0. No-op when nothing was ingested. Queries are
  /// never failed by the swap: in-flight ones finish on the old graph.
  Status CompactDataset(const std::string& name);

  /// The dataset's current delta epoch (0 = pristine base); kNotFound for
  /// unknown names.
  Result<uint64_t> DatasetEpoch(const std::string& name) const;

  // ----- query execution -----

  /// Synchronous request execution (SGQ or TBQ per request.mode). A
  /// request.deadline_ms budget is stamped into an absolute engine
  /// deadline HERE, at acceptance; expiry mid-query returns
  /// kDeadlineExceeded. `cancel` (optional, non-owning, must outlive the
  /// call) revokes the request cooperatively: kCancelled. Admission
  /// overload returns kResourceExhausted. request.priority == kHigh
  /// bypasses admission limits.
  Result<QueryResponse> Query(const QueryRequest& request,
                              const CancelToken* cancel = nullptr);

  /// Asynchronous execution on the shared pool. The deadline budget is
  /// stamped at submission, so time spent queued counts against it; a
  /// request that waits out its whole budget resolves to
  /// kDeadlineExceeded without running the engines. Admission against the
  /// dataset's service is ALSO decided at submission (async limits:
  /// max_in_flight + max_queued), so overload resolves the future with
  /// kResourceExhausted immediately instead of after a queue wait — the
  /// session-level queue holds only admitted work. `cancel` must outlive
  /// the future's resolution.
  std::future<Result<QueryResponse>> Submit(QueryRequest request,
                                            const CancelToken* cancel =
                                                nullptr);

  /// Executes a batch concurrently; results come back in request order
  /// (each entry succeeds or fails independently). One optional token
  /// revokes the whole batch.
  std::vector<Result<QueryResponse>> QueryBatch(
      const std::vector<QueryRequest>& requests,
      const CancelToken* cancel = nullptr);

  /// The JSON wire entry point: decodes a request document, executes it,
  /// and encodes the response — or an {"error": ...} document for any
  /// failure. Never throws or aborts on malformed input.
  std::string QueryJson(std::string_view request_json);

  /// The JSON wire entry point for ingest: decodes an
  /// {"v":1,"ingest":{...}} document, commits it, and encodes the
  /// response — or an {"error": ...} document. Never throws or aborts.
  std::string IngestJson(std::string_view request_json);

  /// Parses query text against `dataset`'s graph (type inference for
  /// specific nodes) without executing it.
  Result<QueryGraph> ParseQuery(const std::string& dataset,
                                std::string_view text) const;

  // ----- introspection (parity tests, demos, stats) -----

  /// Per-dataset serving counters; kNotFound for unknown names. Note that
  /// `queue_depth` there covers only QueryService-level submissions;
  /// facade async requests (Submit/QueryBatch) queue session-wide — read
  /// KgSession::queue_depth() for that load signal.
  Result<ServiceStatsSnapshot> Stats(const std::string& dataset) const;

  /// Facade async requests submitted but not yet started (a load signal,
  /// racy by nature).
  size_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  /// Borrowed pointers, valid until the named dataset is replaced or
  /// compacted (so: for the session's lifetime, if the caller never does
  /// either); nullptr when the dataset is unknown.
  QueryService* service(const std::string& dataset) const;
  const KnowledgeGraph* graph(const std::string& dataset) const;
  const PredicateSpace* space(const std::string& dataset) const;
  const TransformationLibrary* library(const std::string& dataset) const;

  size_t num_threads() const { return pool_->num_threads(); }

 private:
  struct Dataset {
    std::unique_ptr<KnowledgeGraph> graph;
    /// Shared (not owned 1:1): a compaction generation reuses the previous
    /// generation's space and library — FoldDelta preserves predicate ids,
    /// so the embedding rows keep their meaning.
    std::shared_ptr<PredicateSpace> space;
    std::shared_ptr<TransformationLibrary> library;
    /// Writer-side mutation entry point; always present (epoch 0 = no
    /// deltas). Queries pin overlay->Snapshot() at dataset resolution.
    std::unique_ptr<DeltaOverlay> overlay;
    std::unique_ptr<QueryService> service;
    /// Drain gate: one count per outstanding DatasetLease. Replacement
    /// waits for zero before destroying this dataset, so every lease-held
    /// pointer stays valid without per-read locking.
    WaitGroup in_use;
  };

  /// RAII drain lease over one registry entry. Acquired under the registry
  /// lock (AcquireDataset); while held, the Dataset outlives any
  /// replacement (the replacer blocks in in_use.Wait()). Destruction on
  /// the replacer's thread is guaranteed: leases never own the Dataset,
  /// they only defer its teardown.
  class DatasetLease {
   public:
    DatasetLease() = default;
    /// `dataset` must have had in_use.Add(1) called on the caller's behalf.
    explicit DatasetLease(Dataset* dataset) : dataset_(dataset) {}
    DatasetLease(DatasetLease&& other) noexcept
        : dataset_(other.dataset_) {
      other.dataset_ = nullptr;
    }
    DatasetLease& operator=(DatasetLease&& other) noexcept {
      if (this != &other) {
        Release();
        dataset_ = other.dataset_;
        other.dataset_ = nullptr;
      }
      return *this;
    }
    DatasetLease(const DatasetLease&) = delete;
    DatasetLease& operator=(const DatasetLease&) = delete;
    ~DatasetLease() { Release(); }

    void Release() {
      if (dataset_ != nullptr) {
        dataset_->in_use.Done();
        dataset_ = nullptr;
      }
    }
    Dataset* get() const { return dataset_; }
    explicit operator bool() const { return dataset_ != nullptr; }

   private:
    Dataset* dataset_ = nullptr;
  };

  /// Resolves `name` and takes a drain lease on the entry (null lease when
  /// unknown). The lease keeps the Dataset alive across replacement.
  DatasetLease AcquireDataset(const std::string& name) const
      EXCLUDES(mutex_);

  /// Builds a ready-to-serve Dataset (validations + overlay + service)
  /// from its parts. Shared by Register/Replace; compaction assembles its
  /// own (it reuses space/library instead of validating fresh ones).
  Result<std::unique_ptr<Dataset>> BuildDataset(
      std::unique_ptr<KnowledgeGraph> graph,
      std::shared_ptr<PredicateSpace> space,
      std::shared_ptr<TransformationLibrary> library);

  /// The one registry write path. Installs `dataset` under `name`; an
  /// existing entry either rejects the install (kAlreadyExists, `replace`
  /// false) or is swapped out atomically, retired (pending Ingests fail
  /// fast and retry), drained, and destroyed — on this thread, after every
  /// lease is gone. `expected` (optional) aborts the swap with
  /// kFailedPrecondition when the current entry is no longer that pointer
  /// (compaction's conflict check against a racing replacement).
  Status InstallDataset(const std::string& name,
                        std::unique_ptr<Dataset> dataset, bool replace,
                        const Dataset* expected = nullptr)
      EXCLUDES(mutex_);

  /// The QueryServiceOptions every generation of every dataset serves
  /// with.
  QueryServiceOptions ServiceOptions() const;

  /// The priority admission actually sees: the request's own unless the
  /// session is configured to distrust it. Responses still echo what the
  /// client sent.
  RequestPriority EffectivePriority(const QueryRequest& request) const {
    return options_.honor_request_priority ? request.priority
                                           : RequestPriority::kNormal;
  }

  /// Request execution after the deadline budget has been stamped into an
  /// absolute clock time (0 = none). Query stamps at call time, Submit at
  /// submission time — both before any queueing or parsing. `dataset` is
  /// the pre-resolved entry when the caller already holds a lease on it
  /// (Submit's path — the lease must outlive the call), null to resolve
  /// (and lease) here. The snapshot pin happens HERE, at resolution: the
  /// whole request — parsing, decomposition, search, answer fill — runs
  /// against one GraphView of the epoch current at this moment. When
  /// `pre_admitted` is set the caller already holds an admission slot on
  /// the dataset's service (Submit's path) and owes its release; otherwise
  /// the service's synchronous gate applies. Deadline/cancel outcomes are
  /// always surfaced (and counted) by the service, never short-circuited
  /// here, so the per-dataset overload counters stay truthful.
  Result<QueryResponse> Execute(const QueryRequest& request,
                                int64_t deadline_micros,
                                const CancelToken* cancel,
                                Dataset* dataset = nullptr,
                                bool pre_admitted = false);

  const Clock* clock_;
  KgSessionOptions options_;
  /// Declared before datasets_: services (which reference the pool) are
  /// destroyed first, the pool last.
  std::unique_ptr<ThreadPool> pool_;
  /// Registry lock ("session" layer in util/mutex.h's lock ordering):
  /// guards the map structure and lease acquisition — Dataset contents are
  /// immutable after registration (the overlay and service synchronize
  /// themselves), and entry lifetime is governed by the drain leases.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Dataset>> datasets_
      GUARDED_BY(mutex_);
  /// Facade async requests enqueued but not yet started.
  std::atomic<size_t> queued_{0};
  /// Async requests not yet finished; drained by the destructor before any
  /// dataset or the pool is torn down.
  WaitGroup outstanding_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_API_SESSION_H_
