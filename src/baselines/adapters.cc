#include "baselines/adapters.h"

namespace kgsearch {

SgqMethod::SgqMethod(MethodContext context, EngineOptions options)
    : engine_(context.graph, context.space, context.library),
      options_(options) {}

Result<std::vector<NodeId>> SgqMethod::QueryTopK(const QueryGraph& query,
                                                 int answer_node,
                                                 size_t k) const {
  EngineOptions options = options_;
  options.k = k;
  Result<QueryResult> r = engine_.Query(query, options);
  if (!r.ok()) return r.status();
  const QueryResult& result = r.ValueOrDie();
  return ExtractAnswers(result.matches, result.decomposition, answer_node);
}

TbqMethod::TbqMethod(std::string label, MethodContext context,
                     TimeBoundedOptions options)
    : label_(std::move(label)),
      engine_(context.graph, context.space, context.library),
      options_(options) {}

Result<std::vector<NodeId>> TbqMethod::QueryTopK(const QueryGraph& query,
                                                 int answer_node,
                                                 size_t k) const {
  TimeBoundedOptions options = options_;
  options.k = k;
  Result<TimeBoundedResult> r = engine_.Query(query, options);
  if (!r.ok()) return r.status();
  const TimeBoundedResult& result = r.ValueOrDie();
  return ExtractAnswers(result.matches, result.decomposition, answer_node);
}

}  // namespace kgsearch
