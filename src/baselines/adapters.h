// GraphQueryMethod adapters over the paper's own engines (SGQ and TBQ), so
// the evaluation harness can run every method through one interface.
#ifndef KGSEARCH_BASELINES_ADAPTERS_H_
#define KGSEARCH_BASELINES_ADAPTERS_H_

#include "baselines/method.h"
#include "core/engine.h"
#include "core/time_bounded.h"

namespace kgsearch {

/// SGQ (Section V) behind the common method interface.
class SgqMethod : public GraphQueryMethod {
 public:
  SgqMethod(MethodContext context, EngineOptions options);

  std::string name() const override { return "SGQ"; }
  Result<std::vector<NodeId>> QueryTopK(const QueryGraph& query,
                                        int answer_node,
                                        size_t k) const override;

  const SgqEngine& engine() const { return engine_; }

 private:
  SgqEngine engine_;
  EngineOptions options_;
};

/// TBQ (Section VI) behind the common method interface; the label carries
/// the configured time bound (e.g. "TBQ-0.9" for 90% of SGQ's time).
class TbqMethod : public GraphQueryMethod {
 public:
  TbqMethod(std::string label, MethodContext context,
            TimeBoundedOptions options);

  std::string name() const override { return label_; }
  Result<std::vector<NodeId>> QueryTopK(const QueryGraph& query,
                                        int answer_node,
                                        size_t k) const override;

  /// Adjusts the time bound (the harness derives it from SGQ's measured
  /// time per query).
  void set_time_bound_micros(int64_t micros) {
    options_.time_bound_micros = micros;
  }

 private:
  std::string label_;
  TbqEngine engine_;
  TimeBoundedOptions options_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_BASELINES_ADAPTERS_H_
