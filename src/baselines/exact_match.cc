#include "baselines/exact_match.h"

#include <algorithm>
#include <functional>
#include <set>

namespace kgsearch {

namespace {

/// Per-query resolved constraint for one query node.
struct ExactNodeConstraint {
  bool specific = false;
  std::vector<NodeId> nodes;  // sorted
  std::vector<TypeId> types;  // sorted

  bool Matches(const KnowledgeGraph& g, NodeId u) const {
    if (specific) return std::binary_search(nodes.begin(), nodes.end(), u);
    return std::binary_search(types.begin(), types.end(), g.NodeType(u));
  }
};

}  // namespace

ExactMatchMethod::ExactMatchMethod(std::string name, MethodContext context,
                                   ExactMatchPolicy policy)
    : name_(std::move(name)), context_(context), policy_(policy) {
  KG_CHECK(context_.graph != nullptr);
  KG_CHECK(!policy_.predicate_mapping || context_.space != nullptr);
}

Result<std::vector<NodeId>> ExactMatchMethod::QueryTopK(
    const QueryGraph& query, int answer_node, size_t k) const {
  KG_RETURN_NOT_OK(query.Validate());
  const KnowledgeGraph& g = *context_.graph;

  // ---- resolve node constraints ----
  std::vector<ExactNodeConstraint> constraints(query.NumNodes());
  for (size_t i = 0; i < query.NumNodes(); ++i) {
    const QueryNode& qn = query.node(static_cast<int>(i));
    ExactNodeConstraint& c = constraints[i];
    if (qn.is_specific()) {
      c.specific = true;
      if (policy_.name_library && context_.library != nullptr) {
        for (const Resolution& r : context_.library->ResolveName(qn.name)) {
          NodeId u = g.FindNode(r.canonical);
          if (u != kInvalidNode) c.nodes.push_back(u);
        }
      } else {
        NodeId u = g.FindNode(qn.name);
        if (u != kInvalidNode) c.nodes.push_back(u);
      }
      std::sort(c.nodes.begin(), c.nodes.end());
      if (c.nodes.empty()) {
        return Status::NotFound(name_ + ": unresolved entity " + qn.name);
      }
    } else {
      if (policy_.type_library && context_.library != nullptr) {
        for (const Resolution& r : context_.library->ResolveType(qn.type)) {
          TypeId t = g.FindType(r.canonical);
          if (t != kInvalidSymbol) c.types.push_back(t);
        }
      } else {
        TypeId t = g.FindType(qn.type);
        if (t != kInvalidSymbol) c.types.push_back(t);
      }
      std::sort(c.types.begin(), c.types.end());
      if (c.types.empty()) {
        return Status::NotFound(name_ + ": unresolved type " + qn.type);
      }
    }
  }

  // ---- resolve predicates (optionally mapping to the closest predicate
  // that actually labels edges, SLQ/QGA's transformation behaviour) ----
  std::vector<bool> labels_edges(g.NumPredicates(), false);
  for (const Triple& t : g.triples()) labels_edges[t.predicate] = true;
  std::vector<PredicateId> predicates(query.NumEdges());
  for (size_t e = 0; e < query.NumEdges(); ++e) {
    PredicateId p = g.FindPredicate(query.edge(static_cast<int>(e)).predicate);
    if (p == kInvalidSymbol) {
      return Status::NotFound(name_ + ": unresolved predicate " +
                              query.edge(static_cast<int>(e)).predicate);
    }
    if (!labels_edges[p]) {
      if (!policy_.predicate_mapping) {
        return Status::NotFound(name_ + ": predicate labels no edges: " +
                                std::string(g.PredicateName(p)));
      }
      // Top-1 similar predicate among those with edges: a single exact
      // scan, folding the argmax inline — no top-k selection machinery.
      // Strict > keeps the lowest id on ties, matching the sorted
      // (similarity desc, id asc) order this replaced.
      PredicateId best = kInvalidSymbol;
      double best_sim = 0.0;
      context_.space->SimilarityScan(
          p, [&](PredicateId q, double sim) {
            if (q >= labels_edges.size() || !labels_edges[q]) return;
            if (best == kInvalidSymbol || sim > best_sim) {
              best = q;
              best_sim = sim;
            }
          });
      if (best != kInvalidSymbol) p = best;
    }
    predicates[e] = p;
  }

  // ---- matching order: BFS over query nodes from a specific node ----
  std::vector<std::vector<std::pair<int, int>>> qadj(query.NumNodes());
  for (size_t e = 0; e < query.NumEdges(); ++e) {
    const QueryEdge& qe = query.edge(static_cast<int>(e));
    qadj[static_cast<size_t>(qe.from)].push_back({qe.to, static_cast<int>(e)});
    qadj[static_cast<size_t>(qe.to)].push_back({qe.from, static_cast<int>(e)});
  }
  std::vector<int> order;
  {
    std::vector<bool> seen(query.NumNodes(), false);
    int root = query.SpecificNodes().front();
    std::vector<int> bfs{root};
    seen[static_cast<size_t>(root)] = true;
    for (size_t h = 0; h < bfs.size(); ++h) {
      order.push_back(bfs[h]);
      for (const auto& [to, _] : qadj[static_cast<size_t>(bfs[h])]) {
        if (!seen[static_cast<size_t>(to)]) {
          seen[static_cast<size_t>(to)] = true;
          bfs.push_back(to);
        }
      }
    }
  }

  // ---- backtracking subgraph matching (undirected edge semantics) ----
  constexpr uint64_t kStepBudget = 500'000;
  uint64_t steps = 0;
  std::vector<NodeId> assignment(query.NumNodes(), kInvalidNode);
  std::set<NodeId> answers;

  auto edge_ok = [&](NodeId a, PredicateId p, NodeId b) {
    return g.HasTriple(a, p, b) || g.HasTriple(b, p, a);
  };

  std::function<void(size_t)> match = [&](size_t pos) {
    if (steps++ > kStepBudget) return;
    if (pos == order.size()) {
      answers.insert(assignment[static_cast<size_t>(answer_node)]);
      return;
    }
    const int qn = order[pos];
    const ExactNodeConstraint& c = constraints[static_cast<size_t>(qn)];

    // Candidates: from an already-assigned query neighbor's adjacency (the
    // BFS order guarantees one exists for pos > 0).
    std::vector<NodeId> candidates;
    if (pos == 0) {
      candidates = c.nodes;  // root is specific
    } else {
      int anchor_q = -1, anchor_e = -1;
      for (const auto& [to, e] : qadj[static_cast<size_t>(qn)]) {
        if (assignment[static_cast<size_t>(to)] != kInvalidNode) {
          anchor_q = to;
          anchor_e = e;
          break;
        }
      }
      KG_CHECK(anchor_q >= 0);
      const NodeId anchored = assignment[static_cast<size_t>(anchor_q)];
      const PredicateId need = predicates[static_cast<size_t>(anchor_e)];
      for (const AdjEntry& adj : g.Neighbors(anchored)) {
        if (adj.predicate == need) candidates.push_back(adj.neighbor);
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
    }

    for (NodeId u : candidates) {
      if (!c.Matches(g, u)) continue;
      // Injectivity (isomorphism) and all incident edges to assigned nodes.
      bool ok = true;
      for (size_t j = 0; j < assignment.size(); ++j) {
        if (assignment[j] == u) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (const auto& [to, e] : qadj[static_cast<size_t>(qn)]) {
        const NodeId v = assignment[static_cast<size_t>(to)];
        if (v != kInvalidNode &&
            !edge_ok(u, predicates[static_cast<size_t>(e)], v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      assignment[static_cast<size_t>(qn)] = u;
      match(pos + 1);
      assignment[static_cast<size_t>(qn)] = kInvalidNode;
    }
  };
  match(0);

  std::vector<NodeId> out(answers.begin(), answers.end());
  if (out.size() > k) out.resize(k);
  return out;
}

std::unique_ptr<GraphQueryMethod> MakeGStore(MethodContext context) {
  return std::make_unique<ExactMatchMethod>("gStore", context,
                                            ExactMatchPolicy{});
}

std::unique_ptr<GraphQueryMethod> MakeSlq(MethodContext context) {
  return std::make_unique<ExactMatchMethod>(
      "SLQ", context, ExactMatchPolicy{true, true, true});
}

std::unique_ptr<GraphQueryMethod> MakeQga(MethodContext context) {
  return std::make_unique<ExactMatchMethod>(
      "QGA", context, ExactMatchPolicy{false, true, true});
}

}  // namespace kgsearch
