// Exact-edge baselines: gStore, SLQ, and QGA style matchers.
//
// All three map every query edge to exactly one KG edge (no edge-to-path
// mapping, Table II); they differ in node/predicate resolution:
//  - gStore  [Zou et al., PVLDB'11]: subgraph isomorphism — exact node
//    names/types and exact predicates.
//  - SLQ     [Yang et al., PVLDB'14]: transformation library on node names
//    and types; query predicates map to the closest KG predicate
//    (top-1 in the semantic space) when they label no KG edge.
//  - QGA     [Han et al., CIKM'17]: keyword-based query-graph assembly
//    evaluated as exact SPARQL — entity names resolve via the library,
//    types are exact, predicates map like SLQ.
#ifndef KGSEARCH_BASELINES_EXACT_MATCH_H_
#define KGSEARCH_BASELINES_EXACT_MATCH_H_

#include "baselines/method.h"

namespace kgsearch {

/// Capability switches distinguishing the three exact-edge baselines.
struct ExactMatchPolicy {
  bool type_library = false;       ///< resolve types via synonym/abbrev.
  bool name_library = false;       ///< resolve names via synonym/abbrev.
  bool predicate_mapping = false;  ///< map query predicate to top-1 similar
};

/// Shared engine behind gStore/SLQ/QGA.
class ExactMatchMethod : public GraphQueryMethod {
 public:
  ExactMatchMethod(std::string name, MethodContext context,
                   ExactMatchPolicy policy);

  std::string name() const override { return name_; }
  Result<std::vector<NodeId>> QueryTopK(const QueryGraph& query,
                                        int answer_node,
                                        size_t k) const override;

 private:
  std::string name_;
  MethodContext context_;
  ExactMatchPolicy policy_;
};

/// gStore: pure subgraph isomorphism.
std::unique_ptr<GraphQueryMethod> MakeGStore(MethodContext context);
/// SLQ: node transformations + predicate mapping.
std::unique_ptr<GraphQueryMethod> MakeSlq(MethodContext context);
/// QGA: name transformations + predicate mapping, exact types.
std::unique_ptr<GraphQueryMethod> MakeQga(MethodContext context);

}  // namespace kgsearch

#endif  // KGSEARCH_BASELINES_EXACT_MATCH_H_
