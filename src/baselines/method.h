// Common interface for all graph-query methods compared in the evaluation
// (Table II): the re-implemented baselines and adapters over SGQ/TBQ.
#ifndef KGSEARCH_BASELINES_METHOD_H_
#define KGSEARCH_BASELINES_METHOD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/query_graph.h"
#include "embedding/predicate_space.h"
#include "kg/graph.h"
#include "match/transformation_library.h"
#include "util/status.h"

namespace kgsearch {

/// Shared read-only context for query methods.
struct MethodContext {
  const KnowledgeGraph* graph = nullptr;
  const PredicateSpace* space = nullptr;  ///< null for semantic-blind methods
  const TransformationLibrary* library = nullptr;
};

/// A top-k graph-query method. Answers are the matches of `answer_node`
/// (the query node the user asks about), ranked best-first.
class GraphQueryMethod {
 public:
  virtual ~GraphQueryMethod() = default;

  virtual std::string name() const = 0;

  /// Runs the query; returns up to k ranked answer entities. A NotFound
  /// error corresponds to the paper's "%" cells (the method cannot express
  /// or resolve the query).
  virtual Result<std::vector<NodeId>> QueryTopK(const QueryGraph& query,
                                                int answer_node,
                                                size_t k) const = 0;
};

}  // namespace kgsearch

#endif  // KGSEARCH_BASELINES_METHOD_H_
