#include "baselines/s4.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

namespace kgsearch {

namespace {

/// Enumerates all simple paths (as predicate sequences) between two nodes
/// up to max_hops, ignoring direction, and tallies them into `counts`.
void CountPatterns(const KnowledgeGraph& g, NodeId from, NodeId to,
                   size_t max_hops,
                   std::map<std::vector<PredicateId>, size_t>* counts) {
  std::vector<PredicateId> prefix;
  std::set<NodeId> on_path{from};
  std::function<void(NodeId)> dfs = [&](NodeId u) {
    if (u == to && !prefix.empty()) {
      ++(*counts)[prefix];
      return;  // patterns end at the first arrival
    }
    if (prefix.size() >= max_hops) return;
    for (const AdjEntry& adj : g.Neighbors(u)) {
      if (on_path.count(adj.neighbor)) continue;
      prefix.push_back(adj.predicate);
      on_path.insert(adj.neighbor);
      dfs(adj.neighbor);
      on_path.erase(adj.neighbor);
      prefix.pop_back();
    }
  };
  dfs(from);
}

}  // namespace

std::vector<S4Pattern> MineS4Patterns(
    const KnowledgeGraph& graph,
    const std::vector<std::pair<NodeId, NodeId>>& examples, size_t max_hops,
    size_t min_support) {
  std::map<std::vector<PredicateId>, size_t> counts;
  for (const auto& [from, to] : examples) {
    CountPatterns(graph, from, to, max_hops, &counts);
  }
  std::vector<S4Pattern> out;
  for (const auto& [preds, support] : counts) {
    if (support >= min_support) out.push_back(S4Pattern{preds, support});
  }
  std::sort(out.begin(), out.end(), [](const S4Pattern& a, const S4Pattern& b) {
    if (a.support != b.support) return a.support > b.support;
    return a.predicates < b.predicates;
  });
  return out;
}

S4Method::S4Method(
    MethodContext context,
    std::map<std::string, std::vector<S4Pattern>> patterns_by_predicate)
    : context_(context), patterns_(std::move(patterns_by_predicate)) {
  KG_CHECK(context_.graph != nullptr);
}

Result<std::vector<NodeId>> S4Method::QueryTopK(const QueryGraph& query,
                                                int answer_node,
                                                size_t k) const {
  KG_RETURN_NOT_OK(query.Validate());
  const KnowledgeGraph& g = *context_.graph;

  // S4 has no node-similarity support: exact labels only (Table II).
  const QueryNode& target = query.node(answer_node);
  const TypeId target_type = g.FindType(target.type);
  if (target_type == kInvalidSymbol) {
    return Status::NotFound("S4: unresolved type " + target.type);
  }

  DecomposeOptions dopts;
  dopts.avg_degree = g.AverageDegree();
  Result<Decomposition> decomposition =
      DecomposeQueryForPivot(query, answer_node, dopts);
  if (!decomposition.ok()) return decomposition.status();
  const auto& legs = decomposition.ValueOrDie().subqueries;

  std::unordered_map<NodeId, std::pair<double, size_t>> combined;
  for (const SubQueryGraph& leg : legs) {
    const QueryNode& anchor = query.node(leg.node_seq.front());
    const NodeId source = g.FindNode(anchor.name);
    if (source == kInvalidNode) {
      return Status::NotFound("S4: unresolved entity " + anchor.name);
    }
    // Patterns are mined per query predicate; a leg with multiple edges
    // uses the predicate adjacent to the anchor (its mined patterns span
    // the full anchor-to-answer reachability anyway).
    const std::string& qpred =
        query.edge(leg.edge_seq.front()).predicate;
    auto it = patterns_.find(qpred);
    if (it == patterns_.end() || it->second.empty()) {
      return Status::NotFound("S4: no mined patterns for predicate " + qpred);
    }

    // Apply each pattern from the anchor: follow the exact predicate
    // sequence (direction-agnostic), frontier-by-frontier.
    std::unordered_map<NodeId, double> leg_scores;
    double max_support = static_cast<double>(it->second.front().support);
    for (const S4Pattern& pattern : it->second) {
      std::set<NodeId> frontier{source};
      for (PredicateId p : pattern.predicates) {
        std::set<NodeId> next;
        for (NodeId u : frontier) {
          for (const AdjEntry& adj : g.Neighbors(u)) {
            if (adj.predicate == p) next.insert(adj.neighbor);
          }
        }
        frontier = std::move(next);
        if (frontier.empty()) break;
      }
      const double score =
          static_cast<double>(pattern.support) / std::max(1.0, max_support);
      for (NodeId u : frontier) {
        if (u == source) continue;
        if (g.NodeType(u) != target_type) continue;
        auto [lit, inserted] = leg_scores.emplace(u, score);
        if (!inserted) lit->second = std::max(lit->second, score);
      }
    }
    for (const auto& [u, score] : leg_scores) {
      auto [cit, inserted] = combined.emplace(u, std::make_pair(score, 1));
      if (!inserted) {
        cit->second.first += score;
        cit->second.second += 1;
      }
    }
  }

  std::vector<std::pair<double, NodeId>> ranked;
  for (const auto& [u, sc] : combined) {
    if (sc.second == legs.size()) ranked.emplace_back(sc.first, u);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > k) ranked.resize(k);
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const auto& [_, u] : ranked) out.push_back(u);
  return out;
}

}  // namespace kgsearch
