// S4-style semantic search via mined structural patterns
// [Zheng et al., PVLDB'16].
//
// S4 mines frequent n-hop predicate-sequence patterns from prior-knowledge
// instance pairs (the paper cites Patty as the source) and answers a query
// by applying the mined patterns for its predicate. Accuracy is therefore
// bounded by the coverage of the prior knowledge — exactly the sensitivity
// the paper discusses in Section I.
#ifndef KGSEARCH_BASELINES_S4_H_
#define KGSEARCH_BASELINES_S4_H_

#include <map>

#include "baselines/method.h"

namespace kgsearch {

/// A mined predicate-sequence pattern with its support.
struct S4Pattern {
  std::vector<PredicateId> predicates;
  size_t support = 0;
};

/// Mines patterns (paths up to max_hops, as predicate sequences) connecting
/// the given example pairs; keeps patterns with support >= min_support.
/// Returned patterns are sorted by descending support.
std::vector<S4Pattern> MineS4Patterns(
    const KnowledgeGraph& graph,
    const std::vector<std::pair<NodeId, NodeId>>& examples, size_t max_hops,
    size_t min_support);

/// S4 baseline: applies patterns mined per query predicate.
class S4Method : public GraphQueryMethod {
 public:
  /// `patterns_by_predicate` maps a query predicate name to the patterns
  /// mined from that predicate's prior-knowledge instances.
  S4Method(MethodContext context,
           std::map<std::string, std::vector<S4Pattern>> patterns_by_predicate);

  std::string name() const override { return "S4"; }
  Result<std::vector<NodeId>> QueryTopK(const QueryGraph& query,
                                        int answer_node,
                                        size_t k) const override;

 private:
  MethodContext context_;
  std::map<std::string, std::vector<S4Pattern>> patterns_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_BASELINES_S4_H_
