#include "baselines/structural.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace kgsearch {

StructuralMethod::StructuralMethod(std::string name, MethodContext context,
                                   StructuralPolicy policy)
    : name_(std::move(name)), context_(context), policy_(policy) {
  KG_CHECK(context_.graph != nullptr);
}

Result<std::vector<NodeId>> StructuralMethod::QueryTopK(
    const QueryGraph& query, int answer_node, size_t k) const {
  KG_RETURN_NOT_OK(query.Validate());
  const KnowledgeGraph& g = *context_.graph;

  // ---- resolve the answer node's type constraint ----
  const QueryNode& target = query.node(answer_node);
  std::vector<TypeId> target_types;
  if (policy_.use_library && context_.library != nullptr) {
    for (const Resolution& r : context_.library->ResolveType(target.type)) {
      TypeId t = g.FindType(r.canonical);
      if (t != kInvalidSymbol) target_types.push_back(t);
    }
  } else {
    TypeId t = g.FindType(target.type);
    if (t != kInvalidSymbol) target_types.push_back(t);
  }
  std::sort(target_types.begin(), target_types.end());
  if (target_types.empty()) {
    return Status::NotFound(name_ + ": unresolved type " + target.type);
  }

  // ---- one structural leg per specific-to-answer path ----
  DecomposeOptions dopts;
  dopts.avg_degree = g.AverageDegree();
  dopts.n_hat = policy_.hops_per_edge;
  Result<Decomposition> decomposition =
      DecomposeQueryForPivot(query, answer_node, dopts);
  if (!decomposition.ok()) return decomposition.status();

  std::unordered_map<NodeId, std::pair<double, size_t>> combined;  // score, legs
  const auto& legs = decomposition.ValueOrDie().subqueries;
  for (const SubQueryGraph& leg : legs) {
    const QueryNode& anchor = query.node(leg.node_seq.front());
    std::vector<NodeId> sources;
    if (policy_.use_library && context_.library != nullptr) {
      for (const Resolution& r : context_.library->ResolveName(anchor.name)) {
        NodeId u = g.FindNode(r.canonical);
        if (u != kInvalidNode) sources.push_back(u);
      }
    } else {
      NodeId u = g.FindNode(anchor.name);
      if (u != kInvalidNode) sources.push_back(u);
    }
    if (sources.empty()) {
      return Status::NotFound(name_ + ": unresolved entity " + anchor.name);
    }

    // Multi-source BFS up to the leg's hop budget, predicates ignored.
    const size_t budget = policy_.hops_per_edge * leg.Length();
    std::unordered_map<NodeId, size_t> dist;
    std::queue<NodeId> frontier;
    for (NodeId s : sources) {
      dist.emplace(s, 0);
      frontier.push(s);
    }
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      const size_t d = dist[u];
      if (d >= budget) continue;
      for (const AdjEntry& adj : g.Neighbors(u)) {
        if (dist.emplace(adj.neighbor, d + 1).second) {
          frontier.push(adj.neighbor);
        }
      }
    }

    for (const auto& [u, d] : dist) {
      if (d == 0) continue;
      if (!std::binary_search(target_types.begin(), target_types.end(),
                              g.NodeType(u))) {
        continue;
      }
      // A leg needs >= 1 hop per query edge; nodes nearer than that cannot
      // embed the whole leg.
      if (d < leg.Length()) continue;
      const double score = policy_.distance_scoring
                               ? 1.0 / (1.0 + static_cast<double>(d))
                               : 1.0;
      auto [it, inserted] = combined.emplace(u, std::make_pair(score, 1));
      if (!inserted) {
        it->second.first += score;
        it->second.second += 1;
      }
    }
  }

  // ---- intersection across legs, ranked by summed score ----
  std::vector<std::pair<double, NodeId>> ranked;
  for (const auto& [u, sc] : combined) {
    if (sc.second == legs.size()) ranked.emplace_back(sc.first, u);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > k) ranked.resize(k);
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const auto& [_, u] : ranked) out.push_back(u);
  return out;
}

std::unique_ptr<GraphQueryMethod> MakeNeMa(MethodContext context) {
  return std::make_unique<StructuralMethod>(
      "NeMa", context, StructuralPolicy{true, true, 4});
}

std::unique_ptr<GraphQueryMethod> MakeGraB(MethodContext context) {
  return std::make_unique<StructuralMethod>(
      "GraB", context, StructuralPolicy{false, true, 4});
}

std::unique_ptr<GraphQueryMethod> MakePHom(MethodContext context) {
  return std::make_unique<StructuralMethod>(
      "p-hom", context, StructuralPolicy{true, false, 4});
}

}  // namespace kgsearch
