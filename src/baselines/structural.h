// Structural-similarity baselines: NeMa, GraB, and p-hom style matchers.
//
// All three support edge-to-path mapping (a query edge may match an n-hop
// path) but ignore predicate semantics (Table II); they differ in node
// resolution and scoring:
//  - NeMa  [Khan et al., PVLDB'13]: node labels resolve via the
//    transformation library; candidates score by structural proximity
//    (closer matches score higher), which is a stand-in for NeMa's
//    neighborhood-vector cost.
//  - GraB  [Jin et al., WWW'15]: exact node labels only; candidates score
//    by a bound on the matching score, which again decays with distance.
//  - p-hom [Fan et al., PVLDB'10]: node labels resolve via the library;
//    every bounded-length path is an equally valid edge image, so scores
//    carry node-similarity only (distance-blind — the reason its precision
//    trails NeMa's in Table I).
#ifndef KGSEARCH_BASELINES_STRUCTURAL_H_
#define KGSEARCH_BASELINES_STRUCTURAL_H_

#include "baselines/method.h"

namespace kgsearch {

/// Capability/scoring switches distinguishing the structural baselines.
struct StructuralPolicy {
  bool use_library = false;     ///< node similarity via the library
  bool distance_scoring = true; ///< score 1/(1+dist) vs. flat node-sim score
  size_t hops_per_edge = 4;     ///< edge-to-path bound (n̂ analogue)
};

/// Shared engine behind NeMa/GraB/p-hom.
class StructuralMethod : public GraphQueryMethod {
 public:
  StructuralMethod(std::string name, MethodContext context,
                   StructuralPolicy policy);

  std::string name() const override { return name_; }
  Result<std::vector<NodeId>> QueryTopK(const QueryGraph& query,
                                        int answer_node,
                                        size_t k) const override;

 private:
  std::string name_;
  MethodContext context_;
  StructuralPolicy policy_;
};

std::unique_ptr<GraphQueryMethod> MakeNeMa(MethodContext context);
std::unique_ptr<GraphQueryMethod> MakeGraB(MethodContext context);
std::unique_ptr<GraphQueryMethod> MakePHom(MethodContext context);

}  // namespace kgsearch

#endif  // KGSEARCH_BASELINES_STRUCTURAL_H_
