#include "core/astar_search.h"

#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/topk_heap.h"

namespace kgsearch {

namespace {

/// One explored partial path, stored in an arena with parent links.
struct SearchNode {
  NodeId node;
  int32_t parent;          ///< arena index; -1 for start pseudo-states
  PredicateId via_pred;    ///< predicate of the edge into `node`
  float via_weight;        ///< semantic weight of that edge
  uint16_t stage;          ///< query edge currently being matched
  uint16_t hops_in_stage;  ///< hops consumed on that query edge (0 at start)
  uint16_t depth;          ///< total hops from the start node
  double log_sum;          ///< sum of log-weights along the partial path
};

/// Priority-queue entry; ties broken by insertion order for determinism.
struct QueueEntry {
  double priority;
  uint64_t seq;
  int32_t index;
  bool is_goal;
};

struct QueueLess {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }
};

uint64_t StateKey(const SearchNode& n) {
  return (static_cast<uint64_t>(n.node) << 16) |
         (static_cast<uint64_t>(n.stage) << 8) | n.hops_in_stage;
}

PathMatch Reconstruct(const std::vector<SearchNode>& arena, int32_t index) {
  PathMatch m;
  const SearchNode& last = arena[static_cast<size_t>(index)];
  m.pss = std::exp(last.log_sum / static_cast<double>(last.depth));
  // Walk parents back to the start pseudo-state.
  std::vector<int32_t> chain;
  for (int32_t i = index; i >= 0; i = arena[static_cast<size_t>(i)].parent) {
    chain.push_back(i);
  }
  uint16_t prev_stage = 0;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const SearchNode& n = arena[static_cast<size_t>(*it)];
    if (n.parent >= 0) {
      // A stage increase means the previous node matched the intermediate
      // query node between the two query edges.
      if (n.stage > prev_stage) {
        m.stage_ends.push_back(static_cast<uint32_t>(m.nodes.size()) - 1);
      }
      m.predicates.push_back(n.via_pred);
      m.weights.push_back(n.via_weight);
      prev_stage = n.stage;
    }
    m.nodes.push_back(n.node);
  }
  m.stage_ends.push_back(static_cast<uint32_t>(m.nodes.size()) - 1);
  return m;
}

}  // namespace

Result<std::vector<PathMatch>> AStarSearch(const GraphView& graph,
                                           const PredicateSpace& space,
                                           const ResolvedSubQuery& subquery,
                                           const AStarConfig& config,
                                           SearchStats* stats) {
  if (!graph.base().finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  if (subquery.Length() == 0) {
    return Status::InvalidArgument("sub-query has no edges");
  }
  if (config.n_hat == 0) {
    return Status::InvalidArgument("n_hat must be >= 1");
  }
  if (config.tau <= 0.0 || config.tau > 1.0) {
    return Status::InvalidArgument("tau must be in (0, 1]");
  }
  if (config.anytime && !config.should_stop) {
    return Status::InvalidArgument("anytime mode requires should_stop");
  }

  const size_t num_stages = subquery.Length();
  const double total_bound =
      static_cast<double>(config.n_hat * num_stages);  // n̂ per query edge
  const NodeConstraint& target = subquery.node_constraints.back();

  SemanticWeights weights(graph, &space, &subquery);
  SearchStats local_stats;
  SearchStats& st = stats ? *stats : local_stats;
  st = SearchStats{};

  const bool paper_mode = config.dedup == DedupMode::kPaperNodeVisited;
  // Poll cadence for should_stop and interrupt; a configured 0 would mean
  // "never poll" via a division by zero, so clamp once here for every
  // caller.
  const size_t check_interval =
      config.stop_check_interval == 0 ? 1 : config.stop_check_interval;

  std::vector<SearchNode> arena;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueLess> queue;
  std::unordered_set<uint64_t> expanded;     // kExactState pop-time dedup
  std::unordered_set<NodeId> visited;        // Algorithm 1 push-time dedup
  std::unordered_map<NodeId, size_t> emitted_targets;  // goal-emission dedup
  uint64_t seq = 0;

  std::vector<PathMatch> matches;       // optimal mode, in pop order
  TopKHeap<PathMatch> anytime_matches(  // anytime mode, best-cap retention
      config.anytime_match_cap == 0 ? SIZE_MAX : config.anytime_match_cap);

  // Initialization (Algorithm 1 line 1): one pseudo-state per node match of
  // the specific start node; its estimate is m(us)^(1/N̂) since the explored
  // weight product is empty.
  for (NodeId us : subquery.start_candidates) {
    if (paper_mode) visited.insert(us);
    double m = weights.MaxAdjacentWeight(us, 0);
    double est = std::exp(std::log(m) / total_bound);
    arena.push_back(SearchNode{us, -1, 0, 1.0f, 0, 0, 0, 0.0});
    if (est >= config.tau - 1e-12) {
      queue.push(QueueEntry{est, seq++,
                            static_cast<int32_t>(arena.size()) - 1, false});
      ++st.pushed;
    } else {
      ++st.pruned_tau;
    }
  }

  auto push_child = [&](const SearchNode& parent_node, int32_t parent_index,
                        const AdjEntry& adj, uint16_t stage,
                        uint16_t hops_in_stage) {
    // Algorithm 1 line 6: each KG node enters the queue at most once.
    if (paper_mode && !visited.insert(adj.neighbor).second) {
      ++st.pruned_visited;
      return;
    }
    const double w = weights.Weight(stage, adj.predicate);
    const double log_sum = parent_node.log_sum + std::log(w);
    const uint16_t depth = static_cast<uint16_t>(parent_node.depth + 1);
    const bool is_goal = (static_cast<size_t>(stage) + 1 == num_stages) &&
                         target.Matches(graph, adj.neighbor);
    if (is_goal) {
      // Exact pss for target node matches (Section V-A).
      const double pss = std::exp(log_sum / static_cast<double>(depth));
      if (pss < config.tau - 1e-12) {
        ++st.pruned_tau;
        return;
      }
      arena.push_back(SearchNode{adj.neighbor, parent_index, adj.predicate,
                                 static_cast<float>(w), stage, hops_in_stage,
                                 depth, log_sum});
      const int32_t idx = static_cast<int32_t>(arena.size()) - 1;
      if (config.anytime) {
        // Algorithm 2 lines 10-11: collect immediately instead of queueing.
        anytime_matches.Push(pss, Reconstruct(arena, idx));
        ++st.goals_emitted;
      } else {
        queue.push(QueueEntry{pss, seq++, idx, true});
        ++st.pushed;
      }
      return;
    }
    // Lemma 3 pruning: the estimate upper-bounds every completion's pss.
    const double m = weights.MaxAdjacentWeight(adj.neighbor, stage);
    const double est = std::exp((log_sum + std::log(m)) / total_bound);
    if (est < config.tau - 1e-12) {
      ++st.pruned_tau;
      return;
    }
    arena.push_back(SearchNode{adj.neighbor, parent_index, adj.predicate,
                               static_cast<float>(w), stage, hops_in_stage,
                               depth, log_sum});
    queue.push(QueueEntry{est, seq++,
                          static_cast<int32_t>(arena.size()) - 1, false});
    ++st.pushed;
  };

  while (!queue.empty()) {
    if (config.max_expansions > 0 && st.popped >= config.max_expansions) break;
    QueueEntry entry = queue.top();
    queue.pop();
    ++st.popped;
    if (config.expansion_hook) config.expansion_hook();

    // Cooperative interruption (deadline / cancellation): polled between
    // expansions at the same cadence as the anytime stop estimator. The
    // search aborts with the interrupt's status; collected matches are
    // dropped — an interrupted query has no answer, partial or otherwise.
    if (config.interrupt && st.popped % check_interval == 0) {
      Status interrupted = config.interrupt();
      if (!interrupted.ok()) return interrupted;
    }

    const SearchNode node = arena[static_cast<size_t>(entry.index)];
    if (entry.is_goal) {
      // Theorem 2: a popped target match is the best remaining match.
      if (++emitted_targets[node.node] <= config.max_matches_per_target) {
        matches.push_back(Reconstruct(arena, entry.index));
        ++st.goals_emitted;
        if (matches.size() >= config.k) break;
      }
      continue;
    }
    if (!paper_mode && !expanded.insert(StateKey(node)).second) {
      ++st.pruned_visited;
      continue;
    }
    ++st.expanded;

    // Transition 1: advance to the next query edge when the current node is
    // a node match of the intermediate query node between the two edges.
    // Runs before the continue transition so that in paper mode the
    // node-visited set cannot swallow a goal push behind a same-node
    // continue push.
    if (node.hops_in_stage >= 1 &&
        static_cast<size_t>(node.stage + 1) < num_stages &&
        subquery.node_constraints[node.stage + 1].Matches(graph, node.node)) {
      const uint16_t next_stage = static_cast<uint16_t>(node.stage + 1);
      for (const AdjEntry& adj : graph.Neighbors(node.node)) {
        push_child(node, entry.index, adj, next_stage, 1);
      }
    }
    // Transition 2: continue matching the current query edge (hop budget n̂).
    if (node.hops_in_stage < config.n_hat) {
      const uint16_t nh = static_cast<uint16_t>(node.hops_in_stage + 1);
      for (const AdjEntry& adj : graph.Neighbors(node.node)) {
        push_child(node, entry.index, adj, node.stage, nh);
      }
    }

    if (config.anytime && st.popped % check_interval == 0 &&
        config.should_stop(anytime_matches.size())) {
      st.stopped_early = true;
      break;
    }
  }
  st.exhausted = queue.empty();
  st.materialized_nodes = weights.materialized_nodes();

  if (config.anytime) {
    matches.clear();
    for (auto& [pss, match] : anytime_matches.TakeSortedDescending()) {
      (void)pss;  // PathMatch carries its pss already
      matches.push_back(std::move(match));
    }
  }
  return matches;
}

}  // namespace kgsearch
