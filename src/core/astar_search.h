// A*-style top-k semantic search over the lazily materialized semantic graph
// (Section V, Algorithm 1), with the anytime variant of Section VI
// (Algorithm 2) selected by AStarConfig::anytime.
//
// The search state is (KG node, query-edge stage, hops consumed on that
// stage); the priority is the admissible pss estimate of Eq. 7. Two
// de-duplication modes are provided (see DedupMode):
//  - kPaperNodeVisited reproduces Algorithm 1 exactly: a global visited set
//    admits each KG node into the priority queue once, so every explored
//    partial path is node-simple and the search space matches the paper's
//    complexity analysis.
//  - kExactState de-duplicates full states lazily at pop time. Because the
//    estimate is monotone non-increasing along a path, the first pop of a
//    state carries its best weight product, making the returned top-k
//    provably optimal over bounded-length walks — a strictly stronger
//    guarantee than Algorithm 1's, at the cost of a larger frontier. The
//    ablation bench quantifies the difference.
// In both modes node matches of the target query node are terminal (never
// expanded), exactly as in the paper, and at most one match per distinct
// target node is emitted in optimal mode.
#ifndef KGSEARCH_CORE_ASTAR_SEARCH_H_
#define KGSEARCH_CORE_ASTAR_SEARCH_H_

#include <functional>
#include <vector>

#include "core/path_match.h"
#include "core/resolved_query.h"
#include "core/semantic_weights.h"
#include "embedding/predicate_space.h"
#include "kg/graph.h"
#include "kg/graph_view.h"
#include "util/status.h"

namespace kgsearch {

/// Partial-path de-duplication discipline (see file comment).
enum class DedupMode {
  kPaperNodeVisited,  ///< Algorithm 1: one queue entry per KG node
  kExactState,        ///< exact: one expansion per (node, stage, hops)
};

/// Parameters of one sub-query search.
struct AStarConfig {
  /// De-duplication discipline; the paper's algorithm is the default.
  DedupMode dedup = DedupMode::kPaperNodeVisited;
  /// Number of matches to return (top-k per sub-query graph).
  size_t k = 10;
  /// pss threshold τ (Definition 7); partial paths with estimate below τ are
  /// pruned without false negatives (Lemma 3).
  double tau = 0.8;
  /// User-desired path length n̂ per query edge (Section V-A).
  size_t n_hat = 4;
  /// Matches emitted per distinct target node in optimal mode. Values above
  /// 1 require kExactState (the paper-mode visited set admits each node
  /// once, so a target can only ever be reached by one path).
  size_t max_matches_per_target = 1;
  /// Safety valve on pops; 0 = unlimited.
  uint64_t max_expansions = 0;
  /// Cooperative interruption, polled every stop_check_interval pops in
  /// BOTH modes (between node expansions, never inside one). A non-OK
  /// status (kCancelled, kDeadlineExceeded) aborts the search and is
  /// returned from AStarSearch verbatim; partial matches are discarded.
  std::function<Status()> interrupt;

  // --- anytime mode (Algorithm 2) ---
  /// Collect matches when generated (not when popped) and run until
  /// should_stop() or queue exhaustion instead of stopping at k goals.
  bool anytime = false;
  /// Cap on retained anytime matches (best kept); 0 = unlimited.
  size_t anytime_match_cap = 0;
  /// Polled every stop_check_interval pops in anytime mode, with the number
  /// of matches collected so far (|M̂i| in Algorithm 3).
  std::function<bool(size_t matches_so_far)> should_stop;
  /// Pops between should_stop / interrupt polls (both modes for interrupt).
  size_t stop_check_interval = 64;
  /// Test hook invoked once per pop (e.g. to advance a ManualClock).
  std::function<void()> expansion_hook;
};

/// Counters describing one search run.
struct SearchStats {
  uint64_t pushed = 0;
  uint64_t popped = 0;
  uint64_t expanded = 0;         ///< non-goal states actually expanded
  uint64_t pruned_tau = 0;       ///< children dropped by the τ bound
  uint64_t pruned_visited = 0;   ///< pops skipped by state de-duplication
  uint64_t goals_emitted = 0;
  size_t materialized_nodes = 0; ///< semantic-graph nodes touched
  bool stopped_early = false;    ///< anytime stop triggered
  bool exhausted = false;        ///< priority queue drained
};

/// Top-k semantic path search for one resolved sub-query graph.
///
/// Returns matches in descending pss order. In optimal mode (anytime=false)
/// the result is globally optimal among paths within the hop bound
/// (Theorem 2); in anytime mode it contains every match generated before the
/// stop signal (best `anytime_match_cap` kept).
///
/// Takes a GraphView so the search can run against a pinned delta snapshot
/// (live ingest); a bare finalized KnowledgeGraph converts implicitly and
/// behaves exactly as before.
Result<std::vector<PathMatch>> AStarSearch(const GraphView& graph,
                                           const PredicateSpace& space,
                                           const ResolvedSubQuery& subquery,
                                           const AStarConfig& config,
                                           SearchStats* stats = nullptr);

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_ASTAR_SEARCH_H_
