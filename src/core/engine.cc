#include "core/engine.h"

#include <algorithm>
#include <unordered_set>

#include "util/thread_pool.h"

namespace kgsearch {

DecomposeOptions MakeDecomposeOptions(const GraphView& graph,
                                      PivotStrategy strategy, size_t n_hat,
                                      uint64_t seed) {
  DecomposeOptions dopts;
  dopts.strategy = strategy;
  dopts.avg_degree = graph.AverageDegree();
  dopts.n_hat = n_hat;
  dopts.seed = seed;
  return dopts;
}

std::vector<NodeId> ExtractAnswers(const std::vector<FinalMatch>& matches,
                                   const Decomposition& decomposition,
                                   int query_node) {
  // Locate the (sub-query, position) of the query node once.
  int sub = -1;
  size_t pos = 0;
  for (size_t i = 0; i < decomposition.subqueries.size(); ++i) {
    const auto& seq = decomposition.subqueries[i].node_seq;
    for (size_t j = 0; j < seq.size(); ++j) {
      if (seq[j] == query_node) {
        sub = static_cast<int>(i);
        pos = j;
        break;
      }
    }
    if (sub >= 0) break;
  }
  std::vector<NodeId> out;
  if (sub < 0) return out;
  std::unordered_set<NodeId> seen;
  for (const FinalMatch& m : matches) {
    KG_CHECK(static_cast<size_t>(sub) < m.parts.size());
    // Prefer the retained alternates (best-first) so non-pivot query nodes
    // yield every distinct match at this pivot, not just the top one.
    if (!m.alternates.empty() &&
        !m.alternates[static_cast<size_t>(sub)].empty()) {
      for (const PathMatch& alt : m.alternates[static_cast<size_t>(sub)]) {
        NodeId u = alt.MatchOfQueryNode(pos);
        if (seen.insert(u).second) out.push_back(u);
      }
    } else {
      NodeId u = m.parts[static_cast<size_t>(sub)].MatchOfQueryNode(pos);
      if (seen.insert(u).second) out.push_back(u);
    }
  }
  return out;
}

SgqEngine::SgqEngine(const KnowledgeGraph* graph, const PredicateSpace* space,
                     const TransformationLibrary* library, const Clock* clock)
    : graph_(graph), space_(space), matcher_(graph, library), clock_(clock) {
  KG_CHECK(space != nullptr && clock != nullptr);
}

Result<QueryResult> SgqEngine::Query(const QueryGraph& query,
                                     const EngineOptions& options) const {
  const GraphView view = options.view ? *options.view : GraphView(*graph_);
  Result<Decomposition> decomposition = DecomposeQuery(
      query, MakeDecomposeOptions(view, options.pivot_strategy,
                                  options.n_hat, options.seed));
  if (!decomposition.ok()) return decomposition.status();
  return QueryDecomposed(query, decomposition.ValueOrDie(), options);
}

Result<QueryResult> SgqEngine::QueryDecomposed(
    const QueryGraph& query, const Decomposition& decomposition,
    const EngineOptions& options) const {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  // One interruption policy for the whole query: checked here (fail fast
  // when the request arrives already expired or revoked), polled inside
  // every sub-query search, and re-checked between retry rounds.
  auto interrupt = [cancel = options.cancel,
                    deadline = options.deadline_micros, clock = clock_]() {
    return CheckInterrupt(cancel, deadline, clock);
  };
  KG_RETURN_NOT_OK(interrupt());
  StopWatch watch(clock_);

  QueryResult result;
  result.decomposition = decomposition;
  const size_t n = decomposition.subqueries.size();
  KG_CHECK(n > 0);

  // The whole query — resolution, search, answer extraction — reads one
  // view. With no pinned snapshot this is the base graph (epoch 0) and the
  // per-query matcher below is behaviorally identical to the engine's own.
  const GraphView view = options.view ? *options.view : GraphView(*graph_);
  NodeMatcher matcher(view, matcher_.library());
  matcher.set_candidate_cache(matcher_.candidate_cache());

  // Resolve every sub-query up front; resolution failures (mismatch in
  // query nodes/predicates, Figure 1) abort the query.
  std::vector<ResolvedSubQuery> resolved;
  resolved.reserve(n);
  for (const SubQueryGraph& sub : decomposition.subqueries) {
    Result<ResolvedSubQuery> r = ResolveSubQuery(query, sub, matcher);
    if (!r.ok()) return r.status();
    resolved.push_back(std::move(r).ValueOrDie());
  }

  result.subquery_stats.assign(n, SearchStats{});
  size_t budget = std::max<size_t>(options.budget_factor * options.k, 16);

  for (size_t round = 0; round <= options.max_retry_rounds; ++round) {
    // One A* semantic search per sub-query graph, in parallel.
    std::vector<std::vector<PathMatch>> match_sets(n);
    std::vector<Status> statuses(n, Status::OK());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      tasks.push_back([&, i] {
        AStarConfig config;
        config.k = budget;
        config.tau = options.tau;
        config.n_hat = options.n_hat;
        config.max_expansions = options.max_expansions;
        config.dedup = options.dedup;
        config.max_matches_per_target = options.matches_per_target;
        if (options.cancel != nullptr || options.deadline_micros > 0) {
          config.interrupt = interrupt;
          config.stop_check_interval = options.stop_check_interval;
        }
        Result<std::vector<PathMatch>> r = AStarSearch(
            view, *space_, resolved[i], config, &result.subquery_stats[i]);
        if (r.ok()) {
          match_sets[i] = std::move(r).ValueOrDie();
        } else {
          statuses[i] = r.status();
        }
      });
    }
    if (options.executor != nullptr) {
      RunOnPool(options.executor, std::move(tasks));
    } else {
      size_t threads = options.threads == 0 ? n : options.threads;
      RunParallel(std::move(tasks), threads);
    }
    for (const Status& s : statuses) KG_RETURN_NOT_OK(s);

    Result<std::vector<FinalMatch>> assembled =
        AssembleTopK(match_sets, options.k, &result.ta_stats);
    if (!assembled.ok()) return assembled.status();
    result.matches = std::move(assembled).ValueOrDie();

    // Enough final matches, or no sub-query can supply more: done.
    bool any_search_truncated = false;
    for (size_t i = 0; i < n; ++i) {
      if (match_sets[i].size() >= budget) any_search_truncated = true;
    }
    if (result.matches.size() >= options.k || !any_search_truncated) break;
    KG_RETURN_NOT_OK(interrupt());
    budget *= 2;  // retry with a larger per-sub-query match budget
  }

  result.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace kgsearch
