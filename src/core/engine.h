// SgqEngine: the semantic-guided graph query engine (Problem 1, Section V).
//
// Pipeline: decompose the query graph into sub-query path graphs (Eq. 1),
// run one A* semantic search per sub-query (multithreaded), and assemble
// final top-k matches at the pivot with the threshold algorithm.
#ifndef KGSEARCH_CORE_ENGINE_H_
#define KGSEARCH_CORE_ENGINE_H_

#include <vector>

#include "core/astar_search.h"
#include "core/query_graph.h"
#include "core/ta_assembly.h"
#include "embedding/predicate_space.h"
#include "match/node_matcher.h"
#include "util/cancel.h"
#include "util/clock.h"

namespace kgsearch {

class ThreadPool;  // util/thread_pool.h; only a pointer is stored here

/// Tuning knobs for a semantic-guided query.
struct EngineOptions {
  size_t k = 10;           ///< final top-k
  double tau = 0.8;        ///< pss threshold τ
  size_t n_hat = 4;        ///< desired hops per query edge n̂
  size_t threads = 0;      ///< 0 = one per sub-query (ignored with executor)
  /// Non-owning shared executor. When set, sub-query searches run as a
  /// caller-participating batch on this pool (RunOnPool) instead of
  /// spawning per-query threads; many concurrent queries can then share one
  /// process-wide pool. Results are identical either way: each sub-query
  /// search is deterministic and writes to its own slot.
  ThreadPool* executor = nullptr;
  PivotStrategy pivot_strategy = PivotStrategy::kMinCost;
  uint64_t seed = 42;      ///< used by kRandom pivot selection
  /// Collect budget_factor*k matches per sub-query before assembly (the
  /// paper's "more than k matches collected for each gi" remark).
  size_t budget_factor = 3;
  /// When assembly yields < k final matches, re-run sub-queries with a
  /// doubled budget up to this many extra rounds.
  size_t max_retry_rounds = 2;
  /// Safety valve per A* search; 0 = unlimited.
  uint64_t max_expansions = 4'000'000;
  /// Partial-path de-duplication discipline (Algorithm 1 vs. exact states).
  DedupMode dedup = DedupMode::kPaperNodeVisited;
  /// Sub-query matches emitted per distinct target node (> 1 needs
  /// kExactState); raise when answers are read off a non-pivot query node.
  size_t matches_per_target = 1;
  /// Absolute per-request deadline on the engine's clock (the scale of
  /// Clock::NowMicros); 0 = none. Callers with a relative budget convert
  /// via DeadlineFromNowMs at admission time, so queue wait counts. An
  /// expired query aborts between node expansions with kDeadlineExceeded.
  int64_t deadline_micros = 0;
  /// Pops between deadline/cancellation polls inside each A* search (the
  /// abort latency knob; only consulted when a deadline or token is set).
  size_t stop_check_interval = 64;
  /// Cooperative cancellation; non-owning, may be null, must outlive the
  /// query. Cancel() makes the query abort between node expansions with
  /// kCancelled. A deadline/cancel that never fires leaves the search
  /// bit-identical to an unconstrained run.
  const CancelToken* cancel = nullptr;
  /// Pinned snapshot view to run the query against (live-ingest serving:
  /// base graph + one delta epoch). Null = the engine's own base graph.
  /// Non-owning; the caller keeps the view (and the snapshot it pins)
  /// alive for the duration of the call. The view's base must be the
  /// engine's graph — the engine's predicate space and matcher library
  /// are interpreted against it.
  const GraphView* view = nullptr;
};

/// Everything produced by one query execution.
struct QueryResult {
  std::vector<FinalMatch> matches;       ///< descending score
  Decomposition decomposition;
  std::vector<SearchStats> subquery_stats;
  TaStats ta_stats;
  double elapsed_ms = 0.0;

  /// Convenience: the answer entities (pivot node matches), in rank order.
  std::vector<NodeId> AnswerIds() const {
    std::vector<NodeId> out;
    out.reserve(matches.size());
    for (const FinalMatch& m : matches) out.push_back(m.pivot_match);
    return out;
  }
};

/// Decomposition knobs implied by engine options over a concrete graph.
/// Both SgqEngine::Query and the serving layer's decomposition cache derive
/// their DecomposeQuery call from this one mapping, so a cached
/// decomposition is bit-identical to a freshly computed one.
DecomposeOptions MakeDecomposeOptions(const GraphView& graph,
                                      PivotStrategy strategy, size_t n_hat,
                                      uint64_t seed);

/// Extracts the KG matches of query node `query_node` from final matches,
/// deduplicated and in rank order. Works for any query node covered by the
/// decomposition (the pivot is just `FinalMatch::pivot_match`).
std::vector<NodeId> ExtractAnswers(const std::vector<FinalMatch>& matches,
                                   const Decomposition& decomposition,
                                   int query_node);

/// Facade tying graph, predicate space, and node matching together.
class SgqEngine {
 public:
  /// All pointers must outlive the engine.
  SgqEngine(const KnowledgeGraph* graph, const PredicateSpace* space,
            const TransformationLibrary* library,
            const Clock* clock = SystemClock::Default());

  /// Runs the full pipeline on `query`.
  Result<QueryResult> Query(const QueryGraph& query,
                            const EngineOptions& options) const;

  /// Runs with a caller-supplied decomposition (pivot experiments of
  /// Section VII-C use this to force a particular pivot).
  Result<QueryResult> QueryDecomposed(const QueryGraph& query,
                                      const Decomposition& decomposition,
                                      const EngineOptions& options) const;

  const KnowledgeGraph& graph() const { return *graph_; }
  const PredicateSpace& space() const { return *space_; }
  const NodeMatcher& matcher() const { return matcher_; }
  /// For pre-serving configuration (e.g. installing a shared candidate
  /// cache); must not be called while queries are in flight.
  NodeMatcher* mutable_matcher() { return &matcher_; }

 private:
  const KnowledgeGraph* graph_;
  const PredicateSpace* space_;
  NodeMatcher matcher_;
  const Clock* clock_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_ENGINE_H_
