// Match types shared by the A* search and the TA assembly.
#ifndef KGSEARCH_CORE_PATH_MATCH_H_
#define KGSEARCH_CORE_PATH_MATCH_H_

#include <vector>

#include "kg/graph.h"

namespace kgsearch {

/// A sub-query graph match (Definition 7): a path in the semantic graph from
/// a node match of the specific node to one of the target node, annotated
/// with per-edge semantic weights and the resulting pss (Eq. 6).
struct PathMatch {
  std::vector<NodeId> nodes;            ///< path nodes; size = hops + 1
  std::vector<PredicateId> predicates;  ///< traversed predicates; size = hops
  std::vector<double> weights;          ///< semantic weights; size = hops
  /// stage_ends[i] = index into `nodes` of the node that matched query node
  /// i+1 of the sub-query path (edge match i ends there). Size = number of
  /// query edges; the last entry is nodes.size() - 1.
  std::vector<uint32_t> stage_ends;
  double pss = 0.0;

  /// The KG node matched to query-node position `pos` of the sub-query path
  /// (0 = the specific start node).
  NodeId MatchOfQueryNode(size_t pos) const {
    if (pos == 0) return nodes.front();
    KG_CHECK(pos - 1 < stage_ends.size());
    return nodes[stage_ends[pos - 1]];
  }

  size_t Hops() const { return predicates.size(); }
  NodeId source() const { return nodes.front(); }
  /// The endpoint matching the sub-query's target (pivot) node.
  NodeId target() const { return nodes.back(); }
};

/// A final match for the whole query graph: one sub-query match per
/// decomposition path, joined at the pivot node match (Eq. 2).
struct FinalMatch {
  NodeId pivot_match = kInvalidNode;
  double score = 0.0;  ///< Sm(u^p): sum of sub-query pss values
  std::vector<PathMatch> parts;  ///< one per sub-query, in decomposition order
  /// Up to a few additional matches per sub-query sharing this pivot match
  /// (best-first, parts[i] == alternates[i][0]). Used to enumerate matches
  /// of non-pivot query nodes; does not affect the match score.
  std::vector<std::vector<PathMatch>> alternates;
};

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_PATH_MATCH_H_
