#include "core/query_graph.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/rng.h"

namespace kgsearch {

Status QueryGraph::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("query graph is empty");
  if (edges_.empty()) {
    return Status::InvalidArgument("query graph has no edges");
  }
  if (SpecificNodes().empty()) {
    return Status::InvalidArgument("query graph needs >= 1 specific node");
  }
  if (TargetNodes().empty()) {
    return Status::InvalidArgument("query graph needs >= 1 target node");
  }
  for (const QueryNode& n : nodes_) {
    if (n.type.empty()) {
      return Status::InvalidArgument("every query node needs a type");
    }
  }
  for (const QueryEdge& e : edges_) {
    if (e.predicate.empty()) {
      return Status::InvalidArgument("every query edge needs a predicate");
    }
  }
  // Connectivity (undirected) from node 0.
  std::vector<std::vector<int>> adj(nodes_.size());
  for (const QueryEdge& e : edges_) {
    adj[static_cast<size_t>(e.from)].push_back(e.to);
    adj[static_cast<size_t>(e.to)].push_back(e.from);
  }
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> stack{0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    for (int v : adj[static_cast<size_t>(u)]) {
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  if (visited != nodes_.size()) {
    return Status::InvalidArgument("query graph must be connected");
  }
  return Status::OK();
}

namespace {

/// A candidate sub-query path with its edge-cover bitmask and Eq. 1 cost.
struct CandidatePath {
  SubQueryGraph path;
  uint32_t edge_mask = 0;
  double cost = 0.0;
};

/// Enumerates all node-simple paths from `start` (a specific node) to
/// `pivot` via DFS over the query graph.
void EnumeratePaths(const QueryGraph& query, int start, int pivot,
                    double avg_degree, size_t n_hat,
                    std::vector<CandidatePath>* out) {
  struct HalfEdge {
    int to;
    int edge_index;
  };
  std::vector<std::vector<HalfEdge>> adj(query.NumNodes());
  for (size_t i = 0; i < query.NumEdges(); ++i) {
    const QueryEdge& e = query.edge(static_cast<int>(i));
    adj[static_cast<size_t>(e.from)].push_back({e.to, static_cast<int>(i)});
    adj[static_cast<size_t>(e.to)].push_back({e.from, static_cast<int>(i)});
  }

  std::vector<bool> on_path(query.NumNodes(), false);
  SubQueryGraph current;
  current.node_seq.push_back(start);
  on_path[static_cast<size_t>(start)] = true;

  // Recursive DFS; query graphs are tiny (<= 20 edges), so depth is bounded.
  std::function<void(int)> dfs = [&](int u) {
    if (u == pivot) {
      // The pivot always terminates a path (path graphs end at the pivot).
      CandidatePath cand;
      cand.path = current;
      for (int ei : current.edge_seq) cand.edge_mask |= 1u << ei;
      cand.cost = std::pow(std::max(avg_degree, 2.0),
                           static_cast<double>(n_hat * current.Length()));
      out->push_back(std::move(cand));
      return;
    }
    for (const HalfEdge& he : adj[static_cast<size_t>(u)]) {
      if (on_path[static_cast<size_t>(he.to)]) continue;
      current.node_seq.push_back(he.to);
      current.edge_seq.push_back(he.edge_index);
      on_path[static_cast<size_t>(he.to)] = true;
      dfs(he.to);
      on_path[static_cast<size_t>(he.to)] = false;
      current.node_seq.pop_back();
      current.edge_seq.pop_back();
    }
  };
  dfs(start);
}

/// Finds the min-cost edge-disjoint path cover for one pivot via DP over the
/// covered-edge bitmask (the "dynamic programming" of Section III-A).
/// Returns false when no full cover exists.
bool CoverForPivot(const QueryGraph& query, int pivot,
                   const DecomposeOptions& options, Decomposition* out) {
  const size_t num_edges = query.NumEdges();
  KG_CHECK(num_edges <= 20);  // queries are small by construction
  std::vector<CandidatePath> candidates;
  for (int s : query.SpecificNodes()) {
    EnumeratePaths(query, s, pivot, options.avg_degree, options.n_hat,
                   &candidates);
  }
  if (candidates.empty()) return false;

  const uint32_t full = (num_edges == 32) ? 0xffffffffu
                                          : ((1u << num_edges) - 1);
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(full + 1, inf);
  std::vector<int> choice(full + 1, -1);   // candidate used to reach mask
  std::vector<uint32_t> parent(full + 1, 0);
  dp[0] = 0.0;
  for (uint32_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] == inf || mask == full) continue;
    // Lowest uncovered edge must be covered by the next path; this canonical
    // ordering makes each cover enumerated exactly once.
    uint32_t lowest = 0;
    while (mask & (1u << lowest)) ++lowest;
    for (size_t c = 0; c < candidates.size(); ++c) {
      const CandidatePath& cand = candidates[c];
      if (!(cand.edge_mask & (1u << lowest))) continue;
      if (cand.edge_mask & mask) continue;  // overlaps covered edges
      uint32_t next = mask | cand.edge_mask;
      double cost = dp[mask] + cand.cost;
      if (cost < dp[next]) {
        dp[next] = cost;
        choice[next] = static_cast<int>(c);
        parent[next] = mask;
      }
    }
  }
  if (dp[full] == inf) return false;

  out->pivot = pivot;
  out->cost = dp[full];
  out->subqueries.clear();
  uint32_t mask = full;
  while (mask != 0) {
    KG_CHECK(choice[mask] >= 0);
    out->subqueries.push_back(candidates[static_cast<size_t>(choice[mask])].path);
    mask = parent[mask];
  }
  std::reverse(out->subqueries.begin(), out->subqueries.end());
  return true;
}

}  // namespace

Result<Decomposition> DecomposeQueryForPivot(const QueryGraph& query,
                                             int pivot,
                                             const DecomposeOptions& options) {
  KG_RETURN_NOT_OK(query.Validate());
  if (query.NumEdges() > 20) {
    return Status::InvalidArgument("query graphs above 20 edges unsupported");
  }
  if (pivot < 0 || pivot >= static_cast<int>(query.NumNodes()) ||
      query.node(pivot).is_specific()) {
    return Status::InvalidArgument("pivot must be a target node");
  }
  Decomposition d;
  if (!CoverForPivot(query, pivot, options, &d)) {
    return Status::InvalidArgument(
        "pivot admits no full cover by specific-to-pivot paths");
  }
  return d;
}

Result<Decomposition> DecomposeQuery(const QueryGraph& query,
                                     const DecomposeOptions& options) {
  KG_RETURN_NOT_OK(query.Validate());
  if (query.NumEdges() > 20) {
    return Status::InvalidArgument("query graphs above 20 edges unsupported");
  }

  std::vector<Decomposition> feasible;
  for (int pivot : query.TargetNodes()) {
    Decomposition d;
    if (CoverForPivot(query, pivot, options, &d)) {
      feasible.push_back(std::move(d));
    }
  }
  if (feasible.empty()) {
    return Status::InvalidArgument(
        "no pivot admits a full cover by specific-to-pivot paths");
  }

  if (options.strategy == PivotStrategy::kRandom) {
    Rng rng(options.seed);
    return feasible[rng.UniformIndex(feasible.size())];
  }
  // kMinCost: Eq. 1.
  size_t best = 0;
  for (size_t i = 1; i < feasible.size(); ++i) {
    if (feasible[i].cost < feasible[best].cost) best = i;
  }
  return feasible[best];
}

}  // namespace kgsearch
