// Query graph model (Definition 2) and its decomposition into path-shaped
// sub-query graphs (Definition 6, Eq. 1).
#ifndef KGSEARCH_CORE_QUERY_GRAPH_H_
#define KGSEARCH_CORE_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kgsearch {

/// A query node: target nodes know only their type; specific nodes know
/// type and name (Section III-A).
struct QueryNode {
  std::string type;
  std::string name;  ///< empty for target nodes

  bool is_specific() const { return !name.empty(); }
  bool operator==(const QueryNode&) const = default;
};

/// A query edge with a predicate label (undirected for matching purposes).
struct QueryEdge {
  int from = -1;
  int to = -1;
  std::string predicate;

  bool operator==(const QueryEdge&) const = default;
};

/// A small labeled graph expressing the user's intent.
class QueryGraph {
 public:
  /// Adds a target node (unknown entity; only the type is known).
  int AddTargetNode(std::string type) {
    nodes_.push_back(QueryNode{std::move(type), ""});
    return static_cast<int>(nodes_.size()) - 1;
  }

  /// Adds a specific node (known entity; type and name known).
  int AddSpecificNode(std::string type, std::string name) {
    KG_CHECK(!name.empty());
    nodes_.push_back(QueryNode{std::move(type), std::move(name)});
    return static_cast<int>(nodes_.size()) - 1;
  }

  /// Adds an edge between two existing nodes.
  int AddEdge(int from, int to, std::string predicate) {
    KG_CHECK(from >= 0 && from < static_cast<int>(nodes_.size()));
    KG_CHECK(to >= 0 && to < static_cast<int>(nodes_.size()));
    KG_CHECK(from != to);
    edges_.push_back(QueryEdge{from, to, std::move(predicate)});
    return static_cast<int>(edges_.size()) - 1;
  }

  const std::vector<QueryNode>& nodes() const { return nodes_; }
  const std::vector<QueryEdge>& edges() const { return edges_; }
  const QueryNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  const QueryEdge& edge(int i) const { return edges_[static_cast<size_t>(i)]; }
  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Indexes of target nodes.
  std::vector<int> TargetNodes() const {
    std::vector<int> out;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i].is_specific()) out.push_back(static_cast<int>(i));
    }
    return out;
  }
  /// Indexes of specific nodes.
  std::vector<int> SpecificNodes() const {
    std::vector<int> out;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].is_specific()) out.push_back(static_cast<int>(i));
    }
    return out;
  }

  /// Structural sanity: connected, has >= 1 specific and >= 1 target node,
  /// no isolated nodes (every node touched by an edge unless the graph is a
  /// single node).
  Status Validate() const;

  /// Structural equality (same nodes and edges, in order).
  bool operator==(const QueryGraph&) const = default;

 private:
  std::vector<QueryNode> nodes_;
  std::vector<QueryEdge> edges_;
};

/// One path-shaped sub-query graph (Definition 6): a walk through query
/// nodes from a specific node to the pivot, listed as alternating node and
/// edge indexes of the parent QueryGraph.
struct SubQueryGraph {
  std::vector<int> node_seq;  ///< size = edge_seq.size() + 1; [0] specific
  std::vector<int> edge_seq;  ///< indexes into QueryGraph::edges()

  size_t Length() const { return edge_seq.size(); }
};

/// A full decomposition: pivot target node + covering sub-query paths.
struct Decomposition {
  int pivot = -1;
  std::vector<SubQueryGraph> subqueries;
  double cost = 0.0;  ///< Eq. 1 objective value (log-scale search space)
};

/// Pivot-selection strategies (Section VII-C).
enum class PivotStrategy {
  kMinCost,  ///< Eq. 1: minimize estimated search space via DP
  kRandom,   ///< baseline: first/any target node, arbitrary path cover
};

/// Options for decomposition.
struct DecomposeOptions {
  PivotStrategy strategy = PivotStrategy::kMinCost;
  /// Average KG degree; drives the per-hop branching factor in the cost.
  double avg_degree = 16.0;
  /// User-desired per-edge hop bound (n̂); scales path cost exponents.
  size_t n_hat = 4;
  /// Seed used only by kRandom.
  uint64_t seed = 42;
};

/// Decomposes `query` into sub-query path graphs intersecting at a pivot
/// (Definition 6). Fails when the query is invalid or no full edge cover by
/// specific→pivot paths exists for any pivot.
Result<Decomposition> DecomposeQuery(const QueryGraph& query,
                                     const DecomposeOptions& options);

/// Decomposes `query` forcing a particular pivot target node (used by the
/// pivot-selection experiments of Section VII-C). Fails when that pivot
/// admits no full cover.
Result<Decomposition> DecomposeQueryForPivot(const QueryGraph& query,
                                             int pivot,
                                             const DecomposeOptions& options);

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_QUERY_GRAPH_H_
