#include "core/resolved_query.h"

#include <algorithm>

namespace kgsearch {

Result<ResolvedSubQuery> ResolveSubQuery(const QueryGraph& query,
                                         const SubQueryGraph& path,
                                         const NodeMatcher& matcher) {
  KG_CHECK(path.node_seq.size() == path.edge_seq.size() + 1);
  const GraphView& graph = matcher.view();
  ResolvedSubQuery out;

  for (int ei : path.edge_seq) {
    const QueryEdge& qe = query.edge(ei);
    PredicateId p = graph.FindPredicate(qe.predicate);
    if (p == kInvalidSymbol) {
      return Status::NotFound("query predicate not in KG vocabulary: " +
                              qe.predicate);
    }
    out.edge_predicates.push_back(p);
  }

  for (int ni : path.node_seq) {
    const QueryNode& qn = query.node(ni);
    NodeConstraint c;
    if (qn.is_specific()) {
      c.specific = true;
      c.nodes = matcher.MatchByName(qn.name);
      std::sort(c.nodes.begin(), c.nodes.end());
      if (c.nodes.empty()) {
        return Status::NotFound("no node match for specific node '" +
                                qn.name + "'");
      }
    } else {
      c.specific = false;
      c.types = matcher.MatchTypes(qn.type);
      std::sort(c.types.begin(), c.types.end());
      if (c.types.empty()) {
        return Status::NotFound("no type match for target node type '" +
                                qn.type + "'");
      }
    }
    out.node_constraints.push_back(std::move(c));
  }

  out.start_candidates = out.node_constraints.front().nodes;
  KG_CHECK(!out.node_constraints.front().specific ||
           !out.start_candidates.empty());
  if (!out.node_constraints.front().specific) {
    return Status::InvalidArgument(
        "sub-query paths must start at a specific node");
  }
  return out;
}

}  // namespace kgsearch
