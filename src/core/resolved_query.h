// Resolution of a sub-query graph against a concrete knowledge graph:
// query labels become node-id / type-id / predicate-id constraints.
#ifndef KGSEARCH_CORE_RESOLVED_QUERY_H_
#define KGSEARCH_CORE_RESOLVED_QUERY_H_

#include <algorithm>
#include <vector>

#include "core/query_graph.h"
#include "kg/graph.h"
#include "kg/graph_view.h"
#include "match/node_matcher.h"
#include "util/status.h"

namespace kgsearch {

/// Constraint a KG node must satisfy to match one query node.
struct NodeConstraint {
  bool specific = false;
  std::vector<NodeId> nodes;  ///< allowed node ids (specific nodes), sorted
  std::vector<TypeId> types;  ///< allowed type ids (target nodes), sorted

  /// True when KG node `u` satisfies this constraint. Takes a GraphView so
  /// delta-overlay nodes (and nodes of delta-added types) constrain the
  /// same way base nodes do; a bare KnowledgeGraph converts implicitly.
  bool Matches(const GraphView& graph, NodeId u) const {
    if (specific) {
      return std::binary_search(nodes.begin(), nodes.end(), u);
    }
    return std::binary_search(types.begin(), types.end(), graph.NodeType(u));
  }
};

/// A sub-query path graph with all labels resolved to graph ids.
///
/// node_constraints has L+1 entries for L query edges; entry 0 is the
/// specific start node, entry L the target/pivot node. edge_predicates[i]
/// is the predicate to compare traversed edges against while matching query
/// edge i (Definition 5 weights).
struct ResolvedSubQuery {
  std::vector<PredicateId> edge_predicates;
  std::vector<NodeConstraint> node_constraints;
  std::vector<NodeId> start_candidates;  ///< φ(v^s)

  size_t Length() const { return edge_predicates.size(); }
};

/// Resolves one decomposition path against the graph via the node matcher.
///
/// Fails with NotFound when the specific node, the target type, or a query
/// predicate cannot be resolved (the "mismatch" cases of Figure 1).
Result<ResolvedSubQuery> ResolveSubQuery(const QueryGraph& query,
                                         const SubQueryGraph& path,
                                         const NodeMatcher& matcher);

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_RESOLVED_QUERY_H_
