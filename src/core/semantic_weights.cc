#include "core/semantic_weights.h"

#include <algorithm>

namespace kgsearch {

SemanticWeights::SemanticWeights(const GraphView& graph,
                                 const PredicateSpace* space,
                                 const ResolvedSubQuery* subquery)
    : graph_(graph), subquery_(subquery) {
  KG_CHECK(space != nullptr && subquery != nullptr);
  const size_t num_preds = graph.NumPredicates();
  const size_t stages = subquery->Length();
  KG_CHECK(space->NumPredicates() >= num_preds);

  rows_.resize(stages);
  for (size_t s = 0; s < stages; ++s) {
    rows_[s].resize(num_preds);
    PredicateId q = subquery->edge_predicates[s];
    // One contiguous pass over the SoA block per stage; bitwise-identical
    // to the per-pair Weight() loop it replaces.
    space->WeightRow(q, num_preds, rows_[s].data());
  }
  // Suffix maxima over stages, so m(u) can bound "any remaining stage".
  rowmax_.assign(stages, std::vector<double>(num_preds, kMinWeight));
  for (size_t s = stages; s-- > 0;) {
    for (PredicateId p = 0; p < num_preds; ++p) {
      double v = rows_[s][p];
      if (s + 1 < stages) v = std::max(v, rowmax_[s + 1][p]);
      rowmax_[s][p] = v;
    }
  }
}

double SemanticWeights::MaxAdjacentWeight(NodeId u, size_t stage) const {
  KG_CHECK(stage < rowmax_.size());
  uint64_t key = (static_cast<uint64_t>(u) << 8) | stage;
  auto it = m_cache_.find(key);
  if (it != m_cache_.end()) return it->second;
  double m = kMinWeight;
  for (const AdjEntry& e : graph_.Neighbors(u)) {
    m = std::max(m, rowmax_[stage][e.predicate]);
    if (m >= 1.0) break;
  }
  m_cache_.emplace(key, m);
  return m;
}

}  // namespace kgsearch
