// Lazily materialized semantic graph weights (Section IV-B).
//
// Rather than building the full semantic graph SGQ up front ("high traversal
// cost"), weights are derived on the fly while the A* search expands: this
// class precomputes, per resolved sub-query, the similarity row of each query
// predicate against the whole predicate vocabulary (O(L·|P|), tiny), and
// caches the per-node heuristic bound m(u) (Lemma 1) on demand. Nodes/edges
// touched are counted, which quantifies how much of SGQ was materialized
// (the pruning percentages of Example 5).
#ifndef KGSEARCH_CORE_SEMANTIC_WEIGHTS_H_
#define KGSEARCH_CORE_SEMANTIC_WEIGHTS_H_

#include <unordered_map>
#include <vector>

#include "core/resolved_query.h"
#include "embedding/predicate_space.h"
#include "kg/graph.h"
#include "kg/graph_view.h"

namespace kgsearch {

/// Per-sub-query view of the semantic graph's edge weights and heuristics.
class SemanticWeights {
 public:
  /// Precomputes similarity rows for the sub-query's predicates. The view's
  /// predicate vocabulary must be covered by the space (the serving layer
  /// guarantees this by rejecting ingest of unknown predicates).
  SemanticWeights(const GraphView& graph, const PredicateSpace* space,
                  const ResolvedSubQuery* subquery);

  /// Weight of a KG edge with predicate `edge_pred` while matching query
  /// edge `stage` (Eq. 5, clamped positive).
  double Weight(size_t stage, PredicateId edge_pred) const {
    KG_CHECK(stage < rows_.size());
    return rows_[stage][edge_pred];
  }

  /// m(u) for a search frontier at `u` about to match query edges >= stage:
  /// the maximum weight over u's incident edges against any remaining query
  /// predicate. Upper-bounds the next traversed weight (Lemma 1). Cached.
  double MaxAdjacentWeight(NodeId u, size_t stage) const;

  /// Number of distinct nodes whose adjacency was materialized.
  size_t materialized_nodes() const { return m_cache_.size(); }

 private:
  GraphView graph_;
  const ResolvedSubQuery* subquery_;
  /// rows_[stage][pred] = clamped similarity of query predicate `stage`
  /// against vocabulary predicate `pred`.
  std::vector<std::vector<double>> rows_;
  /// rowmax_[stage][pred] = max over query stages >= stage of rows_.
  std::vector<std::vector<double>> rowmax_;
  /// cache key packs (node, stage).
  mutable std::unordered_map<uint64_t, double> m_cache_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_SEMANTIC_WEIGHTS_H_
