#include "core/ta_assembly.h"

#include <algorithm>
#include <unordered_map>

namespace kgsearch {

namespace {

/// Retained alternate matches per (set, pivot); enough to enumerate
/// non-pivot answers without bloating the join state.
constexpr size_t kAlternatesCap = 8;

/// Join state for one pivot node match u^p.
struct Candidate {
  /// Index of the best (first-seen) match per set; -1 when unseen.
  std::vector<int32_t> best_match;
  /// Up to kAlternatesCap match indexes per set, in access (= pss) order.
  std::vector<std::vector<int32_t>> alternates;
  /// Sum of seen contributions = the lower bound Sm̲(u^p) (Eq. 8-9); exact
  /// once all sets contributed, since per-set first access is the best.
  double lower = 0.0;
  size_t seen_count = 0;
};

}  // namespace

Result<std::vector<FinalMatch>> AssembleTopK(
    const std::vector<std::vector<PathMatch>>& match_sets, size_t k,
    TaStats* stats) {
  TaStats local;
  TaStats& st = stats ? *stats : local;
  st = TaStats{};
  const size_t n = match_sets.size();
  if (n == 0 || k == 0) return std::vector<FinalMatch>{};
  for (const auto& set : match_sets) {
    if (set.empty()) return std::vector<FinalMatch>{};  // inner join is empty
  }

  std::vector<size_t> cursor(n, 0);
  // ψcur per set: pss of the latest accessed match (Eq. 11); once a set is
  // exhausted it can no longer contribute to unseen candidates.
  std::vector<double> psi_cur(n);
  std::vector<bool> exhausted(n, false);
  for (size_t i = 0; i < n; ++i) psi_cur[i] = match_sets[i].front().pss;

  std::unordered_map<NodeId, Candidate> candidates;

  auto unseen_bound = [&](size_t set_index) {
    return exhausted[set_index] ? 0.0 : psi_cur[set_index];
  };

  // Upper bound Sm̄(u^p) (Eq. 10-11).
  auto upper_of = [&](const Candidate& c) {
    double u = c.lower;
    for (size_t i = 0; i < n; ++i) {
      if (c.best_match[i] < 0) u += unseen_bound(i);
    }
    return u;
  };

  auto all_exhausted = [&] {
    for (size_t i = 0; i < n; ++i) {
      if (!exhausted[i]) return false;
    }
    return true;
  };

  // Checks Theorem 3's termination: the k-th largest lower bound among
  // complete candidates vs. the best upper bound of everything else,
  // including never-seen pivots (classic TA threshold θ = Σ ψcur).
  auto can_terminate = [&] {
    std::vector<std::pair<double, NodeId>> complete;
    for (const auto& [pivot, c] : candidates) {
      if (c.seen_count == n) complete.emplace_back(c.lower, pivot);
    }
    if (complete.size() < k) {
      if (!all_exhausted()) return false;
    }
    std::sort(complete.begin(), complete.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    if (all_exhausted()) return true;
    if (complete.size() < k) return false;
    const double lk = complete[k - 1].first;
    std::unordered_map<NodeId, bool> topk;
    for (size_t i = 0; i < k; ++i) topk[complete[i].second] = true;
    double umax = 0.0;
    for (size_t i = 0; i < n; ++i) umax += unseen_bound(i);  // θ, unseen pivots
    for (const auto& [pivot, c] : candidates) {
      if (topk.count(pivot)) continue;
      umax = std::max(umax, upper_of(c));
    }
    return lk >= umax - 1e-12;
  };

  // Sorted accesses in round-robin over the n match sets.
  size_t next_set = 0;
  size_t check_counter = 0;
  while (!all_exhausted()) {
    // Find the next non-exhausted set in round-robin order.
    size_t i = next_set;
    for (size_t tries = 0; tries < n && exhausted[i]; ++tries) i = (i + 1) % n;
    next_set = (i + 1) % n;

    const auto& set = match_sets[i];
    const PathMatch& m = set[cursor[i]];
    psi_cur[i] = m.pss;
    ++st.sorted_accesses;

    Candidate& c = candidates[m.target()];
    if (c.best_match.empty()) {
      c.best_match.assign(n, -1);
      c.alternates.assign(n, {});
    }
    if (c.best_match[i] < 0) {
      // First (= best, lists are sorted) contribution of set i to this pivot.
      c.best_match[i] = static_cast<int32_t>(cursor[i]);
      c.lower += m.pss;
      ++c.seen_count;
    }
    if (c.alternates[i].size() < kAlternatesCap) {
      c.alternates[i].push_back(static_cast<int32_t>(cursor[i]));
    }

    if (++cursor[i] >= set.size()) exhausted[i] = true;

    // Termination check per TA access; the check is O(|candidates|), so for
    // large joins amortize it every few accesses.
    if (++check_counter >= 4 || all_exhausted()) {
      check_counter = 0;
      if (can_terminate()) {
        st.early_terminated = !all_exhausted();
        break;
      }
    }
  }
  st.candidates_seen = candidates.size();

  // Rank complete candidates by exact score.
  std::vector<std::pair<double, NodeId>> complete;
  for (const auto& [pivot, c] : candidates) {
    if (c.seen_count == n) complete.emplace_back(c.lower, pivot);
  }
  std::sort(complete.begin(), complete.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  if (complete.size() > k) complete.resize(k);

  std::vector<FinalMatch> out;
  out.reserve(complete.size());
  for (const auto& [score, pivot] : complete) {
    const Candidate& c = candidates.at(pivot);
    FinalMatch fm;
    fm.pivot_match = pivot;
    fm.score = score;
    fm.parts.reserve(n);
    fm.alternates.resize(n);
    for (size_t i = 0; i < n; ++i) {
      fm.parts.push_back(match_sets[i][static_cast<size_t>(c.best_match[i])]);
      for (int32_t idx : c.alternates[i]) {
        fm.alternates[i].push_back(match_sets[i][static_cast<size_t>(idx)]);
      }
    }
    out.push_back(std::move(fm));
  }
  return out;
}

}  // namespace kgsearch
