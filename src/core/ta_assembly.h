// Threshold-algorithm (TA) based assembly of sub-query matches into final
// top-k matches for the query graph (Section V-C, Fagin's TA).
#ifndef KGSEARCH_CORE_TA_ASSEMBLY_H_
#define KGSEARCH_CORE_TA_ASSEMBLY_H_

#include <vector>

#include "core/path_match.h"
#include "util/status.h"

namespace kgsearch {

/// Counters describing one assembly run.
struct TaStats {
  size_t sorted_accesses = 0;
  /// True when Lk >= Umax terminated the scan before exhausting the lists
  /// (Theorem 3); false when every match was accessed.
  bool early_terminated = false;
  size_t candidates_seen = 0;
};

/// Assembles the top-k final matches by joining the per-sub-query match sets
/// at the pivot node match (Eq. 2-3).
///
/// Each inner vector must be sorted by descending pss (the natural output
/// order of AStarSearch). A final match requires a sub-query match in every
/// set sharing the same pivot node (inner join, Figure 4); its score is the
/// sum of the best pss per set. Early termination follows Theorem 3, with
/// the classic TA threshold (sum of current cursor pss values) additionally
/// bounding candidates not yet seen at all.
///
/// Returns at most k matches in descending score order (fewer when the join
/// yields fewer complete matches).
Result<std::vector<FinalMatch>> AssembleTopK(
    const std::vector<std::vector<PathMatch>>& match_sets, size_t k,
    TaStats* stats = nullptr);

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_TA_ASSEMBLY_H_
