#include "core/time_bounded.h"

#include <algorithm>
#include <atomic>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace kgsearch {

TbqEngine::TbqEngine(const KnowledgeGraph* graph, const PredicateSpace* space,
                     const TransformationLibrary* library, const Clock* clock)
    : graph_(graph), space_(space), matcher_(graph, library), clock_(clock) {
  KG_CHECK(space != nullptr && clock != nullptr);
}

double TbqEngine::CalibrateAssemblyCostMicros(const Clock* clock) {
  // Simulated TA assembly over synthetic match sets, as Algorithm 3's
  // empirical estimate of t. 2 sets x 2048 matches with disjoint-ish pivots
  // force a full scan, which is the worst case the estimator must cover.
  constexpr size_t kSets = 2;
  constexpr size_t kPerSet = 2048;
  Rng rng(7);
  std::vector<std::vector<PathMatch>> sets(kSets);
  for (size_t i = 0; i < kSets; ++i) {
    sets[i].reserve(kPerSet);
    double pss = 0.999;
    for (size_t j = 0; j < kPerSet; ++j) {
      PathMatch m;
      NodeId pivot = static_cast<NodeId>(rng.UniformIndex(kPerSet * 2));
      m.nodes = {0, pivot};
      m.predicates = {0};
      m.weights = {pss};
      m.pss = pss;
      pss *= 0.9995;
      sets[i].push_back(std::move(m));
    }
  }
  StopWatch watch(clock);
  TaStats stats;
  Result<std::vector<FinalMatch>> r = AssembleTopK(sets, 16, &stats);
  KG_CHECK(r.ok());
  int64_t elapsed = watch.ElapsedMicros();
  if (stats.sorted_accesses == 0 || elapsed <= 0) return 1.0;  // manual clock
  return std::max(0.05, static_cast<double>(elapsed) /
                            static_cast<double>(stats.sorted_accesses));
}

Result<TimeBoundedResult> TbqEngine::Query(
    const QueryGraph& query, const TimeBoundedOptions& options) const {
  const GraphView view = options.view ? *options.view : GraphView(*graph_);
  Result<Decomposition> decomposition = DecomposeQuery(
      query, MakeDecomposeOptions(view, options.pivot_strategy,
                                  options.n_hat, options.seed));
  if (!decomposition.ok()) return decomposition.status();
  return QueryDecomposed(query, decomposition.ValueOrDie(), options);
}

Result<TimeBoundedResult> TbqEngine::QueryDecomposed(
    const QueryGraph& query, const Decomposition& decomposition,
    const TimeBoundedOptions& options) const {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.time_bound_micros <= 0) {
    return Status::InvalidArgument("time bound must be positive");
  }
  // Hard per-request wall (deadline / cancellation), distinct from the
  // soft anytime budget below: checked up front and polled inside every
  // search; firing aborts the query with a Status instead of assembling a
  // partial answer.
  auto interrupt = [cancel = options.cancel,
                    deadline = options.deadline_micros, clock = clock_]() {
    return CheckInterrupt(cancel, deadline, clock);
  };
  KG_RETURN_NOT_OK(interrupt());
  StopWatch watch(clock_);

  double t_micros = options.per_match_assembly_micros;
  if (t_micros <= 0.0) t_micros = CalibrateAssemblyCostMicros(clock_);

  TimeBoundedResult result;
  result.decomposition = decomposition;
  const size_t n = result.decomposition.subqueries.size();
  KG_CHECK(n > 0);

  // One consistent view for the whole query; see SgqEngine::QueryDecomposed.
  const GraphView view = options.view ? *options.view : GraphView(*graph_);
  NodeMatcher matcher(view, matcher_.library());
  matcher.set_candidate_cache(matcher_.candidate_cache());

  std::vector<ResolvedSubQuery> resolved;
  resolved.reserve(n);
  for (const SubQueryGraph& sub : result.decomposition.subqueries) {
    Result<ResolvedSubQuery> r = ResolveSubQuery(query, sub, matcher);
    if (!r.ok()) return r.status();
    resolved.push_back(std::move(r).ValueOrDie());
  }

  // Shared state for the synchronized time estimation (Algorithm 3): each
  // search publishes its |M̂i|; the estimator compares
  //   elapsed + (Σ|M̂i|)·t   against   T·r%.
  // All searches run concurrently, so the elapsed wall time stands in for
  // max{T_A*}; with sequential execution (threads=1) it equals Σ T_A*,
  // which is only more conservative.
  const double alert_micros =
      static_cast<double>(options.time_bound_micros) * options.alert_ratio;
  std::vector<std::atomic<size_t>> match_counts(n);
  for (auto& c : match_counts) c.store(0);
  std::atomic<bool> stop_all{false};
  const int64_t start_micros = clock_->NowMicros();

  auto should_stop = [&](size_t self_index, size_t matches_so_far) {
    match_counts[self_index].store(matches_so_far,
                                   std::memory_order_relaxed);
    if (stop_all.load(std::memory_order_relaxed)) return true;
    size_t total_matches = 0;
    for (const auto& c : match_counts) {
      total_matches += c.load(std::memory_order_relaxed);
    }
    const double elapsed =
        static_cast<double>(clock_->NowMicros() - start_micros);
    const double estimate =
        elapsed + static_cast<double>(total_matches) * t_micros;
    if (estimate >= alert_micros) {
      stop_all.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  result.subquery_stats.assign(n, SearchStats{});
  std::vector<std::vector<PathMatch>> match_sets(n);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([&, i] {
      AStarConfig config;
      config.k = SIZE_MAX;  // anytime mode ignores k; time governs
      config.tau = options.tau;
      config.n_hat = options.n_hat;
      config.max_expansions = options.max_expansions;
      config.dedup = options.dedup;
      config.anytime = true;
      config.anytime_match_cap = options.match_cap;
      config.stop_check_interval = options.stop_check_interval;
      if (options.cancel != nullptr || options.deadline_micros > 0) {
        config.interrupt = interrupt;
      }
      config.should_stop = [&, i](size_t matches_so_far) {
        return should_stop(i, matches_so_far);
      };
      Result<std::vector<PathMatch>> r = AStarSearch(
          view, *space_, resolved[i], config, &result.subquery_stats[i]);
      if (r.ok()) {
        match_sets[i] = std::move(r).ValueOrDie();
      } else {
        statuses[i] = r.status();
      }
    });
  }
  if (options.executor != nullptr) {
    RunOnPool(options.executor, std::move(tasks));
  } else {
    size_t threads = options.threads == 0 ? n : options.threads;
    RunParallel(std::move(tasks), threads);
  }
  for (const Status& s : statuses) KG_RETURN_NOT_OK(s);

  for (const SearchStats& s : result.subquery_stats) {
    if (s.stopped_early) result.stopped_by_time = true;
  }

  Result<std::vector<FinalMatch>> assembled =
      AssembleTopK(match_sets, options.k, &result.ta_stats);
  if (!assembled.ok()) return assembled.status();
  result.matches = std::move(assembled).ValueOrDie();
  result.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace kgsearch
