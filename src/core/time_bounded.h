// TbqEngine: response-time-bounded approximate querying (Problem 2,
// Section VI, Algorithms 2-3).
//
// Each sub-query runs the anytime A* search, collecting non-optimal match
// sets M̂i as matches are generated. A synchronized time estimator
//   T̂ = max{T_A*} + Σ|M̂i|·t        (Algorithm 3)
// stops all searches once T̂ reaches the alert threshold T·r%, after which
// the TA assembly produces the approximate final matches M̂. Quality is
// monotone in T (Lemmas 6-7, Theorem 4): given enough time, M̂ = M.
#ifndef KGSEARCH_CORE_TIME_BOUNDED_H_
#define KGSEARCH_CORE_TIME_BOUNDED_H_

#include <vector>

#include "core/engine.h"

namespace kgsearch {

/// Tuning knobs for a time-bounded query.
struct TimeBoundedOptions {
  size_t k = 10;
  double tau = 0.8;
  size_t n_hat = 4;
  size_t threads = 0;  ///< 0 = one per sub-query (ignored with executor)
  /// Non-owning shared executor; see EngineOptions::executor. Note that
  /// under a tight bound the stop decision depends on real interleaving, so
  /// only generously-bounded runs are reproducible across executors.
  ThreadPool* executor = nullptr;
  PivotStrategy pivot_strategy = PivotStrategy::kMinCost;
  uint64_t seed = 42;

  /// User-specified time bound T, in microseconds.
  int64_t time_bound_micros = 100'000;
  /// Alert ratio r% (the paper uses 80%): assembly launches when the
  /// estimated total time reaches time_bound * alert_ratio.
  double alert_ratio = 0.8;
  /// Empirical per-match TA assembly cost t, in microseconds. <= 0 means
  /// "calibrate via a simulated assembly" (the paper's approach).
  double per_match_assembly_micros = -1.0;
  /// Cap on matches retained per sub-query (best kept); 0 = unlimited.
  size_t match_cap = 0;
  /// Pops between time checks inside each A* search.
  size_t stop_check_interval = 64;
  /// Safety valve per A* search; 0 = unlimited.
  uint64_t max_expansions = 4'000'000;
  /// Partial-path de-duplication discipline (Algorithm 1 vs. exact states).
  DedupMode dedup = DedupMode::kPaperNodeVisited;
  /// Absolute per-request deadline (Clock::NowMicros scale); 0 = none.
  /// Unlike time_bound_micros — the paper's soft budget, which stops
  /// searches gracefully and assembles a partial answer — the deadline is
  /// a hard wall: expiry aborts between node expansions with
  /// kDeadlineExceeded and no result.
  int64_t deadline_micros = 0;
  /// Cooperative cancellation; non-owning, may be null. See
  /// EngineOptions::cancel.
  const CancelToken* cancel = nullptr;
  /// Pinned snapshot view; see EngineOptions::view.
  const GraphView* view = nullptr;
};

/// Result of a time-bounded query.
struct TimeBoundedResult {
  std::vector<FinalMatch> matches;  ///< approximate top-k M̂
  Decomposition decomposition;
  std::vector<SearchStats> subquery_stats;
  TaStats ta_stats;
  double elapsed_ms = 0.0;
  /// True when the time estimator stopped at least one search early; false
  /// means every search ran to exhaustion (M̂ = M territory, Lemma 7).
  bool stopped_by_time = false;

  std::vector<NodeId> AnswerIds() const {
    std::vector<NodeId> out;
    out.reserve(matches.size());
    for (const FinalMatch& m : matches) out.push_back(m.pivot_match);
    return out;
  }
};

/// Time-bounded query engine (TBQ in the evaluation).
class TbqEngine {
 public:
  /// All pointers must outlive the engine. The clock is injectable so the
  /// convergence guarantees are testable with a ManualClock.
  TbqEngine(const KnowledgeGraph* graph, const PredicateSpace* space,
            const TransformationLibrary* library,
            const Clock* clock = SystemClock::Default());

  /// Runs a query under the time bound in `options`.
  Result<TimeBoundedResult> Query(const QueryGraph& query,
                                  const TimeBoundedOptions& options) const;

  /// Runs with a caller-supplied decomposition (e.g. a cached plan from the
  /// serving layer). Mirrors SgqEngine::QueryDecomposed.
  Result<TimeBoundedResult> QueryDecomposed(
      const QueryGraph& query, const Decomposition& decomposition,
      const TimeBoundedOptions& options) const;

  /// Measures the per-match TA assembly cost t on this machine by timing a
  /// simulated assembly (Algorithm 3's "empirical time"). Exposed for tests.
  static double CalibrateAssemblyCostMicros(const Clock* clock);

  const NodeMatcher& matcher() const { return matcher_; }
  /// For pre-serving configuration (e.g. installing a shared candidate
  /// cache); must not be called while queries are in flight.
  NodeMatcher* mutable_matcher() { return &matcher_; }

 private:
  const KnowledgeGraph* graph_;
  const PredicateSpace* space_;
  NodeMatcher matcher_;
  const Clock* clock_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_CORE_TIME_BOUNDED_H_
