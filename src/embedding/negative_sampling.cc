#include "embedding/negative_sampling.h"

#include "embedding/simd_kernels.h"
#include "util/status.h"

namespace kgsearch {

NegativeScorer::NegativeScorer(size_t dim, size_t max_candidates)
    : block_(max_candidates, dim), query_(2, dim) {
  KG_CHECK(dim > 0 && max_candidates > 0);
  scale_.resize(max_candidates);
  scores_.resize(max_candidates);
}

void NegativeScorer::GatherNormalized(const std::vector<FloatVec>& entity,
                                      const std::vector<NodeId>& ids) {
  KG_CHECK(ids.size() <= block_.size());
  count_ = ids.size();
  for (size_t i = 0; i < count_; ++i) {
    KG_CHECK(ids[i] < entity.size());
    gather_scratch_ = entity[ids[i]];
    NormalizeInPlace(&gather_scratch_);
    block_.SetRow(i, gather_scratch_.data(), gather_scratch_.size());
  }
}

const float* NegativeScorer::ScoreL2Sq(const FloatVec& q) {
  query_.SetRow(0, q.data(), q.size());
  simd::L2SqBatch(query_.Row(0), block_.data(), count_, block_.stride(),
                  scores_.data());
  return scores_.data();
}

const float* NegativeScorer::ScoreProjectedL2Sq(const FloatVec& q,
                                                const FloatVec& w) {
  query_.SetRow(0, q.data(), q.size());
  query_.SetRow(1, w.data(), w.size());
  simd::DotBatch(query_.Row(1), block_.data(), count_, block_.stride(),
                 scale_.data());
  simd::L2SqShiftBatch(query_.Row(0), query_.Row(1), scale_.data(),
                       block_.data(), count_, block_.stride(),
                       scores_.data());
  return scores_.data();
}

}  // namespace kgsearch
