// Batched negative-candidate scoring for the embedding trainers.
//
// TransE/TransH draw corrupted triples during training; with
// `negative_candidates` > 1 in the trainer config, each positive draws a
// pool of C candidates and keeps the HARDEST one — the lowest-scoring
// non-fact, i.e. the corruption the current model finds most plausible.
// Scoring C candidates one FloatVec at a time would re-introduce exactly
// the pointer-chasing the SoA store removes, so this helper gathers the
// candidate entity vectors into a scratch VectorStore block and scores
// them with the batched kernels (embedding/simd_kernels.h) in one pass.
//
// Scores here are float and SELECTION-ONLY: whichever candidate wins, the
// actual SGD step still runs the exact double-accumulated scalar path in
// the trainer. At the default negative_candidates = 1 the trainers never
// construct this class and behave bit-identically to before it existed.
#ifndef KGSEARCH_EMBEDDING_NEGATIVE_SAMPLING_H_
#define KGSEARCH_EMBEDDING_NEGATIVE_SAMPLING_H_

#include <vector>

#include "embedding/vector_math.h"
#include "embedding/vector_store.h"
#include "kg/graph.h"

namespace kgsearch {

class NegativeScorer {
 public:
  /// Scratch sized for up to `max_candidates` candidates of `dim` floats.
  NegativeScorer(size_t dim, size_t max_candidates);

  /// Copies the entity vectors for `ids` into the scratch block,
  /// unit-normalizing each COPY (the trainers project entities to the unit
  /// ball before use, so scoring the projected form matches what the SGD
  /// step will see; the live embedding rows are not touched).
  void GatherNormalized(const std::vector<FloatVec>& entity,
                        const std::vector<NodeId>& ids);

  size_t count() const { return count_; }

  /// scores[i] = ||q - cand_i||^2 for the gathered candidates. TransE:
  /// tail corruption scores q = h + r, head corruption q = t - r (since
  /// ||h' + r - t||^2 = ||h' - (t - r)||^2).
  const float* ScoreL2Sq(const FloatVec& q);

  /// scores[i] = sum_j (q[j] - cand_i[j] + <w, cand_i> * w[j])^2 — the
  /// TransH projected distance with the candidate on the corrupted side.
  /// Tail corruption: q = h_perp + d; head corruption: q = t_perp - d.
  const float* ScoreProjectedL2Sq(const FloatVec& q, const FloatVec& w);

 private:
  VectorStore block_;  // candidate rows, stride-padded for the kernels
  VectorStore query_;  // row 0: padded q, row 1: padded w
  size_t count_ = 0;
  FloatVec gather_scratch_;
  std::vector<float> scale_;
  std::vector<float> scores_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_NEGATIVE_SAMPLING_H_
