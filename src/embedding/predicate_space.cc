#include "embedding/predicate_space.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace kgsearch {

PredicateSpace::PredicateSpace(std::vector<FloatVec> vectors,
                               std::vector<std::string> names)
    : vectors_(std::move(vectors)), names_(std::move(names)) {
  KG_CHECK(vectors_.size() == names_.size());
  for (FloatVec& v : vectors_) NormalizeInPlace(&v);
}

PredicateSpace PredicateSpace::FromTransE(const KnowledgeGraph& graph,
                                          const TransEEmbedding& embedding) {
  KG_CHECK(embedding.predicate.size() == graph.NumPredicates());
  std::vector<std::string> names;
  names.reserve(graph.NumPredicates());
  for (PredicateId p = 0; p < graph.NumPredicates(); ++p) {
    names.emplace_back(graph.PredicateName(p));
  }
  return PredicateSpace(embedding.predicate, std::move(names));
}

PredicateSpace PredicateSpace::FromNormalized(std::vector<FloatVec> vectors,
                                              std::vector<std::string> names) {
  KG_CHECK(vectors.size() == names.size());
  PredicateSpace space;
  space.vectors_ = std::move(vectors);
  space.names_ = std::move(names);
  return space;
}

double PredicateSpace::Cosine(PredicateId a, PredicateId b) const {
  KG_CHECK(a < vectors_.size() && b < vectors_.size());
  if (a == b) return 1.0;
  // Vectors are unit-normalized at construction, so the dot is the cosine.
  return Dot(vectors_[a], vectors_[b]);
}

std::vector<SimilarPredicate> PredicateSpace::TopSimilar(PredicateId p,
                                                         size_t n) const {
  KG_CHECK(p < vectors_.size());
  std::vector<SimilarPredicate> all;
  all.reserve(vectors_.size());
  for (PredicateId q = 0; q < vectors_.size(); ++q) {
    if (q == p) continue;
    all.push_back(SimilarPredicate{q, Cosine(p, q)});
  }
  size_t keep = std::min(n, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<int64_t>(keep),
                    all.end(),
                    [](const SimilarPredicate& x, const SimilarPredicate& y) {
                      if (x.similarity != y.similarity) {
                        return x.similarity > y.similarity;
                      }
                      return x.predicate < y.predicate;
                    });
  all.resize(keep);
  return all;
}

std::string PredicateSpace::Serialize() const {
  std::ostringstream out;
  for (size_t i = 0; i < vectors_.size(); ++i) {
    out << names_[i] << ' ' << vectors_[i].size();
    for (float x : vectors_[i]) out << ' ' << x;
    out << '\n';
  }
  return out.str();
}

Result<PredicateSpace> PredicateSpace::Deserialize(
    std::string_view text, const KnowledgeGraph* graph) {
  std::vector<FloatVec> vectors;
  std::vector<std::string> names;
  int lineno = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() : eol + 1;
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::istringstream in{std::string(trimmed)};
    std::string name;
    size_t dim = 0;
    if (!(in >> name >> dim) || dim == 0) {
      return Status::ParseError(
          StrFormat("line %d: expected 'name dim v...'", lineno));
    }
    FloatVec v(dim);
    for (size_t i = 0; i < dim; ++i) {
      if (!(in >> v[i])) {
        return Status::ParseError(
            StrFormat("line %d: expected %zu vector components", lineno, dim));
      }
    }
    names.push_back(std::move(name));
    vectors.push_back(std::move(v));
  }
  if (graph == nullptr) {
    return PredicateSpace(std::move(vectors), std::move(names));
  }
  // Reorder to the graph's predicate ids; every graph predicate must appear.
  std::vector<FloatVec> ordered(graph->NumPredicates());
  std::vector<std::string> ordered_names(graph->NumPredicates());
  std::vector<bool> seen(graph->NumPredicates(), false);
  for (size_t i = 0; i < names.size(); ++i) {
    PredicateId p = graph->FindPredicate(names[i]);
    if (p == kInvalidSymbol) {
      return Status::ParseError("unknown predicate in space: " + names[i]);
    }
    ordered[p] = std::move(vectors[i]);
    ordered_names[p] = names[i];
    seen[p] = true;
  }
  for (PredicateId p = 0; p < graph->NumPredicates(); ++p) {
    if (!seen[p]) {
      return Status::ParseError(
          "predicate missing from space: " +
          std::string(graph->PredicateName(p)));
    }
  }
  return PredicateSpace(std::move(ordered), std::move(ordered_names));
}

}  // namespace kgsearch
