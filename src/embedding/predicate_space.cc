#include "embedding/predicate_space.h"

#include <algorithm>
#include <sstream>

#include "embedding/simd_kernels.h"
#include "util/string_util.h"
#include "util/topk_heap.h"

namespace kgsearch {

namespace {

/// Exact dot over two store rows at logical dimension: the same index
/// order and double accumulation as vector_math::Dot on FloatVecs, so
/// scores computed here are bitwise equal to the pre-SoA representation.
double ExactDot(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

}  // namespace

void PredicateSpace::InitDerived() {
  KG_CHECK(store_.size() == names_.size());
  norms_ = ComputeRowNormsL2(store_);
  max_norm_ = 0.0;
  for (float n : norms_) {
    max_norm_ = std::max(max_norm_, static_cast<double>(n));
  }
}

PredicateSpace::PredicateSpace(std::vector<FloatVec> vectors,
                               std::vector<std::string> names)
    : names_(std::move(names)) {
  KG_CHECK(vectors.size() == names_.size());
  for (FloatVec& v : vectors) NormalizeInPlace(&v);
  store_ = VectorStore::FromVectors(vectors);
  InitDerived();
}

PredicateSpace PredicateSpace::FromTransE(const KnowledgeGraph& graph,
                                          const TransEEmbedding& embedding) {
  KG_CHECK(embedding.predicate.size() == graph.NumPredicates());
  std::vector<std::string> names;
  names.reserve(graph.NumPredicates());
  for (PredicateId p = 0; p < graph.NumPredicates(); ++p) {
    names.emplace_back(graph.PredicateName(p));
  }
  return PredicateSpace(embedding.predicate, std::move(names));
}

PredicateSpace PredicateSpace::FromNormalized(std::vector<FloatVec> vectors,
                                              std::vector<std::string> names) {
  KG_CHECK(vectors.size() == names.size());
  PredicateSpace space;
  space.store_ = VectorStore::FromVectors(vectors);
  space.names_ = std::move(names);
  space.InitDerived();
  return space;
}

PredicateSpace PredicateSpace::FromStore(VectorStore store,
                                         std::vector<std::string> names) {
  KG_CHECK(store.size() == names.size());
  PredicateSpace space;
  space.store_ = std::move(store);
  space.names_ = std::move(names);
  space.InitDerived();
  return space;
}

double PredicateSpace::Cosine(PredicateId a, PredicateId b) const {
  KG_CHECK(a < store_.size() && b < store_.size());
  if (a == b) return 1.0;
  // Rows are unit-normalized at construction, so the dot is the cosine.
  return ExactDot(store_.Row(a), store_.Row(b), store_.dim());
}

void PredicateSpace::WeightRow(PredicateId q, size_t count,
                               double* out) const {
  KG_CHECK(q < store_.size() && count <= store_.size());
  const float* qrow = store_.Row(q);
  const size_t dim = store_.dim();
  for (size_t p = 0; p < count; ++p) {
    double c = (p == q) ? 1.0 : ExactDot(qrow, store_.Row(p), dim);
    if (c < kMinWeight) {
      c = kMinWeight;
    } else if (c > 1.0) {
      c = 1.0;
    }
    out[p] = c;
  }
}

std::vector<SimilarPredicate> PredicateSpace::TopSimilar(PredicateId p,
                                                         size_t n) const {
  KG_CHECK(p < store_.size());
  const size_t total = store_.size();
  const size_t keep = std::min(n, total - 1);
  if (keep == 0) return {};

  // Float selection pass: one batched kernel scan over the flat block.
  std::vector<float> scores(total);
  simd::DotBatch(store_.Row(p), store_.data(), total, store_.stride(),
                 scores.data());
  TopKHeap<PredicateId> select(keep);
  for (PredicateId q = 0; q < total; ++q) {
    if (q == p) continue;
    select.Push(static_cast<double>(scores[q]), q);
  }

  // Every exact-top-k member's float score is within DotErrorBound of its
  // exact score, and the float kth score is within the same bound of the
  // exact kth score — so keeping everything above (float kth − 2·bound)
  // provably retains the exact answer. The exact re-rank then restores
  // bit-identical scores and ordering.
  const double margin =
      simd::DotErrorBound(store_.dim(), norms_[p], max_norm_);
  const double threshold = select.MinScore() - 2.0 * margin;

  // Pushing in ascending id order makes TopKHeap's insertion-order tie
  // break equal the historical (similarity desc, id asc) comparator.
  TopKHeap<PredicateId> exact(keep);
  for (PredicateId q = 0; q < total; ++q) {
    if (q == p) continue;
    if (static_cast<double>(scores[q]) < threshold) continue;
    exact.Push(Cosine(p, q), q);
  }

  std::vector<SimilarPredicate> out;
  out.reserve(keep);
  for (auto& entry : exact.TakeSortedDescending()) {
    out.push_back(SimilarPredicate{entry.second, entry.first});
  }
  return out;
}

void PredicateSpace::SimilarityScan(
    PredicateId p, const std::function<void(PredicateId, double)>& fn) const {
  KG_CHECK(p < store_.size());
  const float* qrow = store_.Row(p);
  const size_t dim = store_.dim();
  for (PredicateId q = 0; q < store_.size(); ++q) {
    if (q == p) continue;
    fn(q, ExactDot(qrow, store_.Row(q), dim));
  }
}

std::string PredicateSpace::Serialize() const {
  std::ostringstream out;
  for (size_t i = 0; i < store_.size(); ++i) {
    out << names_[i] << ' ' << store_.dim();
    const float* row = store_.Row(i);
    for (size_t j = 0; j < store_.dim(); ++j) out << ' ' << row[j];
    out << '\n';
  }
  return out.str();
}

Result<PredicateSpace> PredicateSpace::Deserialize(
    std::string_view text, const KnowledgeGraph* graph) {
  std::vector<FloatVec> vectors;
  std::vector<std::string> names;
  int lineno = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() : eol + 1;
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::istringstream in{std::string(trimmed)};
    std::string name;
    size_t dim = 0;
    if (!(in >> name >> dim) || dim == 0) {
      return Status::ParseError(
          StrFormat("line %d: expected 'name dim v...'", lineno));
    }
    if (!vectors.empty() && dim != vectors.front().size()) {
      return Status::ParseError(
          StrFormat("line %d: dimension %zu does not match first line's %zu",
                    lineno, dim, vectors.front().size()));
    }
    FloatVec v(dim);
    for (size_t i = 0; i < dim; ++i) {
      if (!(in >> v[i])) {
        return Status::ParseError(
            StrFormat("line %d: expected %zu vector components", lineno, dim));
      }
    }
    names.push_back(std::move(name));
    vectors.push_back(std::move(v));
  }
  if (graph == nullptr) {
    return PredicateSpace(std::move(vectors), std::move(names));
  }
  // Reorder to the graph's predicate ids; every graph predicate must appear.
  std::vector<FloatVec> ordered(graph->NumPredicates());
  std::vector<std::string> ordered_names(graph->NumPredicates());
  std::vector<bool> seen(graph->NumPredicates(), false);
  for (size_t i = 0; i < names.size(); ++i) {
    PredicateId p = graph->FindPredicate(names[i]);
    if (p == kInvalidSymbol) {
      return Status::ParseError("unknown predicate in space: " + names[i]);
    }
    ordered[p] = std::move(vectors[i]);
    ordered_names[p] = names[i];
    seen[p] = true;
  }
  for (PredicateId p = 0; p < graph->NumPredicates(); ++p) {
    if (!seen[p]) {
      return Status::ParseError(
          "predicate missing from space: " +
          std::string(graph->PredicateName(p)));
    }
  }
  return PredicateSpace(std::move(ordered), std::move(ordered_names));
}

}  // namespace kgsearch
