// The predicate semantic space E (Section IV-A).
//
// Holds one vector per predicate of a knowledge graph and answers cosine
// similarity queries between predicates (Eq. 5). Weights entering the
// semantic graph are clamped to [kMinWeight, 1] so the geometric-mean pss
// (Eq. 6) stays well defined.
//
// Storage and query design: the vectors live in one contiguous SoA block
// (embedding/vector_store.h) with per-row L2 norms precomputed at
// construction. TopSimilar scans that block with the batched float kernels
// (embedding/simd_kernels.h) to SELECT a candidate set, then re-ranks the
// survivors with the exact double-accumulated scalar dot — the float pass
// keeps every candidate within a proven error margin of the running kth
// score, so the final answer is bit-identical to a full scalar scan.
// Cosine(), Weight(), and SimilarityScan() always use the exact scalar
// arithmetic directly.
#ifndef KGSEARCH_EMBEDDING_PREDICATE_SPACE_H_
#define KGSEARCH_EMBEDDING_PREDICATE_SPACE_H_

#include <functional>
#include <string>
#include <vector>

#include "embedding/transe.h"
#include "embedding/vector_math.h"
#include "embedding/vector_store.h"
#include "kg/graph.h"
#include "util/status.h"

namespace kgsearch {

/// Smallest admissible similarity weight; cosines at or below zero clamp
/// here so pss products remain positive.
inline constexpr double kMinWeight = 1e-6;

/// A (predicate, similarity) pair returned by top-N queries.
struct SimilarPredicate {
  PredicateId predicate;
  double similarity;
};

/// Immutable predicate semantic space over a contiguous SoA vector block.
class PredicateSpace {
 public:
  /// Builds from explicit vectors, one per predicate id (normalized copies
  /// are stored). `names` are kept for diagnostics/serialization.
  PredicateSpace(std::vector<FloatVec> vectors, std::vector<std::string> names);

  /// Builds from a trained TransE embedding over `graph`.
  static PredicateSpace FromTransE(const KnowledgeGraph& graph,
                                   const TransEEmbedding& embedding);

  /// Trusted restore path for snapshots: installs `vectors` verbatim (no
  /// re-normalization), so vectors captured from a live PredicateSpace —
  /// which are already unit-normalized — round-trip bit-exactly.
  static PredicateSpace FromNormalized(std::vector<FloatVec> vectors,
                                       std::vector<std::string> names);

  /// Trusted restore path that adopts an already-populated store directly
  /// (the kgpack reader streams rows straight into the flat block).
  static PredicateSpace FromStore(VectorStore store,
                                  std::vector<std::string> names);

  size_t NumPredicates() const { return store_.size(); }
  const std::string& PredicateName(PredicateId p) const {
    KG_CHECK(p < names_.size());
    return names_[p];
  }
  /// Copy of predicate p's stored vector at logical dimension.
  FloatVec Vector(PredicateId p) const {
    KG_CHECK(p < store_.size());
    return store_.RowVec(p);
  }

  /// Raw cosine similarity in [-1, 1].
  double Cosine(PredicateId a, PredicateId b) const;

  /// Edge weight per Eq. 5, clamped into [kMinWeight, 1].
  double Weight(PredicateId a, PredicateId b) const {
    double c = Cosine(a, b);
    if (c < kMinWeight) return kMinWeight;
    if (c > 1.0) return 1.0;
    return c;
  }

  /// Fills out[p] = Weight(q, p) for p in [0, count). Bitwise-identical to
  /// calling Weight per pair; one contiguous pass over the block instead of
  /// count random row touches.
  void WeightRow(PredicateId q, size_t count, double* out) const;

  /// The `n` predicates most similar to `p` (excluding `p`), descending,
  /// ties broken by ascending predicate id. Kernel-pruned but bit-identical
  /// to an exact full scan (see file comment).
  std::vector<SimilarPredicate> TopSimilar(PredicateId p, size_t n) const;

  /// Streams (q, Cosine(p, q)) for every q != p in ascending id order —
  /// exact scalar similarities, no sorting and no top-k machinery. For
  /// callers (baselines) that fold over all similarities themselves.
  void SimilarityScan(
      PredicateId p,
      const std::function<void(PredicateId, double)>& fn) const;

  /// Text serialization: one line per predicate, "name dim v1 v2 ...".
  std::string Serialize() const;

  /// Parses Serialize() output. Predicate ids are assigned in line order;
  /// `graph` (when given) validates that names resolve to its predicates and
  /// reorders vectors to graph predicate ids.
  static Result<PredicateSpace> Deserialize(std::string_view text,
                                            const KnowledgeGraph* graph);

  /// The underlying SoA block (unit-normalized rows) and names, for
  /// snapshot encoding and batched scoring.
  const VectorStore& store() const { return store_; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  PredicateSpace() = default;

  /// Computes norms_/max_norm_ from store_; every construction path ends
  /// here.
  void InitDerived();

  VectorStore store_;  // unit-normalized rows
  std::vector<std::string> names_;
  std::vector<float> norms_;  // per-row L2 norms for the float kernels
  double max_norm_ = 0.0;
};

}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_PREDICATE_SPACE_H_
