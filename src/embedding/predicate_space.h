// The predicate semantic space E (Section IV-A).
//
// Holds one vector per predicate of a knowledge graph and answers cosine
// similarity queries between predicates (Eq. 5). Weights entering the
// semantic graph are clamped to [kMinWeight, 1] so the geometric-mean pss
// (Eq. 6) stays well defined.
#ifndef KGSEARCH_EMBEDDING_PREDICATE_SPACE_H_
#define KGSEARCH_EMBEDDING_PREDICATE_SPACE_H_

#include <string>
#include <vector>

#include "embedding/transe.h"
#include "embedding/vector_math.h"
#include "kg/graph.h"
#include "util/status.h"

namespace kgsearch {

/// Smallest admissible similarity weight; cosines at or below zero clamp
/// here so pss products remain positive.
inline constexpr double kMinWeight = 1e-6;

/// A (predicate, similarity) pair returned by top-N queries.
struct SimilarPredicate {
  PredicateId predicate;
  double similarity;
};

/// Immutable predicate semantic space with cached pairwise similarities.
class PredicateSpace {
 public:
  /// Builds from explicit vectors, one per predicate id (normalized copies
  /// are stored). `names` are kept for diagnostics/serialization.
  PredicateSpace(std::vector<FloatVec> vectors, std::vector<std::string> names);

  /// Builds from a trained TransE embedding over `graph`.
  static PredicateSpace FromTransE(const KnowledgeGraph& graph,
                                   const TransEEmbedding& embedding);

  /// Trusted restore path for snapshots: installs `vectors` verbatim (no
  /// re-normalization), so vectors captured from a live PredicateSpace —
  /// which are already unit-normalized — round-trip bit-exactly.
  static PredicateSpace FromNormalized(std::vector<FloatVec> vectors,
                                       std::vector<std::string> names);

  size_t NumPredicates() const { return vectors_.size(); }
  const std::string& PredicateName(PredicateId p) const {
    KG_CHECK(p < names_.size());
    return names_[p];
  }
  const FloatVec& Vector(PredicateId p) const {
    KG_CHECK(p < vectors_.size());
    return vectors_[p];
  }

  /// Raw cosine similarity in [-1, 1].
  double Cosine(PredicateId a, PredicateId b) const;

  /// Edge weight per Eq. 5, clamped into [kMinWeight, 1].
  double Weight(PredicateId a, PredicateId b) const {
    double c = Cosine(a, b);
    if (c < kMinWeight) return kMinWeight;
    if (c > 1.0) return 1.0;
    return c;
  }

  /// The `n` predicates most similar to `p` (excluding `p`), descending.
  std::vector<SimilarPredicate> TopSimilar(PredicateId p, size_t n) const;

  /// Text serialization: one line per predicate, "name dim v1 v2 ...".
  std::string Serialize() const;

  /// Parses Serialize() output. Predicate ids are assigned in line order;
  /// `graph` (when given) validates that names resolve to its predicates and
  /// reorders vectors to graph predicate ids.
  static Result<PredicateSpace> Deserialize(std::string_view text,
                                            const KnowledgeGraph* graph);

  /// Stored (unit-normalized) vectors and names, for snapshot encoding.
  const std::vector<FloatVec>& vectors() const { return vectors_; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  PredicateSpace() = default;

  std::vector<FloatVec> vectors_;  // unit-normalized
  std::vector<std::string> names_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_PREDICATE_SPACE_H_
