// Backend implementations. This is the ONLY translation unit in the tree
// allowed to touch raw SIMD intrinsics (tools/check_invariants.py rule R5),
// and it is compiled with -ffp-contract=off so scalar mul+add can never be
// fused into FMA behind the bit-identity contract's back.
#include "embedding/simd_kernels.h"

#include <cmath>

#include "util/status.h"

#if !defined(KGSEARCH_DISABLE_SIMD) && defined(__AVX2__)
#define KGSEARCH_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(KGSEARCH_DISABLE_SIMD) && defined(__ARM_NEON)
#define KGSEARCH_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#endif

namespace kgsearch {
namespace simd {

namespace {

/// Shared scalar epilogue of CosineBatch / CosineBatchRef: identical code,
/// so cosine bit-identity reduces to dot bit-identity.
void CosineEpilogue(float q_norm, const float* row_norms, size_t count,
                    float* out) {
  for (size_t i = 0; i < count; ++i) {
    if (q_norm <= 0.0f || row_norms[i] <= 0.0f) {
      out[i] = 0.0f;
      continue;
    }
    out[i] = out[i] / (q_norm * row_norms[i]);
  }
}

}  // namespace

// ---- scalar references ------------------------------------------------------
// The lanes[l] accumulators mirror the vector registers lane-for-lane: lane
// l sums elements l, l+8, l+16, ... with one rounding per multiply and one
// per add, finishing through the shared ReduceLanes tree.

void DotBatchRef(const float* q, const float* base, size_t count,
                 size_t stride, float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  for (size_t i = 0; i < count; ++i) {
    const float* row = base + i * stride;
    float lanes[kAccumLanes] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f,
                                0.0f};
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      for (size_t l = 0; l < kAccumLanes; ++l) {
        lanes[l] += q[j + l] * row[j + l];
      }
    }
    out[i] = ReduceLanes(lanes);
  }
}

void L2SqBatchRef(const float* q, const float* base, size_t count,
                  size_t stride, float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  for (size_t i = 0; i < count; ++i) {
    const float* row = base + i * stride;
    float lanes[kAccumLanes] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f,
                                0.0f};
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      for (size_t l = 0; l < kAccumLanes; ++l) {
        const float d = q[j + l] - row[j + l];
        lanes[l] += d * d;
      }
    }
    out[i] = ReduceLanes(lanes);
  }
}

void L2SqShiftBatchRef(const float* q, const float* w, const float* scale,
                       const float* base, size_t count, size_t stride,
                       float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  for (size_t i = 0; i < count; ++i) {
    const float* row = base + i * stride;
    const float c = scale[i];
    float lanes[kAccumLanes] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f,
                                0.0f};
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      for (size_t l = 0; l < kAccumLanes; ++l) {
        const float s = q[j + l] - row[j + l];
        const float t = c * w[j + l];
        const float d = s + t;
        lanes[l] += d * d;
      }
    }
    out[i] = ReduceLanes(lanes);
  }
}

void CosineBatchRef(const float* q, float q_norm, const float* base,
                    const float* row_norms, size_t count, size_t stride,
                    float* out) {
  DotBatchRef(q, base, count, stride, out);
  CosineEpilogue(q_norm, row_norms, count, out);
}

void DotBlockRef(const float* a_base, size_t a_count, const float* b_base,
                 size_t b_count, size_t stride, float* out) {
  for (size_t i = 0; i < a_count; ++i) {
    DotBatchRef(a_base + i * stride, b_base, b_count, stride,
                out + i * b_count);
  }
}

// ---- AVX2 backend -----------------------------------------------------------

#if defined(KGSEARCH_SIMD_BACKEND_AVX2)

const char* KernelBackend() { return "avx2"; }

// Rows per scan stream in one interleaved group. Large scans walk TWO
// sequential streams at once — the front half and the back half of the
// store — taking kStreamRows rows from each per group. The 8 independent
// accumulator chains hide vector-add latency (a single chain caps a dim-64
// row at ~8 serial adds), and the two address streams engage two hardware
// prefetchers: on a memory-bound 25 MB scan that measures ~10% faster than
// the same 8 rows from one stream.
constexpr size_t kStreamRows = 4;

/// Prefetch the group two groups ahead of `row` (same stream) into L1.
/// Prefetch has no architectural effect, so bit-identity is untouched.
inline void PrefetchStream(const float* row, size_t stride) {
  const char* next =
      reinterpret_cast<const char*>(row + 2 * kStreamRows * stride);
  const size_t bytes = kStreamRows * stride * sizeof(float);
  for (size_t pf = 0; pf < bytes; pf += 64) {
    _mm_prefetch(next + pf, _MM_HINT_T0);
  }
}

// Each row in an interleaved group still owns one accumulator fed in the
// same element order, so results are bit-identical to the one-row-at-a-time
// path that handles the remainder.

/// Dots of q against kStreamRows rows at `ra` (into da) and kStreamRows
/// rows at `rb` (into db).
inline void DotDualBlock(const float* q, const float* ra, const float* rb,
                         size_t stride, float* da, float* db) {
  __m256 acc[2 * kStreamRows];
  for (size_t r = 0; r < 2 * kStreamRows; ++r) acc[r] = _mm256_setzero_ps();
  for (size_t j = 0; j < stride; j += kAccumLanes) {
    const __m256 qv = _mm256_loadu_ps(q + j);
    for (size_t r = 0; r < kStreamRows; ++r) {
      acc[r] = _mm256_add_ps(
          acc[r], _mm256_mul_ps(qv, _mm256_loadu_ps(ra + r * stride + j)));
      acc[kStreamRows + r] = _mm256_add_ps(
          acc[kStreamRows + r],
          _mm256_mul_ps(qv, _mm256_loadu_ps(rb + r * stride + j)));
    }
  }
  alignas(32) float lanes[kAccumLanes];
  for (size_t r = 0; r < kStreamRows; ++r) {
    _mm256_store_ps(lanes, acc[r]);
    da[r] = ReduceLanes(lanes);
    _mm256_store_ps(lanes, acc[kStreamRows + r]);
    db[r] = ReduceLanes(lanes);
  }
}

inline float DotRow(const float* q, const float* row, size_t stride) {
  __m256 acc = _mm256_setzero_ps();
  for (size_t j = 0; j < stride; j += kAccumLanes) {
    const __m256 a = _mm256_loadu_ps(q + j);
    const __m256 b = _mm256_loadu_ps(row + j);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(a, b));  // mul+add, never FMA
  }
  alignas(32) float lanes[kAccumLanes];
  _mm256_store_ps(lanes, acc);
  return ReduceLanes(lanes);
}

/// Largest multiple of kStreamRows not exceeding count/2: stream A covers
/// rows [0, half), stream B rows [half, 2*half), the scalar tail the rest
/// (at most 2*kStreamRows - 1 rows).
inline size_t DualStreamHalf(size_t count) {
  return (count / 2) & ~(kStreamRows - 1);
}

void DotBatch(const float* q, const float* base, size_t count, size_t stride,
              float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  const size_t half = DualStreamHalf(count);
  for (size_t i = 0; i + kStreamRows <= half; i += kStreamRows) {
    const float* ra = base + i * stride;
    const float* rb = base + (half + i) * stride;
    PrefetchStream(ra, stride);
    PrefetchStream(rb, stride);
    DotDualBlock(q, ra, rb, stride, out + i, out + half + i);
  }
  for (size_t i = 2 * half; i < count; ++i) {
    out[i] = DotRow(q, base + i * stride, stride);
  }
}

void CosineBatch(const float* q, float q_norm, const float* base,
                 const float* row_norms, size_t count, size_t stride,
                 float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  // The epilogue is fused — applied while the dots are still warm instead
  // of in a second pass over out[] — but performs exactly CosineEpilogue's
  // per-element mul-then-divide, so the bits match the Ref composition.
  const size_t half = DualStreamHalf(count);
  float d[2 * kStreamRows];
  for (size_t i = 0; i + kStreamRows <= half; i += kStreamRows) {
    const float* ra = base + i * stride;
    const float* rb = base + (half + i) * stride;
    PrefetchStream(ra, stride);
    PrefetchStream(rb, stride);
    DotDualBlock(q, ra, rb, stride, d, d + kStreamRows);
    for (size_t r = 0; r < kStreamRows; ++r) {
      const float rna = row_norms[i + r];
      out[i + r] =
          (q_norm <= 0.0f || rna <= 0.0f) ? 0.0f : d[r] / (q_norm * rna);
      const float rnb = row_norms[half + i + r];
      out[half + i + r] = (q_norm <= 0.0f || rnb <= 0.0f)
                              ? 0.0f
                              : d[kStreamRows + r] / (q_norm * rnb);
    }
  }
  for (size_t i = 2 * half; i < count; ++i) {
    const float dot = DotRow(q, base + i * stride, stride);
    const float rn = row_norms[i];
    out[i] = (q_norm <= 0.0f || rn <= 0.0f) ? 0.0f : dot / (q_norm * rn);
  }
}

/// L2² of q against kStreamRows rows at `ra` and kStreamRows rows at `rb`.
inline void L2SqDualBlock(const float* q, const float* ra, const float* rb,
                          size_t stride, float* da, float* db) {
  __m256 acc[2 * kStreamRows];
  for (size_t r = 0; r < 2 * kStreamRows; ++r) acc[r] = _mm256_setzero_ps();
  for (size_t j = 0; j < stride; j += kAccumLanes) {
    const __m256 qv = _mm256_loadu_ps(q + j);
    for (size_t r = 0; r < kStreamRows; ++r) {
      const __m256 dva =
          _mm256_sub_ps(qv, _mm256_loadu_ps(ra + r * stride + j));
      acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(dva, dva));
      const __m256 dvb =
          _mm256_sub_ps(qv, _mm256_loadu_ps(rb + r * stride + j));
      acc[kStreamRows + r] =
          _mm256_add_ps(acc[kStreamRows + r], _mm256_mul_ps(dvb, dvb));
    }
  }
  alignas(32) float lanes[kAccumLanes];
  for (size_t r = 0; r < kStreamRows; ++r) {
    _mm256_store_ps(lanes, acc[r]);
    da[r] = ReduceLanes(lanes);
    _mm256_store_ps(lanes, acc[kStreamRows + r]);
    db[r] = ReduceLanes(lanes);
  }
}

void L2SqBatch(const float* q, const float* base, size_t count, size_t stride,
               float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  const size_t half = DualStreamHalf(count);
  for (size_t i = 0; i + kStreamRows <= half; i += kStreamRows) {
    const float* ra = base + i * stride;
    const float* rb = base + (half + i) * stride;
    PrefetchStream(ra, stride);
    PrefetchStream(rb, stride);
    L2SqDualBlock(q, ra, rb, stride, out + i, out + half + i);
  }
  for (size_t i = 2 * half; i < count; ++i) {
    const float* row = base + i * stride;
    __m256 acc = _mm256_setzero_ps();
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      const __m256 d =
          _mm256_sub_ps(_mm256_loadu_ps(q + j), _mm256_loadu_ps(row + j));
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    }
    alignas(32) float lanes[kAccumLanes];
    _mm256_store_ps(lanes, acc);
    out[i] = ReduceLanes(lanes);
  }
}

void L2SqShiftBatch(const float* q, const float* w, const float* scale,
                    const float* base, size_t count, size_t stride,
                    float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const float* r0 = base + i * stride;
    const float* r1 = r0 + stride;
    const __m256 c0 = _mm256_set1_ps(scale[i]);
    const __m256 c1 = _mm256_set1_ps(scale[i + 1]);
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      const __m256 qv = _mm256_loadu_ps(q + j);
      const __m256 wv = _mm256_loadu_ps(w + j);
      const __m256 d0 = _mm256_add_ps(
          _mm256_sub_ps(qv, _mm256_loadu_ps(r0 + j)), _mm256_mul_ps(c0, wv));
      const __m256 d1 = _mm256_add_ps(
          _mm256_sub_ps(qv, _mm256_loadu_ps(r1 + j)), _mm256_mul_ps(c1, wv));
      a0 = _mm256_add_ps(a0, _mm256_mul_ps(d0, d0));
      a1 = _mm256_add_ps(a1, _mm256_mul_ps(d1, d1));
    }
    alignas(32) float lanes[kAccumLanes];
    _mm256_store_ps(lanes, a0);
    out[i] = ReduceLanes(lanes);
    _mm256_store_ps(lanes, a1);
    out[i + 1] = ReduceLanes(lanes);
  }
  for (; i < count; ++i) {
    const float* row = base + i * stride;
    const __m256 c = _mm256_set1_ps(scale[i]);
    __m256 acc = _mm256_setzero_ps();
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      const __m256 s =
          _mm256_sub_ps(_mm256_loadu_ps(q + j), _mm256_loadu_ps(row + j));
      const __m256 t = _mm256_mul_ps(c, _mm256_loadu_ps(w + j));
      const __m256 d = _mm256_add_ps(s, t);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    }
    alignas(32) float lanes[kAccumLanes];
    _mm256_store_ps(lanes, acc);
    out[i] = ReduceLanes(lanes);
  }
}

// ---- NEON backend -----------------------------------------------------------

#elif defined(KGSEARCH_SIMD_BACKEND_NEON)

const char* KernelBackend() { return "neon"; }

// Two 4-float registers emulate the 8 virtual lanes: acc0 holds lanes 0-3,
// acc1 holds lanes 4-7. vmulq+vaddq round separately (vmlaq would fuse).

void DotBatch(const float* q, const float* base, size_t count, size_t stride,
              float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  for (size_t i = 0; i < count; ++i) {
    const float* row = base + i * stride;
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(q + j), vld1q_f32(row + j)));
      acc1 = vaddq_f32(
          acc1, vmulq_f32(vld1q_f32(q + j + 4), vld1q_f32(row + j + 4)));
    }
    float lanes[kAccumLanes];
    vst1q_f32(lanes, acc0);
    vst1q_f32(lanes + 4, acc1);
    out[i] = ReduceLanes(lanes);
  }
}

void L2SqBatch(const float* q, const float* base, size_t count, size_t stride,
               float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  for (size_t i = 0; i < count; ++i) {
    const float* row = base + i * stride;
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      const float32x4_t d0 =
          vsubq_f32(vld1q_f32(q + j), vld1q_f32(row + j));
      const float32x4_t d1 =
          vsubq_f32(vld1q_f32(q + j + 4), vld1q_f32(row + j + 4));
      acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
      acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
    }
    float lanes[kAccumLanes];
    vst1q_f32(lanes, acc0);
    vst1q_f32(lanes + 4, acc1);
    out[i] = ReduceLanes(lanes);
  }
}

void L2SqShiftBatch(const float* q, const float* w, const float* scale,
                    const float* base, size_t count, size_t stride,
                    float* out) {
  KG_CHECK(stride % kAccumLanes == 0);
  for (size_t i = 0; i < count; ++i) {
    const float* row = base + i * stride;
    const float32x4_t c = vdupq_n_f32(scale[i]);
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    for (size_t j = 0; j < stride; j += kAccumLanes) {
      const float32x4_t s0 =
          vsubq_f32(vld1q_f32(q + j), vld1q_f32(row + j));
      const float32x4_t s1 =
          vsubq_f32(vld1q_f32(q + j + 4), vld1q_f32(row + j + 4));
      const float32x4_t t0 = vmulq_f32(c, vld1q_f32(w + j));
      const float32x4_t t1 = vmulq_f32(c, vld1q_f32(w + j + 4));
      const float32x4_t d0 = vaddq_f32(s0, t0);
      const float32x4_t d1 = vaddq_f32(s1, t1);
      acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
      acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
    }
    float lanes[kAccumLanes];
    vst1q_f32(lanes, acc0);
    vst1q_f32(lanes + 4, acc1);
    out[i] = ReduceLanes(lanes);
  }
}

// ---- scalar dispatch --------------------------------------------------------

#else

const char* KernelBackend() { return "scalar"; }

void DotBatch(const float* q, const float* base, size_t count, size_t stride,
              float* out) {
  DotBatchRef(q, base, count, stride, out);
}

void L2SqBatch(const float* q, const float* base, size_t count, size_t stride,
               float* out) {
  L2SqBatchRef(q, base, count, stride, out);
}

void L2SqShiftBatch(const float* q, const float* w, const float* scale,
                    const float* base, size_t count, size_t stride,
                    float* out) {
  L2SqShiftBatchRef(q, w, scale, base, count, stride, out);
}

#endif

// Backend-independent compositions. (The AVX2 backend defines its own
// CosineBatch with the epilogue fused into the dot loop.)

#if !defined(KGSEARCH_SIMD_BACKEND_AVX2)
void CosineBatch(const float* q, float q_norm, const float* base,
                 const float* row_norms, size_t count, size_t stride,
                 float* out) {
  DotBatch(q, base, count, stride, out);
  CosineEpilogue(q_norm, row_norms, count, out);
}
#endif

void DotBlock(const float* a_base, size_t a_count, const float* b_base,
              size_t b_count, size_t stride, float* out) {
  for (size_t i = 0; i < a_count; ++i) {
    DotBatch(a_base + i * stride, b_base, b_count, stride, out + i * b_count);
  }
}

double DotErrorBound(size_t dim, double na, double nb) {
  // u = 2^-24: unit roundoff of binary32 round-to-nearest. One rounding per
  // product plus one per lane add plus the ReduceLanes tree gives
  // |err| <= (dim/kAccumLanes + 4) * u * sum|a_i b_i|, and Cauchy-Schwarz
  // bounds sum|a_i b_i| <= na * nb. The 8x factor is slack for the exact
  // (double) side's own rounding and for any future backend reshuffle.
  // The relative model breaks in the float denormal range, where each
  // rounding can err by half a denormal ulp (2^-150) in ABSOLUTE terms
  // regardless of magnitude — the second term covers that floor.
  const double u = std::ldexp(1.0, -24);
  const double steps = static_cast<double>(dim) /
                           static_cast<double>(kAccumLanes) +
                       8.0;
  return 8.0 * steps * (u * na * nb + std::ldexp(1.0, -149));
}

}  // namespace simd
}  // namespace kgsearch
