// Portable vectorized batch distance kernels.
//
// Every kernel scores ONE query against a block of N rows laid out as a
// VectorStore flat buffer (base + i * stride, stride a multiple of
// kAccumLanes, zero-padded), writing one float per row. A block (N-vs-N)
// form layers on top by looping queries.
//
// ## Dispatch policy
//
// Backend selection is COMPILE-TIME: simd_kernels.cc picks AVX2 when built
// with -mavx2 (__AVX2__), NEON on AArch64 (__ARM_NEON), and the portable
// scalar implementation otherwise or when the build sets
// KGSEARCH_DISABLE_SIMD (CMake option of the same name). There is no CPUID
// probing — a binary built for AVX2 requires an AVX2 host. KernelBackend()
// reports which path this binary runs.
//
// ## Bit-identity contract
//
// The dispatched kernels and the *Ref scalar references return BIT-IDENTICAL
// floats on every backend, for every input (denormals included). This holds
// by construction, not by tolerance:
//   - all paths accumulate into the same kAccumLanes (= 8) virtual float
//     lanes: lane l sums elements l, l+8, l+16, ... in index order;
//   - multiplies and adds round separately (the kernels never use FMA, and
//     simd_kernels.cc is compiled with -ffp-contract=off so the compiler
//     cannot fuse them either);
//   - every path finishes with the one shared ReduceLanes tree.
// The differential test suite (tests/embedding/simd_kernels_test.cc)
// asserts exact equality on random and adversarial inputs.
//
// Because the kernels accumulate in float while the exact serving scores
// accumulate in double (vector_math.h), kernel outputs are used ONLY to
// SELECT candidates; callers that promise bit-identical answers re-rank the
// survivors with the exact scalar scorer (see PredicateSpace::TopSimilar).
//
// ## Adding a kernel
//
// 1. Write the scalar reference here-style: per-row loop over stride in
//    steps of kAccumLanes into a float lanes[kAccumLanes] accumulator,
//    finish with ReduceLanes.
// 2. Mirror it per backend in simd_kernels.cc with mul/add (never fused),
//    reducing via a store to a temporary array + the same ReduceLanes.
// 3. Add the pair to the differential suite; exact equality is the bar.
//
// Raw intrinsics (#include <immintrin.h> / <arm_neon.h>, _mm*, v*q_f32)
// are confined to simd_kernels.cc — tools/check_invariants.py rule R5
// fails the build lint if they leak anywhere else.
#ifndef KGSEARCH_EMBEDDING_SIMD_KERNELS_H_
#define KGSEARCH_EMBEDDING_SIMD_KERNELS_H_

#include <cstddef>

namespace kgsearch {
namespace simd {

/// Virtual accumulator width shared by every backend (floats).
inline constexpr size_t kAccumLanes = 8;

/// "avx2", "neon", or "scalar" — the compile-time-selected backend.
const char* KernelBackend();

/// The shared horizontal reduction: a fixed summation tree over the 8
/// virtual lanes. Every kernel (vector or scalar) ends with this exact
/// order, which is what makes cross-backend results bit-identical.
inline float ReduceLanes(const float* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

// ---- dispatched kernels (fast path) ----------------------------------------
// Preconditions for all: stride % kAccumLanes == 0; q has stride floats
// (zero-padded); base holds count rows of stride floats; out has count
// slots. count == 0 is a no-op; stride == 0 writes all zeros.

/// out[i] = <q, row_i>.
void DotBatch(const float* q, const float* base, size_t count, size_t stride,
              float* out);

/// out[i] = ||q - row_i||^2.
void L2SqBatch(const float* q, const float* base, size_t count, size_t stride,
               float* out);

/// out[i] = sum_j (q[j] - row_i[j] + scale[i] * w[j])^2 — the TransH
/// hyperplane-projected distance, with scale[i] the per-row projection
/// coefficient (typically <w, row_i> from DotBatch).
void L2SqShiftBatch(const float* q, const float* w, const float* scale,
                    const float* base, size_t count, size_t stride,
                    float* out);

/// out[i] = <q, row_i> / (q_norm * row_norms[i]), or 0 when either norm is
/// <= 0. The divide epilogue is shared scalar code, so bit-identity again
/// reduces to DotBatch's.
void CosineBatch(const float* q, float q_norm, const float* base,
                 const float* row_norms, size_t count, size_t stride,
                 float* out);

/// N-vs-N block form: out[i * b_count + j] = <a_row_i, b_row_j>. Both
/// blocks share one stride. Implemented as a_count batched 1-vs-N scans.
void DotBlock(const float* a_base, size_t a_count, const float* b_base,
              size_t b_count, size_t stride, float* out);

// ---- scalar references (always compiled) -----------------------------------
// Ground truth for the differential suite, and the dispatch target when no
// SIMD backend is available. Same signatures, bit-identical results.

void DotBatchRef(const float* q, const float* base, size_t count,
                 size_t stride, float* out);
void L2SqBatchRef(const float* q, const float* base, size_t count,
                  size_t stride, float* out);
void L2SqShiftBatchRef(const float* q, const float* w, const float* scale,
                       const float* base, size_t count, size_t stride,
                       float* out);
void CosineBatchRef(const float* q, float q_norm, const float* base,
                    const float* row_norms, size_t count, size_t stride,
                    float* out);
void DotBlockRef(const float* a_base, size_t a_count, const float* b_base,
                 size_t b_count, size_t stride, float* out);

/// Upper bound on |kernel float dot − exact double dot| for vectors with
/// L2 norms na, nb and logical dimension dim, with an 8x safety factor.
/// Derivation: per-product rounding plus (dim/kAccumLanes + tree depth)
/// accumulation steps, each bounded by u * sum|a_i b_i| <= u * na * nb
/// with u = 2^-24. Callers add margins in units of this bound to make
/// float-selected candidate sets provably superset the exact top-k.
double DotErrorBound(size_t dim, double na, double nb);

}  // namespace simd
}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_SIMD_KERNELS_H_
