#include "embedding/transe.h"

#include <algorithm>
#include <memory>

#include "embedding/negative_sampling.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgsearch {

namespace {

/// One SGD step on a (positive, negative) triple pair.
///
/// Gradient of d(h+r,t) = ||h+r-t||^2 w.r.t. h and r is 2(h+r-t), w.r.t. t is
/// -2(h+r-t). Returns the pair's hinge loss before the update.
double StepPair(const Triple& pos, const Triple& neg, double lr, double margin,
                std::vector<FloatVec>* entity, std::vector<FloatVec>* pred) {
  FloatVec& h = (*entity)[pos.head];
  FloatVec& t = (*entity)[pos.tail];
  FloatVec& r = (*pred)[pos.predicate];
  FloatVec& nh = (*entity)[neg.head];
  FloatVec& nt = (*entity)[neg.tail];

  double d_pos = TransEScoreL2Sq(h, r, t);
  double d_neg = TransEScoreL2Sq(nh, r, nt);
  double loss = margin + d_pos - d_neg;
  if (loss <= 0.0) return 0.0;

  const size_t dim = h.size();
  for (size_t i = 0; i < dim; ++i) {
    double g_pos = 2.0 * (static_cast<double>(h[i]) + r[i] - t[i]);
    double g_neg = 2.0 * (static_cast<double>(nh[i]) + r[i] - nt[i]);
    // Descend on d_pos, ascend on d_neg.
    h[i] -= static_cast<float>(lr * g_pos);
    t[i] += static_cast<float>(lr * g_pos);
    r[i] -= static_cast<float>(lr * (g_pos - g_neg));
    nh[i] += static_cast<float>(lr * g_neg);
    nt[i] -= static_cast<float>(lr * g_neg);
  }
  return loss;
}

}  // namespace

Result<TransEEmbedding> TrainTransE(const KnowledgeGraph& graph,
                                    const TransEConfig& config) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before training");
  }
  if (graph.NumEdges() == 0) {
    return Status::InvalidArgument("graph has no edges to train on");
  }
  if (config.dim == 0) {
    return Status::InvalidArgument("embedding dim must be positive");
  }

  Rng rng(config.seed);
  TransEEmbedding emb;
  emb.entity.reserve(graph.NumNodes());
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    emb.entity.push_back(RandomInitVec(config.dim, &rng));
  }
  emb.predicate.reserve(graph.NumPredicates());
  for (size_t i = 0; i < graph.NumPredicates(); ++i) {
    FloatVec v = RandomInitVec(config.dim, &rng);
    NormalizeInPlace(&v);  // relation vectors normalized once at init
    emb.predicate.push_back(std::move(v));
  }

  const auto& triples = graph.triples();
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const size_t num_nodes = graph.NumNodes();
  const size_t num_candidates = std::max<size_t>(1, config.negative_candidates);
  std::unique_ptr<NegativeScorer> scorer;
  std::vector<NodeId> cand_ids;
  FloatVec query;
  if (num_candidates > 1) {
    scorer = std::make_unique<NegativeScorer>(config.dim, num_candidates);
    cand_ids.reserve(num_candidates);
    query.resize(config.dim);
  }
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t idx : order) {
      const Triple& pos = triples[idx];
      // Entity vectors live on the unit ball (project before each use, as in
      // the original algorithm's per-minibatch normalization).
      NormalizeInPlace(&emb.entity[pos.head]);
      NormalizeInPlace(&emb.entity[pos.tail]);

      Triple neg = pos;
      bool corrupt_head =
          config.corrupt_head_and_tail ? rng.Bernoulli(0.5) : false;
      if (num_candidates == 1) {
        // Historical single-draw path: re-draw until the corrupted triple
        // is not a stored fact; bounded retries keep degenerate graphs
        // from looping forever.
        for (int attempt = 0; attempt < 8; ++attempt) {
          NodeId candidate = static_cast<NodeId>(rng.UniformIndex(num_nodes));
          if (corrupt_head) {
            neg.head = candidate;
          } else {
            neg.tail = candidate;
          }
          if (!graph.HasTriple(neg.head, neg.predicate, neg.tail)) break;
        }
      } else {
        // Hardest-negative selection: score the whole candidate pool in
        // one batched kernel pass against the fixed query side. The float
        // scores only pick the candidate; the SGD step below stays exact.
        cand_ids.clear();
        for (size_t c = 0; c < num_candidates; ++c) {
          cand_ids.push_back(static_cast<NodeId>(rng.UniformIndex(num_nodes)));
        }
        scorer->GatherNormalized(emb.entity, cand_ids);
        const FloatVec& h = emb.entity[pos.head];
        const FloatVec& t = emb.entity[pos.tail];
        const FloatVec& r = emb.predicate[pos.predicate];
        // ||h' + r - t||^2 = ||h' - (t - r)||^2, so both corruption sides
        // reduce to an L2 scan against one query vector.
        for (size_t i = 0; i < config.dim; ++i) {
          query[i] = corrupt_head ? t[i] - r[i] : h[i] + r[i];
        }
        const float* scores = scorer->ScoreL2Sq(query);
        size_t best = num_candidates - 1;  // all-facts fallback: last draw,
                                           // like the exhausted-retry path
        bool found = false;
        for (size_t c = 0; c < num_candidates; ++c) {
          const NodeId cand = cand_ids[c];
          const NodeId cand_head = corrupt_head ? cand : pos.head;
          const NodeId cand_tail = corrupt_head ? pos.tail : cand;
          if (graph.HasTriple(cand_head, pos.predicate, cand_tail)) continue;
          if (!found || scores[c] < scores[best]) {
            best = c;
            found = true;
          }
        }
        if (corrupt_head) {
          neg.head = cand_ids[best];
        } else {
          neg.tail = cand_ids[best];
        }
      }
      NormalizeInPlace(&emb.entity[neg.head]);
      NormalizeInPlace(&emb.entity[neg.tail]);

      epoch_loss += StepPair(pos, neg, config.learning_rate, config.margin,
                             &emb.entity, &emb.predicate);
    }
    emb.final_epoch_loss = epoch_loss / static_cast<double>(triples.size());
    if ((epoch + 1) % 10 == 0) {
      KG_LOG(Debug) << "TransE epoch " << (epoch + 1) << " mean loss "
                    << emb.final_epoch_loss;
    }
  }
  return emb;
}

namespace {

// "KGTE" + format version, so embedding blobs are self-identifying.
constexpr uint32_t kTransEBinaryMagic = 0x4554474Bu;
constexpr uint32_t kTransEBinaryVersion = 1;

void WriteVecTable(const std::vector<FloatVec>& table, BinaryWriter* out) {
  out->WriteU64(table.size());
  for (const FloatVec& v : table) out->WriteVector(v);
}

Status ReadVecTable(BinaryReader* in, std::vector<FloatVec>* table) {
  uint64_t count = 0;
  KG_RETURN_NOT_OK(in->ReadU64(&count));
  if (count > in->remaining() / sizeof(uint64_t)) {
    return Status::ParseError("embedding vector count exceeds input size");
  }
  table->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    KG_RETURN_NOT_OK(in->ReadVector(&(*table)[i]));
  }
  return Status::OK();
}

}  // namespace

std::string SerializeTransEBinary(const TransEEmbedding& embedding) {
  BinaryWriter out;
  out.WriteU32(kTransEBinaryMagic);
  out.WriteU32(kTransEBinaryVersion);
  WriteVecTable(embedding.entity, &out);
  WriteVecTable(embedding.predicate, &out);
  out.WriteDouble(embedding.final_epoch_loss);
  return out.Release();
}

Result<TransEEmbedding> DeserializeTransEBinary(std::string_view bytes) {
  BinaryReader in(bytes);
  uint32_t magic = 0, version = 0;
  KG_RETURN_NOT_OK(in.ReadU32(&magic));
  if (magic != kTransEBinaryMagic) {
    return Status::ParseError("not a TransE embedding blob (bad magic)");
  }
  KG_RETURN_NOT_OK(in.ReadU32(&version));
  if (version != kTransEBinaryVersion) {
    return Status::ParseError(
        StrFormat("unsupported TransE blob version %u (this build reads %u)",
                  version, kTransEBinaryVersion));
  }
  TransEEmbedding emb;
  KG_RETURN_NOT_OK(ReadVecTable(&in, &emb.entity));
  KG_RETURN_NOT_OK(ReadVecTable(&in, &emb.predicate));
  KG_RETURN_NOT_OK(in.ReadDouble(&emb.final_epoch_loss));
  if (!in.AtEnd()) {
    return Status::ParseError("trailing bytes after TransE embedding blob");
  }
  return emb;
}

}  // namespace kgsearch
