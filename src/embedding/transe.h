// TransE knowledge-graph embedding trainer (Bordes et al., NIPS 2013).
//
// Implements the margin-ranking objective with uniform negative sampling:
//   L = sum_{(h,r,t)} sum_{(h',r,t')} [margin + d(h+r, t) - d(h'+r, t')]_+
// optimized by SGD, with entity vectors re-normalized to the unit ball each
// step. The paper (Section IV-A) uses the learned relation vectors as the
// predicate semantic space E.
#ifndef KGSEARCH_EMBEDDING_TRANSE_H_
#define KGSEARCH_EMBEDDING_TRANSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "embedding/vector_math.h"
#include "kg/graph.h"
#include "util/status.h"

namespace kgsearch {

/// TransE hyper-parameters.
struct TransEConfig {
  size_t dim = 50;          ///< embedding dimensionality
  size_t epochs = 50;       ///< passes over the triple set
  double learning_rate = 0.01;
  double margin = 1.0;      ///< margin of the ranking loss
  uint64_t seed = 42;
  /// Corrupt head or tail with equal probability ("unif" strategy).
  bool corrupt_head_and_tail = true;
  /// Corruption candidates drawn per positive triple. 1 (the default)
  /// reproduces the historical single-draw behavior exactly. C > 1 draws C
  /// uniform candidates, scores them in one batched kernel pass
  /// (embedding/negative_sampling.h), and keeps the hardest — the
  /// lowest-scoring candidate that is not a stored fact.
  size_t negative_candidates = 1;
};

/// Learned embedding: one vector per entity and per predicate.
struct TransEEmbedding {
  std::vector<FloatVec> entity;     ///< indexed by NodeId
  std::vector<FloatVec> predicate;  ///< indexed by PredicateId
  /// Mean margin-ranking loss of the final epoch (for convergence checks).
  double final_epoch_loss = 0.0;
};

/// Trains TransE on a finalized graph.
///
/// Runtime is O(epochs * |E| * dim). Deterministic for a fixed config.
Result<TransEEmbedding> TrainTransE(const KnowledgeGraph& graph,
                                    const TransEConfig& config);

/// Exact binary round trip for trained embeddings (raw IEEE-754 float bits,
/// so Deserialize(Serialize(e)) reproduces every vector bit-for-bit — the
/// property the kgpack snapshot path relies on to skip retraining).
std::string SerializeTransEBinary(const TransEEmbedding& embedding);
Result<TransEEmbedding> DeserializeTransEBinary(std::string_view bytes);

}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_TRANSE_H_
