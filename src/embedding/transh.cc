#include "embedding/transh.h"

#include <algorithm>
#include <memory>

#include "embedding/negative_sampling.h"

namespace kgsearch {

namespace {

/// TransH score ||h_perp + d - t_perp||^2.
double ScoreH(const FloatVec& h, const FloatVec& t, const FloatVec& d,
              const FloatVec& w) {
  const double wh = Dot(w, h), wt = Dot(w, t);
  double s = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    const double diff = (h[i] - wh * w[i]) + d[i] - (t[i] - wt * w[i]);
    s += diff * diff;
  }
  return s;
}

/// One SGD step on a (positive, negative) pair sharing the relation.
/// Gradients flow through the projections; w_r is re-normalized after the
/// step, and a soft penalty keeps d_r near the hyperplane.
double StepPair(const Triple& pos, const Triple& neg, const TransHConfig& cfg,
                std::vector<FloatVec>* entity, std::vector<FloatVec>* d_vecs,
                std::vector<FloatVec>* w_vecs) {
  FloatVec& h = (*entity)[pos.head];
  FloatVec& t = (*entity)[pos.tail];
  FloatVec& nh = (*entity)[neg.head];
  FloatVec& nt = (*entity)[neg.tail];
  FloatVec& d = (*d_vecs)[pos.predicate];
  FloatVec& w = (*w_vecs)[pos.predicate];

  const double d_pos = ScoreH(h, t, d, w);
  const double d_neg = ScoreH(nh, nt, d, w);
  const double loss = cfg.margin + d_pos - d_neg;
  if (loss <= 0.0) return 0.0;

  const size_t dim = h.size();
  const double lr = cfg.learning_rate;

  // Residual vectors e = h_perp + d - t_perp for both triples.
  const double wh = Dot(w, h), wt = Dot(w, t);
  const double wnh = Dot(w, nh), wnt = Dot(w, nt);
  FloatVec e_pos(dim), e_neg(dim);
  for (size_t i = 0; i < dim; ++i) {
    e_pos[i] = static_cast<float>((h[i] - wh * w[i]) + d[i] -
                                  (t[i] - wt * w[i]));
    e_neg[i] = static_cast<float>((nh[i] - wnh * w[i]) + d[i] -
                                  (nt[i] - wnt * w[i]));
  }

  // d/dh of ||e||^2 = 2 (I - w w^T) e ; d/dd = 2 e ; and for w the exact
  // gradient is -2 ((w^T (h - t)) e + (w^T e)(h - t)); the negative triple
  // contributes with the opposite sign.
  const double we_pos = Dot(w, e_pos), we_neg = Dot(w, e_neg);
  const double wht = wh - wt, wnht = wnh - wnt;
  for (size_t i = 0; i < dim; ++i) {
    const double gp = 2.0 * (e_pos[i] - we_pos * w[i]);  // projected residual
    const double gn = 2.0 * (e_neg[i] - we_neg * w[i]);
    h[i] -= static_cast<float>(lr * gp);
    t[i] += static_cast<float>(lr * gp);
    nh[i] += static_cast<float>(lr * gn);
    nt[i] -= static_cast<float>(lr * gn);
    d[i] -= static_cast<float>(lr * 2.0 * (e_pos[i] - e_neg[i]));
    const double gw_pos = -2.0 * (wht * e_pos[i] + we_pos * (h[i] - t[i]));
    const double gw_neg = -2.0 * (wnht * e_neg[i] + we_neg * (nh[i] - nt[i]));
    w[i] -= static_cast<float>(lr * (gw_pos - gw_neg));
  }

  // Soft orthogonality: shrink the component of d along w.
  const double wd = Dot(w, d);
  Axpy(-cfg.orthogonality_weight * lr * 2.0 * wd, w, &d);
  NormalizeInPlace(&w);
  return loss;
}

}  // namespace

Result<TransHEmbedding> TrainTransH(const KnowledgeGraph& graph,
                                    const TransHConfig& config) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before training");
  }
  if (graph.NumEdges() == 0) {
    return Status::InvalidArgument("graph has no edges to train on");
  }
  if (config.dim == 0) {
    return Status::InvalidArgument("embedding dim must be positive");
  }

  Rng rng(config.seed);
  TransHEmbedding emb;
  emb.entity.reserve(graph.NumNodes());
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    emb.entity.push_back(RandomInitVec(config.dim, &rng));
  }
  for (size_t i = 0; i < graph.NumPredicates(); ++i) {
    FloatVec d = RandomInitVec(config.dim, &rng);
    NormalizeInPlace(&d);
    emb.translation.push_back(std::move(d));
    emb.normal.push_back(RandomUnitVec(config.dim, &rng));
  }

  const auto& triples = graph.triples();
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t num_nodes = graph.NumNodes();
  const size_t num_candidates = std::max<size_t>(1, config.negative_candidates);
  std::unique_ptr<NegativeScorer> scorer;
  std::vector<NodeId> cand_ids;
  FloatVec query;
  if (num_candidates > 1) {
    scorer = std::make_unique<NegativeScorer>(config.dim, num_candidates);
    cand_ids.reserve(num_candidates);
    query.resize(config.dim);
  }

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t idx : order) {
      const Triple& pos = triples[idx];
      NormalizeInPlace(&emb.entity[pos.head]);
      NormalizeInPlace(&emb.entity[pos.tail]);
      Triple neg = pos;
      const bool corrupt_head = rng.Bernoulli(0.5);
      if (num_candidates == 1) {
        // Historical single-draw path.
        for (int attempt = 0; attempt < 8; ++attempt) {
          NodeId candidate = static_cast<NodeId>(rng.UniformIndex(num_nodes));
          if (corrupt_head) {
            neg.head = candidate;
          } else {
            neg.tail = candidate;
          }
          if (!graph.HasTriple(neg.head, neg.predicate, neg.tail)) break;
        }
      } else {
        // Hardest-negative selection over a batched candidate pool. The
        // projected distance with the candidate on the corrupted side
        // factors as sum_j (q_j - cand_j + <w, cand> w_j)^2 with a fixed
        // query q (the selection kernel's L2SqShiftBatch shape); float
        // scores pick the candidate, the SGD step below stays exact.
        cand_ids.clear();
        for (size_t c = 0; c < num_candidates; ++c) {
          cand_ids.push_back(static_cast<NodeId>(rng.UniformIndex(num_nodes)));
        }
        scorer->GatherNormalized(emb.entity, cand_ids);
        const FloatVec& h = emb.entity[pos.head];
        const FloatVec& t = emb.entity[pos.tail];
        const FloatVec& d = emb.translation[pos.predicate];
        const FloatVec& w = emb.normal[pos.predicate];
        if (corrupt_head) {
          // ||h'_perp + d - t_perp||^2 with q = t_perp - d (sign flips
          // square away).
          const double wt = Dot(w, t);
          for (size_t i = 0; i < config.dim; ++i) {
            query[i] = static_cast<float>((t[i] - wt * w[i]) - d[i]);
          }
        } else {
          // ||h_perp + d - t'_perp||^2 with q = h_perp + d.
          const double wh = Dot(w, h);
          for (size_t i = 0; i < config.dim; ++i) {
            query[i] = static_cast<float>((h[i] - wh * w[i]) + d[i]);
          }
        }
        const float* scores = scorer->ScoreProjectedL2Sq(query, w);
        size_t best = num_candidates - 1;  // all-facts fallback: last draw
        bool found = false;
        for (size_t c = 0; c < num_candidates; ++c) {
          const NodeId cand = cand_ids[c];
          const NodeId cand_head = corrupt_head ? cand : pos.head;
          const NodeId cand_tail = corrupt_head ? pos.tail : cand;
          if (graph.HasTriple(cand_head, pos.predicate, cand_tail)) continue;
          if (!found || scores[c] < scores[best]) {
            best = c;
            found = true;
          }
        }
        if (corrupt_head) {
          neg.head = cand_ids[best];
        } else {
          neg.tail = cand_ids[best];
        }
      }
      NormalizeInPlace(&emb.entity[neg.head]);
      NormalizeInPlace(&emb.entity[neg.tail]);
      epoch_loss += StepPair(pos, neg, config, &emb.entity, &emb.translation,
                             &emb.normal);
    }
    emb.final_epoch_loss = epoch_loss / static_cast<double>(triples.size());
  }
  return emb;
}

PredicateSpace PredicateSpaceFromTransH(const KnowledgeGraph& graph,
                                        const TransHEmbedding& embedding) {
  KG_CHECK(embedding.translation.size() == graph.NumPredicates());
  std::vector<std::string> names;
  names.reserve(graph.NumPredicates());
  for (PredicateId p = 0; p < graph.NumPredicates(); ++p) {
    names.emplace_back(graph.PredicateName(p));
  }
  return PredicateSpace(embedding.translation, std::move(names));
}

}  // namespace kgsearch
