#include "embedding/transh.h"

#include <algorithm>

namespace kgsearch {

namespace {

/// TransH score ||h_perp + d - t_perp||^2.
double ScoreH(const FloatVec& h, const FloatVec& t, const FloatVec& d,
              const FloatVec& w) {
  const double wh = Dot(w, h), wt = Dot(w, t);
  double s = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    const double diff = (h[i] - wh * w[i]) + d[i] - (t[i] - wt * w[i]);
    s += diff * diff;
  }
  return s;
}

/// One SGD step on a (positive, negative) pair sharing the relation.
/// Gradients flow through the projections; w_r is re-normalized after the
/// step, and a soft penalty keeps d_r near the hyperplane.
double StepPair(const Triple& pos, const Triple& neg, const TransHConfig& cfg,
                std::vector<FloatVec>* entity, std::vector<FloatVec>* d_vecs,
                std::vector<FloatVec>* w_vecs) {
  FloatVec& h = (*entity)[pos.head];
  FloatVec& t = (*entity)[pos.tail];
  FloatVec& nh = (*entity)[neg.head];
  FloatVec& nt = (*entity)[neg.tail];
  FloatVec& d = (*d_vecs)[pos.predicate];
  FloatVec& w = (*w_vecs)[pos.predicate];

  const double d_pos = ScoreH(h, t, d, w);
  const double d_neg = ScoreH(nh, nt, d, w);
  const double loss = cfg.margin + d_pos - d_neg;
  if (loss <= 0.0) return 0.0;

  const size_t dim = h.size();
  const double lr = cfg.learning_rate;

  // Residual vectors e = h_perp + d - t_perp for both triples.
  const double wh = Dot(w, h), wt = Dot(w, t);
  const double wnh = Dot(w, nh), wnt = Dot(w, nt);
  FloatVec e_pos(dim), e_neg(dim);
  for (size_t i = 0; i < dim; ++i) {
    e_pos[i] = static_cast<float>((h[i] - wh * w[i]) + d[i] -
                                  (t[i] - wt * w[i]));
    e_neg[i] = static_cast<float>((nh[i] - wnh * w[i]) + d[i] -
                                  (nt[i] - wnt * w[i]));
  }

  // d/dh of ||e||^2 = 2 (I - w w^T) e ; d/dd = 2 e ; and for w the exact
  // gradient is -2 ((w^T (h - t)) e + (w^T e)(h - t)); the negative triple
  // contributes with the opposite sign.
  const double we_pos = Dot(w, e_pos), we_neg = Dot(w, e_neg);
  const double wht = wh - wt, wnht = wnh - wnt;
  for (size_t i = 0; i < dim; ++i) {
    const double gp = 2.0 * (e_pos[i] - we_pos * w[i]);  // projected residual
    const double gn = 2.0 * (e_neg[i] - we_neg * w[i]);
    h[i] -= static_cast<float>(lr * gp);
    t[i] += static_cast<float>(lr * gp);
    nh[i] += static_cast<float>(lr * gn);
    nt[i] -= static_cast<float>(lr * gn);
    d[i] -= static_cast<float>(lr * 2.0 * (e_pos[i] - e_neg[i]));
    const double gw_pos = -2.0 * (wht * e_pos[i] + we_pos * (h[i] - t[i]));
    const double gw_neg = -2.0 * (wnht * e_neg[i] + we_neg * (nh[i] - nt[i]));
    w[i] -= static_cast<float>(lr * (gw_pos - gw_neg));
  }

  // Soft orthogonality: shrink the component of d along w.
  const double wd = Dot(w, d);
  Axpy(-cfg.orthogonality_weight * lr * 2.0 * wd, w, &d);
  NormalizeInPlace(&w);
  return loss;
}

}  // namespace

Result<TransHEmbedding> TrainTransH(const KnowledgeGraph& graph,
                                    const TransHConfig& config) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before training");
  }
  if (graph.NumEdges() == 0) {
    return Status::InvalidArgument("graph has no edges to train on");
  }
  if (config.dim == 0) {
    return Status::InvalidArgument("embedding dim must be positive");
  }

  Rng rng(config.seed);
  TransHEmbedding emb;
  emb.entity.reserve(graph.NumNodes());
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    emb.entity.push_back(RandomInitVec(config.dim, &rng));
  }
  for (size_t i = 0; i < graph.NumPredicates(); ++i) {
    FloatVec d = RandomInitVec(config.dim, &rng);
    NormalizeInPlace(&d);
    emb.translation.push_back(std::move(d));
    emb.normal.push_back(RandomUnitVec(config.dim, &rng));
  }

  const auto& triples = graph.triples();
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t num_nodes = graph.NumNodes();

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t idx : order) {
      const Triple& pos = triples[idx];
      NormalizeInPlace(&emb.entity[pos.head]);
      NormalizeInPlace(&emb.entity[pos.tail]);
      Triple neg = pos;
      const bool corrupt_head = rng.Bernoulli(0.5);
      for (int attempt = 0; attempt < 8; ++attempt) {
        NodeId candidate = static_cast<NodeId>(rng.UniformIndex(num_nodes));
        if (corrupt_head) {
          neg.head = candidate;
        } else {
          neg.tail = candidate;
        }
        if (!graph.HasTriple(neg.head, neg.predicate, neg.tail)) break;
      }
      NormalizeInPlace(&emb.entity[neg.head]);
      NormalizeInPlace(&emb.entity[neg.tail]);
      epoch_loss += StepPair(pos, neg, config, &emb.entity, &emb.translation,
                             &emb.normal);
    }
    emb.final_epoch_loss = epoch_loss / static_cast<double>(triples.size());
  }
  return emb;
}

PredicateSpace PredicateSpaceFromTransH(const KnowledgeGraph& graph,
                                        const TransHEmbedding& embedding) {
  KG_CHECK(embedding.translation.size() == graph.NumPredicates());
  std::vector<std::string> names;
  names.reserve(graph.NumPredicates());
  for (PredicateId p = 0; p < graph.NumPredicates(); ++p) {
    names.emplace_back(graph.PredicateName(p));
  }
  return PredicateSpace(embedding.translation, std::move(names));
}

}  // namespace kgsearch
