// TransH knowledge-graph embedding trainer (Wang et al., AAAI 2014),
// the paper's cited alternative to TransE (Section IV-A, ref. [57]).
//
// Each relation r has a hyperplane normal w_r and a translation d_r; the
// score of (h, r, t) is ||h_perp + d_r - t_perp||^2 with x_perp =
// x - (w_r^T x) w_r. TransH separates relations that TransE conflates when
// one entity participates in many-to-one relations.
#ifndef KGSEARCH_EMBEDDING_TRANSH_H_
#define KGSEARCH_EMBEDDING_TRANSH_H_

#include "embedding/predicate_space.h"
#include "embedding/transe.h"

namespace kgsearch {

/// TransH hyper-parameters (superset of TransE's).
struct TransHConfig {
  size_t dim = 50;
  size_t epochs = 50;
  double learning_rate = 0.01;
  double margin = 1.0;
  /// Weight of the soft orthogonality constraint |w_r^T d_r| / ||d_r||.
  double orthogonality_weight = 0.25;
  uint64_t seed = 42;
  /// Corruption candidates per positive; same semantics as
  /// TransEConfig::negative_candidates (1 = historical behavior).
  size_t negative_candidates = 1;
};

/// Learned TransH embedding. The predicate semantic space uses the
/// translation vectors d_r (the analogue of TransE's relation vectors).
struct TransHEmbedding {
  std::vector<FloatVec> entity;       ///< indexed by NodeId
  std::vector<FloatVec> translation;  ///< d_r, indexed by PredicateId
  std::vector<FloatVec> normal;       ///< w_r (unit), indexed by PredicateId
  double final_epoch_loss = 0.0;
};

/// Trains TransH on a finalized graph. Deterministic for a fixed config.
Result<TransHEmbedding> TrainTransH(const KnowledgeGraph& graph,
                                    const TransHConfig& config);

/// Predicate space over the learned translation vectors d_r.
PredicateSpace PredicateSpaceFromTransH(const KnowledgeGraph& graph,
                                        const TransHEmbedding& embedding);

}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_TRANSH_H_
