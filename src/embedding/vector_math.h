// Dense float vector helpers for embedding training and similarity.
#ifndef KGSEARCH_EMBEDDING_VECTOR_MATH_H_
#define KGSEARCH_EMBEDDING_VECTOR_MATH_H_

#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace kgsearch {

using FloatVec = std::vector<float>;

/// Dot product. Requires equal sizes.
inline double Dot(const FloatVec& a, const FloatVec& b) {
  KG_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

/// Euclidean norm.
inline double Norm(const FloatVec& a) { return std::sqrt(Dot(a, a)); }

/// Scales `a` to unit norm in place; zero vectors are left unchanged.
inline void NormalizeInPlace(FloatVec* a) {
  double n = Norm(*a);
  if (n <= 0.0) return;
  float inv = static_cast<float>(1.0 / n);
  for (float& x : *a) x *= inv;
}

/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
inline double Cosine(const FloatVec& a, const FloatVec& b) {
  double na = Norm(a), nb = Norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

/// a += scale * b.
inline void Axpy(double scale, const FloatVec& b, FloatVec* a) {
  KG_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    (*a)[i] += static_cast<float>(scale * b[i]);
  }
}

/// Squared L2 distance of (h + r - t), the TransE score.
inline double TransEScoreL2Sq(const FloatVec& h, const FloatVec& r,
                              const FloatVec& t) {
  KG_CHECK(h.size() == r.size() && r.size() == t.size());
  double s = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    double d = static_cast<double>(h[i]) + r[i] - t[i];
    s += d * d;
  }
  return s;
}

/// Uniform init in [-6/sqrt(dim), 6/sqrt(dim)] as in the TransE paper.
/// Templated over the generator so per-item FastRng streams work too.
template <typename RngT = Rng>
inline FloatVec RandomInitVec(size_t dim, RngT* rng) {
  double bound = 6.0 / std::sqrt(static_cast<double>(dim));
  FloatVec v(dim);
  for (float& x : v) x = static_cast<float>(rng->UniformReal(-bound, bound));
  return v;
}

/// A unit vector drawn uniformly from the sphere.
template <typename RngT = Rng>
inline FloatVec RandomUnitVec(size_t dim, RngT* rng) {
  FloatVec v(dim);
  for (float& x : v) x = static_cast<float>(rng->Normal());
  NormalizeInPlace(&v);
  return v;
}

}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_VECTOR_MATH_H_
