#include "embedding/vector_store.h"

#include <cmath>
#include <cstring>
#include <new>

namespace kgsearch {

namespace {

size_t PaddedStride(size_t dim) {
  if (dim == 0) return 0;
  return (dim + VectorStore::kStrideMultiple - 1) /
         VectorStore::kStrideMultiple * VectorStore::kStrideMultiple;
}

float* AllocateZeroed(size_t floats) {
  if (floats == 0) return nullptr;
  void* p = ::operator new(floats * sizeof(float),
                           std::align_val_t(VectorStore::kAlignment));
  std::memset(p, 0, floats * sizeof(float));
  return static_cast<float*>(p);
}

}  // namespace

void VectorStore::AlignedDeleter::operator()(float* p) const {
  if (p != nullptr) {
    ::operator delete(p, std::align_val_t(VectorStore::kAlignment));
  }
}

VectorStore::VectorStore(size_t count, size_t dim)
    : count_(count), dim_(dim), stride_(PaddedStride(dim)) {
  data_.reset(AllocateZeroed(count_ * stride_));
}

VectorStore VectorStore::FromVectors(const std::vector<FloatVec>& rows) {
  const size_t dim = rows.empty() ? 0 : rows.front().size();
  VectorStore store(rows.size(), dim);
  for (size_t i = 0; i < rows.size(); ++i) {
    KG_CHECK(rows[i].size() == dim);
    store.SetRow(i, rows[i].data(), rows[i].size());
  }
  return store;
}

VectorStore::VectorStore(const VectorStore& other)
    : count_(other.count_), dim_(other.dim_), stride_(other.stride_) {
  const size_t floats = count_ * stride_;
  data_.reset(AllocateZeroed(floats));
  if (floats > 0) {
    std::memcpy(data_.get(), other.data_.get(), floats * sizeof(float));
  }
}

VectorStore& VectorStore::operator=(const VectorStore& other) {
  if (this != &other) *this = VectorStore(other);
  return *this;
}

VectorStore::VectorStore(VectorStore&& other) noexcept
    : count_(other.count_),
      dim_(other.dim_),
      stride_(other.stride_),
      data_(std::move(other.data_)) {
  other.count_ = other.dim_ = other.stride_ = 0;
}

VectorStore& VectorStore::operator=(VectorStore&& other) noexcept {
  if (this != &other) {
    count_ = other.count_;
    dim_ = other.dim_;
    stride_ = other.stride_;
    data_ = std::move(other.data_);
    other.count_ = other.dim_ = other.stride_ = 0;
  }
  return *this;
}

void VectorStore::SetRow(size_t i, const float* src, size_t n) {
  KG_CHECK(i < count_ && n == dim_);
  if (n == 0) return;
  float* row = data_.get() + i * stride_;
  std::memcpy(row, src, n * sizeof(float));
  if (stride_ > n) {
    std::memset(row + n, 0, (stride_ - n) * sizeof(float));
  }
}

FloatVec VectorStore::RowVec(size_t i) const {
  const float* row = Row(i);
  return FloatVec(row, row + dim_);
}

std::vector<float> ComputeRowNormsL2(const VectorStore& store) {
  std::vector<float> norms(store.size());
  for (size_t i = 0; i < store.size(); ++i) {
    const float* row = store.Row(i);
    double s = 0.0;
    for (size_t j = 0; j < store.dim(); ++j) {
      s += static_cast<double>(row[j]) * row[j];
    }
    norms[i] = static_cast<float>(std::sqrt(s));
  }
  return norms;
}

}  // namespace kgsearch
