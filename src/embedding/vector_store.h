// Contiguous structure-of-arrays embedding storage.
//
// A VectorStore holds `size()` embedding rows of logical dimensionality
// `dim()` in ONE aligned flat float buffer. Rows are padded with zeros to
// `stride()` floats (a multiple of kStrideMultiple) so that
//   - every row starts on a kAlignment-byte boundary, and
//   - batched kernels (embedding/simd_kernels.h) can process whole rows in
//     fixed-width lane groups without scalar tail loops.
//
// The padding contract matters for correctness, not just speed: the
// kernels run over the full stride, and a zero pad contributes exactly
// 0.0f to dot products and squared distances, so padded results equal
// logical-dim results bit-for-bit. SetRow re-zeroes the pad, keeping the
// invariant through mutation.
//
// This is the storage the serving hot paths scan (predicate cosine
// selection in PredicateSpace, TransE/TransH batched negative scoring);
// the old representation — one heap-allocated std::vector<float> per row —
// survives only at API boundaries (construction, serialization).
#ifndef KGSEARCH_EMBEDDING_VECTOR_STORE_H_
#define KGSEARCH_EMBEDDING_VECTOR_STORE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "embedding/vector_math.h"
#include "util/status.h"

namespace kgsearch {

class VectorStore {
 public:
  /// Byte alignment of the buffer and (via stride padding) of every row.
  static constexpr size_t kAlignment = 64;
  /// Rows are padded to a multiple of this many floats; 16 floats * 4 bytes
  /// = one 64-byte cache line, and a multiple of every kernel lane width.
  static constexpr size_t kStrideMultiple = 16;

  /// Empty store (size 0, dim 0).
  VectorStore() = default;

  /// `count` zero-filled rows of logical dimension `dim`.
  VectorStore(size_t count, size_t dim);

  /// Copies `rows` (all must share one dimension) into a fresh store.
  static VectorStore FromVectors(const std::vector<FloatVec>& rows);

  VectorStore(const VectorStore& other);
  VectorStore& operator=(const VectorStore& other);
  VectorStore(VectorStore&& other) noexcept;
  VectorStore& operator=(VectorStore&& other) noexcept;

  size_t size() const { return count_; }
  size_t dim() const { return dim_; }
  /// Padded row width in floats; row i starts at data() + i * stride().
  size_t stride() const { return stride_; }
  bool empty() const { return count_ == 0; }

  const float* data() const { return data_.get(); }
  const float* Row(size_t i) const {
    KG_CHECK(i < count_);
    return data_.get() + i * stride_;
  }
  float* MutableRow(size_t i) {
    KG_CHECK(i < count_);
    return data_.get() + i * stride_;
  }

  /// Overwrites row i with `n` floats (n must equal dim()); the pad stays
  /// zero.
  void SetRow(size_t i, const float* src, size_t n);

  /// Copy of row i at logical dimension (pad stripped).
  FloatVec RowVec(size_t i) const;

 private:
  struct AlignedDeleter {
    void operator()(float* p) const;
  };

  size_t count_ = 0;
  size_t dim_ = 0;
  size_t stride_ = 0;
  std::unique_ptr<float[], AlignedDeleter> data_;
};

/// L2 norm per row, accumulated in double then narrowed to float (the
/// precision the selection-margin math in PredicateSpace budgets for).
std::vector<float> ComputeRowNormsL2(const VectorStore& store);

}  // namespace kgsearch

#endif  // KGSEARCH_EMBEDDING_VECTOR_STORE_H_
