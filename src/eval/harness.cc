#include "eval/harness.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "baselines/exact_match.h"
#include "baselines/s4.h"
#include "baselines/structural.h"
#include "core/time_bounded.h"
#include "eval/reporter.h"
#include "util/string_util.h"

namespace kgsearch {

MethodRun RunMethodOnWorkload(const GraphQueryMethod& method,
                              const std::vector<QueryWithGold>& workload,
                              size_t k, const Clock* clock) {
  MethodRun run;
  run.method = method.name();
  if (workload.empty()) return run;

  std::vector<double> ps, rs, f1s, times;
  for (const QueryWithGold& q : workload) {
    const size_t effective_k = (k == 0) ? q.gold.size() : k;
    StopWatch watch(clock);
    Result<std::vector<NodeId>> answers =
        method.QueryTopK(q.query, q.answer_node, effective_k);
    const double ms = watch.ElapsedMillis();
    times.push_back(ms);
    if (!answers.ok()) {
      ++run.queries_failed;
      ps.push_back(0.0);
      rs.push_back(0.0);
      f1s.push_back(0.0);
      continue;
    }
    Prf prf = ComputePrf(answers.ValueOrDie(), q.gold);
    ps.push_back(prf.precision);
    rs.push_back(prf.recall);
    f1s.push_back(prf.f1);
  }
  run.precision = Mean(ps);
  run.recall = Mean(rs);
  run.f1 = Mean(f1s);
  run.avg_ms = Mean(times);
  run.min_ms = *std::min_element(times.begin(), times.end());
  run.max_ms = *std::max_element(times.begin(), times.end());
  return run;
}

MethodRun RunServiceOnWorkload(QueryService* service,
                               const std::vector<QueryWithGold>& workload,
                               size_t k, const EngineOptions& options,
                               size_t concurrency, const Clock* clock) {
  MethodRun run;
  run.method = "SGQ-service";
  if (workload.empty()) return run;
  if (concurrency == 0) concurrency = 1;

  std::vector<double> ps, rs, f1s, times;
  for (size_t base = 0; base < workload.size(); base += concurrency) {
    const size_t end = std::min(workload.size(), base + concurrency);

    // Submit the whole wave, then resolve in submission order; measured
    // times are an upper bound per query (see header comment).
    std::vector<std::future<Result<QueryResult>>> futures;
    std::vector<StopWatch> watches;
    for (size_t i = base; i < end; ++i) {
      const QueryWithGold& q = workload[i];
      EngineOptions o = options;
      o.k = (k == 0) ? q.gold.size() : k;
      watches.emplace_back(clock);
      futures.push_back(service->Submit(q.query, o));
    }
    for (size_t i = base; i < end; ++i) {
      const QueryWithGold& q = workload[i];
      Result<QueryResult> r = futures[i - base].get();
      times.push_back(watches[i - base].ElapsedMillis());
      if (!r.ok()) {
        ++run.queries_failed;
        ps.push_back(0.0);
        rs.push_back(0.0);
        f1s.push_back(0.0);
        continue;
      }
      const QueryResult& result = r.ValueOrDie();
      Prf prf = ComputePrf(
          ExtractAnswers(result.matches, result.decomposition, q.answer_node),
          q.gold);
      ps.push_back(prf.precision);
      rs.push_back(prf.recall);
      f1s.push_back(prf.f1);
    }
  }
  run.precision = Mean(ps);
  run.recall = Mean(rs);
  run.f1 = Mean(f1s);
  run.avg_ms = Mean(times);
  run.min_ms = *std::min_element(times.begin(), times.end());
  run.max_ms = *std::max_element(times.begin(), times.end());
  return run;
}

std::vector<std::unique_ptr<GraphQueryMethod>> MakeComparisonMethods(
    const GeneratedDataset& ds, const EngineOptions& sgq_options,
    double s4_prior_fraction) {
  MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};
  std::vector<std::unique_ptr<GraphQueryMethod>> methods;
  methods.push_back(std::make_unique<SgqMethod>(context, sgq_options));
  methods.push_back(MakeGraB(context));

  // S4 prior knowledge: a fraction of each intent's gold pairs on its
  // busiest anchor (patterns keyed by the intent's query predicate).
  std::map<std::string, std::vector<S4Pattern>> patterns;
  for (size_t i = 0; i < ds.intents.size(); ++i) {
    const GeneratedIntent& intent = ds.intents[i];
    std::vector<std::pair<NodeId, NodeId>> examples;
    for (size_t a = 0; a < intent.anchor_names.size() && a < 2; ++a) {
      NodeId anchor = ds.graph->FindNode(intent.anchor_names[a]);
      std::vector<NodeId> gold = ds.GoldIds(i, a);
      const size_t take = std::min<size_t>(
          static_cast<size_t>(static_cast<double>(gold.size()) *
                              s4_prior_fraction),
          60);
      for (size_t j = 0; j < take; ++j) examples.emplace_back(gold[j], anchor);
    }
    patterns[intent.spec.query_predicate] =
        MineS4Patterns(*ds.graph, examples, 3, 2);
  }
  methods.push_back(std::make_unique<S4Method>(context, std::move(patterns)));
  methods.push_back(MakeQga(context));
  methods.push_back(MakePHom(context));
  return methods;
}

MethodRun RunTbqRelativeToSgq(const GeneratedDataset& ds,
                              const std::vector<QueryWithGold>& workload,
                              size_t k, double ratio,
                              const EngineOptions& sgq_options,
                              const Clock* clock) {
  MethodContext context{ds.graph.get(), ds.space.get(), &ds.library};
  SgqMethod sgq(context, sgq_options);

  TimeBoundedOptions toptions;
  toptions.tau = sgq_options.tau;
  toptions.n_hat = sgq_options.n_hat;
  toptions.per_match_assembly_micros =
      TbqEngine::CalibrateAssemblyCostMicros(clock);

  MethodRun run;
  run.method = StrFormat("TBQ-%.1f", ratio);
  std::vector<double> ps, rs, f1s, times;
  for (const QueryWithGold& q : workload) {
    const size_t effective_k = (k == 0) ? q.gold.size() : k;
    // Measure SGQ on this query to derive the bound.
    StopWatch sgq_watch(clock);
    Result<std::vector<NodeId>> sgq_answers =
        sgq.QueryTopK(q.query, q.answer_node, effective_k);
    const double sgq_micros =
        static_cast<double>(sgq_watch.ElapsedMicros());
    (void)sgq_answers;

    TbqMethod tbq(run.method, context, toptions);
    tbq.set_time_bound_micros(
        std::max<int64_t>(50, static_cast<int64_t>(sgq_micros * ratio)));
    StopWatch watch(clock);
    Result<std::vector<NodeId>> answers =
        tbq.QueryTopK(q.query, q.answer_node, effective_k);
    times.push_back(watch.ElapsedMillis());
    if (!answers.ok()) {
      ++run.queries_failed;
      ps.push_back(0.0);
      rs.push_back(0.0);
      f1s.push_back(0.0);
      continue;
    }
    Prf prf = ComputePrf(answers.ValueOrDie(), q.gold);
    ps.push_back(prf.precision);
    rs.push_back(prf.recall);
    f1s.push_back(prf.f1);
  }
  run.precision = Mean(ps);
  run.recall = Mean(rs);
  run.f1 = Mean(f1s);
  run.avg_ms = Mean(times);
  if (!times.empty()) {
    run.min_ms = *std::min_element(times.begin(), times.end());
    run.max_ms = *std::max_element(times.begin(), times.end());
  }
  return run;
}

int RunEffectivenessFigure(const std::string& title,
                           const DatasetSpec& spec) {
  auto result = GenerateDataset(spec);
  KG_CHECK(result.ok());
  const GeneratedDataset& ds = *result.ValueOrDie();
  std::printf("%s: %zu nodes, %zu edges, %zu predicates\n", title.c_str(),
              ds.graph->NumNodes(), ds.graph->NumEdges(),
              ds.graph->NumPredicates());

  std::vector<QueryWithGold> workload = MakeStandardWorkload(ds, 8);
  KG_CHECK(!workload.empty());
  std::printf("workload: %zu queries (", workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", workload[i].description.c_str());
  }
  std::printf(")\n");

  EngineOptions sgq_options;
  auto methods = MakeComparisonMethods(ds, sgq_options);

  Table table({"k", "Method", "Precision", "Recall", "F1", "Time(ms)"});
  for (size_t k : {20u, 40u, 100u, 200u}) {
    MethodRun tbq = RunTbqRelativeToSgq(ds, workload, k, 0.9, sgq_options);
    table.AddRow({std::to_string(k), tbq.method, Table::Cell(tbq.precision),
                  Table::Cell(tbq.recall), Table::Cell(tbq.f1),
                  Table::Cell(tbq.avg_ms, 2)});
    for (const auto& method : methods) {
      MethodRun run = RunMethodOnWorkload(*method, workload, k);
      table.AddRow({std::to_string(k), run.method,
                    Table::Cell(run.precision), Table::Cell(run.recall),
                    Table::Cell(run.f1), Table::Cell(run.avg_ms, 2)});
    }
  }
  table.Print(title + ": P/R/F1 and response time vs top-k");
  return 0;
}

std::vector<QueryWithGold> MakeStandardWorkload(const GeneratedDataset& ds,
                                                size_t max_queries) {
  std::vector<QueryWithGold> workload;
  // Simple queries: busiest anchor of each intent.
  for (size_t i = 0; i < ds.intents.size(); ++i) {
    Result<QueryWithGold> q = MakeIntentQuery(ds, i, 0);
    if (q.ok() && !q.ValueOrDie().gold.empty()) {
      workload.push_back(std::move(q).ValueOrDie());
    }
    if (workload.size() >= max_queries) return workload;
  }
  // Star queries combining adjacent intents within a group.
  for (size_t i = 0; i + 1 < ds.intents.size(); ++i) {
    if (ds.intents[i].group_index != ds.intents[i + 1].group_index) continue;
    Result<QueryWithGold> q = MakeStarQuery(ds, {{i, 0}, {i + 1, 0}});
    if (q.ok() && !q.ValueOrDie().gold.empty()) {
      workload.push_back(std::move(q).ValueOrDie());
    }
    if (workload.size() >= max_queries) return workload;
  }
  return workload;
}

}  // namespace kgsearch
