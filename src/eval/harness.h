// Shared benchmark harness: builds the method roster of the paper's
// evaluation (Section VII-A) and runs methods over generated workloads,
// aggregating effectiveness and response-time statistics.
#ifndef KGSEARCH_EVAL_HARNESS_H_
#define KGSEARCH_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/adapters.h"
#include "baselines/method.h"
#include "eval/metrics.h"
#include "gen/workload.h"
#include "service/query_service.h"
#include "util/clock.h"

namespace kgsearch {

/// Aggregated result of one method over a workload.
struct MethodRun {
  std::string method;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double avg_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  size_t queries_failed = 0;  ///< unresolved queries (the paper's "%")
};

/// Runs one method over a workload at top-k. When `k` is 0, each query uses
/// k = |gold| (the paper's P=R setting). Failed queries contribute zero
/// precision/recall, matching how the paper's "%" rows read.
MethodRun RunMethodOnWorkload(const GraphQueryMethod& method,
                              const std::vector<QueryWithGold>& workload,
                              size_t k,
                              const Clock* clock = SystemClock::Default());

/// Runs a workload through a QueryService (SGQ mode), submitting
/// `concurrency` queries at a time over the shared executor. Effectiveness
/// metrics are computed exactly as in RunMethodOnWorkload. Per-query time
/// is wall time from submission until the future is observed resolved;
/// futures are drained in submission order, so a fast query queued behind
/// a slow wave-mate reads as the slow one's latency — treat avg/max as an
/// upper bound under load (QueryService::Stats() has the true per-query
/// histogram). The method label is "SGQ-service".
MethodRun RunServiceOnWorkload(QueryService* service,
                               const std::vector<QueryWithGold>& workload,
                               size_t k, const EngineOptions& options,
                               size_t concurrency = 8,
                               const Clock* clock = SystemClock::Default());

/// The comparison roster of Figures 12-14: SGQ, GraB, S4, QGA, p-hom.
/// S4's prior knowledge is mined from `prior_fraction` of each intent's
/// gold pairs (its sensitivity knob). TBQ is handled separately because its
/// per-query bound derives from SGQ's measured time.
std::vector<std::unique_ptr<GraphQueryMethod>> MakeComparisonMethods(
    const GeneratedDataset& ds, const EngineOptions& sgq_options,
    double s4_prior_fraction = 0.5);

/// Runs TBQ with a per-query time bound of `ratio` times SGQ's measured
/// time on that query (the TBQ-0.9 configuration).
MethodRun RunTbqRelativeToSgq(const GeneratedDataset& ds,
                              const std::vector<QueryWithGold>& workload,
                              size_t k, double ratio,
                              const EngineOptions& sgq_options,
                              const Clock* clock = SystemClock::Default());

/// Builds the standard mixed workload for the Figure 12-14 experiments:
/// simple intent queries over the busiest anchors plus star queries
/// combining intents inside each group.
std::vector<QueryWithGold> MakeStandardWorkload(const GeneratedDataset& ds,
                                                size_t max_queries = 8);

/// Runs one full Figure 12/13/14 experiment (P/R/F1 and response time over
/// top-k in {20,40,100,200} for TBQ-0.9, SGQ, GraB, S4, QGA, p-hom) on the
/// given dataset spec and prints the result table. Returns 0 on success.
int RunEffectivenessFigure(const std::string& title, const DatasetSpec& spec);

}  // namespace kgsearch

#endif  // KGSEARCH_EVAL_HARNESS_H_
