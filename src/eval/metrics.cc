#include "eval/metrics.h"

#include <set>

namespace kgsearch {

Prf ComputePrf(const std::vector<NodeId>& answers,
               const std::vector<NodeId>& gold) {
  Prf out;
  if (answers.empty() || gold.empty()) return out;
  std::set<NodeId> seen;
  size_t hits = 0;
  size_t distinct = 0;
  for (NodeId a : answers) {
    if (!seen.insert(a).second) continue;
    ++distinct;
    if (std::binary_search(gold.begin(), gold.end(), a)) ++hits;
  }
  out.precision = static_cast<double>(hits) / static_cast<double>(distinct);
  out.recall = static_cast<double>(hits) / static_cast<double>(gold.size());
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

double Jaccard(std::vector<NodeId> a, std::vector<NodeId> b) {
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  if (a.empty() && b.empty()) return 1.0;
  std::vector<NodeId> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  const double uni = static_cast<double>(a.size() + b.size() - inter.size());
  return uni == 0.0 ? 1.0 : static_cast<double>(inter.size()) / uni;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  KG_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace kgsearch
