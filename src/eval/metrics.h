// Effectiveness metrics: precision/recall/F1 at k, Jaccard similarity of
// answer sets (Eq. 12), and the Pearson correlation used by the user study.
#ifndef KGSEARCH_EVAL_METRICS_H_
#define KGSEARCH_EVAL_METRICS_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "kg/graph.h"

namespace kgsearch {

/// Precision / recall / F1 triple.
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes P/R/F1 of `answers` (ranked, possibly with duplicates removed
/// by the caller) against a sorted `gold` set. Precision is over the
/// returned answers, recall over the gold set (Section VII-A).
Prf ComputePrf(const std::vector<NodeId>& answers,
               const std::vector<NodeId>& gold);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two answer sets (order ignored).
double Jaccard(std::vector<NodeId> a, std::vector<NodeId> b);

/// Pearson correlation coefficient of two equally sized samples; 0 when
/// either sample has zero variance.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

}  // namespace kgsearch

#endif  // KGSEARCH_EVAL_METRICS_H_
