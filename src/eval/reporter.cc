#include "eval/reporter.h"

#include <algorithm>
#include <cstdio>

#include "util/status.h"
#include "util/string_util.h"

namespace kgsearch {

void Table::AddRow(std::vector<std::string> cells) {
  KG_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int decimals) {
  return StrFormat("%.*f", decimals, v);
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    return q + "\"";
  };
  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c) out += ',';
    out += esc(header_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += esc(row[c]);
    }
    out += '\n';
  }
  return out;
}

void Table::Print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), ToText().c_str());
  std::fflush(stdout);
}

}  // namespace kgsearch
