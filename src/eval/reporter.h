// Fixed-width table reporter used by the benchmark harness to print the
// paper's tables/figure series, plus CSV export.
#ifndef KGSEARCH_EVAL_REPORTER_H_
#define KGSEARCH_EVAL_REPORTER_H_

#include <string>
#include <vector>

namespace kgsearch {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds a row; must have as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for mixed cells; formats doubles with 3 decimals.
  static std::string Cell(double v, int decimals = 3);

  /// Renders with aligned columns.
  std::string ToText() const;
  /// Renders as CSV.
  std::string ToCsv() const;

  /// Prints ToText() to stdout with a title line.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_EVAL_REPORTER_H_
