#include "eval/user_study.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"

namespace kgsearch {

double SimulateUserStudyPcc(const std::vector<NodeId>& ranked,
                            const std::vector<double>& scores,
                            const std::vector<NodeId>& gold,
                            const UserStudyConfig& config) {
  KG_CHECK(ranked.size() == scores.size());
  if (ranked.size() < 2) return 0.0;
  Rng rng(config.seed);

  // Group answers by (rounded) match score; pairs are drawn across groups
  // so the two answers never tie (as in the paper's setup).
  const double smin = *std::min_element(scores.begin(), scores.end());
  const double smax = *std::max_element(scores.begin(), scores.end());
  const double span = std::max(1e-9, smax - smin);
  auto group_of = [&](double s) {
    return static_cast<int>(std::floor((s - smin) / span * 6.0));
  };

  // Latent utility: gold membership dominates, score refines.
  auto utility = [&](size_t idx) {
    const bool is_gold =
        std::binary_search(gold.begin(), gold.end(), ranked[idx]);
    const double norm = (scores[idx] - smin) / span;
    return (is_gold ? 0.7 : 0.0) + 0.3 * norm;
  };

  std::vector<double> x, y;
  size_t attempts = 0;
  while (x.size() < config.num_pairs && attempts < config.num_pairs * 40) {
    ++attempts;
    size_t i = rng.UniformIndex(ranked.size());
    size_t j = rng.UniformIndex(ranked.size());
    if (i == j || group_of(scores[i]) == group_of(scores[j])) continue;
    const double ui = utility(i), uj = utility(j);
    int prefer_i = 0;
    for (size_t a = 0; a < config.annotators; ++a) {
      const double noisy_i = ui + rng.Normal(0.0, config.annotator_noise);
      const double noisy_j = uj + rng.Normal(0.0, config.annotator_noise);
      if (noisy_i > noisy_j) ++prefer_i;
    }
    // X: rank difference oriented as "how much worse j ranks than i"
    // (positive when i ranks better). Y: preference-count difference in i's
    // favour. Agreement between SGQ and annotators yields positive PCC.
    x.push_back(static_cast<double>(j) - static_cast<double>(i));
    y.push_back(static_cast<double>(prefer_i) -
                static_cast<double>(config.annotators - prefer_i));
  }
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(x, y);
}

}  // namespace kgsearch
