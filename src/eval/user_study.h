// Simulated user study (Section VII-D).
//
// The paper crowd-sourced 6000 pairwise preferences over ranked answers and
// reported the Pearson correlation (PCC) between SGQ rank differences and
// annotator preference counts. We simulate annotators whose latent utility
// follows the gold labels and match scores with calibrated noise; the PCC
// banding (strong >= 0.5, medium 0.3-0.5) then reproduces Table VII's shape.
#ifndef KGSEARCH_EVAL_USER_STUDY_H_
#define KGSEARCH_EVAL_USER_STUDY_H_

#include <vector>

#include "kg/graph.h"
#include "util/rng.h"

namespace kgsearch {

/// Parameters of the simulated study (paper defaults: 30 pairs, 10
/// annotators per pair).
struct UserStudyConfig {
  size_t num_pairs = 30;
  size_t annotators = 10;
  /// Std-dev of per-judgment utility noise; larger = weaker correlation.
  double annotator_noise = 0.25;
  uint64_t seed = 42;
};

/// Simulates the study for one query.
///
/// `ranked` are the top-k answers in rank order with their match scores;
/// `gold` is the sorted gold answer set. Pairs are drawn from different
/// score groups, as in the paper. Returns the PCC between rank-difference
/// and preference-difference samples; 0 when fewer than two distinct score
/// groups exist.
double SimulateUserStudyPcc(const std::vector<NodeId>& ranked,
                            const std::vector<double>& scores,
                            const std::vector<NodeId>& gold,
                            const UserStudyConfig& config);

}  // namespace kgsearch

#endif  // KGSEARCH_EVAL_USER_STUDY_H_
