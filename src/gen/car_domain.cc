#include "gen/car_domain.h"

namespace kgsearch {

DatasetSpec CarDomainSpec(size_t num_cars, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "car-domain";
  spec.seed = seed;
  spec.embedding_dim = 64;
  spec.filler_entities = 400;
  spec.filler_edges = 1500;
  spec.filler_predicates = 6;
  // The fixture relies on the hand-written library records below; keep the
  // auto-generated aliases registered so node noise stays interpretable.
  spec.unknown_alias_fraction = 0.4;

  IntentSpec produced;
  produced.name = "produced";
  produced.anchor_type = "Country";
  produced.anchor_names = {"Germany", "Italy", "Japan", "USA"};
  produced.mids_per_anchor = 4;
  auto P = [&produced](const char* name, double strength) {
    produced.predicates.push_back(PredicateSpec{name, strength});
    return std::string(name);
  };
  // The paper's semantic space around "product" (Figure 2 reports
  // sim(product, assembly)=0.98, sim(product, designer)=0.85 as a *learned*
  // value; we keep designer clearly below τ so the distractor schema stays
  // semantically wrong, matching the paper's final answer table).
  P("product", 0.98);  // query-only predicate (G3Q)
  P("assembly", 0.97);
  P("country", 0.93);
  P("manufacturer", 0.94);
  P("location", 0.92);
  P("locationCountry", 0.93);
  P("designCompany", 0.90);
  P("designer", 0.55);
  P("nationality", 0.50);
  P("engine", 0.45);
  P("relatedTo", 0.40);
  produced.query_predicate = "product";

  // The seven schemas of the paper's Q117 result table.
  // Gold (QALD validation set): schemas 1-4.
  produced.templates.push_back(
      PathTemplate{{"assembly"}, {}, true, 0.26});                     // 1
  produced.templates.push_back(
      PathTemplate{{"assembly", "country"}, {"City"}, true, 0.16});    // 2
  produced.templates.push_back(
      PathTemplate{{"manufacturer", "location"}, {"Company"}, true,
                   0.12});                                             // 3
  produced.templates.push_back(
      PathTemplate{{"manufacturer", "locationCountry"}, {"Company"}, true,
                   0.10});                                             // 4
  // Reasonable-but-unvalidated (found by SGQ, not in the gold set): 5-7.
  produced.templates.push_back(
      PathTemplate{{"assembly", "location"}, {"Company"}, false, 0.06});
  produced.templates.push_back(
      PathTemplate{{"assembly", "locationCountry"}, {"Company"}, false,
                   0.05});
  produced.templates.push_back(
      PathTemplate{{"designCompany", "location"}, {"Company"}, false, 0.05});
  // Distractors: designed by a person of that nationality (2-hop) and a
  // generic related-to edge (1-hop) — both semantically wrong, both found
  // by structural matchers that ignore predicate semantics.
  produced.templates.push_back(
      PathTemplate{{"designer", "nationality"}, {"Person"}, false, 0.14});
  produced.templates.push_back(
      PathTemplate{{"relatedTo"}, {}, false, 0.06});

  GroupSpec cars;
  cars.subject_type = "Automobile";
  cars.num_subjects = num_cars;
  cars.participation = 0.95;
  cars.extra_path_prob = 0.35;
  cars.intents.push_back(std::move(produced));
  spec.groups.push_back(std::move(cars));
  return spec;
}

Result<std::unique_ptr<GeneratedDataset>> MakeCarDomainDataset(
    size_t num_cars, uint64_t seed) {
  Result<std::unique_ptr<GeneratedDataset>> result =
      GenerateDataset(CarDomainSpec(num_cars, seed));
  if (!result.ok()) return result.status();
  std::unique_ptr<GeneratedDataset> ds = std::move(result).ValueOrDie();
  // Table III of the paper.
  ds->library.AddTypeSynonym("Car", "Automobile");
  ds->library.AddTypeSynonym("Motorcar", "Automobile");
  ds->library.AddTypeSynonym("Auto", "Automobile");
  ds->library.AddTypeSynonym("Vehicle", "Automobile");
  ds->library.AddNameAbbreviation("GER", "Germany");
  ds->library.AddNameAbbreviation("FRG", "Germany");
  ds->library.AddNameSynonym("Federal Republic of Germany", "Germany");
  return ds;
}

QueryGraph MakeQ117Variant(int variant) {
  KG_CHECK(variant >= 1 && variant <= 4);
  QueryGraph q;
  int car;
  switch (variant) {
    case 1:
      car = q.AddTargetNode("Car");
      q.AddEdge(car, q.AddSpecificNode("Country", "Germany"), "assembly");
      break;
    case 2:
      car = q.AddTargetNode("Automobile");
      q.AddEdge(car, q.AddSpecificNode("Country", "GER"), "assembly");
      break;
    case 3:
      car = q.AddTargetNode("Automobile");
      q.AddEdge(car, q.AddSpecificNode("Country", "Germany"), "product");
      break;
    default:
      car = q.AddTargetNode("Automobile");
      q.AddEdge(car, q.AddSpecificNode("Country", "Germany"), "assembly");
      break;
  }
  return q;
}

}  // namespace kgsearch
