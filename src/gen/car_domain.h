// The Q117 fixture: "Find all cars that are produced in Germany".
//
// A hand-specified miniature of the DBpedia neighbourhood around QALD-4's
// Q117 (Figure 1 / Table I): automobiles connect to countries through the
// paper's seven observed schemas plus a designer/nationality distractor.
// Gold answers cover the four schemas of the QALD validation set; schemas
// 5-7 are "reasonable but unvalidated" (they depress precision exactly as
// in the paper's detailed Q117 result table). The transformation library
// carries the paper's records: Car/Motorcar/Auto/Vehicle -> Automobile and
// GER/FRG -> Germany.
#ifndef KGSEARCH_GEN_CAR_DOMAIN_H_
#define KGSEARCH_GEN_CAR_DOMAIN_H_

#include "core/query_graph.h"
#include "gen/synthetic_kg.h"

namespace kgsearch {

/// Index of the "produced" intent inside the car-domain dataset.
inline constexpr size_t kCarProducedIntent = 0;
/// Anchor index of Germany inside the "produced" intent.
inline constexpr size_t kCarGermanyAnchor = 0;

/// DatasetSpec for the car domain. `num_cars` sizes the automobile pool.
DatasetSpec CarDomainSpec(size_t num_cars = 300, uint64_t seed = 117);

/// Generates the car-domain dataset and installs the paper's
/// synonym/abbreviation records (Car->Automobile, GER->Germany, ...).
Result<std::unique_ptr<GeneratedDataset>> MakeCarDomainDataset(
    size_t num_cars = 300, uint64_t seed = 117);

/// The four query-graph variants of Figure 1 for Q117. All share the intent
/// "find cars produced in Germany" with different syntax:
///   1: type <Car> (synonym needed), predicate assembly
///   2: name GER (abbreviation needed), predicate assembly
///   3: type <Automobile>, predicate product (query-only predicate)
///   4: type <Automobile>, predicate assembly
QueryGraph MakeQ117Variant(int variant);

}  // namespace kgsearch

#endif  // KGSEARCH_GEN_CAR_DOMAIN_H_
