#include "gen/insight_workload.h"

#include <utility>

#include "util/string_util.h"

namespace kgsearch {

namespace {

constexpr uint64_t kBridgeSalt = 0x1B51D6E0;
constexpr uint64_t kPathSalt = 0x1B51D6E1;
constexpr uint64_t kNeighborhoodSalt = 0x1B51D6E2;

FastRng VariantRng(const InsightProfile& profile, uint64_t salt,
                   uint64_t variant) {
  return FastRng(MixSeed(profile.spec.seed + salt, variant));
}

uint64_t PickCommunity(const InsightProfile& profile, FastRng* rng) {
  return rng->UniformIndex(profile.spec.num_communities);
}

/// A hub-ring neighbor of community c and the ring predicate that labels
/// that edge — mirrors ScaleModel::EmitHubEdges (deltas 1,2,4,8; predicate
/// cycles through the bridge family), so the returned anchor pair is
/// connected by construction whenever num_communities > 1.
std::pair<uint64_t, const std::string*> RingNeighbor(
    const InsightProfile& profile, uint64_t c, FastRng* rng) {
  const uint64_t C = profile.spec.num_communities;
  for (uint64_t attempt = 0; attempt < 4; ++attempt) {
    const uint64_t i = rng->UniformIndex(4);
    const uint64_t c2 = (c + (1ull << i)) % C;
    if (c2 == c) continue;
    const uint64_t b = i % profile.spec.num_bridge_predicates;
    return {c2, &profile.bridge_predicates[b]};
  }
  // Tiny rings (C = 2 or 3) can draw self deltas repeatedly; delta 1 always
  // leaves c when C > 1.
  const uint64_t c2 = (c + 1) % C;
  return {c2, &profile.bridge_predicates[0]};
}

}  // namespace

const char* InsightFamilyName(InsightFamily family) {
  switch (family) {
    case InsightFamily::kBridge:
      return "bridge";
    case InsightFamily::kPath:
      return "path";
    case InsightFamily::kNeighborhood:
      return "neighborhood";
  }
  return "unknown";
}

InsightQuery MakeBridgeInsight(const InsightProfile& profile,
                               uint64_t variant) {
  FastRng rng = VariantRng(profile, kBridgeSalt, variant);
  const uint64_t c = PickCommunity(profile, &rng);
  const uint64_t d = profile.DomainOfCommunity(c);

  InsightQuery out;
  out.family = InsightFamily::kBridge;
  const int member = out.query.AddTargetNode(profile.member_types[d]);
  const int own_hub = out.query.AddSpecificNode(
      profile.hub_types[d], profile.hub_names[c]);
  out.query.AddEdge(member, own_hub, profile.member_of_predicates[d]);
  if (profile.spec.num_communities > 1) {
    const auto [c2, bridge_pred] = RingNeighbor(profile, c, &rng);
    const uint64_t d2 = profile.DomainOfCommunity(c2);
    const int far_hub = out.query.AddSpecificNode(
        profile.hub_types[d2], profile.hub_names[c2]);
    out.query.AddEdge(own_hub, far_hub, *bridge_pred);
    out.description = StrFormat(
        "bridge insight: members of %s behind the %s ring edge to %s",
        profile.hub_names[c].c_str(), bridge_pred->c_str(),
        profile.hub_names[c2].c_str());
  } else {
    out.description = StrFormat("bridge insight (single community): %s",
                                profile.hub_names[c].c_str());
  }
  return out;
}

InsightQuery MakePathInsight(const InsightProfile& profile,
                             uint64_t variant) {
  FastRng rng = VariantRng(profile, kPathSalt, variant);
  const uint64_t c = PickCommunity(profile, &rng);
  const uint64_t d = profile.DomainOfCommunity(c);
  const uint64_t k = rng.UniformIndex(profile.spec.num_intra_predicates);

  InsightQuery out;
  out.family = InsightFamily::kPath;
  const int subject = out.query.AddTargetNode(profile.member_types[d]);
  const int mid = out.query.AddTargetNode(profile.member_types[d]);
  const int hub = out.query.AddSpecificNode(profile.hub_types[d],
                                            profile.hub_names[c]);
  out.query.AddEdge(subject, mid, profile.intra_predicates[d][k]);
  out.query.AddEdge(mid, hub, profile.member_of_predicates[d]);
  out.description = StrFormat(
      "path insight: 2-hop %s chain into %s",
      profile.intra_predicates[d][k].c_str(), profile.hub_names[c].c_str());
  return out;
}

InsightQuery MakeNeighborhoodInsight(const InsightProfile& profile,
                                     uint64_t variant) {
  FastRng rng = VariantRng(profile, kNeighborhoodSalt, variant);
  const uint64_t c = PickCommunity(profile, &rng);
  const uint64_t d = profile.DomainOfCommunity(c);

  InsightQuery out;
  out.family = InsightFamily::kNeighborhood;
  const int member = out.query.AddTargetNode(profile.member_types[d]);
  const int own_hub = out.query.AddSpecificNode(
      profile.hub_types[d], profile.hub_names[c]);
  out.query.AddEdge(member, own_hub, profile.member_of_predicates[d]);
  if (profile.spec.num_communities > 1) {
    // Members bridge to arbitrary hubs, so this join is satisfiable but not
    // guaranteed non-empty — the differential contract covers empty sets.
    uint64_t c2 = rng.UniformIndex(profile.spec.num_communities - 1);
    if (c2 >= c) ++c2;
    const uint64_t d2 = profile.DomainOfCommunity(c2);
    const uint64_t b = rng.UniformIndex(profile.spec.num_bridge_predicates);
    const int far_hub = out.query.AddSpecificNode(
        profile.hub_types[d2], profile.hub_names[c2]);
    out.query.AddEdge(member, far_hub, profile.bridge_predicates[b]);
    out.description = StrFormat(
        "neighborhood insight: members of %s also %s-linked to %s",
        profile.hub_names[c].c_str(), profile.bridge_predicates[b].c_str(),
        profile.hub_names[c2].c_str());
  } else {
    out.description = StrFormat("neighborhood insight: members of %s",
                                profile.hub_names[c].c_str());
  }
  return out;
}

bool AddInsightAliasNoise(const InsightProfile& profile, FastRng* rng,
                          QueryGraph* query) {
  // Collect the rewrite candidates: (node index, use-name?) pairs whose
  // label has catalog aliases.
  std::vector<std::pair<int, bool>> candidates;
  for (size_t i = 0; i < query->NumNodes(); ++i) {
    const QueryNode& node = query->node(static_cast<int>(i));
    if (node.is_specific() && profile.name_aliases.count(node.name) > 0) {
      candidates.emplace_back(static_cast<int>(i), true);
    }
    if (profile.type_aliases.count(node.type) > 0) {
      candidates.emplace_back(static_cast<int>(i), false);
    }
  }
  if (candidates.empty()) return false;

  const auto [index, use_name] =
      candidates[rng->UniformIndex(candidates.size())];
  const QueryNode& node = query->node(index);
  const auto& catalog = use_name ? profile.name_aliases : profile.type_aliases;
  const auto& aliases =
      catalog.at(use_name ? node.name : node.type);
  const std::string& alias =
      aliases[rng->UniformIndex(aliases.size())].first;

  // QueryGraph has no node mutators; rebuild with the one label swapped.
  QueryGraph noised;
  for (size_t i = 0; i < query->NumNodes(); ++i) {
    const QueryNode& n = query->node(static_cast<int>(i));
    const bool hit = static_cast<int>(i) == index;
    const std::string type = hit && !use_name ? alias : n.type;
    if (n.is_specific()) {
      noised.AddSpecificNode(type, hit && use_name ? alias : n.name);
    } else {
      noised.AddTargetNode(type);
    }
  }
  for (size_t e = 0; e < query->NumEdges(); ++e) {
    const QueryEdge& edge = query->edge(static_cast<int>(e));
    noised.AddEdge(edge.from, edge.to, edge.predicate);
  }
  *query = std::move(noised);
  return true;
}

std::vector<InsightQuery> BuildInsightMix(const InsightProfile& profile,
                                          const InsightMixOptions& options) {
  FastRng noise_rng(
      MixSeed(profile.spec.seed + kBridgeSalt, options.seed ^ 0xA015E));
  std::vector<InsightQuery> out;
  out.reserve(options.num_queries);
  for (uint64_t i = 0; i < options.num_queries; ++i) {
    const uint64_t variant = MixSeed(options.seed, i);
    InsightQuery q;
    switch (i % 3) {
      case 0:
        q = MakeBridgeInsight(profile, variant);
        break;
      case 1:
        q = MakePathInsight(profile, variant);
        break;
      default:
        q = MakeNeighborhoodInsight(profile, variant);
        break;
    }
    if (noise_rng.Bernoulli(options.alias_noise_fraction)) {
      q.alias_noised = AddInsightAliasNoise(profile, &noise_rng, &q.query);
      if (q.alias_noised) q.description += " [alias-noised]";
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace kgsearch
