// Insight query workload over scale-generated graphs.
//
// The laptop workload (gen/workload.h) derives queries from a materialized
// GeneratedDataset; at million-node scale there is no in-memory dataset to
// derive from. These families are constructed purely from the
// InsightProfile — the spec-derivable hub/type/predicate catalog — so a
// soak driver can build millions of distinct queries without touching the
// graph:
//
//   bridge:       ?member --member_of-- hub_a --bridge-- hub_b, anchored on
//                 a hub-ring edge that exists by construction
//   path:         ?member --intra-- ?member --member_of-- hub, a 2-hop
//                 chain through one community
//   neighborhood: one ?member starred into its own hub and a foreign hub
//                 (join traffic; answer sets may legitimately be empty)
//
// Every query is index-addressed: (profile, variant) fully determines the
// query via the portable FastRng, so clients replay identical workloads
// across runs and platforms. Alias noise swaps canonical labels for catalog
// aliases (registered or unknown), exercising the transformation library
// and matcher caches exactly like Section VII-E node noise.
//
// None of the constructors compute gold answers — at scale the correctness
// contract is differential (service answers bit-identical to the serial
// engine), pinned by the insight randomized differential test.
#ifndef KGSEARCH_GEN_INSIGHT_WORKLOAD_H_
#define KGSEARCH_GEN_INSIGHT_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query_graph.h"
#include "gen/scale_kg.h"
#include "util/rng.h"

namespace kgsearch {

enum class InsightFamily { kBridge, kPath, kNeighborhood };

const char* InsightFamilyName(InsightFamily family);

struct InsightQuery {
  QueryGraph query;
  InsightFamily family = InsightFamily::kBridge;
  bool alias_noised = false;
  std::string description;
};

/// Family constructors. `variant` seeds the per-query choice of
/// communities/predicates; equal (profile, variant) pairs yield equal
/// queries. All returned queries pass QueryGraph::Validate().
InsightQuery MakeBridgeInsight(const InsightProfile& profile,
                               uint64_t variant);
InsightQuery MakePathInsight(const InsightProfile& profile, uint64_t variant);
InsightQuery MakeNeighborhoodInsight(const InsightProfile& profile,
                                     uint64_t variant);

/// Rewrites one label of `query` (a specific node's name, else a node type)
/// with an alias from the profile's catalogs; the alias may be unregistered
/// in the transformation library (unanswerable on purpose). Returns false
/// when the profile has no aliases to offer. Deterministic in (*rng).
bool AddInsightAliasNoise(const InsightProfile& profile, FastRng* rng,
                          QueryGraph* query);

struct InsightMixOptions {
  uint64_t num_queries = 64;
  uint64_t seed = 7;                  ///< mixed with profile.spec.seed
  double alias_noise_fraction = 0.25; ///< share of queries label-noised
};

/// A deterministic mixed workload cycling through the three families.
std::vector<InsightQuery> BuildInsightMix(const InsightProfile& profile,
                                          const InsightMixOptions& options);

}  // namespace kgsearch

#endif  // KGSEARCH_GEN_INSIGHT_WORKLOAD_H_
