#include "gen/scale_kg.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "embedding/vector_math.h"
#include "kg/snapshot_stream.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgsearch {

namespace {

// Independent random streams derived from spec.seed; each feature keys its
// FastRng off one of these so adding a feature never shifts another's draws.
constexpr uint64_t kEdgeSalt = 0xE46E5A17;
constexpr uint64_t kAliasSalt = 0x0A11A5ED;
constexpr uint64_t kVectorSalt = 0x00CE2704;

// Sub-streams inside the vector salt.
constexpr uint64_t kDomainCentroidStream = 1'000'000;
constexpr uint64_t kBridgeCentroidStream = 2'000'000;
constexpr uint64_t kPredicateStream = 3'000'000;

enum EdgeKind { kEdgeHub, kEdgeIntra, kEdgeBridge };

/// Predicate families, for centroid/strength assignment.
enum PredFamily { kFamMemberOf, kFamLinked, kFamIntra, kFamBridge, kFamNoise };

struct PredicateInfo {
  std::string name;
  int family;
  uint64_t domain;   ///< centroid domain (member_of/linked/intra only)
  double strength;   ///< target cosine against the family centroid
};

/// A unit vector at the given cosine against `centroid`: random orthogonal
/// direction scaled by sqrt(1 - s^2) (same construction the laptop-scale
/// generator uses for its controlled predicate semantics).
FloatVec VectorWithStrength(const FloatVec& centroid, double strength,
                            FastRng* rng) {
  FloatVec ortho = RandomUnitVec(centroid.size(), rng);
  const double proj = Dot(ortho, centroid);
  for (size_t i = 0; i < ortho.size(); ++i) {
    ortho[i] -= static_cast<float>(proj * centroid[i]);
  }
  NormalizeInPlace(&ortho);
  const double s = std::min(1.0, std::max(-1.0, strength));
  const double o = std::sqrt(std::max(0.0, 1.0 - s * s));
  FloatVec v(centroid.size());
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(s * centroid[i] + o * ortho[i]);
  }
  NormalizeInPlace(&v);
  return v;
}

/// The deterministic node/edge model: every name, type, and edge is a pure
/// function of (spec, node id), so any pass can replay any part of the
/// graph at O(1) memory.
class ScaleModel {
 public:
  explicit ScaleModel(const ScaleKgSpec& spec)
      : spec_(spec),
        V_(spec.num_nodes),
        C_(spec.num_communities),
        D_(spec.num_domains) {
    base_.resize(C_ + 1);
    for (uint64_t c = 0; c <= C_; ++c) {
      base_[c] = static_cast<uint64_t>(
          static_cast<unsigned __int128>(c) * V_ / C_);
    }
    type_names_.resize(2 * D_);
    for (uint64_t d = 0; d < D_; ++d) {
      type_names_[HubTypeKey(d)] = StrFormat("d%llu_hub",
                                             (unsigned long long)d);
      type_names_[MemberTypeKey(d)] =
          StrFormat("d%llu_entity", (unsigned long long)d);
    }
    const uint64_t K = spec.num_intra_predicates;
    const uint64_t B = spec.num_bridge_predicates;
    const uint64_t N = spec.num_noise_predicates;
    preds_.resize(2 * D_ + D_ * K + B + N);
    for (uint64_t d = 0; d < D_; ++d) {
      preds_[MemberOfKey(d)] = {
          StrFormat("d%llu_member_of", (unsigned long long)d), kFamMemberOf,
          d, 0.95};
      preds_[LinkedKey(d)] = {
          StrFormat("d%llu_linked_to", (unsigned long long)d), kFamLinked, d,
          0.88};
      for (uint64_t k = 0; k < K; ++k) {
        preds_[IntraKey(d, k)] = {
            StrFormat("d%llu_rel%llu", (unsigned long long)d,
                      (unsigned long long)k),
            kFamIntra, d, 0.82 - 0.06 * static_cast<double>(k)};
      }
    }
    for (uint64_t b = 0; b < B; ++b) {
      preds_[BridgeKey(b)] = {
          StrFormat("bridge_%llu", (unsigned long long)b), kFamBridge, 0,
          0.9 - 0.05 * static_cast<double>(b)};
    }
    for (uint64_t j = 0; j < N; ++j) {
      preds_[NoiseKey(j)] = {StrFormat("noise_%llu", (unsigned long long)j),
                             kFamNoise, 0, 0.0};
    }
  }

  Status Validate() const {
    const ScaleKgSpec& s = spec_;
    auto bad = [](const char* msg) { return Status::InvalidArgument(msg); };
    if (s.num_nodes == 0 || s.num_nodes >= UINT32_MAX) {
      return bad("scale spec: num_nodes must be in [1, 2^32)");
    }
    if (s.num_communities == 0 || s.num_communities > s.num_nodes) {
      return bad("scale spec: num_communities must be in [1, num_nodes]");
    }
    if (s.num_domains == 0 || s.num_domains > s.num_communities) {
      return bad("scale spec: num_domains must be in [1, num_communities]");
    }
    if (s.min_out_degree == 0 || s.max_out_degree < s.min_out_degree) {
      return bad("scale spec: need 1 <= min_out_degree <= max_out_degree");
    }
    if (!(s.degree_alpha > 0.0)) {
      return bad("scale spec: degree_alpha must be > 0");
    }
    for (double p : {s.hub_edge_prob, s.intra_edge_prob,
                     s.bridge_to_hub_prob, s.linked_predicate_prob,
                     s.noise_predicate_fraction, s.unknown_alias_fraction}) {
      if (!(p >= 0.0 && p <= 1.0)) {
        return bad("scale spec: probabilities must be in [0, 1]");
      }
    }
    if (s.hub_edge_prob + s.intra_edge_prob > 1.0) {
      return bad("scale spec: hub_edge_prob + intra_edge_prob must be <= 1");
    }
    if (s.num_intra_predicates == 0 || s.num_bridge_predicates == 0 ||
        s.num_noise_predicates == 0) {
      return bad("scale spec: predicate family sizes must be >= 1");
    }
    if (s.embedding_dim < 2) {
      return bad("scale spec: embedding_dim must be >= 2");
    }
    if (s.adj_bucket_entries == 0 || s.stream_buffer_bytes == 0) {
      return bad("scale spec: streaming chunk sizes must be >= 1");
    }
    return Status::OK();
  }

  uint64_t num_nodes() const { return V_; }
  uint64_t num_communities() const { return C_; }
  uint64_t num_domains() const { return D_; }
  const ScaleKgSpec& spec() const { return spec_; }
  uint64_t CommunityBase(uint64_t c) const { return base_[c]; }

  // Type keys: hub type then member type per domain, keyed 2d / 2d+1.
  uint64_t HubTypeKey(uint64_t d) const { return 2 * d; }
  uint64_t MemberTypeKey(uint64_t d) const { return 2 * d + 1; }
  const std::string& TypeName(uint64_t key) const { return type_names_[key]; }
  uint64_t NumTypeKeys() const { return type_names_.size(); }

  // Predicate keys, laid out family by family.
  uint64_t MemberOfKey(uint64_t d) const { return d; }
  uint64_t LinkedKey(uint64_t d) const { return D_ + d; }
  uint64_t IntraKey(uint64_t d, uint64_t k) const {
    return 2 * D_ + d * spec_.num_intra_predicates + k;
  }
  uint64_t BridgeKey(uint64_t b) const {
    return 2 * D_ + D_ * spec_.num_intra_predicates + b;
  }
  uint64_t NoiseKey(uint64_t j) const {
    return BridgeKey(spec_.num_bridge_predicates) + j;
  }
  uint64_t NumPredKeys() const { return preds_.size(); }
  const PredicateInfo& Pred(uint64_t key) const { return preds_[key]; }

  uint64_t CommunityOf(uint64_t id) const {
    uint64_t c = static_cast<uint64_t>(
        static_cast<unsigned __int128>(id) * C_ / V_);
    if (c >= C_) c = C_ - 1;
    while (base_[c + 1] <= id) ++c;
    while (base_[c] > id) --c;
    return c;
  }

  uint64_t DomainOf(uint64_t c) const { return c % D_; }
  bool IsHub(uint64_t id, uint64_t c) const { return id == base_[c]; }

  std::string NodeName(uint64_t id, uint64_t c) const {
    return IsHub(id, c)
               ? StrFormat("hub_c%llu", (unsigned long long)c)
               : StrFormat("e%llu", (unsigned long long)id);
  }
  uint64_t TypeKeyOf(uint64_t id, uint64_t c) const {
    const uint64_t d = DomainOf(c);
    return IsHub(id, c) ? HubTypeKey(d) : MemberTypeKey(d);
  }

  /// Replays the whole edge stream in canonical order (node id order,
  /// hub-ring edges for hubs, sampled edges for members), invoking
  /// fn(head, pred_key, tail) per emitted edge. The stream is duplicate-
  /// and self-loop-free, so AddEdge never dedups behind our back and the
  /// streamed triple array matches the in-memory one exactly.
  template <typename Fn>
  void EmitAllEdges(Fn&& fn) const {
    for (uint64_t c = 0; c < C_; ++c) {
      const uint64_t lo = base_[c], hi = base_[c + 1];
      EmitHubEdges(c, fn);
      for (uint64_t id = lo + 1; id < hi; ++id) {
        EmitMemberEdges(id, c, fn);
      }
    }
  }

  template <typename Fn>
  void EmitHubEdges(uint64_t c, Fn&& fn) const {
    if (C_ <= 1) return;
    const uint64_t hub = base_[c];
    std::vector<std::pair<uint32_t, uint32_t>> seen;
    for (uint64_t i = 0; i < 4; ++i) {
      const uint64_t c2 = (c + (1ull << i)) % C_;
      if (c2 == c) continue;
      const uint32_t key = static_cast<uint32_t>(
          BridgeKey(i % spec_.num_bridge_predicates));
      const uint32_t target = static_cast<uint32_t>(base_[c2]);
      if (!Remember(&seen, key, target)) continue;
      fn(static_cast<NodeId>(hub), key, static_cast<NodeId>(target));
    }
  }

  template <typename Fn>
  void EmitMemberEdges(uint64_t id, uint64_t c, Fn&& fn) const {
    const uint64_t lo = base_[c], hi = base_[c + 1];
    const uint64_t members = hi - lo - 1;
    const uint64_t d = DomainOf(c);
    FastRng rng(MixSeed(spec_.seed + kEdgeSalt, id));
    const uint64_t outdeg = rng.BoundedPareto(
        spec_.min_out_degree, spec_.max_out_degree, spec_.degree_alpha);
    std::vector<std::pair<uint32_t, uint32_t>> seen;
    seen.reserve(outdeg);
    for (uint64_t i = 0; i < outdeg; ++i) {
      const double roll = rng.UniformReal();
      int kind = roll < spec_.hub_edge_prob
                     ? kEdgeHub
                     : (roll < spec_.hub_edge_prob + spec_.intra_edge_prob
                            ? kEdgeIntra
                            : kEdgeBridge);
      if (kind == kEdgeIntra && members < 2) kind = kEdgeHub;
      if (kind == kEdgeBridge && C_ <= 1) kind = kEdgeHub;

      uint64_t target = lo;
      uint64_t pred_key = MemberOfKey(d);
      switch (kind) {
        case kEdgeHub:
          target = lo;
          pred_key = rng.Bernoulli(spec_.linked_predicate_prob)
                         ? LinkedKey(d)
                         : MemberOfKey(d);
          break;
        case kEdgeIntra: {
          uint64_t idx = rng.UniformIndex(members - 1);
          const uint64_t own = id - lo - 1;
          if (idx >= own) ++idx;
          target = lo + 1 + idx;
          pred_key =
              IntraKey(d, rng.UniformIndex(spec_.num_intra_predicates));
          break;
        }
        case kEdgeBridge: {
          const uint64_t c2 =
              (c + 1 + rng.Zipf(C_ - 1, spec_.community_zipf_alpha)) % C_;
          const uint64_t lo2 = base_[c2];
          const uint64_t m2 = base_[c2 + 1] - lo2 - 1;
          const bool to_hub = rng.Bernoulli(spec_.bridge_to_hub_prob);
          target = (to_hub || m2 == 0) ? lo2 : lo2 + 1 + rng.UniformIndex(m2);
          pred_key = BridgeKey(rng.UniformIndex(spec_.num_bridge_predicates));
          break;
        }
      }
      if (rng.Bernoulli(spec_.noise_predicate_fraction)) {
        pred_key = NoiseKey(rng.UniformIndex(spec_.num_noise_predicates));
      }
      if (target == id) continue;
      if (!Remember(&seen, static_cast<uint32_t>(pred_key),
                    static_cast<uint32_t>(target))) {
        continue;
      }
      fn(static_cast<NodeId>(id), static_cast<uint32_t>(pred_key),
         static_cast<NodeId>(target));
    }
  }

 private:
  /// Linear-scan dedup (out-degrees are small); true when newly inserted.
  static bool Remember(std::vector<std::pair<uint32_t, uint32_t>>* seen,
                       uint32_t pred_key, uint32_t target) {
    for (const auto& [p, t] : *seen) {
      if (p == pred_key && t == target) return false;
    }
    seen->emplace_back(pred_key, target);
    return true;
  }

  ScaleKgSpec spec_;
  uint64_t V_, C_, D_;
  std::vector<uint64_t> base_;
  std::vector<std::string> type_names_;
  std::vector<PredicateInfo> preds_;
};

/// Node pass: name-blob bytes plus type first-use order and counts.
struct NodePassResult {
  uint64_t name_blob_bytes = 0;
  uint64_t type_blob_bytes = 0;
  std::vector<uint64_t> type_order;     ///< type keys in first-use order
  std::vector<uint32_t> type_id_of_key; ///< key -> dictionary type id
  std::vector<uint64_t> type_counts;    ///< by type id
};

NodePassResult RunNodePass(const ScaleModel& model) {
  NodePassResult out;
  out.type_id_of_key.assign(model.NumTypeKeys(), UINT32_MAX);
  for (uint64_t c = 0; c < model.num_communities(); ++c) {
    const uint64_t lo = model.CommunityBase(c);
    const uint64_t hi = model.CommunityBase(c + 1);
    for (uint64_t id = lo; id < hi; ++id) {
      out.name_blob_bytes += model.NodeName(id, c).size();
      const uint64_t key = model.TypeKeyOf(id, c);
      if (out.type_id_of_key[key] == UINT32_MAX) {
        out.type_id_of_key[key] =
            static_cast<uint32_t>(out.type_order.size());
        out.type_order.push_back(key);
        out.type_blob_bytes += model.TypeName(key).size();
        out.type_counts.push_back(0);
      }
      ++out.type_counts[out.type_id_of_key[key]];
    }
  }
  return out;
}

/// Edge pass: edge count, per-node degrees, predicate first-use order.
struct EdgePassResult {
  uint64_t num_edges = 0;
  uint64_t pred_blob_bytes = 0;
  std::vector<uint32_t> degree;          ///< undirected CSR degree per node
  std::vector<uint64_t> pred_order;      ///< pred keys in first-use order
  std::vector<uint32_t> pred_id_of_key;  ///< key -> graph predicate id
};

EdgePassResult RunEdgePass(const ScaleModel& model) {
  EdgePassResult out;
  out.degree.assign(model.num_nodes(), 0);
  out.pred_id_of_key.assign(model.NumPredKeys(), UINT32_MAX);
  model.EmitAllEdges([&](NodeId head, uint32_t pred_key, NodeId tail) {
    ++out.num_edges;
    ++out.degree[head];
    ++out.degree[tail];
    if (out.pred_id_of_key[pred_key] == UINT32_MAX) {
      out.pred_id_of_key[pred_key] =
          static_cast<uint32_t>(out.pred_order.size());
      out.pred_order.push_back(pred_key);
      out.pred_blob_bytes += model.Pred(pred_key).name.size();
    }
  });
  return out;
}

/// The ground-truth predicate space over the graph's predicate id order.
/// Each vector depends only on (spec, pred key), so the space is identical
/// however the ids were discovered.
PredicateSpace BuildSpace(const ScaleModel& model,
                          const std::vector<uint64_t>& pred_order) {
  const uint64_t seed = model.spec().seed + kVectorSalt;
  const size_t dim = model.spec().embedding_dim;
  std::vector<FloatVec> centroids(model.num_domains());
  for (uint64_t d = 0; d < model.num_domains(); ++d) {
    FastRng rng(MixSeed(seed, kDomainCentroidStream + d));
    centroids[d] = RandomUnitVec(dim, &rng);
  }
  FastRng bridge_rng(MixSeed(seed, kBridgeCentroidStream));
  const FloatVec bridge_centroid = RandomUnitVec(dim, &bridge_rng);

  std::vector<FloatVec> vectors;
  std::vector<std::string> names;
  vectors.reserve(pred_order.size());
  names.reserve(pred_order.size());
  for (uint64_t key : pred_order) {
    const PredicateInfo& info = model.Pred(key);
    FastRng rng(MixSeed(seed, kPredicateStream + key));
    switch (info.family) {
      case kFamNoise:
        vectors.push_back(RandomUnitVec(dim, &rng));
        break;
      case kFamBridge:
        vectors.push_back(
            VectorWithStrength(bridge_centroid, info.strength, &rng));
        break;
      default:
        vectors.push_back(
            VectorWithStrength(centroids[info.domain], info.strength, &rng));
        break;
    }
    names.push_back(info.name);
  }
  return PredicateSpace(std::move(vectors), std::move(names));
}

/// Alias construction shared by the library builder and the insight
/// profile: one deterministic enumeration (domain types, then hub names),
/// one shared decision stream, optional outputs.
void BuildAliases(
    const ScaleModel& model, TransformationLibrary* library,
    std::map<std::string, std::vector<std::pair<std::string, bool>>>*
        type_catalog,
    std::map<std::string, std::vector<std::pair<std::string, bool>>>*
        name_catalog) {
  const ScaleKgSpec& spec = model.spec();
  if (spec.aliases_per_label == 0) return;
  FastRng rng(MixSeed(spec.seed, kAliasSalt));
  auto add_label = [&](const std::string& canonical, bool type_scope) {
    for (uint64_t j = 0; j < spec.aliases_per_label; ++j) {
      const std::string alias =
          StrFormat("%s_aka%llu", canonical.c_str(), (unsigned long long)j);
      // The first alias is always registered so noised queries stay
      // answerable; later ones drop out with the configured probability.
      const bool registered =
          j == 0 || !rng.Bernoulli(spec.unknown_alias_fraction);
      const bool synonym = (j % 2 == 0);
      if (registered && library != nullptr) {
        if (type_scope) {
          if (synonym) {
            library->AddTypeSynonym(alias, canonical);
          } else {
            library->AddTypeAbbreviation(alias, canonical);
          }
        } else {
          if (synonym) {
            library->AddNameSynonym(alias, canonical);
          } else {
            library->AddNameAbbreviation(alias, canonical);
          }
        }
      }
      auto* catalog = type_scope ? type_catalog : name_catalog;
      if (catalog != nullptr) {
        (*catalog)[canonical].emplace_back(alias, registered);
      }
    }
  };
  for (uint64_t d = 0; d < model.num_domains(); ++d) {
    add_label(model.TypeName(model.MemberTypeKey(d)), true);
    add_label(model.TypeName(model.HubTypeKey(d)), true);
  }
  for (uint64_t c = 0; c < model.num_communities(); ++c) {
    add_label(StrFormat("hub_c%llu", (unsigned long long)c), false);
  }
}

TransformationLibrary BuildLibrary(const ScaleModel& model) {
  TransformationLibrary library;
  BuildAliases(model, &library, nullptr, nullptr);
  return library;
}

}  // namespace

Result<ScaleGenReport> GenerateScaleKgToFile(const ScaleKgSpec& spec,
                                             const std::string& path) {
  ScaleModel model(spec);
  KG_RETURN_NOT_OK(model.Validate());
  const uint64_t V = model.num_nodes();

  const NodePassResult nodes = RunNodePass(model);
  const EdgePassResult edges = RunEdgePass(model);
  const uint64_t E = edges.num_edges;

  Result<std::unique_ptr<SnapshotStreamWriter>> opened =
      SnapshotStreamWriter::Open(path,
                                 static_cast<size_t>(spec.stream_buffer_bytes));
  KG_RETURN_NOT_OK(opened.status());
  SnapshotStreamWriter& w = *opened.ValueOrDie();

  ScaleGenReport report;
  report.num_nodes = V;
  report.num_edges = E;
  report.num_predicates = edges.pred_order.size();
  report.num_types = nodes.type_order.size();
  report.edge_passes = 1;  // the RunEdgePass replay above

  KG_RETURN_NOT_OK(w.BeginGraphSection());

  // Names dictionary (node id order == symbol id order).
  KG_RETURN_NOT_OK(w.BeginDictionary(nodes.name_blob_bytes, V));
  for (uint64_t c = 0; c < model.num_communities(); ++c) {
    const uint64_t lo = model.CommunityBase(c);
    const uint64_t hi = model.CommunityBase(c + 1);
    for (uint64_t id = lo; id < hi; ++id) {
      KG_RETURN_NOT_OK(w.AppendSymbol(model.NodeName(id, c)));
    }
  }
  KG_RETURN_NOT_OK(w.EndDictionary());

  // Types and predicates dictionaries, in first-use order.
  KG_RETURN_NOT_OK(
      w.BeginDictionary(nodes.type_blob_bytes, nodes.type_order.size()));
  for (uint64_t key : nodes.type_order) {
    KG_RETURN_NOT_OK(w.AppendSymbol(model.TypeName(key)));
  }
  KG_RETURN_NOT_OK(w.EndDictionary());
  KG_RETURN_NOT_OK(
      w.BeginDictionary(edges.pred_blob_bytes, edges.pred_order.size()));
  for (uint64_t key : edges.pred_order) {
    KG_RETURN_NOT_OK(w.AppendSymbol(model.Pred(key).name));
  }
  KG_RETURN_NOT_OK(w.EndDictionary());

  // Node types.
  KG_RETURN_NOT_OK(w.BeginNodeTypes(V));
  for (uint64_t c = 0; c < model.num_communities(); ++c) {
    const uint64_t lo = model.CommunityBase(c);
    const uint64_t hi = model.CommunityBase(c + 1);
    for (uint64_t id = lo; id < hi; ++id) {
      KG_RETURN_NOT_OK(w.AppendNodeType(
          nodes.type_id_of_key[model.TypeKeyOf(id, c)]));
    }
  }
  KG_RETURN_NOT_OK(w.EndNodeTypes());

  // Triples: one edge replay straight to disk.
  KG_RETURN_NOT_OK(w.BeginTriples(E));
  {
    Status append_status = Status::OK();
    model.EmitAllEdges([&](NodeId head, uint32_t pred_key, NodeId tail) {
      if (!append_status.ok()) return;
      append_status = w.AppendTriple(
          Triple{head, edges.pred_id_of_key[pred_key], tail});
    });
    KG_RETURN_NOT_OK(append_status);
    ++report.edge_passes;
  }
  KG_RETURN_NOT_OK(w.EndTriples());

  // CSR offsets (prefix sums of the degree array).
  KG_RETURN_NOT_OK(w.BeginAdjOffsets(V));
  {
    uint64_t running = 0;
    KG_RETURN_NOT_OK(w.AppendAdjOffset(0));
    for (uint64_t id = 0; id < V; ++id) {
      running += edges.degree[id];
      KG_RETURN_NOT_OK(w.AppendAdjOffset(running));
    }
  }
  KG_RETURN_NOT_OK(w.EndAdjOffsets());

  // CSR adjacency in node-range buckets: each bucket replays the edge
  // stream, collects only its own entries, sorts per node exactly like
  // KnowledgeGraph::Finalize(), and streams them out. Peak memory is one
  // bucket, never the whole CSR.
  KG_RETURN_NOT_OK(w.BeginAdjacency(2 * E));
  {
    uint64_t lo = 0;
    while (lo < V) {
      uint64_t hi = lo;
      uint64_t entries_in_bucket = 0;
      while (hi < V &&
             (hi == lo ||
              entries_in_bucket + edges.degree[hi] <=
                  spec.adj_bucket_entries)) {
        entries_in_bucket += edges.degree[hi];
        ++hi;
      }
      std::vector<uint64_t> cursor(hi - lo + 1, 0);
      for (uint64_t id = lo; id < hi; ++id) {
        cursor[id - lo + 1] = cursor[id - lo] + edges.degree[id];
      }
      std::vector<uint64_t> fill(cursor.begin(), cursor.end() - 1);
      std::vector<AdjEntry> entries(entries_in_bucket);
      model.EmitAllEdges([&](NodeId head, uint32_t pred_key, NodeId tail) {
        const PredicateId pid = edges.pred_id_of_key[pred_key];
        if (head >= lo && head < hi) {
          entries[fill[head - lo]++] = AdjEntry{tail, pid, true};
        }
        if (tail >= lo && tail < hi) {
          entries[fill[tail - lo]++] = AdjEntry{head, pid, false};
        }
      });
      ++report.edge_passes;
      ++report.adjacency_buckets;
      report.peak_bucket_entries =
          std::max(report.peak_bucket_entries, entries_in_bucket);
      Status append_status = Status::OK();
      for (uint64_t id = lo; id < hi && append_status.ok(); ++id) {
        const auto begin =
            entries.begin() + static_cast<int64_t>(cursor[id - lo]);
        const auto end =
            entries.begin() + static_cast<int64_t>(cursor[id - lo + 1]);
        std::sort(begin, end, [](const AdjEntry& a, const AdjEntry& b) {
          if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
          if (a.predicate != b.predicate) return a.predicate < b.predicate;
          return a.forward < b.forward;
        });
        for (auto it = begin; it != end && append_status.ok(); ++it) {
          append_status = w.AppendAdjEntry(*it);
        }
      }
      KG_RETURN_NOT_OK(append_status);
      lo = hi;
    }
  }
  KG_RETURN_NOT_OK(w.EndAdjacency());

  // Type index: offsets then members grouped by type id, ascending node id
  // within each type (communities are visited in id order).
  KG_RETURN_NOT_OK(w.BeginTypeOffsets(nodes.type_order.size()));
  {
    uint64_t running = 0;
    KG_RETURN_NOT_OK(w.AppendTypeOffset(0));
    for (uint64_t count : nodes.type_counts) {
      running += count;
      KG_RETURN_NOT_OK(w.AppendTypeOffset(running));
    }
  }
  KG_RETURN_NOT_OK(w.EndTypeOffsets());
  KG_RETURN_NOT_OK(w.BeginTypeMembers(V));
  for (uint64_t key : nodes.type_order) {
    const uint64_t d = key / 2;
    const bool hub_type = (key % 2 == 0);
    for (uint64_t c = d; c < model.num_communities();
         c += model.num_domains()) {
      const uint64_t lo2 = model.CommunityBase(c);
      const uint64_t hi2 = model.CommunityBase(c + 1);
      if (hub_type) {
        KG_RETURN_NOT_OK(w.AppendTypeMember(static_cast<NodeId>(lo2)));
      } else {
        for (uint64_t id = lo2 + 1; id < hi2; ++id) {
          KG_RETURN_NOT_OK(w.AppendTypeMember(static_cast<NodeId>(id)));
        }
      }
    }
  }
  KG_RETURN_NOT_OK(w.EndTypeMembers());
  KG_RETURN_NOT_OK(w.EndGraphSection());

  KG_RETURN_NOT_OK(w.WriteLibrarySection(BuildLibrary(model)));
  KG_RETURN_NOT_OK(w.WriteSpaceSection(BuildSpace(model, edges.pred_order)));
  KG_RETURN_NOT_OK(w.Finish());

  report.file_bytes = w.stats().file_bytes;
  report.peak_stream_buffer_bytes = w.stats().peak_buffered_bytes;
  return report;
}

Result<DatasetSnapshot> BuildScaleKgInMemory(const ScaleKgSpec& spec) {
  ScaleModel model(spec);
  KG_RETURN_NOT_OK(model.Validate());

  auto graph = std::make_unique<KnowledgeGraph>();
  for (uint64_t c = 0; c < model.num_communities(); ++c) {
    const uint64_t lo = model.CommunityBase(c);
    const uint64_t hi = model.CommunityBase(c + 1);
    for (uint64_t id = lo; id < hi; ++id) {
      graph->AddNode(model.NodeName(id, c),
                     model.TypeName(model.TypeKeyOf(id, c)));
    }
  }
  model.EmitAllEdges([&](NodeId head, uint32_t pred_key, NodeId tail) {
    graph->AddEdge(head, model.Pred(pred_key).name, tail);
  });
  graph->Finalize();

  // Predicate keys in graph id order (id order == emission first-use).
  std::unordered_map<std::string_view, uint64_t> key_by_name;
  key_by_name.reserve(model.NumPredKeys());
  for (uint64_t key = 0; key < model.NumPredKeys(); ++key) {
    key_by_name[model.Pred(key).name] = key;
  }
  std::vector<uint64_t> pred_order;
  pred_order.reserve(graph->NumPredicates());
  for (PredicateId p = 0; p < graph->NumPredicates(); ++p) {
    auto it = key_by_name.find(graph->PredicateName(p));
    KG_CHECK(it != key_by_name.end());
    pred_order.push_back(it->second);
  }

  DatasetSnapshot snapshot;
  snapshot.graph = std::move(graph);
  snapshot.space =
      std::make_unique<PredicateSpace>(BuildSpace(model, pred_order));
  snapshot.library = BuildLibrary(model);
  return snapshot;
}

std::vector<uint64_t> InsightProfile::CommunitiesOfDomain(uint64_t d) const {
  std::vector<uint64_t> out;
  for (uint64_t c = d; c < spec.num_communities; c += spec.num_domains) {
    out.push_back(c);
  }
  return out;
}

InsightProfile MakeInsightProfile(const ScaleKgSpec& spec) {
  ScaleModel model(spec);
  InsightProfile profile;
  profile.spec = spec;
  for (uint64_t d = 0; d < model.num_domains(); ++d) {
    profile.member_types.push_back(model.TypeName(model.MemberTypeKey(d)));
    profile.hub_types.push_back(model.TypeName(model.HubTypeKey(d)));
    profile.member_of_predicates.push_back(
        model.Pred(model.MemberOfKey(d)).name);
    profile.linked_predicates.push_back(model.Pred(model.LinkedKey(d)).name);
    std::vector<std::string> intra;
    for (uint64_t k = 0; k < spec.num_intra_predicates; ++k) {
      intra.push_back(model.Pred(model.IntraKey(d, k)).name);
    }
    profile.intra_predicates.push_back(std::move(intra));
  }
  for (uint64_t b = 0; b < spec.num_bridge_predicates; ++b) {
    profile.bridge_predicates.push_back(model.Pred(model.BridgeKey(b)).name);
  }
  for (uint64_t j = 0; j < spec.num_noise_predicates; ++j) {
    profile.noise_predicates.push_back(model.Pred(model.NoiseKey(j)).name);
  }
  for (uint64_t c = 0; c < model.num_communities(); ++c) {
    profile.hub_names.push_back(
        StrFormat("hub_c%llu", (unsigned long long)c));
  }
  BuildAliases(model, nullptr, &profile.type_aliases, &profile.name_aliases);
  return profile;
}

ScaleKgSpec ScaleSpecFor(uint64_t num_nodes, uint64_t seed) {
  ScaleKgSpec spec;
  spec.name = StrFormat("scale_%llu", (unsigned long long)num_nodes);
  spec.seed = seed;
  spec.num_nodes = num_nodes;
  spec.num_communities =
      std::min<uint64_t>(512, std::max<uint64_t>(8, num_nodes / 2048));
  if (spec.num_communities > num_nodes) spec.num_communities = num_nodes;
  spec.num_domains =
      std::min<uint64_t>(spec.num_communities, num_nodes >= 500'000 ? 12 : 6);
  return spec;
}

VectorStore GenerateEmbeddingBlock(size_t count, size_t dim, uint64_t seed) {
  VectorStore store(count, dim);
  for (size_t i = 0; i < count; ++i) {
    // One independent stream per row, like the graph's per-node functions:
    // row i is reproducible regardless of how many rows are generated.
    FastRng rng(MixSeed(seed + kVectorSalt, i));
    const FloatVec v = RandomUnitVec(dim, &rng);
    store.SetRow(i, v.data(), v.size());
  }
  return store;
}

}  // namespace kgsearch
