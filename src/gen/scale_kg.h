// Million-scale streaming synthetic knowledge-graph generator.
//
// The laptop-scale generator (gen/synthetic_kg.h) materializes a full
// KnowledgeGraph before snapshotting it — fine at 10^4 nodes, hopeless at
// 10^6+. This generator is built around one idea: the whole graph is a
// deterministic function of (spec, node id). Each node's name, type, and
// out-edges are recomputed on demand from a FastRng seeded with
// MixSeed(spec.seed, node id), so the edge stream can be replayed any
// number of times at O(1) memory per replay. That turns snapshot writing
// into a handful of passes that each hold O(nodes + chunk) memory:
//
//   pass 0 (nodes):  name-blob size, type first-use order, per-type counts
//   pass 1 (edges):  edge count, per-node degrees, predicate first-use order
//   write:           dictionaries / node types / triples stream straight to
//                    a SnapshotStreamWriter; the CSR adjacency is produced
//                    in node-range buckets (each bucket replays the edge
//                    stream once and sorts only its own entries)
//
// The streamed file is byte-identical to EncodeSnapshot() over the graph
// the in-memory builder (BuildScaleKgInMemory) produces from the same spec
// — the tests pin this — so everything downstream (loader, engines,
// service) treats generated datasets exactly like hand-built ones.
//
// Topology: nodes are grouped into contiguous community blocks. The first
// node of each community is its hub; members attach to the hub
// (member_of), to each other (intra-community relations), and across
// communities (bridge predicates, Zipf-biased toward nearby communities).
// Member out-degree is bounded-Pareto distributed (power law), communities
// cycle through a fixed set of domains (one member/hub type pair per
// domain), and alias/noise injection is controlled by the spec. Hubs and
// their names/types are derivable from the spec alone (InsightProfile), so
// workload construction never needs the graph.
#ifndef KGSEARCH_GEN_SCALE_KG_H_
#define KGSEARCH_GEN_SCALE_KG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "embedding/vector_store.h"
#include "kg/snapshot.h"
#include "util/status.h"

namespace kgsearch {

/// Parameters of one scale graph. Every field participates in the
/// deterministic node/edge functions, so two equal specs generate
/// byte-identical kgpack files.
struct ScaleKgSpec {
  std::string name = "scale";
  uint64_t seed = 42;

  /// Total nodes, hubs included. Communities are contiguous equal blocks
  /// (the last one absorbs the remainder); node 0 of a block is its hub.
  uint64_t num_nodes = 10'000;
  uint64_t num_communities = 16;
  /// Domains (member/hub type pairs); community c has domain c % num_domains.
  uint64_t num_domains = 6;

  /// Member out-degree ~ BoundedPareto(min, max, alpha). alpha is the
  /// power-law exponent of the degree tail (larger = thinner tail).
  uint64_t min_out_degree = 2;
  uint64_t max_out_degree = 256;
  double degree_alpha = 1.6;

  /// Edge mix per member draw: attach to the own hub, link inside the
  /// community, or bridge to another community (remainder).
  double hub_edge_prob = 0.30;
  double intra_edge_prob = 0.45;
  /// Bridge target community distance ~ Zipf(num_communities - 1, this).
  double community_zipf_alpha = 0.8;
  /// A bridge edge lands on the target community's hub with this
  /// probability (otherwise on a uniform member).
  double bridge_to_hub_prob = 0.5;
  /// A hub attachment uses the domain's "linked" predicate instead of
  /// "member_of" with this probability (semantic near-synonym traffic).
  double linked_predicate_prob = 0.12;

  /// Any drawn edge is re-labeled with a random noise predicate with this
  /// probability (Section VII-E-style label noise).
  double noise_predicate_fraction = 0.02;
  uint64_t num_noise_predicates = 4;
  uint64_t num_bridge_predicates = 4;
  uint64_t num_intra_predicates = 3;

  /// Aliases per canonical label (member/hub types and hub names); each is
  /// unregistered in the transformation library with this probability.
  uint64_t aliases_per_label = 3;
  double unknown_alias_fraction = 0.4;

  /// Predicate-space dimensionality.
  uint64_t embedding_dim = 32;

  /// Streaming knobs — they shape memory and pass counts, never bytes (the
  /// metamorphic tests pin chunk-size invariance).
  uint64_t adj_bucket_entries = 1 << 20;  ///< CSR entries per bucket pass
  uint64_t stream_buffer_bytes = 1 << 20; ///< SnapshotStreamWriter buffers
};

/// What the streaming generator did — sizes, pass counts, and the buffering
/// high-water marks the O(chunk)-memory test asserts on.
struct ScaleGenReport {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t num_predicates = 0;
  uint64_t num_types = 0;
  uint64_t file_bytes = 0;
  /// Replays of the edge stream (degree pass + one per adjacency bucket +
  /// the triple-array pass).
  uint64_t edge_passes = 0;
  uint64_t adjacency_buckets = 0;
  /// Peak CSR entries held by one bucket (<= max(adj_bucket_entries, max
  /// single-node degree)); the full CSR is never materialized.
  uint64_t peak_bucket_entries = 0;
  /// Peak bytes across the stream writer's flush buffers.
  uint64_t peak_stream_buffer_bytes = 0;
};

/// Streams the graph for `spec` to `path` as a kgpack snapshot without ever
/// materializing the triple set or CSR. Memory is O(num_nodes) index state
/// plus O(adj_bucket_entries + stream_buffer_bytes) chunks.
Result<ScaleGenReport> GenerateScaleKgToFile(const ScaleKgSpec& spec,
                                             const std::string& path);

/// Reference in-memory build of the same dataset (graph + space + library),
/// byte-identical under EncodeSnapshot to the streamed file. Intended for
/// tests and laptop scales; holds the whole graph.
Result<DatasetSnapshot> BuildScaleKgInMemory(const ScaleKgSpec& spec);

/// Compact, spec-derivable description of the generated graph for workload
/// construction: hub names, type names, predicate names, and the alias
/// catalogs — everything gen/insight_workload.h needs, with no graph in
/// memory. O(communities + domains), computed in microseconds.
struct InsightProfile {
  ScaleKgSpec spec;

  /// Per domain d (size num_domains).
  std::vector<std::string> member_types;
  std::vector<std::string> hub_types;
  std::vector<std::string> member_of_predicates;
  std::vector<std::string> linked_predicates;
  /// Per domain, per k < num_intra_predicates.
  std::vector<std::vector<std::string>> intra_predicates;
  /// Shared across domains.
  std::vector<std::string> bridge_predicates;
  std::vector<std::string> noise_predicates;

  /// Per community c (size num_communities).
  std::vector<std::string> hub_names;

  /// alias -> (canonical, registered?) catalogs, exactly the aliases the
  /// generator created (gen/workload.h noise-injection shape).
  std::map<std::string, std::vector<std::pair<std::string, bool>>>
      type_aliases;
  std::map<std::string, std::vector<std::pair<std::string, bool>>>
      name_aliases;

  uint64_t DomainOfCommunity(uint64_t c) const {
    return c % spec.num_domains;
  }
  /// Communities of domain d, in id order.
  std::vector<uint64_t> CommunitiesOfDomain(uint64_t d) const;
};

InsightProfile MakeInsightProfile(const ScaleKgSpec& spec);

/// A spec profile tuned per node count: communities/domains scale with the
/// graph so per-type candidate sets stay search-friendly. The benchmark
/// scales (10k / 100k / 1M) all come from here.
ScaleKgSpec ScaleSpecFor(uint64_t num_nodes, uint64_t seed = 42);

/// A deterministic SoA block of `count` unit vectors of dimension `dim`
/// for kernel benchmarks and differential tests. Row i is a pure function
/// of (seed, i) — the same per-id FastRng stream discipline the graph
/// generator uses — so any (count, dim, seed) triple reproduces
/// bit-identically across runs, and row i does not depend on count.
VectorStore GenerateEmbeddingBlock(size_t count, size_t dim, uint64_t seed);

}  // namespace kgsearch

#endif  // KGSEARCH_GEN_SCALE_KG_H_
