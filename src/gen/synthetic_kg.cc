#include "gen/synthetic_kg.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/string_util.h"

namespace kgsearch {

namespace {

/// Builds a vector with exact cosine `strength` against `centroid`:
/// v = s·c + sqrt(1-s²)·u, with u a fresh unit vector orthogonalized
/// against c.
FloatVec VectorWithStrength(const FloatVec& centroid, double strength,
                            Rng* rng) {
  KG_CHECK(strength > 0.0 && strength <= 1.0);
  FloatVec u = RandomUnitVec(centroid.size(), rng);
  // Gram-Schmidt against the centroid.
  double proj = Dot(u, centroid);
  Axpy(-proj, centroid, &u);
  NormalizeInPlace(&u);
  FloatVec v(centroid.size(), 0.0f);
  Axpy(strength, centroid, &v);
  Axpy(std::sqrt(std::max(0.0, 1.0 - strength * strength)), u, &v);
  NormalizeInPlace(&v);
  return v;
}

/// Draws a template index according to template weights.
size_t DrawTemplate(const std::vector<PathTemplate>& templates, Rng* rng) {
  double total = 0.0;
  for (const auto& t : templates) total += t.weight;
  double x = rng->UniformReal(0.0, total);
  for (size_t i = 0; i < templates.size(); ++i) {
    x -= templates[i].weight;
    if (x <= 0.0) return i;
  }
  return templates.size() - 1;
}

}  // namespace

std::vector<NodeId> GeneratedDataset::GoldIds(size_t intent_index,
                                              size_t anchor_index) const {
  KG_CHECK(intent_index < intents.size());
  const GeneratedIntent& intent = intents[intent_index];
  KG_CHECK(anchor_index < intent.gold.size());
  std::vector<NodeId> out;
  out.reserve(intent.gold[anchor_index].size());
  for (const std::string& name : intent.gold[anchor_index]) {
    NodeId u = graph->FindNode(name);
    KG_CHECK(u != kInvalidNode);
    out.push_back(u);
  }
  return out;
}

Result<std::unique_ptr<GeneratedDataset>> GenerateDataset(
    const DatasetSpec& spec) {
  if (spec.groups.empty()) {
    return Status::InvalidArgument("dataset spec needs >= 1 group");
  }
  if (spec.embedding_dim < 8) {
    return Status::InvalidArgument("embedding dim must be >= 8");
  }

  auto ds = std::make_unique<GeneratedDataset>();
  ds->spec = spec;
  ds->graph = std::make_unique<KnowledgeGraph>();
  KnowledgeGraph& g = *ds->graph;
  Rng rng(spec.seed);

  // ---- predicate semantic vectors ----
  std::unordered_map<std::string, FloatVec> vectors;
  for (const GroupSpec& group : spec.groups) {
    for (const IntentSpec& intent : group.intents) {
      FloatVec centroid = RandomUnitVec(spec.embedding_dim, &rng);
      for (const PredicateSpec& p : intent.predicates) {
        if (vectors.count(p.name)) {
          return Status::InvalidArgument("duplicate predicate: " + p.name);
        }
        vectors.emplace(p.name,
                        VectorWithStrength(centroid, p.strength, &rng));
      }
    }
  }
  std::vector<std::string> noise_preds;
  for (size_t i = 0; i < spec.filler_predicates; ++i) {
    std::string name = StrFormat("noise_p%zu", i);
    vectors.emplace(name, RandomUnitVec(spec.embedding_dim, &rng));
    noise_preds.push_back(std::move(name));
  }

  // ---- entities and schema instantiations ----
  for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
    const GroupSpec& group = spec.groups[gi];
    // Subject pool.
    std::vector<std::string> subjects;
    subjects.reserve(group.num_subjects);
    for (size_t j = 0; j < group.num_subjects; ++j) {
      std::string name = StrFormat("%s_%zu", group.subject_type.c_str(), j);
      g.AddNode(name, group.subject_type);
      subjects.push_back(std::move(name));
    }

    for (const IntentSpec& intent : group.intents) {
      // Every intent predicate must exist in the KG vocabulary even when it
      // never labels an edge (the query-only predicates of Figure 1).
      for (const PredicateSpec& p : intent.predicates) {
        g.InternPredicate(p.name);
      }

      GeneratedIntent gen;
      gen.spec = intent;
      gen.group_index = gi;
      const size_t num_anchors = intent.anchor_names.empty()
                                     ? intent.num_anchors
                                     : intent.anchor_names.size();
      gen.spec.num_anchors = num_anchors;
      gen.gold.resize(num_anchors);
      gen.gold_by_template.assign(
          num_anchors,
          std::vector<std::set<std::string>>(intent.templates.size()));

      // Anchors.
      for (size_t a = 0; a < num_anchors; ++a) {
        std::string name =
            intent.anchor_names.empty()
                ? StrFormat("%s_anchor%zu", intent.name.c_str(), a)
                : intent.anchor_names[a];
        g.AddNode(name, intent.anchor_type);
        gen.anchor_names.push_back(std::move(name));
      }
      // Intermediate pools per (template, anchor, hop level).
      // mids[t][a][h] is a list of entity names.
      std::vector<std::vector<std::vector<std::vector<std::string>>>> mids(
          intent.templates.size());
      for (size_t t = 0; t < intent.templates.size(); ++t) {
        const PathTemplate& tmpl = intent.templates[t];
        mids[t].resize(num_anchors);
        for (size_t a = 0; a < num_anchors; ++a) {
          mids[t][a].resize(tmpl.inter_types.size());
          for (size_t h = 0; h < tmpl.inter_types.size(); ++h) {
            for (size_t m = 0; m < intent.mids_per_anchor; ++m) {
              std::string name = StrFormat("%s_t%zu_a%zu_h%zu_m%zu",
                                           intent.name.c_str(), t, a, h, m);
              g.AddNode(name, tmpl.inter_types[h]);
              mids[t][a][h].push_back(std::move(name));
            }
          }
        }
      }

      // Instantiate templates for participating subjects.
      auto instantiate = [&](const std::string& subject, size_t t, size_t a) {
        const PathTemplate& tmpl = intent.templates[t];
        std::vector<std::string> nodes;
        nodes.push_back(subject);
        for (size_t h = 0; h + 1 < tmpl.Hops(); ++h) {
          const auto& pool = mids[t][a][h];
          nodes.push_back(pool[rng.UniformIndex(pool.size())]);
        }
        nodes.push_back(gen.anchor_names[a]);
        for (size_t h = 0; h < tmpl.Hops(); ++h) {
          NodeId from = g.FindNode(nodes[h]);
          NodeId to = g.FindNode(nodes[h + 1]);
          KG_CHECK(from != kInvalidNode && to != kInvalidNode);
          // Mostly subject-to-anchor orientation, occasionally flipped;
          // path matching ignores direction anyway (footnote 1).
          if (rng.Bernoulli(0.25)) std::swap(from, to);
          g.AddEdge(from, tmpl.predicates[h], to);
        }
        gen.gold_by_template[a][t].insert(subject);
        if (tmpl.correct) gen.gold[a].insert(subject);
      };

      for (const std::string& subject : subjects) {
        if (!rng.Bernoulli(group.participation)) continue;
        // Skewed anchor popularity (Germany-style hubs).
        size_t a = rng.Zipf(num_anchors, 0.9);
        size_t t = DrawTemplate(intent.templates, &rng);
        instantiate(subject, t, a);
        if (rng.Bernoulli(group.extra_path_prob) &&
            intent.templates.size() > 1) {
          size_t t2 = DrawTemplate(intent.templates, &rng);
          if (t2 != t) instantiate(subject, t2, a);
        }
      }
      ds->intents.push_back(std::move(gen));
    }
  }

  // ---- filler entities and heavy-tail noise edges ----
  for (size_t i = 0; i < spec.filler_entities; ++i) {
    g.AddNode(StrFormat("Filler_%zu", i), StrFormat("Misc%zu", i % 5));
  }
  if (spec.filler_edges > 0 && !noise_preds.empty()) {
    const size_t n = g.NumNodes();
    for (size_t i = 0; i < spec.filler_edges; ++i) {
      NodeId a = static_cast<NodeId>(rng.Zipf(n, 0.6));
      NodeId b = static_cast<NodeId>(rng.UniformIndex(n));
      if (a == b) continue;
      g.AddEdge(a, noise_preds[rng.UniformIndex(noise_preds.size())], b);
    }
  }

  g.Finalize();

  // ---- ground-truth predicate space, ordered by graph predicate ids ----
  std::vector<FloatVec> ordered(g.NumPredicates());
  std::vector<std::string> names(g.NumPredicates());
  for (PredicateId p = 0; p < g.NumPredicates(); ++p) {
    names[p] = std::string(g.PredicateName(p));
    auto it = vectors.find(names[p]);
    KG_CHECK(it != vectors.end());
    ordered[p] = it->second;
  }
  ds->space = std::make_unique<PredicateSpace>(std::move(ordered),
                                               std::move(names));

  // ---- transformation library and alias catalog ----
  auto add_aliases = [&](const std::string& canonical, bool is_type,
                         auto* catalog) {
    // Three aliases per label; each unregistered with the configured
    // probability, but the first is always registered so clean queries can
    // exercise synonym matching.
    for (int v = 0; v < 3; ++v) {
      std::string alias = StrFormat("%s_%s%d", v % 2 == 0 ? "Syn" : "Abbr",
                                    canonical.c_str(), v);
      bool registered = (v == 0) || !rng.Bernoulli(spec.unknown_alias_fraction);
      if (registered) {
        if (is_type) {
          if (v % 2 == 0) {
            ds->library.AddTypeSynonym(alias, canonical);
          } else {
            ds->library.AddTypeAbbreviation(alias, canonical);
          }
        } else {
          if (v % 2 == 0) {
            ds->library.AddNameSynonym(alias, canonical);
          } else {
            ds->library.AddNameAbbreviation(alias, canonical);
          }
        }
      }
      (*catalog)[canonical].emplace_back(std::move(alias), registered);
    }
  };
  for (const GroupSpec& group : spec.groups) {
    add_aliases(group.subject_type, true, &ds->type_aliases);
    for (const IntentSpec& intent : group.intents) {
      add_aliases(intent.anchor_type, true, &ds->type_aliases);
    }
  }
  for (const GeneratedIntent& intent : ds->intents) {
    for (const std::string& anchor : intent.anchor_names) {
      add_aliases(anchor, false, &ds->name_aliases);
    }
  }

  return ds;
}

namespace {

/// Builds the standard intent shape used by the dataset profiles: one query
/// predicate, five correct schemas (1..4 hops, incl. a "weak" 2-hop whose
/// pss lands between 0.8 and 0.9 for the τ sweep of Table X), and three
/// distractor schemas with low semantic strength.
IntentSpec StandardIntent(const std::string& name,
                          const std::string& anchor_type, size_t num_anchors,
                          size_t mids_per_anchor) {
  IntentSpec intent;
  intent.name = name;
  intent.anchor_type = anchor_type;
  intent.num_anchors = num_anchors;
  intent.mids_per_anchor = mids_per_anchor;
  auto P = [&](const char* suffix, double strength) {
    intent.predicates.push_back(
        PredicateSpec{name + "_" + suffix, strength});
    return intent.predicates.back().name;
  };
  const std::string q = P("q", 0.98);
  intent.query_predicate = q;

  // Predicates are deliberately reused across schemas (as real KG
  // vocabularies do): the semantic family then has fewer than ten strong
  // members, so a predicate's top-10 similar list reaches into the weak
  // band — which is what makes the paper's edge-noise experiment bite.
  const std::string direct = P("direct", 0.97);
  const std::string p2a = P("p2a", 0.95), p2b = P("p2b", 0.93);
  const std::string p3a = P("p3a", 0.94);
  const std::string w2a = P("w2a", 0.87), w2b = P("w2b", 0.85);
  const std::string d1 = P("d1", 0.60);
  const std::string d2a = P("d2a", 0.55), d2b = P("d2b", 0.50);
  const std::string d3a = P("d3a", 0.52), d3b = P("d3b", 0.48),
                    d3c = P("d3c", 0.55);
  const std::string r2a = P("r2a", 0.91), r2b = P("r2b", 0.90);
  const std::string r1 = P("r1", 0.97);

  const std::string mid_a = name + "_MidA";
  const std::string mid_b = name + "_MidB";
  const std::string mid_c = name + "_MidC";

  // Correct schemas (gold). The query predicate labels a slice of the
  // direct edges (like product in Q117), so predicate-exact baselines find
  // exactly that slice: P = 1 at low recall (Table I shape). The bulk of
  // the direct schema uses `direct` (assembly-like), whose matches rank
  // interleaved with the non-gold r1 schema below.
  intent.templates.push_back(PathTemplate{{q}, {}, true, 0.08});
  intent.templates.push_back(PathTemplate{{direct}, {}, true, 0.22});
  intent.templates.push_back(PathTemplate{{p2a, p2b}, {mid_a}, true, 0.20});
  intent.templates.push_back(
      PathTemplate{{p3a, p2b, p2a}, {mid_a, mid_b}, true, 0.14});
  intent.templates.push_back(PathTemplate{{w2a, w2b}, {mid_c}, true, 0.08});
  intent.templates.push_back(
      PathTemplate{{p2a, p3a, p2b, direct}, {mid_a, mid_b, mid_c}, true,
                   0.06});
  // Distractor schemas (reachable, semantically wrong).
  intent.templates.push_back(PathTemplate{{d1}, {}, false, 0.04});
  intent.templates.push_back(PathTemplate{{d2a, d2b}, {mid_b}, false, 0.06});
  intent.templates.push_back(
      PathTemplate{{d3a, d3b, d3c}, {mid_c, mid_a}, false, 0.04});
  // Reasonable-but-unvalidated schemas: semantically strong, outside the
  // gold set — SGQ finds them, which keeps precision realistically below 1
  // (the paper's schemas 5-7 phenomenon). The 1-hop one ranks interleaved
  // with the direct gold schema, so the precision dip shows at every k.
  intent.templates.push_back(PathTemplate{{r2a, r2b}, {mid_b}, false, 0.04});
  intent.templates.push_back(PathTemplate{{r1}, {}, false, 0.04});
  return intent;
}

}  // namespace

DatasetSpec DbpediaLikeSpec(double scale, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "dbpedia-like";
  spec.seed = seed;
  spec.embedding_dim = 64;
  spec.filler_entities = static_cast<size_t>(1500 * scale);
  spec.filler_edges = static_cast<size_t>(6000 * scale);
  spec.filler_predicates = 10;

  GroupSpec autos;
  autos.subject_type = "Automobile";
  autos.num_subjects = static_cast<size_t>(900 * scale);
  autos.participation = 0.9;
  autos.extra_path_prob = 0.35;
  autos.intents.push_back(StandardIntent("produced_in", "Country", 8, 16));
  autos.intents.push_back(StandardIntent("engine_from", "Country", 8, 16));
  autos.intents.push_back(StandardIntent("designed_by", "Studio", 6, 16));
  spec.groups.push_back(std::move(autos));

  GroupSpec films;
  films.subject_type = "Film";
  films.num_subjects = static_cast<size_t>(700 * scale);
  films.participation = 0.85;
  films.extra_path_prob = 0.3;
  films.intents.push_back(StandardIntent("filmed_in", "Country", 8, 16));
  films.intents.push_back(StandardIntent("scored_by", "Orchestra", 6, 16));
  spec.groups.push_back(std::move(films));
  return spec;
}

DatasetSpec FreebaseLikeSpec(double scale, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "freebase-like";
  spec.seed = seed;
  spec.embedding_dim = 64;
  // Freebase is denser and broader: more groups, more noise.
  spec.filler_entities = static_cast<size_t>(2500 * scale);
  spec.filler_edges = static_cast<size_t>(12000 * scale);
  spec.filler_predicates = 16;

  const char* domains[3] = {"Athlete", "Company", "Song"};
  const char* anchor_types[3] = {"Team", "Market", "Label"};
  for (int d = 0; d < 3; ++d) {
    GroupSpec group;
    group.subject_type = domains[d];
    group.num_subjects = static_cast<size_t>(650 * scale);
    group.participation = 0.88;
    group.extra_path_prob = 0.4;
    group.intents.push_back(StandardIntent(
        StrFormat("%s_rel_a", domains[d]), anchor_types[d], 10, 12));
    group.intents.push_back(StandardIntent(
        StrFormat("%s_rel_b", domains[d]), "Country", 8, 12));
    spec.groups.push_back(std::move(group));
  }
  return spec;
}

DatasetSpec Yago2LikeSpec(double scale, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "yago2-like";
  spec.seed = seed;
  spec.embedding_dim = 64;
  // YAGO2 profile: larger subject pools (bigger gold sets, so recall@k is
  // lower, matching Figure 14's band) and moderate noise.
  spec.filler_entities = static_cast<size_t>(2000 * scale);
  spec.filler_edges = static_cast<size_t>(9000 * scale);
  spec.filler_predicates = 12;

  GroupSpec people;
  people.subject_type = "Scientist";
  people.num_subjects = static_cast<size_t>(1600 * scale);
  people.participation = 0.92;
  people.extra_path_prob = 0.3;
  people.intents.push_back(StandardIntent("works_in", "Field", 6, 12));
  people.intents.push_back(StandardIntent("born_in", "Country", 8, 12));
  spec.groups.push_back(std::move(people));

  GroupSpec places;
  places.subject_type = "City";
  places.num_subjects = static_cast<size_t>(1200 * scale);
  places.participation = 0.9;
  places.extra_path_prob = 0.25;
  places.intents.push_back(StandardIntent("located_in", "Region", 8, 12));
  places.intents.push_back(StandardIntent("twinned_with", "Country", 8, 12));
  spec.groups.push_back(std::move(places));
  return spec;
}

}  // namespace kgsearch
