// Schema-driven synthetic knowledge-graph generator.
//
// The paper evaluates on DBpedia, Freebase, and YAGO2 with QALD-4-style
// workloads whose gold answers span several semantically equivalent n-hop
// schemas per query intent (Figure 1). This generator reproduces exactly
// that structure at laptop scale:
//
//  - Entities are grouped per "intent group": a pool of subject entities
//    (e.g. automobiles) plus, per intent, anchor entities (e.g. countries)
//    and intermediate entities (e.g. companies, cities).
//  - Each intent owns several path templates between subjects and anchors:
//    correct templates (the gold schemas, 1..4 hops) and distractor
//    templates (structurally identical, semantically wrong — designer/
//    nationality in the paper's example).
//  - Predicate semantics are controlled: each intent's predicates carry a
//    "strength" = cosine against the intent's centroid vector, so the
//    ground-truth predicate space reproduces the similarity bands the paper
//    reports (sim(product, assembly)=0.98, etc.). A TransE space can be
//    trained on the same graph as a learned alternative.
//  - Gold answers per (intent, anchor) are recorded during generation:
//    subjects connected via >= 1 correct template, the union-over-schemas
//    definition the paper uses for recall.
#ifndef KGSEARCH_GEN_SYNTHETIC_KG_H_
#define KGSEARCH_GEN_SYNTHETIC_KG_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "embedding/predicate_space.h"
#include "kg/graph.h"
#include "match/transformation_library.h"
#include "util/rng.h"
#include "util/status.h"

namespace kgsearch {

/// One predicate with controlled semantics.
struct PredicateSpec {
  std::string name;
  /// Cosine of this predicate's vector against its intent centroid; the
  /// query predicate has strength ~1, gold-schema predicates 0.82-0.99,
  /// distractor predicates far lower.
  double strength = 1.0;
};

/// One schema (path template) between a subject and an anchor.
struct PathTemplate {
  /// Predicates per hop, subject side first; size = hops.
  std::vector<std::string> predicates;
  /// Intermediate node types; size = hops - 1.
  std::vector<std::string> inter_types;
  /// Gold schema (true) vs. semantically wrong distractor (false).
  bool correct = true;
  /// Fraction of subject instantiations drawn through this template.
  double weight = 1.0;

  size_t Hops() const { return predicates.size(); }
};

/// One query intent: a family of semantically equivalent schemas.
struct IntentSpec {
  std::string name;              ///< e.g. "produced_in"
  std::string query_predicate;   ///< predicate used on query edges
  std::string anchor_type;       ///< type of the specific node (Country)
  size_t num_anchors = 8;
  /// Optional anchor entity names (e.g. "Germany"); when set, overrides the
  /// generated names and num_anchors.
  std::vector<std::string> anchor_names;
  /// Pool size of intermediate entities per (template, anchor).
  size_t mids_per_anchor = 3;
  std::vector<PredicateSpec> predicates;  ///< all predicates incl. query's
  std::vector<PathTemplate> templates;
};

/// One intent group: a subject pool shared by several intents, so that
/// multi-edge queries (chain/star, Figure 3) can combine intents.
struct GroupSpec {
  std::string subject_type;  ///< e.g. "Automobile"
  size_t num_subjects = 500;
  /// Probability that a subject participates in a given intent at all.
  double participation = 0.9;
  /// Probability that a participating subject gets a second template.
  double extra_path_prob = 0.3;
  std::vector<IntentSpec> intents;
};

/// Whole-dataset parameters.
struct DatasetSpec {
  std::string name = "synthetic";
  std::vector<GroupSpec> groups;
  size_t embedding_dim = 64;
  /// Random filler entities and edges (heavy-tail degree noise).
  size_t filler_entities = 0;
  size_t filler_edges = 0;
  size_t filler_predicates = 8;
  /// Fraction of generated aliases NOT registered in the transformation
  /// library (these make node noise harmful, Section VII-E).
  double unknown_alias_fraction = 0.55;
  uint64_t seed = 42;
};

/// Gold-answer bookkeeping for one intent.
struct GeneratedIntent {
  IntentSpec spec;
  size_t group_index = 0;
  std::vector<std::string> anchor_names;
  /// gold[a] = subject names connected to anchor a via >= 1 correct template.
  std::vector<std::set<std::string>> gold;
  /// gold_by_template[a][t] = subjects connected to anchor a via template t.
  std::vector<std::vector<std::set<std::string>>> gold_by_template;
};

/// A fully generated dataset.
struct GeneratedDataset {
  std::unique_ptr<KnowledgeGraph> graph;
  std::unique_ptr<PredicateSpace> space;  ///< ground-truth semantics
  TransformationLibrary library;
  std::vector<GeneratedIntent> intents;   ///< flattened over groups
  DatasetSpec spec;

  /// Registered + unregistered aliases per canonical label, for noise
  /// injection: alias -> (canonical, registered?).
  std::map<std::string, std::vector<std::pair<std::string, bool>>>
      type_aliases;
  std::map<std::string, std::vector<std::pair<std::string, bool>>>
      name_aliases;

  /// Resolves gold subject names to node ids (graph must be finalized).
  std::vector<NodeId> GoldIds(size_t intent_index, size_t anchor_index) const;
};

/// Generates a dataset from a spec. Deterministic for a fixed seed.
Result<std::unique_ptr<GeneratedDataset>> GenerateDataset(
    const DatasetSpec& spec);

/// Dataset profiles mirroring the paper's three corpora at laptop scale.
/// `scale` multiplies subject-pool sizes (1.0 = default bench scale).
DatasetSpec DbpediaLikeSpec(double scale = 1.0, uint64_t seed = 42);
DatasetSpec FreebaseLikeSpec(double scale = 1.0, uint64_t seed = 43);
DatasetSpec Yago2LikeSpec(double scale = 1.0, uint64_t seed = 44);

}  // namespace kgsearch

#endif  // KGSEARCH_GEN_SYNTHETIC_KG_H_
