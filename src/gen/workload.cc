#include "gen/workload.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace kgsearch {

namespace {

Status CheckIntent(const GeneratedDataset& ds, size_t intent_index,
                   size_t anchor_index) {
  if (intent_index >= ds.intents.size()) {
    return Status::OutOfRange("intent index out of range");
  }
  if (anchor_index >= ds.intents[intent_index].anchor_names.size()) {
    return Status::OutOfRange("anchor index out of range");
  }
  return Status::OK();
}

std::vector<NodeId> NamesToSortedIds(const KnowledgeGraph& graph,
                                     const std::set<std::string>& names) {
  std::vector<NodeId> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    NodeId u = graph.FindNode(n);
    KG_CHECK(u != kInvalidNode);
    out.push_back(u);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::string& SubjectTypeOf(const GeneratedDataset& ds,
                                 const GeneratedIntent& intent) {
  return ds.spec.groups[intent.group_index].subject_type;
}

}  // namespace

Result<QueryWithGold> MakeIntentQuery(const GeneratedDataset& ds,
                                      size_t intent_index,
                                      size_t anchor_index) {
  KG_RETURN_NOT_OK(CheckIntent(ds, intent_index, anchor_index));
  const GeneratedIntent& intent = ds.intents[intent_index];

  QueryWithGold out;
  int subject = out.query.AddTargetNode(SubjectTypeOf(ds, intent));
  int anchor = out.query.AddSpecificNode(
      intent.spec.anchor_type, intent.anchor_names[anchor_index]);
  out.query.AddEdge(subject, anchor, intent.spec.query_predicate);
  out.answer_node = subject;
  out.gold = NamesToSortedIds(*ds.graph, intent.gold[anchor_index]);
  out.description = StrFormat("simple:%s@%s", intent.spec.name.c_str(),
                              intent.anchor_names[anchor_index].c_str());
  return out;
}

Result<QueryWithGold> MakeChainQuery(const GeneratedDataset& ds,
                                     size_t intent_index, size_t anchor_index,
                                     size_t template_index) {
  KG_RETURN_NOT_OK(CheckIntent(ds, intent_index, anchor_index));
  const GeneratedIntent& intent = ds.intents[intent_index];
  if (template_index >= intent.spec.templates.size()) {
    return Status::OutOfRange("template index out of range");
  }
  const PathTemplate& tmpl = intent.spec.templates[template_index];
  if (tmpl.Hops() < 2 || !tmpl.correct) {
    return Status::InvalidArgument(
        "chain queries need a correct template with >= 2 hops");
  }
  const std::string& mid_type = tmpl.inter_types[0];

  QueryWithGold out;
  int subject = out.query.AddTargetNode(SubjectTypeOf(ds, intent));
  int mid = out.query.AddTargetNode(mid_type);
  int anchor = out.query.AddSpecificNode(
      intent.spec.anchor_type, intent.anchor_names[anchor_index]);
  out.query.AddEdge(subject, mid, tmpl.predicates[0]);
  // The second query edge summarizes the rest of the template; use its
  // second predicate (the engine's edge-to-path mapping covers the rest).
  out.query.AddEdge(mid, anchor, tmpl.predicates[1]);
  out.answer_node = subject;

  // Gold: subjects connected via any correct template whose intermediate
  // types include mid_type (a 1-hop direct edge cannot satisfy two query
  // edges, so the direct schema is excluded by construction).
  std::set<std::string> gold_names;
  for (size_t t = 0; t < intent.spec.templates.size(); ++t) {
    const PathTemplate& cand = intent.spec.templates[t];
    if (!cand.correct) continue;
    if (std::find(cand.inter_types.begin(), cand.inter_types.end(),
                  mid_type) == cand.inter_types.end()) {
      continue;
    }
    gold_names.insert(intent.gold_by_template[anchor_index][t].begin(),
                      intent.gold_by_template[anchor_index][t].end());
  }
  out.gold = NamesToSortedIds(*ds.graph, gold_names);
  out.description = StrFormat("chain:%s@%s via %s", intent.spec.name.c_str(),
                              intent.anchor_names[anchor_index].c_str(),
                              mid_type.c_str());
  return out;
}

Result<QueryWithGold> MakeDeepChainQuery(
    const GeneratedDataset& ds, size_t intent_index, size_t anchor_index,
    size_t template_index,
    const std::vector<std::pair<size_t, size_t>>& simple_legs) {
  KG_RETURN_NOT_OK(CheckIntent(ds, intent_index, anchor_index));
  const GeneratedIntent& intent = ds.intents[intent_index];
  if (template_index >= intent.spec.templates.size()) {
    return Status::OutOfRange("template index out of range");
  }
  const PathTemplate& tmpl = intent.spec.templates[template_index];
  if (tmpl.Hops() < 2 || !tmpl.correct) {
    return Status::InvalidArgument(
        "deep chain queries need a correct template with >= 2 hops");
  }
  for (const auto& [ii, ai] : simple_legs) {
    KG_RETURN_NOT_OK(CheckIntent(ds, ii, ai));
    if (ds.intents[ii].group_index != intent.group_index) {
      return Status::InvalidArgument(
          "simple legs must share the chain's subject pool (group)");
    }
  }

  QueryWithGold out;
  int subject = out.query.AddTargetNode(SubjectTypeOf(ds, intent));
  out.answer_node = subject;
  int prev = subject;
  for (const std::string& mid_type : tmpl.inter_types) {
    int mid = out.query.AddTargetNode(mid_type);
    out.query.AddEdge(prev, mid,
                      tmpl.predicates[static_cast<size_t>(
                          out.query.NumEdges())]);
    prev = mid;
  }
  int anchor = out.query.AddSpecificNode(
      intent.spec.anchor_type, intent.anchor_names[anchor_index]);
  out.query.AddEdge(prev, anchor, tmpl.predicates.back());

  // Gold along the chain: correct templates whose intermediate-type
  // sequence starts with the exposed sequence (the surplus hops are
  // absorbed by the final query edge's n̂ budget).
  std::set<std::string> gold_names;
  for (size_t t = 0; t < intent.spec.templates.size(); ++t) {
    const PathTemplate& cand = intent.spec.templates[t];
    if (!cand.correct) continue;
    if (cand.inter_types.size() < tmpl.inter_types.size()) continue;
    if (!std::equal(tmpl.inter_types.begin(), tmpl.inter_types.end(),
                    cand.inter_types.begin())) {
      continue;
    }
    gold_names.insert(intent.gold_by_template[anchor_index][t].begin(),
                      intent.gold_by_template[anchor_index][t].end());
  }
  std::vector<NodeId> gold = NamesToSortedIds(*ds.graph, gold_names);

  // Simple legs on the subject; gold intersects.
  out.description = StrFormat("deepchain:%s(%zu-hop)", intent.spec.name.c_str(),
                              tmpl.Hops());
  for (const auto& [ii, ai] : simple_legs) {
    const GeneratedIntent& leg_intent = ds.intents[ii];
    int leg_anchor = out.query.AddSpecificNode(
        leg_intent.spec.anchor_type, leg_intent.anchor_names[ai]);
    out.query.AddEdge(subject, leg_anchor, leg_intent.spec.query_predicate);
    std::vector<NodeId> leg =
        NamesToSortedIds(*ds.graph, leg_intent.gold[ai]);
    std::vector<NodeId> merged;
    std::set_intersection(gold.begin(), gold.end(), leg.begin(), leg.end(),
                          std::back_inserter(merged));
    gold = std::move(merged);
    out.description += "+" + leg_intent.spec.name;
  }
  out.gold = std::move(gold);
  return out;
}

Result<QueryWithGold> MakeStarQuery(
    const GeneratedDataset& ds,
    const std::vector<std::pair<size_t, size_t>>& intent_anchor_pairs) {
  if (intent_anchor_pairs.size() < 2) {
    return Status::InvalidArgument("star queries need >= 2 legs");
  }
  size_t group = SIZE_MAX;
  for (const auto& [ii, ai] : intent_anchor_pairs) {
    KG_RETURN_NOT_OK(CheckIntent(ds, ii, ai));
    if (group == SIZE_MAX) group = ds.intents[ii].group_index;
    if (ds.intents[ii].group_index != group) {
      return Status::InvalidArgument(
          "star query intents must share one subject pool (group)");
    }
  }

  QueryWithGold out;
  const GeneratedIntent& first = ds.intents[intent_anchor_pairs[0].first];
  int subject = out.query.AddTargetNode(SubjectTypeOf(ds, first));
  out.answer_node = subject;

  std::vector<NodeId> gold;
  bool first_leg = true;
  std::string desc = "star:";
  for (const auto& [ii, ai] : intent_anchor_pairs) {
    const GeneratedIntent& intent = ds.intents[ii];
    int anchor = out.query.AddSpecificNode(intent.spec.anchor_type,
                                           intent.anchor_names[ai]);
    out.query.AddEdge(subject, anchor, intent.spec.query_predicate);
    std::vector<NodeId> leg = NamesToSortedIds(*ds.graph, intent.gold[ai]);
    if (first_leg) {
      gold = std::move(leg);
      first_leg = false;
    } else {
      std::vector<NodeId> merged;
      std::set_intersection(gold.begin(), gold.end(), leg.begin(), leg.end(),
                            std::back_inserter(merged));
      gold = std::move(merged);
    }
    desc += intent.spec.name + "+";
  }
  out.gold = std::move(gold);
  out.description = desc;
  return out;
}

Result<QueryWithGold> MakeComplexQuery(
    const GeneratedDataset& ds, size_t chain_intent, size_t chain_template,
    const std::vector<std::pair<size_t, size_t>>& simple_intent_anchor_pairs,
    size_t chain_anchor) {
  Result<QueryWithGold> chain =
      MakeChainQuery(ds, chain_intent, chain_anchor, chain_template);
  if (!chain.ok()) return chain.status();
  if (simple_intent_anchor_pairs.empty()) {
    return Status::InvalidArgument("complex query needs >= 1 simple leg");
  }
  for (const auto& [ii, ai] : simple_intent_anchor_pairs) {
    KG_RETURN_NOT_OK(CheckIntent(ds, ii, ai));
    if (ds.intents[ii].group_index != ds.intents[chain_intent].group_index) {
      return Status::InvalidArgument(
          "complex query legs must share one subject pool (group)");
    }
  }

  // Rebuild as one graph: subject + chain leg + simple legs.
  QueryWithGold out;
  const GeneratedIntent& ci = ds.intents[chain_intent];
  const PathTemplate& tmpl = ci.spec.templates[chain_template];
  int subject = out.query.AddTargetNode(SubjectTypeOf(ds, ci));
  out.answer_node = subject;
  int mid = out.query.AddTargetNode(tmpl.inter_types[0]);
  int canchor = out.query.AddSpecificNode(ci.spec.anchor_type,
                                          ci.anchor_names[chain_anchor]);
  out.query.AddEdge(subject, mid, tmpl.predicates[0]);
  out.query.AddEdge(mid, canchor, tmpl.predicates[1]);
  std::string desc = "complex:" + ci.spec.name;
  for (const auto& [ii, ai] : simple_intent_anchor_pairs) {
    const GeneratedIntent& intent = ds.intents[ii];
    int anchor = out.query.AddSpecificNode(intent.spec.anchor_type,
                                           intent.anchor_names[ai]);
    out.query.AddEdge(subject, anchor, intent.spec.query_predicate);
    desc += "+" + intent.spec.name;
  }

  // Gold: intersection of the chain gold and the simple-leg golds.
  std::vector<NodeId> gold = chain.ValueOrDie().gold;
  for (const auto& [ii, ai] : simple_intent_anchor_pairs) {
    std::vector<NodeId> leg =
        NamesToSortedIds(*ds.graph, ds.intents[ii].gold[ai]);
    std::vector<NodeId> merged;
    std::set_intersection(gold.begin(), gold.end(), leg.begin(), leg.end(),
                          std::back_inserter(merged));
    gold = std::move(merged);
  }
  out.gold = std::move(gold);
  out.description = desc;
  return out;
}

void AddNodeNoise(const GeneratedDataset& ds, Rng* rng, QueryGraph* query) {
  // Collect noisable positions: specific names and target types that have an
  // alias catalog entry.
  struct Slot {
    int node;
    bool is_name;
  };
  std::vector<Slot> slots;
  for (size_t i = 0; i < query->NumNodes(); ++i) {
    const QueryNode& n = query->node(static_cast<int>(i));
    if (n.is_specific() && ds.name_aliases.count(n.name)) {
      slots.push_back(Slot{static_cast<int>(i), true});
    }
    if (ds.type_aliases.count(n.type)) {
      slots.push_back(Slot{static_cast<int>(i), false});
    }
  }
  if (slots.empty()) return;
  const Slot slot = slots[rng->UniformIndex(slots.size())];

  // Rebuild the query with the replaced label (QueryGraph is append-only).
  QueryGraph noisy;
  for (size_t i = 0; i < query->NumNodes(); ++i) {
    QueryNode n = query->node(static_cast<int>(i));
    if (static_cast<int>(i) == slot.node) {
      if (slot.is_name) {
        const auto& aliases = ds.name_aliases.at(n.name);
        n.name = aliases[rng->UniformIndex(aliases.size())].first;
      } else {
        const auto& aliases = ds.type_aliases.at(n.type);
        n.type = aliases[rng->UniformIndex(aliases.size())].first;
      }
    }
    if (n.is_specific()) {
      noisy.AddSpecificNode(n.type, n.name);
    } else {
      noisy.AddTargetNode(n.type);
    }
  }
  for (size_t i = 0; i < query->NumEdges(); ++i) {
    const QueryEdge& e = query->edge(static_cast<int>(i));
    noisy.AddEdge(e.from, e.to, e.predicate);
  }
  *query = std::move(noisy);
}

void AddEdgeNoise(const GeneratedDataset& ds, Rng* rng, QueryGraph* query) {
  if (query->NumEdges() == 0) return;
  const size_t edge_index = rng->UniformIndex(query->NumEdges());
  const QueryEdge& victim = query->edge(static_cast<int>(edge_index));
  PredicateId p = ds.graph->FindPredicate(victim.predicate);
  if (p == kInvalidSymbol) return;
  std::vector<SimilarPredicate> top = ds.space->TopSimilar(p, 10);
  if (top.empty()) return;
  const std::string replacement(
      ds.graph->PredicateName(top[rng->UniformIndex(top.size())].predicate));

  QueryGraph noisy;
  for (size_t i = 0; i < query->NumNodes(); ++i) {
    const QueryNode& n = query->node(static_cast<int>(i));
    if (n.is_specific()) {
      noisy.AddSpecificNode(n.type, n.name);
    } else {
      noisy.AddTargetNode(n.type);
    }
  }
  for (size_t i = 0; i < query->NumEdges(); ++i) {
    QueryEdge e = query->edge(static_cast<int>(i));
    if (i == edge_index) e.predicate = replacement;
    noisy.AddEdge(e.from, e.to, e.predicate);
  }
  *query = std::move(noisy);
}

}  // namespace kgsearch
