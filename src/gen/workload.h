// Query-workload construction over generated datasets: simple / chain /
// star / complex query graphs with gold answers (QALD-style), plus the node
// and edge noise injection of Section VII-E.
#ifndef KGSEARCH_GEN_WORKLOAD_H_
#define KGSEARCH_GEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/query_graph.h"
#include "gen/synthetic_kg.h"

namespace kgsearch {

/// A query graph plus its gold answer set.
struct QueryWithGold {
  QueryGraph query;
  /// Index of the query node whose matches are the answers (the pivot-type
  /// target node, e.g. the automobile in Q117).
  int answer_node = 0;
  std::vector<NodeId> gold;  ///< sorted gold answer node ids
  std::string description;
};

/// Simple query (1 sub-query): ?subject --query_pred-- anchor.
Result<QueryWithGold> MakeIntentQuery(const GeneratedDataset& ds,
                                      size_t intent_index,
                                      size_t anchor_index);

/// Chain query (1 sub-query of 2 edges): ?subject --p0-- ?mid --p1-- anchor,
/// exposing `template_index`'s first intermediate type as a target node.
/// Gold = subjects reachable via any correct template passing through that
/// intermediate type.
Result<QueryWithGold> MakeChainQuery(const GeneratedDataset& ds,
                                     size_t intent_index, size_t anchor_index,
                                     size_t template_index);

/// Deep chain query: exposes EVERY intermediate type of `template_index` as
/// a target node, i.e. ?subject --p0-- ?m1 --p1-- ... --pn-- anchor, plus
/// optional simple legs on the subject. With h >= 3 hops, the subject and
/// every intermediate node are feasible pivots with distinct decomposition
/// costs — the workload for the pivot-selection experiments (Tables V-VI).
/// Gold: subjects reachable via any correct template whose intermediate
/// type sequence starts with the exposed one, intersected with the simple
/// legs' gold sets.
Result<QueryWithGold> MakeDeepChainQuery(
    const GeneratedDataset& ds, size_t intent_index, size_t anchor_index,
    size_t template_index,
    const std::vector<std::pair<size_t, size_t>>& simple_legs = {});

/// Star query (m sub-queries): one ?subject joined to m intent anchors.
/// All intents must share the subject pool (same group). Gold = the
/// intersection of the per-intent gold sets.
Result<QueryWithGold> MakeStarQuery(
    const GeneratedDataset& ds,
    const std::vector<std::pair<size_t, size_t>>& intent_anchor_pairs);

/// Complex query: star of `simple_legs` one-edge legs plus one two-edge
/// chain leg (3 sub-queries total when simple_legs = 2); the query used by
/// the pivot-selection experiments (Tables V-VI).
Result<QueryWithGold> MakeComplexQuery(const GeneratedDataset& ds,
                                       size_t chain_intent,
                                       size_t chain_template,
                                       const std::vector<std::pair<size_t, size_t>>&
                                           simple_intent_anchor_pairs,
                                       size_t chain_anchor);

/// Node noise (Section VII-E): replaces the type of a random target node or
/// the name of a random specific node with a randomly selected alias, which
/// may or may not be registered in the transformation library.
void AddNodeNoise(const GeneratedDataset& ds, Rng* rng, QueryGraph* query);

/// Edge noise: replaces a random query edge's predicate with one of its
/// top-10 most similar predicates in the predicate semantic space.
void AddEdgeNoise(const GeneratedDataset& ds, Rng* rng, QueryGraph* query);

}  // namespace kgsearch

#endif  // KGSEARCH_GEN_WORKLOAD_H_
