#include "kg/delta_overlay.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

namespace kgsearch {

namespace {

uint64_t PackPair(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// ----- snapshot build helpers (operate on the commit-local clone) -----

NodeId ResolveNode(const DeltaSnapshot& s, const KnowledgeGraph& base,
                   std::string_view name) {
  NodeId id = base.FindNode(name);
  if (id != kInvalidNode) return id;
  auto it = s.name_index.find(name);
  return it == s.name_index.end() ? kInvalidNode : it->second;
}

PredicateId ResolvePredicate(const DeltaSnapshot& s,
                             const KnowledgeGraph& base,
                             std::string_view name) {
  PredicateId id = base.FindPredicate(name);
  if (id != kInvalidSymbol) return id;
  auto it = s.predicate_index.find(name);
  return it == s.predicate_index.end() ? kInvalidSymbol : it->second;
}

TypeId EnsureType(DeltaSnapshot& s, const KnowledgeGraph& base,
                  std::string_view name) {
  TypeId id = base.FindType(name);
  if (id != kInvalidSymbol) return id;
  auto it = s.type_index.find(name);
  if (it != s.type_index.end()) return it->second;
  id = static_cast<TypeId>(s.base_types + s.type_names.size());
  s.type_names.emplace_back(name);
  s.type_index.emplace(std::string(name), id);
  return id;
}

NodeId EnsureNode(DeltaSnapshot& s, const KnowledgeGraph& base,
                  std::string_view name, std::string_view type) {
  NodeId id = ResolveNode(s, base, name);
  if (id != kInvalidNode) return id;  // existing node keeps its type
  TypeId tid = EnsureType(s, base, type.empty() ? "Thing" : type);
  id = static_cast<NodeId>(s.base_nodes + s.node_names.size());
  s.node_names.emplace_back(name);
  s.node_types.push_back(tid);
  s.name_index.emplace(std::string(name), id);
  s.adjacency.emplace(id, std::vector<AdjEntry>{});
  // New ids are strictly increasing, so appending keeps the per-type
  // addition list ascending — the GraphView concat range stays sorted.
  s.type_members[tid].push_back(id);
  return id;
}

PredicateId EnsurePredicate(DeltaSnapshot& s, const KnowledgeGraph& base,
                            std::string_view name) {
  PredicateId id = ResolvePredicate(s, base, name);
  if (id != kInvalidSymbol) return id;
  id = static_cast<PredicateId>(s.base_predicates + s.predicate_names.size());
  s.predicate_names.emplace_back(name);
  s.predicate_index.emplace(std::string(name), id);
  return id;
}

/// Materializes the merged adjacency list for `u` (copying the base list on
/// first touch) and returns it.
std::vector<AdjEntry>& EnsureAdjacency(DeltaSnapshot& s,
                                       const KnowledgeGraph& base, NodeId u) {
  auto it = s.adjacency.find(u);
  if (it != s.adjacency.end()) return it->second;
  std::vector<AdjEntry> list;
  if (u < s.base_nodes) {
    std::span<const AdjEntry> from_base = base.Neighbors(u);
    list.assign(from_base.begin(), from_base.end());
  }
  return s.adjacency.emplace(u, std::move(list)).first->second;
}

/// Materializes the directed-edge predicate override list for (head, tail).
std::vector<PredicateId>& EnsureEdgeList(DeltaSnapshot& s,
                                         const KnowledgeGraph& base,
                                         NodeId head, NodeId tail) {
  const uint64_t key = PackPair(head, tail);
  auto it = s.edge_predicates.find(key);
  if (it != s.edge_predicates.end()) return it->second;
  std::vector<PredicateId> list;
  if (head < s.base_nodes && tail < s.base_nodes) {
    std::span<const PredicateId> from_base = base.TriplePredicates(head, tail);
    list.assign(from_base.begin(), from_base.end());
  }
  return s.edge_predicates.emplace(key, std::move(list)).first->second;
}

void InsertAdjSorted(std::vector<AdjEntry>& list, AdjEntry e) {
  auto pos = std::lower_bound(list.begin(), list.end(), e, AdjEntryLess);
  list.insert(pos, e);
}

void EraseAdjSorted(std::vector<AdjEntry>& list, AdjEntry e) {
  auto pos = std::lower_bound(list.begin(), list.end(), e, AdjEntryLess);
  KG_CHECK(pos != list.end() && *pos == e);
  list.erase(pos);
}

bool IsBaseTriple(const DeltaSnapshot& s, const KnowledgeGraph& base,
                  NodeId h, PredicateId p, NodeId t) {
  return h < s.base_nodes && t < s.base_nodes && p < s.base_predicates &&
         base.HasTriple(h, p, t);
}

Status ApplyAdd(DeltaSnapshot& s, const KnowledgeGraph& base,
                const Mutation& op) {
  NodeId h = EnsureNode(s, base, op.head, op.head_type);
  NodeId t = EnsureNode(s, base, op.tail, op.tail_type);
  PredicateId p = EnsurePredicate(s, base, op.predicate);
  if (s.HasTriple(h, p, t, base)) return Status::OK();  // idempotent

  InsertAdjSorted(EnsureAdjacency(s, base, h), AdjEntry{t, p, true});
  InsertAdjSorted(EnsureAdjacency(s, base, t), AdjEntry{h, p, false});
  EnsureEdgeList(s, base, h, t).push_back(p);

  const Triple triple{h, p, t};
  if (IsBaseTriple(s, base, h, p, t)) {
    // A retracted base triple coming back: un-retract, don't double-store.
    auto it = std::find(s.retracted.begin(), s.retracted.end(), triple);
    KG_CHECK(it != s.retracted.end());
    s.retracted.erase(it);
  } else {
    s.added.push_back(triple);
  }
  ++s.num_edges;
  return Status::OK();
}

Status ApplyRetract(DeltaSnapshot& s, const KnowledgeGraph& base,
                    const Mutation& op) {
  auto missing = [&op](const char* what) {
    return Status::NotFound("retract (" + op.head + ", " + op.predicate +
                            ", " + op.tail + "): " + what);
  };
  NodeId h = ResolveNode(s, base, op.head);
  if (h == kInvalidNode) return missing("unknown head node");
  NodeId t = ResolveNode(s, base, op.tail);
  if (t == kInvalidNode) return missing("unknown tail node");
  PredicateId p = ResolvePredicate(s, base, op.predicate);
  if (p == kInvalidSymbol) return missing("unknown predicate");
  if (!s.HasTriple(h, p, t, base)) return missing("triple does not exist");

  EraseAdjSorted(EnsureAdjacency(s, base, h), AdjEntry{t, p, true});
  EraseAdjSorted(EnsureAdjacency(s, base, t), AdjEntry{h, p, false});
  std::vector<PredicateId>& preds = EnsureEdgeList(s, base, h, t);
  auto pit = std::find(preds.begin(), preds.end(), p);
  KG_CHECK(pit != preds.end());
  preds.erase(pit);

  const Triple triple{h, p, t};
  if (IsBaseTriple(s, base, h, p, t)) {
    s.retracted.push_back(triple);
  } else {
    auto it = std::find(s.added.begin(), s.added.end(), triple);
    KG_CHECK(it != s.added.end());
    s.added.erase(it);
  }
  --s.num_edges;
  return Status::OK();
}

}  // namespace

DeltaOverlay::DeltaOverlay(const KnowledgeGraph* base) : base_(base) {
  KG_CHECK(base_ != nullptr && base_->finalized());
}

Result<uint64_t> DeltaOverlay::Commit(const MutationBatch& batch) {
  MutexLock lock(&mutex_);
  if (retired_) {
    return Status::FailedPrecondition(
        "delta overlay is retired (dataset compacting or replaced); "
        "re-resolve the dataset and retry");
  }
  if (batch.ops.empty()) {
    return Status::InvalidArgument("empty mutation batch");
  }

  // Clone-and-apply: readers keep the published snapshot; the batch lands
  // on a private copy that becomes visible only if every op succeeds.
  auto next = published_ ? std::make_shared<DeltaSnapshot>(*published_)
                         : std::make_shared<DeltaSnapshot>();
  if (!published_) {
    next->base_nodes = base_->NumNodes();
    next->base_types = base_->NumTypes();
    next->base_predicates = base_->NumPredicates();
    next->base_edges = base_->NumEdges();
    next->num_edges = base_->NumEdges();
  }

  for (const Mutation& op : batch.ops) {
    Status status = op.kind == Mutation::Kind::kAddTriple
                        ? ApplyAdd(*next, *base_, op)
                        : ApplyRetract(*next, *base_, op);
    if (!status.ok()) return status;  // whole batch rejected, nothing seen
  }

  next->epoch = (published_ ? published_->epoch : 0) + 1;
  published_ = std::move(next);
  return published_->epoch;
}

std::shared_ptr<const DeltaSnapshot> DeltaOverlay::Snapshot() const {
  MutexLock lock(&mutex_);
  return published_;
}

uint64_t DeltaOverlay::epoch() const {
  MutexLock lock(&mutex_);
  return published_ ? published_->epoch : 0;
}

std::shared_ptr<const DeltaSnapshot> DeltaOverlay::Retire() {
  MutexLock lock(&mutex_);
  retired_ = true;
  return published_;
}

void DeltaOverlay::Reopen() {
  MutexLock lock(&mutex_);
  retired_ = false;
}

bool DeltaOverlay::retired() const {
  MutexLock lock(&mutex_);
  return retired_;
}

Result<std::unique_ptr<KnowledgeGraph>> FoldDelta(const KnowledgeGraph& base,
                                                  const DeltaSnapshot* delta) {
  if (!base.finalized()) {
    return Status::FailedPrecondition("FoldDelta: base graph not finalized");
  }
  GraphView view(&base, delta);
  auto folded = std::make_unique<KnowledgeGraph>();

  // Dictionaries first, in view id order, so every id in the folded graph
  // means exactly what it meant in the view (predicate ids index the same
  // embedding rows; node ids keep their tie-break order).
  for (TypeId t = 0; t < view.NumTypes(); ++t) {
    TypeId got = folded->InternType(view.TypeName(t));
    KG_CHECK(got == t);
  }
  for (PredicateId p = 0; p < view.NumPredicates(); ++p) {
    PredicateId got = folded->InternPredicate(view.PredicateName(p));
    KG_CHECK(got == p);
  }
  for (NodeId u = 0; u < view.NumNodes(); ++u) {
    NodeId got = folded->AddNode(view.NodeName(u), view.NodeTypeName(u));
    KG_CHECK(got == u);
  }

  // Surviving base triples in base order, then delta adds in commit order.
  if (delta == nullptr || delta->retracted.empty()) {
    for (const Triple& tr : base.triples()) {
      folded->AddEdge(tr.head, view.PredicateName(tr.predicate), tr.tail);
    }
  } else {
    std::set<std::tuple<NodeId, PredicateId, NodeId>> retracted;
    for (const Triple& tr : delta->retracted) {
      retracted.emplace(tr.head, tr.predicate, tr.tail);
    }
    for (const Triple& tr : base.triples()) {
      if (retracted.contains({tr.head, tr.predicate, tr.tail})) continue;
      folded->AddEdge(tr.head, view.PredicateName(tr.predicate), tr.tail);
    }
  }
  if (delta != nullptr) {
    for (const Triple& tr : delta->added) {
      folded->AddEdge(tr.head, view.PredicateName(tr.predicate), tr.tail);
    }
  }

  folded->Finalize();
  KG_CHECK(folded->NumNodes() == view.NumNodes());
  KG_CHECK(folded->NumEdges() == view.NumEdges());
  return folded;
}

}  // namespace kgsearch
