// Live mutation for a finalized knowledge graph (ROADMAP item 3).
//
// A DeltaOverlay is the single writer-side entry point for post-finalize
// mutation. It keeps the base KnowledgeGraph untouched and accumulates an
// append-only delta — new nodes/types/predicates interned past the base id
// ranges, added triples, retracted base triples — which it publishes as
// immutable DeltaSnapshot instances (kg/graph_view.h), one per committed
// batch, RCU style:
//
//   writer:  Commit(batch)  = clone current snapshot → validate + apply the
//            whole batch on the clone → publish (epoch+1) under the overlay
//            mutex. A failed op rejects the WHOLE batch; readers never see
//            a half-applied batch, and the overlay state is unchanged.
//   reader:  Snapshot() pins the current snapshot via shared_ptr; a
//            GraphView(base, snapshot) then answers every read consistently
//            for as long as the reader holds the pin, no matter how many
//            commits land meanwhile.
//
// Commit cost is O(|delta|) per batch (the clone), not O(|base|). That is
// the deliberate trade: reads stay allocation-free spans on the hot path,
// and the delta is kept small by background compaction — FoldDelta() bakes
// base+delta into a fresh finalized KnowledgeGraph (bit-identical to a
// from-scratch build with the same id order), which the session layer
// swaps in blue-green (api/session.h) and the overlay starts empty again.
//
// Thread safety: Commit/Snapshot/Retire are safe to call concurrently from
// any threads. The overlay mutex is a leaf in the repo lock order (see
// util/mutex.h); nothing is acquired while it is held.
#ifndef KGSEARCH_KG_DELTA_OVERLAY_H_
#define KGSEARCH_KG_DELTA_OVERLAY_H_

#include <memory>
#include <string>
#include <vector>

#include "kg/graph.h"
#include "kg/graph_view.h"
#include "util/mutex.h"
#include "util/status.h"

namespace kgsearch {

/// One mutation. Nodes are addressed by unique name (the wire-level
/// identity); ids are an internal matter of the overlay.
struct Mutation {
  enum class Kind { kAddTriple, kRetractTriple };

  Kind kind = Kind::kAddTriple;
  std::string head;
  std::string predicate;
  std::string tail;
  /// Types used only when an add creates the node; empty means "Thing".
  /// An existing node keeps its type (same contract as AddNode).
  std::string head_type;
  std::string tail_type;

  static Mutation Add(std::string head, std::string predicate,
                      std::string tail, std::string head_type = "",
                      std::string tail_type = "") {
    return Mutation{Kind::kAddTriple, std::move(head), std::move(predicate),
                    std::move(tail), std::move(head_type),
                    std::move(tail_type)};
  }
  static Mutation Retract(std::string head, std::string predicate,
                          std::string tail) {
    return Mutation{Kind::kRetractTriple, std::move(head),
                    std::move(predicate), std::move(tail), "", ""};
  }
};

/// An atomically applied group of mutations. Ops see each other: a batch
/// may add a triple and retract it again, or create a node in op 1 that
/// op 2 links to.
struct MutationBatch {
  std::vector<Mutation> ops;
};

/// Writer side of the delta; see file comment for the protocol.
class DeltaOverlay {
 public:
  /// `base` must be finalized and must outlive the overlay.
  explicit DeltaOverlay(const KnowledgeGraph* base);

  DeltaOverlay(const DeltaOverlay&) = delete;
  DeltaOverlay& operator=(const DeltaOverlay&) = delete;

  /// Validates and applies the whole batch, then publishes a new snapshot
  /// and returns its epoch. All-or-nothing: on any error (kNotFound for
  /// retracting a triple that does not exist, kFailedPrecondition when the
  /// overlay is retired) nothing is published and the overlay is unchanged.
  /// Adding a triple that already exists is an idempotent no-op within an
  /// otherwise valid batch; re-adding a retracted base triple un-retracts
  /// it.
  [[nodiscard]] Result<uint64_t> Commit(const MutationBatch& batch);

  /// Pins the latest published snapshot; null when nothing has been
  /// committed yet (epoch 0 — a plain base view).
  std::shared_ptr<const DeltaSnapshot> Snapshot() const;

  /// Latest published epoch (0 before the first commit).
  uint64_t epoch() const;

  const KnowledgeGraph& base() const { return *base_; }

  // ----- compaction protocol (api/session.h drives this) -----

  /// Permanently stops writes (further Commits fail kFailedPrecondition)
  /// and returns the final snapshot to fold. Idempotent. Callers fold
  /// WITHOUT holding any overlay lock — retirement guarantees the snapshot
  /// can no longer change.
  std::shared_ptr<const DeltaSnapshot> Retire();

  /// Re-opens a retired overlay (compaction failed and the dataset keeps
  /// serving the old state). No-op when not retired.
  void Reopen();

  bool retired() const;

 private:
  const KnowledgeGraph* const base_;
  mutable Mutex mutex_;
  bool retired_ GUARDED_BY(mutex_) = false;
  std::shared_ptr<const DeltaSnapshot> published_ GUARDED_BY(mutex_);
};

/// Bakes base + delta into a fresh finalized KnowledgeGraph. Dictionary id
/// order is preserved exactly (types, predicates, then nodes in view id
/// order; surviving base triples in base order, then delta adds in commit
/// order), so the result is byte-identical — kgpack and all — to a graph
/// built from scratch with the same recipe, and every surviving id keeps
/// its meaning (embedding rows, type ids). `delta` may be null (pure
/// rebuild of the base).
Result<std::unique_ptr<KnowledgeGraph>> FoldDelta(const KnowledgeGraph& base,
                                                  const DeltaSnapshot* delta);

}  // namespace kgsearch

#endif  // KGSEARCH_KG_DELTA_OVERLAY_H_
