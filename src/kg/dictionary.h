// String interning dictionary mapping strings <-> dense uint32 ids.
#ifndef KGSEARCH_KG_DICTIONARY_H_
#define KGSEARCH_KG_DICTIONARY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/string_util.h"

namespace kgsearch {

/// Dense id for an interned string; scoped per Dictionary instance.
using SymbolId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

/// Bidirectional string <-> id mapping with stable ids.
///
/// Ids are assigned densely in insertion order, so they double as indexes
/// into side arrays (e.g. predicate embedding vectors).
///
/// Storage is a chunked character arena: each interned string is copied once
/// into a large heap chunk and addressed by a string_view, instead of one
/// heap allocation per symbol. Chunks are never reallocated or freed before
/// the dictionary, so views returned by Get() stay valid for the
/// dictionary's lifetime (and across moves). The arena layout also makes
/// bulk (de)serialization a flat copy: see FromFlat and kg/snapshot.h.
class Dictionary {
 public:
  Dictionary() = default;

  // Views point into heap chunks owned via unique_ptr, so moving is safe
  // (views stay valid); copying is not implemented.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of `s`, interning it if unseen.
  SymbolId Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    std::string_view stored = Append(s);
    SymbolId id = static_cast<SymbolId>(views_.size());
    views_.push_back(stored);
    index_.emplace(stored, id);
    return id;
  }

  /// Returns the id of `s` or kInvalidSymbol when not interned.
  SymbolId Lookup(std::string_view s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kInvalidSymbol : it->second;
  }

  /// True when `s` has been interned.
  bool Contains(std::string_view s) const {
    return index_.find(s) != index_.end();
  }

  /// Returns the string for a valid id.
  std::string_view Get(SymbolId id) const {
    KG_CHECK(id < views_.size());
    return views_[id];
  }

  size_t size() const { return views_.size(); }

  /// Total interned bytes (the arena payload; offsets/index excluded).
  size_t payload_bytes() const { return payload_bytes_; }

  /// Restores a dictionary from its flat serialized form: `offsets` holds
  /// size()+1 cumulative byte offsets into `blob` (offsets[0] == 0,
  /// offsets.back() == blob.size()), symbol i being
  /// blob[offsets[i]..offsets[i+1]). One arena allocation, one bulk copy,
  /// and a pre-sized index; malformed offsets or duplicate symbols are
  /// ParseErrors, so a restored dictionary is always identical to one built
  /// by interning the same strings in order.
  static Result<Dictionary> FromFlat(std::string_view blob,
                                     const std::vector<uint64_t>& offsets) {
    if (offsets.empty() || offsets.front() != 0 ||
        offsets.back() != blob.size()) {
      return Status::ParseError("dictionary offsets do not span the blob");
    }
    const size_t count = offsets.size() - 1;
    if (count > kInvalidSymbol) {
      return Status::ParseError("dictionary symbol count overflows SymbolId");
    }
    Dictionary d;
    d.views_.reserve(count);
    d.index_.reserve(count);
    const char* base = nullptr;
    if (!blob.empty()) {
      auto& chunk = d.chunks_.emplace_back();
      chunk.data = std::make_unique<char[]>(blob.size());
      chunk.used = chunk.capacity = blob.size();
      std::memcpy(chunk.data.get(), blob.data(), blob.size());
      base = chunk.data.get();
    }
    d.payload_bytes_ = blob.size();
    for (size_t i = 0; i < count; ++i) {
      if (offsets[i] > offsets[i + 1]) {
        return Status::ParseError("dictionary offsets are not monotonic");
      }
      const size_t len = offsets[i + 1] - offsets[i];
      std::string_view view =
          len == 0 ? std::string_view()
                   : std::string_view(base + offsets[i], len);
      auto [it, inserted] = d.index_.emplace(view, static_cast<SymbolId>(i));
      (void)it;
      if (!inserted) {
        return Status::ParseError("duplicate dictionary symbol");
      }
      d.views_.push_back(view);
    }
    return d;
  }

 private:
  /// Arena chunks start at 64 KiB; oversized strings get a dedicated chunk.
  static constexpr size_t kMinChunkBytes = size_t{1} << 16;

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t used = 0;
    size_t capacity = 0;
  };

  /// Copies `s` into the arena and returns the stable stored view.
  std::string_view Append(std::string_view s) {
    payload_bytes_ += s.size();
    if (s.empty()) return {};
    if (chunks_.empty() ||
        chunks_.back().capacity - chunks_.back().used < s.size()) {
      auto& chunk = chunks_.emplace_back();
      chunk.capacity = s.size() > kMinChunkBytes ? s.size() : kMinChunkBytes;
      chunk.data = std::make_unique<char[]>(chunk.capacity);
    }
    Chunk& chunk = chunks_.back();
    char* dst = chunk.data.get() + chunk.used;
    std::memcpy(dst, s.data(), s.size());
    chunk.used += s.size();
    return std::string_view(dst, s.size());
  }

  std::vector<Chunk> chunks_;
  std::vector<std::string_view> views_;  // per id, pointing into chunks_
  size_t payload_bytes_ = 0;
  std::unordered_map<std::string_view, SymbolId, StringViewHash, StringViewEq>
      index_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_KG_DICTIONARY_H_
