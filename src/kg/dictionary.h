// String interning dictionary mapping strings <-> dense uint32 ids.
#ifndef KGSEARCH_KG_DICTIONARY_H_
#define KGSEARCH_KG_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace kgsearch {

/// Dense id for an interned string; scoped per Dictionary instance.
using SymbolId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

/// Bidirectional string <-> id mapping with stable ids.
///
/// Ids are assigned densely in insertion order, so they double as indexes
/// into side arrays (e.g. predicate embedding vectors).
class Dictionary {
 public:
  Dictionary() = default;

  // The lookup map stores views into heap-allocated strings owned via
  // unique_ptr, so moving is safe (views stay valid); copying is not
  // implemented.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of `s`, interning it if unseen.
  SymbolId Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    SymbolId id = static_cast<SymbolId>(strings_.size());
    strings_.push_back(std::make_unique<std::string>(s));
    index_.emplace(std::string_view(*strings_.back()), id);
    return id;
  }

  /// Returns the id of `s` or kInvalidSymbol when not interned.
  SymbolId Lookup(std::string_view s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kInvalidSymbol : it->second;
  }

  /// True when `s` has been interned.
  bool Contains(std::string_view s) const {
    return index_.find(s) != index_.end();
  }

  /// Returns the string for a valid id.
  std::string_view Get(SymbolId id) const {
    KG_CHECK(id < strings_.size());
    return *strings_[id];
  }

  size_t size() const { return strings_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // unique_ptr keeps string storage stable so index_ keys stay valid.
  std::vector<std::unique_ptr<std::string>> strings_;
  std::unordered_map<std::string_view, SymbolId, Hash, Eq> index_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_KG_DICTIONARY_H_
