#include "kg/graph.h"

#include <algorithm>

namespace kgsearch {

namespace {
uint64_t PackPair(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

NodeId KnowledgeGraph::AddNode(std::string_view name, std::string_view type) {
  KG_CHECK(!finalized_);
  SymbolId existing = names_.Lookup(name);
  if (existing != kInvalidSymbol) return existing;
  NodeId id = names_.Intern(name);
  KG_CHECK(id == node_types_.size());
  node_types_.push_back(types_.Intern(type));
  return id;
}

void KnowledgeGraph::AddEdge(NodeId head, std::string_view predicate,
                             NodeId tail) {
  KG_CHECK(!finalized_);
  KG_CHECK(head < node_types_.size() && tail < node_types_.size());
  PredicateId p = predicates_.Intern(predicate);
  uint64_t key = PackPair(head, tail);
  auto& preds = edge_index_[key];
  if (std::find(preds.begin(), preds.end(), p) != preds.end()) return;
  preds.push_back(p);
  triples_.push_back(Triple{head, p, tail});
}

void KnowledgeGraph::AddTriple(std::string_view head_name,
                               std::string_view predicate,
                               std::string_view tail_name) {
  NodeId h = AddNode(head_name, "Thing");
  NodeId t = AddNode(tail_name, "Thing");
  AddEdge(h, predicate, t);
}

void KnowledgeGraph::Finalize() {
  KG_CHECK(!finalized_);
  const size_t n = node_types_.size();

  // Undirected CSR: each stored triple contributes one forward entry at the
  // head and one reverse entry at the tail.
  std::vector<uint64_t> degree(n + 1, 0);
  for (const Triple& t : triples_) {
    ++degree[t.head];
    ++degree[t.tail];
  }
  adj_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) adj_offsets_[i + 1] = adj_offsets_[i] + degree[i];
  adj_.resize(adj_offsets_[n]);
  std::vector<uint64_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (const Triple& t : triples_) {
    adj_[cursor[t.head]++] = AdjEntry{t.tail, t.predicate, true};
    adj_[cursor[t.tail]++] = AdjEntry{t.head, t.predicate, false};
  }
  // Deterministic neighbor order: by neighbor id, then predicate.
  for (size_t u = 0; u < n; ++u) {
    std::sort(adj_.begin() + static_cast<int64_t>(adj_offsets_[u]),
              adj_.begin() + static_cast<int64_t>(adj_offsets_[u + 1]),
              [](const AdjEntry& a, const AdjEntry& b) {
                if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                if (a.predicate != b.predicate) return a.predicate < b.predicate;
                return a.forward < b.forward;
              });
  }

  // Type index.
  const size_t num_types = types_.size();
  std::vector<uint64_t> type_count(num_types + 1, 0);
  for (TypeId t : node_types_) ++type_count[t];
  type_offsets_.assign(num_types + 1, 0);
  for (size_t i = 0; i < num_types; ++i) {
    type_offsets_[i + 1] = type_offsets_[i] + type_count[i];
  }
  type_members_.resize(n);
  std::vector<uint64_t> tcursor(type_offsets_.begin(), type_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    type_members_[tcursor[node_types_[u]]++] = u;
  }

  finalized_ = true;
}

bool KnowledgeGraph::HasTriple(NodeId head, PredicateId predicate,
                               NodeId tail) const {
  auto it = edge_index_.find(PackPair(head, tail));
  if (it == edge_index_.end()) return false;
  const auto& preds = it->second;
  return std::find(preds.begin(), preds.end(), predicate) != preds.end();
}

}  // namespace kgsearch
