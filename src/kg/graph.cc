#include "kg/graph.h"

#include <algorithm>
#include <memory>
#include <tuple>

namespace kgsearch {

namespace {
uint64_t PackPair(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

NodeId KnowledgeGraph::AddNode(std::string_view name, std::string_view type) {
  KG_CHECK(!finalized_);
  SymbolId existing = names_.Lookup(name);
  if (existing != kInvalidSymbol) return existing;
  NodeId id = names_.Intern(name);
  KG_CHECK(id == node_types_.size());
  node_types_.push_back(types_.Intern(type));
  return id;
}

void KnowledgeGraph::AddEdge(NodeId head, std::string_view predicate,
                             NodeId tail) {
  KG_CHECK(!finalized_);
  KG_CHECK(head < node_types_.size() && tail < node_types_.size());
  PredicateId p = predicates_.Intern(predicate);
  uint64_t key = PackPair(head, tail);
  auto& preds = edge_index_[key];
  if (std::find(preds.begin(), preds.end(), p) != preds.end()) return;
  preds.push_back(p);
  triples_.push_back(Triple{head, p, tail});
}

Status KnowledgeGraph::AddTriple(std::string_view head_name,
                                 std::string_view predicate,
                                 std::string_view tail_name) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "AddTriple after Finalize(): the base graph is immutable; mutate "
        "through a DeltaOverlay (kg/delta_overlay.h) instead");
  }
  NodeId h = AddNode(head_name, "Thing");
  NodeId t = AddNode(tail_name, "Thing");
  AddEdge(h, predicate, t);
  return Status::OK();
}

void KnowledgeGraph::Finalize() {
  KG_CHECK(!finalized_);
  const size_t n = node_types_.size();

  // Undirected CSR: each stored triple contributes one forward entry at the
  // head and one reverse entry at the tail.
  std::vector<uint64_t> degree(n + 1, 0);
  for (const Triple& t : triples_) {
    ++degree[t.head];
    ++degree[t.tail];
  }
  adj_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) adj_offsets_[i + 1] = adj_offsets_[i] + degree[i];
  adj_.resize(adj_offsets_[n]);
  std::vector<uint64_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (const Triple& t : triples_) {
    adj_[cursor[t.head]++] = AdjEntry{t.tail, t.predicate, true};
    adj_[cursor[t.tail]++] = AdjEntry{t.head, t.predicate, false};
  }
  // Deterministic neighbor order (the canonical AdjEntryLess order).
  for (size_t u = 0; u < n; ++u) {
    std::sort(adj_.begin() + static_cast<int64_t>(adj_offsets_[u]),
              adj_.begin() + static_cast<int64_t>(adj_offsets_[u + 1]),
              AdjEntryLess);
  }

  // Type index.
  const size_t num_types = types_.size();
  std::vector<uint64_t> type_count(num_types + 1, 0);
  for (TypeId t : node_types_) ++type_count[t];
  type_offsets_.assign(num_types + 1, 0);
  for (size_t i = 0; i < num_types; ++i) {
    type_offsets_[i + 1] = type_offsets_[i] + type_count[i];
  }
  type_members_.resize(n);
  std::vector<uint64_t> tcursor(type_offsets_.begin(), type_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    type_members_[tcursor[node_types_[u]]++] = u;
  }

  finalized_ = true;
}

Result<std::unique_ptr<KnowledgeGraph>> KnowledgeGraph::FromFlatParts(
    FlatParts parts) {
  const size_t n = parts.names.size();
  const size_t num_types = parts.types.size();
  const size_t num_preds = parts.predicates.size();
  const size_t num_edges = parts.triples.size();

  auto fail = [](const char* what) -> Status {
    return Status::ParseError(std::string("graph restore: ") + what);
  };

  if (parts.node_types.size() != n) return fail("node type count != nodes");
  for (TypeId t : parts.node_types) {
    if (t >= num_types) return fail("node type id out of range");
  }
  std::unordered_map<uint64_t, std::vector<PredicateId>> edge_index;
  edge_index.reserve(parts.triples.size());
  for (const Triple& t : parts.triples) {
    if (t.head >= n || t.tail >= n) return fail("triple node out of range");
    if (t.predicate >= num_preds) {
      return fail("triple predicate out of range");
    }
    auto& preds = edge_index[PackPair(t.head, t.tail)];
    if (std::find(preds.begin(), preds.end(), t.predicate) != preds.end()) {
      return fail("duplicate triple");
    }
    preds.push_back(t.predicate);
  }

  // CSR adjacency: offsets must be a monotone prefix-sum ending at 2|E|,
  // per-node degrees must match the triples, each list must be strictly
  // sorted the way Finalize() sorts (neighbor, predicate, forward), and
  // every entry must correspond to a stored triple in the direction its
  // flag claims. Degrees matching + strictness + per-entry triple existence
  // together force the adjacency to be exactly the triples' CSR, so a
  // checksum-valid but inconsistent snapshot cannot install a graph whose
  // index contradicts its triple set.
  if (parts.adj_offsets.size() != n + 1 || parts.adj_offsets[0] != 0 ||
      parts.adj_offsets[n] != parts.adj.size() ||
      parts.adj.size() != 2 * num_edges) {
    return fail("adjacency offsets malformed");
  }
  std::vector<uint64_t> degree(n, 0);
  for (const Triple& t : parts.triples) {
    ++degree[t.head];
    ++degree[t.tail];
  }
  for (size_t u = 0; u < n; ++u) {
    if (parts.adj_offsets[u] > parts.adj_offsets[u + 1]) {
      return fail("adjacency offsets not monotonic");
    }
    if (parts.adj_offsets[u + 1] - parts.adj_offsets[u] != degree[u]) {
      return fail("adjacency degree mismatch");
    }
    for (uint64_t i = parts.adj_offsets[u]; i < parts.adj_offsets[u + 1];
         ++i) {
      const AdjEntry& e = parts.adj[i];
      if (e.neighbor >= n) return fail("adjacency neighbor out of range");
      if (e.predicate >= num_preds) {
        return fail("adjacency predicate out of range");
      }
      if (i > parts.adj_offsets[u]) {
        const AdjEntry& prev = parts.adj[i - 1];
        if (std::tie(prev.neighbor, prev.predicate, prev.forward) >=
            std::tie(e.neighbor, e.predicate, e.forward)) {
          return fail("adjacency list not strictly sorted");
        }
      }
      const uint64_t key = e.forward
                               ? PackPair(static_cast<NodeId>(u), e.neighbor)
                               : PackPair(e.neighbor, static_cast<NodeId>(u));
      auto it = edge_index.find(key);
      if (it == edge_index.end() ||
          std::find(it->second.begin(), it->second.end(), e.predicate) ==
              it->second.end()) {
        return fail("adjacency entry has no matching triple");
      }
    }
  }

  // Type index: offsets partition the node set and every member has the
  // type its bucket claims.
  if (parts.type_offsets.size() != num_types + 1 ||
      parts.type_offsets[0] != 0 ||
      parts.type_offsets[num_types] != parts.type_members.size() ||
      parts.type_members.size() != n) {
    return fail("type index malformed");
  }
  for (size_t t = 0; t < num_types; ++t) {
    if (parts.type_offsets[t] > parts.type_offsets[t + 1]) {
      return fail("type offsets not monotonic");
    }
    for (uint64_t i = parts.type_offsets[t]; i < parts.type_offsets[t + 1];
         ++i) {
      NodeId u = parts.type_members[i];
      if (u >= n || parts.node_types[u] != t) {
        return fail("type member mismatch");
      }
    }
  }

  auto graph = std::make_unique<KnowledgeGraph>();
  graph->names_ = std::move(parts.names);
  graph->types_ = std::move(parts.types);
  graph->predicates_ = std::move(parts.predicates);
  graph->node_types_ = std::move(parts.node_types);
  graph->triples_ = std::move(parts.triples);
  graph->adj_offsets_ = std::move(parts.adj_offsets);
  graph->adj_ = std::move(parts.adj);
  graph->type_offsets_ = std::move(parts.type_offsets);
  graph->type_members_ = std::move(parts.type_members);
  graph->edge_index_ = std::move(edge_index);
  graph->finalized_ = true;
  return graph;
}

bool KnowledgeGraph::HasTriple(NodeId head, PredicateId predicate,
                               NodeId tail) const {
  auto it = edge_index_.find(PackPair(head, tail));
  if (it == edge_index_.end()) return false;
  const auto& preds = it->second;
  return std::find(preds.begin(), preds.end(), predicate) != preds.end();
}

std::span<const PredicateId> KnowledgeGraph::TriplePredicates(
    NodeId head, NodeId tail) const {
  auto it = edge_index_.find(PackPair(head, tail));
  if (it == edge_index_.end()) return {};
  return it->second;
}

}  // namespace kgsearch
