// In-memory knowledge graph store (Definition 1).
//
// Nodes carry a unique name and a type; directed edges carry a predicate.
// After Finalize(), an undirected CSR adjacency index supports the path
// searches of Section V (paths ignore edge directionality, paper footnote 1),
// while the stored direction is preserved for exact-match baselines and for
// TransE training, which needs (head, relation, tail) orientation.
#ifndef KGSEARCH_KG_GRAPH_H_
#define KGSEARCH_KG_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/dictionary.h"
#include "util/status.h"

namespace kgsearch {

using NodeId = uint32_t;
using PredicateId = uint32_t;
using TypeId = uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// A stored directed edge (head --predicate--> tail).
struct Triple {
  NodeId head;
  PredicateId predicate;
  NodeId tail;

  bool operator==(const Triple&) const = default;
};

/// One entry in a node's undirected adjacency list.
struct AdjEntry {
  NodeId neighbor;
  PredicateId predicate;
  /// True when the stored edge is (node -> neighbor); false for reverse.
  bool forward;

  bool operator==(const AdjEntry&) const = default;
};

/// The canonical adjacency-list order: by neighbor id, then predicate, then
/// direction flag. Finalize(), FromFlatParts validation, and the delta
/// overlay's merged lists all sort with this one comparator, so a merged
/// overlay list is bit-identical to the list a from-scratch Finalize()
/// would build.
inline bool AdjEntryLess(const AdjEntry& a, const AdjEntry& b) {
  if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
  if (a.predicate != b.predicate) return a.predicate < b.predicate;
  return a.forward < b.forward;
}

/// Immutable-after-finalize knowledge graph with CSR adjacency and
/// type/name indexes.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;
  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;

  // ----- construction -----

  /// Adds (or returns the existing) node with the given unique name.
  /// The type of an existing node is not changed.
  NodeId AddNode(std::string_view name, std::string_view type);

  /// Adds a directed edge. Duplicate (head, predicate, tail) triples are
  /// stored once. Must be called before Finalize().
  void AddEdge(NodeId head, std::string_view predicate, NodeId tail);

  /// Convenience: adds nodes by name (type "Thing" if new) and the edge.
  /// kFailedPrecondition after Finalize(): the base graph is immutable —
  /// post-finalize mutation goes through the delta overlay
  /// (kg/delta_overlay.h), never through this entry point.
  Status AddTriple(std::string_view head_name, std::string_view predicate,
                   std::string_view tail_name);

  /// Builds CSR adjacency and secondary indexes. Must be called exactly once,
  /// after which the graph is immutable.
  void Finalize();

  bool finalized() const { return finalized_; }

  // ----- basic accessors -----

  size_t NumNodes() const { return node_types_.size(); }
  size_t NumEdges() const { return triples_.size(); }
  size_t NumPredicates() const { return predicates_.size(); }
  size_t NumTypes() const { return types_.size(); }

  std::string_view NodeName(NodeId u) const { return names_.Get(u); }
  TypeId NodeType(NodeId u) const {
    KG_CHECK(u < node_types_.size());
    return node_types_[u];
  }
  std::string_view NodeTypeName(NodeId u) const {
    return types_.Get(NodeType(u));
  }
  std::string_view PredicateName(PredicateId p) const {
    return predicates_.Get(p);
  }
  std::string_view TypeName(TypeId t) const { return types_.Get(t); }

  /// Node lookup by unique name; kInvalidNode when absent.
  NodeId FindNode(std::string_view name) const {
    SymbolId id = names_.Lookup(name);
    return id == kInvalidSymbol ? kInvalidNode : id;
  }
  /// Predicate id by name; kInvalidSymbol when absent.
  PredicateId FindPredicate(std::string_view name) const {
    return predicates_.Lookup(name);
  }
  /// Type id by name; kInvalidSymbol when absent.
  TypeId FindType(std::string_view name) const { return types_.Lookup(name); }

  /// All stored directed triples, in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  // ----- finalized-only indexes -----

  /// Undirected adjacency of u (both edge directions). Requires Finalize().
  std::span<const AdjEntry> Neighbors(NodeId u) const {
    KG_CHECK(finalized_ && u < node_types_.size());
    return std::span<const AdjEntry>(adj_.data() + adj_offsets_[u],
                                     adj_offsets_[u + 1] - adj_offsets_[u]);
  }

  /// Undirected degree of u. Requires Finalize().
  size_t Degree(NodeId u) const { return Neighbors(u).size(); }

  /// All nodes of a given type. Requires Finalize().
  std::span<const NodeId> NodesOfType(TypeId t) const {
    KG_CHECK(finalized_);
    if (t >= type_offsets_.size() - 1) return {};
    return std::span<const NodeId>(
        type_members_.data() + type_offsets_[t],
        type_offsets_[t + 1] - type_offsets_[t]);
  }

  /// True when a directed edge (head, predicate, tail) exists.
  /// Requires Finalize().
  bool HasTriple(NodeId head, PredicateId predicate, NodeId tail) const;

  /// Predicates of all stored directed edges (head -> tail); empty when the
  /// pair has no edge. Used by the delta overlay to seed its per-pair
  /// override lists. Requires Finalize().
  std::span<const PredicateId> TriplePredicates(NodeId head,
                                                NodeId tail) const;

  /// Average undirected degree. Requires Finalize().
  double AverageDegree() const {
    return NumNodes() == 0
               ? 0.0
               : 2.0 * static_cast<double>(NumEdges()) /
                     static_cast<double>(NumNodes());
  }

  /// Interns a type name (usable before Finalize, e.g. by generators).
  TypeId InternType(std::string_view type) { return types_.Intern(type); }
  /// Interns a predicate name.
  PredicateId InternPredicate(std::string_view predicate) {
    return predicates_.Intern(predicate);
  }

  // ----- flat storage (kg/snapshot.h) -----

  const Dictionary& names_dict() const { return names_; }
  const Dictionary& types_dict() const { return types_; }
  const Dictionary& predicates_dict() const { return predicates_; }
  const std::vector<TypeId>& node_types() const { return node_types_; }

  /// CSR arrays; require Finalize().
  std::span<const uint64_t> adj_offsets() const {
    KG_CHECK(finalized_);
    return adj_offsets_;
  }
  std::span<const AdjEntry> adjacency() const {
    KG_CHECK(finalized_);
    return adj_;
  }
  std::span<const uint64_t> type_offsets() const {
    KG_CHECK(finalized_);
    return type_offsets_;
  }
  std::span<const NodeId> type_members() const {
    KG_CHECK(finalized_);
    return type_members_;
  }

  /// Everything a finalized graph is made of, in flat-buffer form. Produced
  /// by the kgpack decoder; consumed by FromFlatParts.
  struct FlatParts {
    Dictionary names;
    Dictionary types;
    Dictionary predicates;
    std::vector<TypeId> node_types;
    std::vector<Triple> triples;
    std::vector<uint64_t> adj_offsets;
    std::vector<AdjEntry> adj;
    std::vector<uint64_t> type_offsets;
    std::vector<NodeId> type_members;
  };

  /// Restores a finalized graph by installing prebuilt CSR/index vectors —
  /// no re-sorting, no re-parsing; only the directed-edge hash index is
  /// rebuilt (O(|E|)). Every structural invariant Finalize() would have
  /// established is re-checked; violations are ParseErrors, never aborts,
  /// so corrupt snapshots cannot produce a graph that later trips KG_CHECK.
  static Result<std::unique_ptr<KnowledgeGraph>> FromFlatParts(
      FlatParts parts);

 private:
  Dictionary names_;       // node id == name symbol id
  Dictionary types_;
  Dictionary predicates_;
  std::vector<TypeId> node_types_;
  std::vector<Triple> triples_;

  bool finalized_ = false;
  std::vector<uint64_t> adj_offsets_;  // size NumNodes()+1
  std::vector<AdjEntry> adj_;
  std::vector<uint64_t> type_offsets_;  // size NumTypes()+1
  std::vector<NodeId> type_members_;
  // Directed triple existence check: key packs (head, tail), value lists
  // predicates. Sized ~NumEdges.
  std::unordered_map<uint64_t, std::vector<PredicateId>> edge_index_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_KG_GRAPH_H_
