// Snapshot read view over a base graph plus an optional delta overlay.
//
// The base KnowledgeGraph stays immutable after Finalize(); live mutation
// (ROADMAP item 3) appends to a DeltaOverlay (kg/delta_overlay.h) which
// publishes immutable DeltaSnapshot instances, epoch by epoch. A GraphView
// pairs the base with one pinned snapshot and answers every read the query
// engines need — adjacency, degrees, type membership, dictionary lookups,
// triple existence — with the merged result, so a query sees one consistent
// graph for its whole lifetime no matter how many batches commit while it
// runs.
//
// Design invariants:
//  - Delta node/type/predicate ids continue the base id ranges, so a view
//    id is usable wherever a base id was (embedding rows, tie-breaks).
//  - Per-node adjacency in the snapshot is FULLY MERGED (base entries minus
//    retractions plus additions, in canonical AdjEntryLess order), so
//    Neighbors() still returns a contiguous std::span with zero per-read
//    merge cost — the merge price is paid once, at commit time.
//  - GraphView is a two-pointer value type; it is cheap to copy and carries
//    no ownership. Whoever builds one must keep the base graph and the
//    pinned snapshot (shared_ptr) alive for the view's lifetime.
#ifndef KGSEARCH_KG_GRAPH_VIEW_H_
#define KGSEARCH_KG_GRAPH_VIEW_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/graph.h"

namespace kgsearch {

namespace graph_view_internal {
/// Transparent string hashing so snapshot indexes can be probed with a
/// string_view without materializing a std::string.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};
template <typename V>
using StringMap = std::unordered_map<std::string, V, StringHash, StringEq>;
}  // namespace graph_view_internal

/// One immutable published state of a delta overlay. Built exclusively by
/// DeltaOverlay::Commit (clone → validate → apply → publish); readers hold
/// it via shared_ptr<const DeltaSnapshot> and never see a half-applied
/// batch. All fields are logically const after publication.
struct DeltaSnapshot {
  /// Monotone per-overlay commit counter; epoch 0 is "no delta" (a null
  /// snapshot), the first commit publishes epoch 1.
  uint64_t epoch = 0;

  /// Base dictionary sizes captured at overlay creation. Ids below these
  /// bounds resolve in the base graph; ids at or above resolve in the
  /// extension vectors below (id - base_* indexes them).
  size_t base_nodes = 0;
  size_t base_types = 0;
  size_t base_predicates = 0;
  size_t base_edges = 0;

  // ----- dictionary extensions (append-only across commits) -----
  std::vector<std::string> node_names;
  std::vector<TypeId> node_types;  // parallel to node_names
  std::vector<std::string> type_names;
  std::vector<std::string> predicate_names;
  graph_view_internal::StringMap<NodeId> name_index;
  graph_view_internal::StringMap<TypeId> type_index;
  graph_view_internal::StringMap<PredicateId> predicate_index;

  // ----- merged structure for every node the delta touches -----
  /// Fully merged adjacency (canonical AdjEntryLess order) for each node
  /// whose neighborhood differs from the base. New nodes always have an
  /// entry (possibly empty after retractions).
  std::unordered_map<NodeId, std::vector<AdjEntry>> adjacency;
  /// Nodes the delta added to each type, ascending (delta node ids only —
  /// base type membership never changes, so concatenating the base span
  /// with this list keeps the whole membership sorted).
  std::unordered_map<TypeId, std::vector<NodeId>> type_members;
  /// Directed-edge predicate override per touched (head, tail) pair; the
  /// key packs head<<32|tail. A present entry REPLACES the base list.
  std::unordered_map<uint64_t, std::vector<PredicateId>> edge_predicates;

  // ----- net effect on the triple set (drives compaction + differential) --
  /// Delta-born triples currently live, in first-add order.
  std::vector<Triple> added;
  /// Base triples currently retracted.
  std::vector<Triple> retracted;
  /// Net edge count of the merged graph.
  size_t num_edges = 0;

  bool HasTriple(NodeId head, PredicateId predicate, NodeId tail,
                 const KnowledgeGraph& base) const {
    auto it = edge_predicates.find((static_cast<uint64_t>(head) << 32) | tail);
    if (it != edge_predicates.end()) {
      for (PredicateId p : it->second) {
        if (p == predicate) return true;
      }
      return false;
    }
    return head < base_nodes && tail < base_nodes &&
           base.HasTriple(head, predicate, tail);
  }
};

/// Concatenation of the base type-membership span and the delta's addition
/// list; iterable like a single sorted range of NodeIds.
class TypeMemberRange {
 public:
  TypeMemberRange() = default;
  TypeMemberRange(std::span<const NodeId> base, std::span<const NodeId> extra)
      : base_(base), extra_(extra) {}

  class Iterator {
   public:
    using value_type = NodeId;
    using difference_type = ptrdiff_t;
    Iterator() = default;
    Iterator(const TypeMemberRange* r, size_t i) : range_(r), index_(i) {}
    NodeId operator*() const { return (*range_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator old = *this;
      ++index_;
      return old;
    }
    bool operator==(const Iterator&) const = default;

   private:
    const TypeMemberRange* range_ = nullptr;
    size_t index_ = 0;
  };

  size_t size() const { return base_.size() + extra_.size(); }
  bool empty() const { return size() == 0; }
  NodeId operator[](size_t i) const {
    return i < base_.size() ? base_[i] : extra_[i - base_.size()];
  }
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

  std::span<const NodeId> base_span() const { return base_; }
  std::span<const NodeId> extra_span() const { return extra_; }

 private:
  std::span<const NodeId> base_;
  std::span<const NodeId> extra_;
};

/// A consistent read view: base graph + pinned delta snapshot (or none).
/// Implicitly constructible from a bare KnowledgeGraph so legacy call sites
/// that pass `*graph_` keep compiling and behaving identically.
class GraphView {
 public:
  GraphView(const KnowledgeGraph& base)  // NOLINT(google-explicit-constructor)
      : base_(&base) {}
  GraphView(const KnowledgeGraph* base, const DeltaSnapshot* delta)
      : base_(base), delta_(delta) {}

  const KnowledgeGraph& base() const { return *base_; }
  const DeltaSnapshot* delta() const { return delta_; }
  /// Snapshot identity for cache stamping: 0 = pristine base.
  uint64_t epoch() const { return delta_ ? delta_->epoch : 0; }

  // ----- sizes -----

  size_t NumNodes() const {
    return base_->NumNodes() + (delta_ ? delta_->node_names.size() : 0);
  }
  size_t NumEdges() const {
    return delta_ ? delta_->num_edges : base_->NumEdges();
  }
  size_t NumTypes() const {
    return base_->NumTypes() + (delta_ ? delta_->type_names.size() : 0);
  }
  size_t NumPredicates() const {
    return base_->NumPredicates() +
           (delta_ ? delta_->predicate_names.size() : 0);
  }
  double AverageDegree() const {
    return NumNodes() == 0 ? 0.0
                           : 2.0 * static_cast<double>(NumEdges()) /
                                 static_cast<double>(NumNodes());
  }

  // ----- per-id accessors -----

  std::string_view NodeName(NodeId u) const {
    if (delta_ && u >= delta_->base_nodes) {
      return delta_->node_names[u - delta_->base_nodes];
    }
    return base_->NodeName(u);
  }
  TypeId NodeType(NodeId u) const {
    if (delta_ && u >= delta_->base_nodes) {
      return delta_->node_types[u - delta_->base_nodes];
    }
    return base_->NodeType(u);
  }
  std::string_view NodeTypeName(NodeId u) const { return TypeName(NodeType(u)); }
  std::string_view TypeName(TypeId t) const {
    if (delta_ && t >= delta_->base_types) {
      return delta_->type_names[t - delta_->base_types];
    }
    return base_->TypeName(t);
  }
  std::string_view PredicateName(PredicateId p) const {
    if (delta_ && p >= delta_->base_predicates) {
      return delta_->predicate_names[p - delta_->base_predicates];
    }
    return base_->PredicateName(p);
  }

  // ----- dictionary lookups -----

  NodeId FindNode(std::string_view name) const {
    NodeId id = base_->FindNode(name);
    if (id != kInvalidNode || !delta_) return id;
    auto it = delta_->name_index.find(name);
    return it == delta_->name_index.end() ? kInvalidNode : it->second;
  }
  TypeId FindType(std::string_view name) const {
    TypeId id = base_->FindType(name);
    if (id != kInvalidSymbol || !delta_) return id;
    auto it = delta_->type_index.find(name);
    return it == delta_->type_index.end() ? kInvalidSymbol : it->second;
  }
  PredicateId FindPredicate(std::string_view name) const {
    PredicateId id = base_->FindPredicate(name);
    if (id != kInvalidSymbol || !delta_) return id;
    auto it = delta_->predicate_index.find(name);
    return it == delta_->predicate_index.end() ? kInvalidSymbol : it->second;
  }

  // ----- structure -----

  /// Merged undirected adjacency; contiguous span either way (overlay lists
  /// are pre-merged at commit time).
  std::span<const AdjEntry> Neighbors(NodeId u) const {
    if (delta_) {
      auto it = delta_->adjacency.find(u);
      if (it != delta_->adjacency.end()) return it->second;
      if (u >= delta_->base_nodes) return {};
    }
    return base_->Neighbors(u);
  }

  size_t Degree(NodeId u) const { return Neighbors(u).size(); }

  /// All nodes of a type: the base's sorted members followed by the delta's
  /// ascending additions — still one sorted sequence.
  TypeMemberRange NodesOfType(TypeId t) const {
    std::span<const NodeId> base_part =
        (!delta_ || t < delta_->base_types) ? base_->NodesOfType(t)
                                            : std::span<const NodeId>{};
    std::span<const NodeId> extra_part;
    if (delta_) {
      auto it = delta_->type_members.find(t);
      if (it != delta_->type_members.end()) extra_part = it->second;
    }
    return TypeMemberRange(base_part, extra_part);
  }

  bool HasTriple(NodeId head, PredicateId predicate, NodeId tail) const {
    if (delta_) return delta_->HasTriple(head, predicate, tail, *base_);
    return base_->HasTriple(head, predicate, tail);
  }

 private:
  const KnowledgeGraph* base_;
  const DeltaSnapshot* delta_ = nullptr;
};

}  // namespace kgsearch

#endif  // KGSEARCH_KG_GRAPH_VIEW_H_
