#include "kg/snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "kg/triple_io.h"
#include "util/binary_io.h"
#include "util/string_util.h"

namespace kgsearch {

using snapshot_internal::kHeaderBytes;
using snapshot_internal::kSectionGraph;
using snapshot_internal::kSectionLibrary;
using snapshot_internal::kSectionSpace;

namespace {

// Triples are written as one bulk vector copy; this pins the layout the
// format depends on.
static_assert(sizeof(Triple) == 12 &&
                  std::has_unique_object_representations_v<Triple>,
              "Triple must be a packed 3x u32 POD for bulk serialization");

// ----- dictionary -----

void WriteDictionary(const Dictionary& dict, BinaryWriter* out) {
  std::vector<uint64_t> offsets;
  offsets.reserve(dict.size() + 1);
  std::string blob;
  blob.reserve(dict.payload_bytes());
  offsets.push_back(0);
  for (SymbolId id = 0; id < dict.size(); ++id) {
    blob.append(dict.Get(id));
    offsets.push_back(blob.size());
  }
  out->WriteString(blob);
  out->WriteVector(offsets);
}

Result<Dictionary> ReadDictionary(BinaryReader* in) {
  std::string_view blob;
  KG_RETURN_NOT_OK(in->ReadStringView(&blob));
  std::vector<uint64_t> offsets;
  KG_RETURN_NOT_OK(in->ReadVector(&offsets));
  return Dictionary::FromFlat(blob, offsets);
}

// ----- sections -----

void WriteGraphSection(const KnowledgeGraph& graph, BinaryWriter* out) {
  WriteDictionary(graph.names_dict(), out);
  WriteDictionary(graph.types_dict(), out);
  WriteDictionary(graph.predicates_dict(), out);
  out->WriteVector(graph.node_types());
  out->WriteVector(graph.triples());

  // Adjacency as structure-of-arrays: AdjEntry has padding bytes, so the
  // struct itself is not bulk-serializable; three packed arrays are.
  const auto adj = graph.adjacency();
  std::vector<NodeId> neighbors(adj.size());
  std::vector<PredicateId> predicates(adj.size());
  std::vector<uint8_t> forward(adj.size());
  for (size_t i = 0; i < adj.size(); ++i) {
    neighbors[i] = adj[i].neighbor;
    predicates[i] = adj[i].predicate;
    forward[i] = adj[i].forward ? 1 : 0;
  }
  std::vector<uint64_t> adj_offsets(graph.adj_offsets().begin(),
                                    graph.adj_offsets().end());
  out->WriteVector(adj_offsets);
  out->WriteVector(neighbors);
  out->WriteVector(predicates);
  out->WriteVector(forward);

  std::vector<uint64_t> type_offsets(graph.type_offsets().begin(),
                                     graph.type_offsets().end());
  std::vector<NodeId> type_members(graph.type_members().begin(),
                                   graph.type_members().end());
  out->WriteVector(type_offsets);
  out->WriteVector(type_members);
}

Result<std::unique_ptr<KnowledgeGraph>> ReadGraphSection(BinaryReader* in) {
  KnowledgeGraph::FlatParts parts;
  {
    Result<Dictionary> names = ReadDictionary(in);
    KG_RETURN_NOT_OK(names.status());
    parts.names = std::move(names).ValueOrDie();
    Result<Dictionary> types = ReadDictionary(in);
    KG_RETURN_NOT_OK(types.status());
    parts.types = std::move(types).ValueOrDie();
    Result<Dictionary> predicates = ReadDictionary(in);
    KG_RETURN_NOT_OK(predicates.status());
    parts.predicates = std::move(predicates).ValueOrDie();
  }
  KG_RETURN_NOT_OK(in->ReadVector(&parts.node_types));
  KG_RETURN_NOT_OK(in->ReadVector(&parts.triples));

  std::vector<NodeId> neighbors;
  std::vector<PredicateId> predicates;
  std::vector<uint8_t> forward;
  KG_RETURN_NOT_OK(in->ReadVector(&parts.adj_offsets));
  KG_RETURN_NOT_OK(in->ReadVector(&neighbors));
  KG_RETURN_NOT_OK(in->ReadVector(&predicates));
  KG_RETURN_NOT_OK(in->ReadVector(&forward));
  if (neighbors.size() != predicates.size() ||
      neighbors.size() != forward.size()) {
    return Status::ParseError("adjacency arrays have mismatched lengths");
  }
  parts.adj.resize(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    parts.adj[i] = AdjEntry{neighbors[i], predicates[i], forward[i] != 0};
  }

  KG_RETURN_NOT_OK(in->ReadVector(&parts.type_offsets));
  KG_RETURN_NOT_OK(in->ReadVector(&parts.type_members));
  return KnowledgeGraph::FromFlatParts(std::move(parts));
}

void WriteLibrarySection(const TransformationLibrary& library,
                         BinaryWriter* out) {
  const auto records = library.ExportRecords();
  out->WriteU64(records.size());
  for (const auto& r : records) {
    out->WriteU8(r.type_scope ? 1 : 0);
    out->WriteU8(static_cast<uint8_t>(r.kind));
    out->WriteString(r.alias);
    out->WriteString(r.canonical);
  }
}

Result<TransformationLibrary> ReadLibrarySection(BinaryReader* in) {
  uint64_t count = 0;
  KG_RETURN_NOT_OK(in->ReadU64(&count));
  TransformationLibrary library;
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t scope = 0, kind = 0;
    std::string_view alias, canonical;
    KG_RETURN_NOT_OK(in->ReadU8(&scope));
    KG_RETURN_NOT_OK(in->ReadU8(&kind));
    KG_RETURN_NOT_OK(in->ReadStringView(&alias));
    KG_RETURN_NOT_OK(in->ReadStringView(&canonical));
    if (scope > 1) {
      return Status::ParseError("library record has invalid scope");
    }
    const auto match_kind = static_cast<MatchKind>(kind);
    if (match_kind != MatchKind::kSynonym &&
        match_kind != MatchKind::kAbbreviation) {
      return Status::ParseError("library record has invalid kind");
    }
    if (scope == 1) {
      if (match_kind == MatchKind::kSynonym) {
        library.AddTypeSynonym(alias, canonical);
      } else {
        library.AddTypeAbbreviation(alias, canonical);
      }
    } else {
      if (match_kind == MatchKind::kSynonym) {
        library.AddNameSynonym(alias, canonical);
      } else {
        library.AddNameAbbreviation(alias, canonical);
      }
    }
  }
  return library;
}

void WriteSpaceSection(const PredicateSpace& space, BinaryWriter* out) {
  out->WriteU64(space.NumPredicates());
  for (PredicateId p = 0; p < space.NumPredicates(); ++p) {
    out->WriteString(space.names()[p]);
    out->WriteVector(space.Vector(p));
  }
}

Result<std::unique_ptr<PredicateSpace>> ReadSpaceSection(BinaryReader* in) {
  uint64_t count = 0;
  KG_RETURN_NOT_OK(in->ReadU64(&count));
  if (count > in->remaining() / sizeof(uint64_t)) {
    return Status::ParseError("predicate count exceeds input size");
  }
  std::vector<std::string> names(count);
  VectorStore store;
  FloatVec row;
  for (uint64_t p = 0; p < count; ++p) {
    KG_RETURN_NOT_OK(in->ReadString(&names[p]));
    KG_RETURN_NOT_OK(in->ReadVector(&row));
    // The first row fixes the store geometry; later rows stream straight
    // into the flat block. Verbatim install — vectors were normalized when
    // the saved space was built, and re-normalizing would perturb the
    // float bits.
    if (p == 0) store = VectorStore(count, row.size());
    if (row.size() != store.dim()) {
      return Status::ParseError(
          "predicate vector dimension mismatch in kgpack space section");
    }
    store.SetRow(p, row.data(), row.size());
  }
  return std::make_unique<PredicateSpace>(
      PredicateSpace::FromStore(std::move(store), std::move(names)));
}

/// The save-side and load-side consistency contract between the graph and
/// its predicate space (mirrors KgSession::RegisterDataset).
Status CheckSpaceCoversGraph(const KnowledgeGraph& graph,
                             const PredicateSpace& space) {
  if (space.NumPredicates() < graph.NumPredicates()) {
    return Status::InvalidArgument(StrFormat(
        "predicate space covers %zu of the graph's %zu predicates",
        space.NumPredicates(), graph.NumPredicates()));
  }
  for (PredicateId p = 0; p < graph.NumPredicates(); ++p) {
    if (space.names()[p] != graph.PredicateName(p)) {
      return Status::InvalidArgument(
          StrFormat("predicate %u named \"%s\" in the space but \"%s\" in "
                    "the graph",
                    p, space.names()[p].c_str(),
                    std::string(graph.PredicateName(p)).c_str()));
    }
  }
  return Status::OK();
}

/// Writes "u32 id + u64 length + body" with the body emitted directly into
/// `out` and the length patched afterwards — no per-section staging buffer,
/// so encoding holds one copy of the snapshot bytes, not three.
template <typename BodyFn>
void WriteSection(uint32_t id, BinaryWriter* out, BodyFn&& body_fn) {
  out->WriteU32(id);
  const size_t length_slot = out->size();
  out->WriteU64(0);
  const size_t body_start = out->size();
  body_fn(out);
  out->PatchU64(length_slot, out->size() - body_start);
}

Result<std::string_view> ReadSection(BinaryReader* in, uint32_t expected_id) {
  uint32_t id = 0;
  KG_RETURN_NOT_OK(in->ReadU32(&id));
  if (id != expected_id) {
    return Status::ParseError(StrFormat(
        "expected kgpack section %u, found %u", expected_id, id));
  }
  std::string_view body;
  Status read = in->ReadStringView(&body);
  if (!read.ok()) {
    return Status::ParseError(StrFormat("kgpack section %u is truncated",
                                        id));
  }
  return body;
}

}  // namespace

bool LooksLikeKgPack(std::string_view bytes) {
  return bytes.size() >= kKgPackMagic.size() &&
         bytes.substr(0, kKgPackMagic.size()) == kKgPackMagic;
}

Result<std::string> EncodeSnapshot(const KnowledgeGraph& graph,
                                   const PredicateSpace& space,
                                   const TransformationLibrary& library) {
  if (!graph.finalized()) {
    return Status::InvalidArgument(
        "snapshots require a finalized graph (call Finalize() first)");
  }
  KG_RETURN_NOT_OK(CheckSpaceCoversGraph(graph, space));

  BinaryWriter out;
  out.WriteRaw(kKgPackMagic.data(), kKgPackMagic.size());
  out.WriteU32(kKgPackVersion);
  const size_t payload_size_slot = out.size();
  out.WriteU64(0);
  const size_t checksum_slot = out.size();
  out.WriteU32(0);
  const size_t payload_start = out.size();

  WriteSection(kSectionGraph, &out,
               [&graph](BinaryWriter* w) { WriteGraphSection(graph, w); });
  WriteSection(kSectionLibrary, &out, [&library](BinaryWriter* w) {
    WriteLibrarySection(library, w);
  });
  WriteSection(kSectionSpace, &out,
               [&space](BinaryWriter* w) { WriteSpaceSection(space, w); });

  out.PatchU64(payload_size_slot, out.size() - payload_start);
  out.PatchU32(checksum_slot,
               Crc32(out.buffer().data() + payload_start,
                     out.size() - payload_start));
  return out.Release();
}

Result<DatasetSnapshot> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::ParseError(StrFormat(
        "kgpack header truncated: %zu bytes, need %zu", bytes.size(),
        kHeaderBytes));
  }
  if (!LooksLikeKgPack(bytes)) {
    return Status::ParseError("not a kgpack snapshot (bad magic)");
  }
  BinaryReader header(bytes.substr(kKgPackMagic.size()));
  uint32_t version = 0, checksum = 0;
  uint64_t payload_size = 0;
  KG_RETURN_NOT_OK(header.ReadU32(&version));
  KG_RETURN_NOT_OK(header.ReadU64(&payload_size));
  KG_RETURN_NOT_OK(header.ReadU32(&checksum));
  if (version != kKgPackVersion) {
    return Status::ParseError(StrFormat(
        "kgpack version %u is not supported (this build reads version %u)",
        version, kKgPackVersion));
  }
  const std::string_view payload = bytes.substr(kHeaderBytes);
  if (payload.size() < payload_size) {
    return Status::ParseError(StrFormat(
        "kgpack payload truncated: header declares %llu bytes, file has "
        "%zu",
        static_cast<unsigned long long>(payload_size), payload.size()));
  }
  if (payload.size() > payload_size) {
    return Status::ParseError("trailing bytes after the kgpack payload");
  }
  if (Crc32(payload) != checksum) {
    return Status::ParseError(
        "kgpack checksum mismatch (file corrupted or partially written)");
  }

  BinaryReader in(payload);
  Result<std::string_view> graph_body = ReadSection(&in, kSectionGraph);
  KG_RETURN_NOT_OK(graph_body.status());
  Result<std::string_view> library_body = ReadSection(&in, kSectionLibrary);
  KG_RETURN_NOT_OK(library_body.status());
  Result<std::string_view> space_body = ReadSection(&in, kSectionSpace);
  KG_RETURN_NOT_OK(space_body.status());
  if (!in.AtEnd()) {
    return Status::ParseError("trailing bytes after the kgpack sections");
  }

  DatasetSnapshot snapshot;
  {
    BinaryReader section(graph_body.ValueOrDie());
    Result<std::unique_ptr<KnowledgeGraph>> graph =
        ReadGraphSection(&section);
    KG_RETURN_NOT_OK(graph.status());
    if (!section.AtEnd()) {
      return Status::ParseError("trailing bytes in the kgpack graph section");
    }
    snapshot.graph = std::move(graph).ValueOrDie();
  }
  {
    BinaryReader section(library_body.ValueOrDie());
    Result<TransformationLibrary> library = ReadLibrarySection(&section);
    KG_RETURN_NOT_OK(library.status());
    if (!section.AtEnd()) {
      return Status::ParseError(
          "trailing bytes in the kgpack library section");
    }
    snapshot.library = std::move(library).ValueOrDie();
  }
  {
    BinaryReader section(space_body.ValueOrDie());
    Result<std::unique_ptr<PredicateSpace>> space =
        ReadSpaceSection(&section);
    KG_RETURN_NOT_OK(space.status());
    if (!section.AtEnd()) {
      return Status::ParseError("trailing bytes in the kgpack space section");
    }
    snapshot.space = std::move(space).ValueOrDie();
  }
  KG_RETURN_NOT_OK(CheckSpaceCoversGraph(*snapshot.graph, *snapshot.space));
  return snapshot;
}

Status SaveSnapshot(const std::string& path, const KnowledgeGraph& graph,
                    const PredicateSpace& space,
                    const TransformationLibrary& library) {
  Result<std::string> encoded = EncodeSnapshot(graph, space, library);
  KG_RETURN_NOT_OK(encoded.status());
  return WriteStringToFile(path, encoded.ValueOrDie());
}

Result<DatasetSnapshot> LoadSnapshot(const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  KG_RETURN_NOT_OK(bytes.status());
  return DecodeSnapshot(bytes.ValueOrDie());
}

namespace snapshot_internal {

std::string EncodeLibraryBody(const TransformationLibrary& library) {
  BinaryWriter out;
  WriteLibrarySection(library, &out);
  return out.Release();
}

std::string EncodeSpaceBody(const PredicateSpace& space) {
  BinaryWriter out;
  WriteSpaceSection(space, &out);
  return out.Release();
}

}  // namespace snapshot_internal

}  // namespace kgsearch
