// kgpack: versioned, checksummed binary snapshots of a finalized dataset.
//
// A snapshot bundles everything KgSession needs to serve a dataset — the
// KnowledgeGraph (dictionaries, triples, CSR adjacency, type index), the
// TransformationLibrary, and the trained PredicateSpace — into one file, so
// a restart restores a dataset with a handful of bulk reads into
// preallocated flat buffers instead of re-parsing N-Triples and re-training
// TransE. Embedding floats are stored as raw IEEE-754 bits, so a loaded
// dataset answers queries bit-identically to the one that was saved (the
// snapshot differential tests assert this end to end).
//
// File layout (all integers little-endian):
//   [0..3]   magic "KGPK"
//   [4..7]   u32 format version (kKgPackVersion)
//   [8..15]  u64 payload byte length
//   [16..19] u32 CRC-32 of the payload
//   [20.. ]  payload: the GRAPH, LIBRARY, and SPACE sections in that order,
//            each prefixed by u32 section id + u64 section byte length
//
// Decoding is total: wrong magic, versions from the future, truncation,
// checksum mismatches, and structurally inconsistent payloads all return a
// precise Status — never an abort, never a silently wrong graph (the graph
// section re-runs every Finalize() invariant before installing the CSR).
#ifndef KGSEARCH_KG_SNAPSHOT_H_
#define KGSEARCH_KG_SNAPSHOT_H_

#include <memory>
#include <string>
#include <string_view>

#include "embedding/predicate_space.h"
#include "kg/graph.h"
#include "match/transformation_library.h"
#include "util/status.h"

namespace kgsearch {

/// Format version written by this build; decoders reject anything newer.
inline constexpr uint32_t kKgPackVersion = 1;

/// The 4-byte file magic.
inline constexpr std::string_view kKgPackMagic = "KGPK";

/// True when `bytes` starts with the kgpack magic (the sniff LoadDataset
/// uses to route a graph file to the snapshot fast path).
bool LooksLikeKgPack(std::string_view bytes);

/// A decoded snapshot: a finalized graph plus its matching space/library.
struct DatasetSnapshot {
  std::unique_ptr<KnowledgeGraph> graph;
  std::unique_ptr<PredicateSpace> space;
  TransformationLibrary library;
};

/// Serializes a dataset to kgpack bytes. The graph must be finalized and
/// `space` must cover the graph's predicates by id (name-checked), the same
/// contract KgSession::RegisterDataset enforces; violations are
/// kInvalidArgument.
Result<std::string> EncodeSnapshot(const KnowledgeGraph& graph,
                                   const PredicateSpace& space,
                                   const TransformationLibrary& library);

/// Parses kgpack bytes back into a servable dataset.
Result<DatasetSnapshot> DecodeSnapshot(std::string_view bytes);

/// EncodeSnapshot + one atomic-ish file write (write then rename is not
/// attempted; partial writes surface as checksum errors on load).
Status SaveSnapshot(const std::string& path, const KnowledgeGraph& graph,
                    const PredicateSpace& space,
                    const TransformationLibrary& library);

/// One bulk file read + DecodeSnapshot.
Result<DatasetSnapshot> LoadSnapshot(const std::string& path);

/// Format internals shared with the streaming writer (kg/snapshot_stream.h)
/// so both emit bit-identical bytes from one implementation. Not API.
namespace snapshot_internal {

/// Payload section ids, in required file order.
inline constexpr uint32_t kSectionGraph = 1;
inline constexpr uint32_t kSectionLibrary = 2;
inline constexpr uint32_t kSectionSpace = 3;

/// Magic + version + payload length + CRC.
inline constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;

/// Section bodies (no id/length framing) exactly as EncodeSnapshot writes
/// them. Library and space sections are small at any graph scale — alias
/// records and one vector per predicate — so the streaming writer takes
/// them whole.
std::string EncodeLibraryBody(const TransformationLibrary& library);
std::string EncodeSpaceBody(const PredicateSpace& space);

}  // namespace snapshot_internal

}  // namespace kgsearch

#endif  // KGSEARCH_KG_SNAPSHOT_H_
