#include "kg/snapshot_stream.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "kg/snapshot.h"
#include "util/binary_io.h"
#include "util/string_util.h"

namespace kgsearch {

using snapshot_internal::kHeaderBytes;
using snapshot_internal::kSectionGraph;
using snapshot_internal::kSectionLibrary;
using snapshot_internal::kSectionSpace;

namespace {

static_assert(sizeof(Triple) == 12 &&
                  std::has_unique_object_representations_v<Triple>,
              "Triple must be a packed 3x u32 POD for bulk serialization");

/// Graph-section array order; Begin* calls must follow it exactly so the
/// streamed bytes match EncodeSnapshot's field order.
enum ArrayIndex : int {
  kArrayNames = 0,
  kArrayTypes = 1,
  kArrayPredicates = 2,
  kArrayNodeTypes = 3,
  kArrayTriples = 4,
  kArrayAdjOffsets = 5,
  kArrayAdjacency = 6,
  kArrayTypeOffsets = 7,
  kArrayTypeMembers = 8,
  kArrayCount = 9,
};

}  // namespace

Result<std::unique_ptr<SnapshotStreamWriter>> SnapshotStreamWriter::Open(
    const std::string& path, size_t buffer_bytes) {
  if (buffer_bytes == 0) {
    return Status::InvalidArgument("snapshot stream buffer must be > 0");
  }
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out |
                              std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError(StrFormat("cannot open %s for writing",
                                     path.c_str()));
  }
  auto writer = std::unique_ptr<SnapshotStreamWriter>(
      new SnapshotStreamWriter(std::move(file), buffer_bytes));

  // Header with zeroed length/CRC slots, patched by Finish().
  Status st = writer->WriteAt(0, kKgPackMagic.data(), kKgPackMagic.size());
  if (!st.ok()) return st;
  writer->cursor_ = kKgPackMagic.size();
  const uint32_t version = kKgPackVersion;
  st = writer->WriteAt(writer->cursor_, &version, sizeof(version));
  if (!st.ok()) return st;
  writer->cursor_ += sizeof(version);
  writer->payload_len_slot_ = writer->cursor_;
  const uint64_t zero64 = 0;
  st = writer->WriteAt(writer->cursor_, &zero64, sizeof(zero64));
  if (!st.ok()) return st;
  writer->cursor_ += sizeof(zero64);
  writer->checksum_slot_ = writer->cursor_;
  const uint32_t zero32 = 0;
  st = writer->WriteAt(writer->cursor_, &zero32, sizeof(zero32));
  if (!st.ok()) return st;
  writer->cursor_ += sizeof(zero32);
  writer->payload_start_ = writer->cursor_;
  KG_CHECK(writer->cursor_ == kHeaderBytes);
  return writer;
}

SnapshotStreamWriter::SnapshotStreamWriter(std::fstream file,
                                           size_t buffer_bytes)
    : file_(std::move(file)), buffer_cap_(buffer_bytes) {}

SnapshotStreamWriter::~SnapshotStreamWriter() = default;

Status SnapshotStreamWriter::CheckStage(Stage expected, const char* what) {
  if (!status_.ok()) return status_;
  if (stage_ != expected) {
    status_ = Status::InvalidArgument(
        StrFormat("snapshot stream: %s called out of sequence", what));
  }
  return status_;
}

Status SnapshotStreamWriter::WriteAt(uint64_t pos, const void* data,
                                     size_t size) {
  if (!status_.ok()) return status_;
  file_.seekp(static_cast<std::streamoff>(pos));
  file_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  if (!file_.good()) {
    status_ = Status::IOError("snapshot stream: file write failed");
  }
  return status_;
}

SnapshotStreamWriter::Region SnapshotStreamWriter::MakeRegion(uint64_t size) {
  Region r;
  r.file_pos = cursor_;
  r.remaining = size;
  cursor_ += size;
  return r;
}

void SnapshotStreamWriter::TrackBuffered() {
  const size_t buffered =
      blob_region_.buffer.size() + offsets_region_.buffer.size() +
      preds_region_.buffer.size() + flags_region_.buffer.size();
  stats_.peak_buffered_bytes = std::max(stats_.peak_buffered_bytes, buffered);
}

Status SnapshotStreamWriter::RegionWrite(Region* region, const void* data,
                                         size_t size) {
  if (!status_.ok()) return status_;
  if (size > region->remaining) {
    status_ = Status::InvalidArgument(
        "snapshot stream: append exceeds the declared array size");
    return status_;
  }
  region->remaining -= size;
  region->buffer.append(static_cast<const char*>(data), size);
  TrackBuffered();
  if (region->buffer.size() >= buffer_cap_) return FlushRegion(region);
  return status_;
}

Status SnapshotStreamWriter::FlushRegion(Region* region) {
  if (region->buffer.empty()) return status_;
  KG_RETURN_NOT_OK(
      WriteAt(region->file_pos, region->buffer.data(), region->buffer.size()));
  region->file_pos += region->buffer.size();
  region->buffer.clear();
  return status_;
}

Status SnapshotStreamWriter::WriteScalarU64(Region* region, uint64_t v) {
  return RegionWrite(region, &v, sizeof(v));
}

Status SnapshotStreamWriter::BeginGraphSection() {
  KG_RETURN_NOT_OK(CheckStage(Stage::kHeader, "BeginGraphSection"));
  const uint32_t id = kSectionGraph;
  KG_RETURN_NOT_OK(WriteAt(cursor_, &id, sizeof(id)));
  cursor_ += sizeof(id);
  graph_len_slot_ = cursor_;
  const uint64_t zero = 0;
  KG_RETURN_NOT_OK(WriteAt(cursor_, &zero, sizeof(zero)));
  cursor_ += sizeof(zero);
  graph_body_start_ = cursor_;
  array_index_ = 0;
  stage_ = Stage::kGraphOpen;
  return status_;
}

Status SnapshotStreamWriter::BeginDictionary(uint64_t total_payload_bytes,
                                             uint64_t num_symbols) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kGraphOpen, "BeginDictionary"));
  if (array_index_ > kArrayPredicates) {
    status_ = Status::InvalidArgument(
        "snapshot stream: all three dictionaries already written");
    return status_;
  }
  // WriteString(blob): u64 length + blob bytes.
  KG_RETURN_NOT_OK(WriteAt(cursor_, &total_payload_bytes,
                           sizeof(total_payload_bytes)));
  cursor_ += sizeof(total_payload_bytes);
  blob_region_ = MakeRegion(total_payload_bytes);
  // WriteVector(offsets): u64 count + (num_symbols + 1) u64 entries.
  const uint64_t offset_count = num_symbols + 1;
  KG_RETURN_NOT_OK(WriteAt(cursor_, &offset_count, sizeof(offset_count)));
  cursor_ += sizeof(offset_count);
  offsets_region_ = MakeRegion(offset_count * sizeof(uint64_t));
  dict_blob_off_ = 0;
  KG_RETURN_NOT_OK(WriteScalarU64(&offsets_region_, 0));
  expected_elems_ = num_symbols;
  appended_elems_ = 0;
  stage_ = Stage::kDictionary;
  return status_;
}

Status SnapshotStreamWriter::AppendSymbol(std::string_view symbol) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kDictionary, "AppendSymbol"));
  KG_RETURN_NOT_OK(RegionWrite(&blob_region_, symbol.data(), symbol.size()));
  dict_blob_off_ += symbol.size();
  KG_RETURN_NOT_OK(WriteScalarU64(&offsets_region_, dict_blob_off_));
  ++appended_elems_;
  return status_;
}

Status SnapshotStreamWriter::EndDictionary() {
  KG_RETURN_NOT_OK(CheckStage(Stage::kDictionary, "EndDictionary"));
  if (appended_elems_ != expected_elems_ || blob_region_.remaining != 0 ||
      offsets_region_.remaining != 0) {
    status_ = Status::InvalidArgument(
        "snapshot stream: dictionary appends do not match the declaration");
    return status_;
  }
  KG_RETURN_NOT_OK(FlushRegion(&blob_region_));
  KG_RETURN_NOT_OK(FlushRegion(&offsets_region_));
  ++array_index_;
  stage_ = Stage::kGraphOpen;
  return status_;
}

Status SnapshotStreamWriter::BeginArray(Stage stage, int which,
                                        const char* what,
                                        uint64_t element_count,
                                        size_t element_bytes) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kGraphOpen, what));
  if (array_index_ != which) {
    status_ = Status::InvalidArgument(StrFormat(
        "snapshot stream: %s called out of the graph array order", what));
    return status_;
  }
  KG_RETURN_NOT_OK(WriteAt(cursor_, &element_count, sizeof(element_count)));
  cursor_ += sizeof(element_count);
  blob_region_ = MakeRegion(element_count * element_bytes);
  expected_elems_ = element_count;
  appended_elems_ = 0;
  stage_ = stage;
  return status_;
}

Status SnapshotStreamWriter::EndArray(Stage stage, const char* what) {
  KG_RETURN_NOT_OK(CheckStage(stage, what));
  if (appended_elems_ != expected_elems_) {
    status_ = Status::InvalidArgument(StrFormat(
        "snapshot stream: %s before the declared element count was reached",
        what));
    return status_;
  }
  KG_RETURN_NOT_OK(FlushRegion(&blob_region_));
  ++array_index_;
  stage_ = Stage::kGraphOpen;
  return status_;
}

Status SnapshotStreamWriter::BeginNodeTypes(uint64_t num_nodes) {
  return BeginArray(Stage::kNodeTypes, kArrayNodeTypes, "BeginNodeTypes",
                    num_nodes, sizeof(TypeId));
}

Status SnapshotStreamWriter::AppendNodeType(TypeId type) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kNodeTypes, "AppendNodeType"));
  KG_RETURN_NOT_OK(RegionWrite(&blob_region_, &type, sizeof(type)));
  ++appended_elems_;
  return status_;
}

Status SnapshotStreamWriter::EndNodeTypes() {
  return EndArray(Stage::kNodeTypes, "EndNodeTypes");
}

Status SnapshotStreamWriter::BeginTriples(uint64_t num_triples) {
  return BeginArray(Stage::kTriples, kArrayTriples, "BeginTriples",
                    num_triples, sizeof(Triple));
}

Status SnapshotStreamWriter::AppendTriple(const Triple& triple) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kTriples, "AppendTriple"));
  KG_RETURN_NOT_OK(RegionWrite(&blob_region_, &triple, sizeof(triple)));
  ++appended_elems_;
  return status_;
}

Status SnapshotStreamWriter::EndTriples() {
  return EndArray(Stage::kTriples, "EndTriples");
}

Status SnapshotStreamWriter::BeginAdjOffsets(uint64_t num_nodes) {
  return BeginArray(Stage::kAdjOffsets, kArrayAdjOffsets, "BeginAdjOffsets",
                    num_nodes + 1, sizeof(uint64_t));
}

Status SnapshotStreamWriter::AppendAdjOffset(uint64_t offset) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kAdjOffsets, "AppendAdjOffset"));
  KG_RETURN_NOT_OK(WriteScalarU64(&blob_region_, offset));
  ++appended_elems_;
  return status_;
}

Status SnapshotStreamWriter::EndAdjOffsets() {
  return EndArray(Stage::kAdjOffsets, "EndAdjOffsets");
}

Status SnapshotStreamWriter::BeginAdjacency(uint64_t num_entries) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kGraphOpen, "BeginAdjacency"));
  if (array_index_ != kArrayAdjacency) {
    status_ = Status::InvalidArgument(
        "snapshot stream: BeginAdjacency called out of the graph array "
        "order");
    return status_;
  }
  // Three parallel WriteVector regions (neighbors, predicates, forward),
  // filled together by AppendAdjEntry.
  KG_RETURN_NOT_OK(WriteAt(cursor_, &num_entries, sizeof(num_entries)));
  cursor_ += sizeof(num_entries);
  blob_region_ = MakeRegion(num_entries * sizeof(NodeId));
  KG_RETURN_NOT_OK(WriteAt(cursor_, &num_entries, sizeof(num_entries)));
  cursor_ += sizeof(num_entries);
  preds_region_ = MakeRegion(num_entries * sizeof(PredicateId));
  KG_RETURN_NOT_OK(WriteAt(cursor_, &num_entries, sizeof(num_entries)));
  cursor_ += sizeof(num_entries);
  flags_region_ = MakeRegion(num_entries * sizeof(uint8_t));
  expected_elems_ = num_entries;
  appended_elems_ = 0;
  stage_ = Stage::kAdjacency;
  return status_;
}

Status SnapshotStreamWriter::AppendAdjEntry(const AdjEntry& entry) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kAdjacency, "AppendAdjEntry"));
  KG_RETURN_NOT_OK(
      RegionWrite(&blob_region_, &entry.neighbor, sizeof(entry.neighbor)));
  KG_RETURN_NOT_OK(
      RegionWrite(&preds_region_, &entry.predicate, sizeof(entry.predicate)));
  const uint8_t forward = entry.forward ? 1 : 0;
  KG_RETURN_NOT_OK(RegionWrite(&flags_region_, &forward, sizeof(forward)));
  ++appended_elems_;
  return status_;
}

Status SnapshotStreamWriter::EndAdjacency() {
  KG_RETURN_NOT_OK(CheckStage(Stage::kAdjacency, "EndAdjacency"));
  if (appended_elems_ != expected_elems_) {
    status_ = Status::InvalidArgument(
        "snapshot stream: EndAdjacency before the declared entry count was "
        "reached");
    return status_;
  }
  KG_RETURN_NOT_OK(FlushRegion(&blob_region_));
  KG_RETURN_NOT_OK(FlushRegion(&preds_region_));
  KG_RETURN_NOT_OK(FlushRegion(&flags_region_));
  ++array_index_;
  stage_ = Stage::kGraphOpen;
  return status_;
}

Status SnapshotStreamWriter::BeginTypeOffsets(uint64_t num_types) {
  return BeginArray(Stage::kTypeOffsets, kArrayTypeOffsets,
                    "BeginTypeOffsets", num_types + 1, sizeof(uint64_t));
}

Status SnapshotStreamWriter::AppendTypeOffset(uint64_t offset) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kTypeOffsets, "AppendTypeOffset"));
  KG_RETURN_NOT_OK(WriteScalarU64(&blob_region_, offset));
  ++appended_elems_;
  return status_;
}

Status SnapshotStreamWriter::EndTypeOffsets() {
  return EndArray(Stage::kTypeOffsets, "EndTypeOffsets");
}

Status SnapshotStreamWriter::BeginTypeMembers(uint64_t num_members) {
  return BeginArray(Stage::kTypeMembers, kArrayTypeMembers,
                    "BeginTypeMembers", num_members, sizeof(NodeId));
}

Status SnapshotStreamWriter::AppendTypeMember(NodeId node) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kTypeMembers, "AppendTypeMember"));
  KG_RETURN_NOT_OK(RegionWrite(&blob_region_, &node, sizeof(node)));
  ++appended_elems_;
  return status_;
}

Status SnapshotStreamWriter::EndTypeMembers() {
  return EndArray(Stage::kTypeMembers, "EndTypeMembers");
}

Status SnapshotStreamWriter::EndGraphSection() {
  KG_RETURN_NOT_OK(CheckStage(Stage::kGraphOpen, "EndGraphSection"));
  if (array_index_ != kArrayCount) {
    status_ = Status::InvalidArgument(
        "snapshot stream: EndGraphSection with graph arrays missing");
    return status_;
  }
  const uint64_t body_len = cursor_ - graph_body_start_;
  KG_RETURN_NOT_OK(WriteAt(graph_len_slot_, &body_len, sizeof(body_len)));
  stage_ = Stage::kGraphDone;
  return status_;
}

Status SnapshotStreamWriter::WriteWholeSection(uint32_t id,
                                               std::string_view body) {
  KG_RETURN_NOT_OK(WriteAt(cursor_, &id, sizeof(id)));
  cursor_ += sizeof(id);
  const uint64_t len = body.size();
  KG_RETURN_NOT_OK(WriteAt(cursor_, &len, sizeof(len)));
  cursor_ += sizeof(len);
  KG_RETURN_NOT_OK(WriteAt(cursor_, body.data(), body.size()));
  cursor_ += body.size();
  return status_;
}

Status SnapshotStreamWriter::WriteLibrarySection(
    const TransformationLibrary& library) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kGraphDone, "WriteLibrarySection"));
  KG_RETURN_NOT_OK(WriteWholeSection(
      kSectionLibrary, snapshot_internal::EncodeLibraryBody(library)));
  stage_ = Stage::kLibraryDone;
  return status_;
}

Status SnapshotStreamWriter::WriteSpaceSection(const PredicateSpace& space) {
  KG_RETURN_NOT_OK(CheckStage(Stage::kLibraryDone, "WriteSpaceSection"));
  KG_RETURN_NOT_OK(WriteWholeSection(
      kSectionSpace, snapshot_internal::EncodeSpaceBody(space)));
  stage_ = Stage::kSpaceDone;
  return status_;
}

Status SnapshotStreamWriter::Finish() {
  KG_RETURN_NOT_OK(CheckStage(Stage::kSpaceDone, "Finish"));
  const uint64_t payload_len = cursor_ - payload_start_;
  KG_RETURN_NOT_OK(
      WriteAt(payload_len_slot_, &payload_len, sizeof(payload_len)));
  file_.flush();
  if (!file_.good()) {
    status_ = Status::IOError("snapshot stream: flush failed");
    return status_;
  }

  // CRC the payload by re-reading it in chunks; the writer never holds it.
  uint32_t crc = 0;
  std::vector<char> chunk(buffer_cap_);
  file_.seekg(static_cast<std::streamoff>(payload_start_));
  uint64_t left = payload_len;
  while (left > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(left, chunk.size()));
    file_.read(chunk.data(), static_cast<std::streamsize>(want));
    if (file_.gcount() != static_cast<std::streamsize>(want)) {
      status_ = Status::IOError("snapshot stream: payload re-read failed");
      return status_;
    }
    crc = Crc32Update(crc, chunk.data(), want);
    left -= want;
  }
  file_.clear();  // re-reading may have set eof
  KG_RETURN_NOT_OK(WriteAt(checksum_slot_, &crc, sizeof(crc)));
  file_.flush();
  file_.close();
  if (file_.fail()) {
    status_ = Status::IOError("snapshot stream: close failed");
    return status_;
  }
  stats_.file_bytes = cursor_;
  stage_ = Stage::kFinished;
  return status_;
}

Result<bool> VerifySnapshotFileChecksum(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  char header[kHeaderBytes];
  file.read(header, kHeaderBytes);
  if (file.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return false;
  }
  if (std::string_view(header, kKgPackMagic.size()) != kKgPackMagic) {
    return false;
  }
  uint32_t version = 0, expected_crc = 0;
  uint64_t payload_len = 0;
  std::memcpy(&version, header + 4, sizeof(version));
  std::memcpy(&payload_len, header + 8, sizeof(payload_len));
  std::memcpy(&expected_crc, header + 16, sizeof(expected_crc));
  if (version != kKgPackVersion) return false;

  uint32_t crc = 0;
  uint64_t seen = 0;
  std::vector<char> chunk(1 << 20);
  while (true) {
    file.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = file.gcount();
    if (got <= 0) break;
    crc = Crc32Update(crc, chunk.data(), static_cast<size_t>(got));
    seen += static_cast<uint64_t>(got);
    if (file.eof()) break;
  }
  return seen == payload_len && crc == expected_crc;
}

}  // namespace kgsearch
