// Streaming kgpack snapshot writer.
//
// EncodeSnapshot (kg/snapshot.h) holds the whole dataset plus one full copy
// of its encoded bytes in memory — fine at laptop scale, impossible at the
// million-node scale the generator targets. SnapshotStreamWriter produces a
// byte-identical kgpack file while holding only O(buffer) memory:
//
//  - Callers declare each graph array's size up front (counts are cheap to
//    precompute with one extra pass over a deterministic source), then
//    append elements; the writer computes every absolute file offset from
//    the declared sizes and lays bytes down exactly where the in-memory
//    encoder would have.
//  - Arrays whose regions interleave in the file (a dictionary's blob and
//    offsets table; the adjacency structure-of-arrays) are written through
//    per-region cursors with small flush buffers, so one pass over the
//    source fills several file regions at once.
//  - Section/payload lengths are patched into reserved slots once known,
//    and the header CRC-32 is computed at Finish() by re-reading the
//    payload from disk in chunks (Crc32Update), never by buffering it.
//
// The writer enforces the declared sizes strictly: appending more or fewer
// bytes/elements than declared is an error, so a bug cannot silently
// produce a malformed file with a valid checksum. The byte-identity
// contract against EncodeSnapshot is pinned by kg_snapshot_stream_test.
#ifndef KGSEARCH_KG_SNAPSHOT_STREAM_H_
#define KGSEARCH_KG_SNAPSHOT_STREAM_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "embedding/predicate_space.h"
#include "kg/graph.h"
#include "match/transformation_library.h"
#include "util/status.h"

namespace kgsearch {

/// Write-side accounting, for tests asserting the streaming path's memory
/// stays independent of graph size.
struct SnapshotStreamStats {
  uint64_t file_bytes = 0;          ///< total bytes written (after Finish)
  size_t peak_buffered_bytes = 0;   ///< high-water mark across all buffers
};

/// Writes one kgpack snapshot file front to back. Call sequence mirrors the
/// section layout:
///
///   BeginGraphSection
///     [names]      BeginDictionary AppendSymbol... EndDictionary
///     [types]      BeginDictionary AppendSymbol... EndDictionary
///     [predicates] BeginDictionary AppendSymbol... EndDictionary
///     [node types] BeginNodeTypes AppendNodeType... EndNodeTypes
///     [triples]    BeginTriples AppendTriple... EndTriples
///     [CSR]        BeginAdjOffsets AppendAdjOffset... EndAdjOffsets
///                  BeginAdjacency AppendAdjEntry... EndAdjacency
///     [type index] BeginTypeOffsets AppendTypeOffset... EndTypeOffsets
///                  BeginTypeMembers AppendTypeMember... EndTypeMembers
///   EndGraphSection
///   WriteLibrarySection, WriteSpaceSection   (small; taken whole)
///   Finish
///
/// All methods are sticky on error: after any non-OK status the writer
/// ignores further appends and Finish() returns the first error.
class SnapshotStreamWriter {
 public:
  /// Creates/truncates `path`. `buffer_bytes` caps each region buffer (two
  /// regions are live during dictionaries, three during adjacency).
  static Result<std::unique_ptr<SnapshotStreamWriter>> Open(
      const std::string& path, size_t buffer_bytes = 1 << 20);

  ~SnapshotStreamWriter();
  SnapshotStreamWriter(const SnapshotStreamWriter&) = delete;
  SnapshotStreamWriter& operator=(const SnapshotStreamWriter&) = delete;

  Status BeginGraphSection();

  /// A dictionary streams as blob + offsets table; both regions are sized
  /// by the declaration and filled per AppendSymbol.
  Status BeginDictionary(uint64_t total_payload_bytes, uint64_t num_symbols);
  Status AppendSymbol(std::string_view symbol);
  Status EndDictionary();

  Status BeginNodeTypes(uint64_t num_nodes);
  Status AppendNodeType(TypeId type);
  Status EndNodeTypes();

  Status BeginTriples(uint64_t num_triples);
  Status AppendTriple(const Triple& triple);
  Status EndTriples();

  /// num_nodes + 1 offsets, first 0, last 2 * num_triples.
  Status BeginAdjOffsets(uint64_t num_nodes);
  Status AppendAdjOffset(uint64_t offset);
  Status EndAdjOffsets();

  /// Adjacency structure-of-arrays: one AppendAdjEntry in CSR order feeds
  /// the neighbors, predicates, and forward-flag regions simultaneously.
  Status BeginAdjacency(uint64_t num_entries);
  Status AppendAdjEntry(const AdjEntry& entry);
  Status EndAdjacency();

  Status BeginTypeOffsets(uint64_t num_types);
  Status AppendTypeOffset(uint64_t offset);
  Status EndTypeOffsets();

  Status BeginTypeMembers(uint64_t num_members);
  Status AppendTypeMember(NodeId node);
  Status EndTypeMembers();

  Status EndGraphSection();

  /// Library/space sections are small (alias records, one vector per
  /// predicate) and taken whole, byte-identical to the in-memory encoder.
  Status WriteLibrarySection(const TransformationLibrary& library);
  Status WriteSpaceSection(const PredicateSpace& space);

  /// Flushes, patches the payload length, re-reads the payload to compute
  /// the header CRC, patches it, and closes the file.
  Status Finish();

  const SnapshotStreamStats& stats() const { return stats_; }

 private:
  /// One independently positioned write region with a flush buffer.
  struct Region {
    uint64_t file_pos = 0;   ///< next absolute file offset
    uint64_t remaining = 0;  ///< bytes this region may still accept
    std::string buffer;
  };

  enum class Stage {
    kHeader,
    kGraphOpen,       // inside the graph section, between arrays
    kDictionary,
    kNodeTypes,
    kTriples,
    kAdjOffsets,
    kAdjacency,
    kTypeOffsets,
    kTypeMembers,
    kGraphDone,       // graph section closed, library/space pending
    kLibraryDone,
    kSpaceDone,
    kFinished,
  };

  SnapshotStreamWriter(std::fstream file, size_t buffer_bytes);

  Status CheckStage(Stage expected, const char* what);
  /// Buffered append to one region; flushes at the buffer cap.
  Status RegionWrite(Region* region, const void* data, size_t size);
  Status FlushRegion(Region* region);
  /// Unbuffered positioned write (length patches).
  Status WriteAt(uint64_t pos, const void* data, size_t size);
  Status WriteScalarU64(Region* region, uint64_t v);
  /// Declares a region at the current cursor and advances the cursor past
  /// it, so several regions can be filled in parallel.
  Region MakeRegion(uint64_t size);
  void TrackBuffered();
  /// Shared body of the single-region array Begin*/End* pairs: enforces the
  /// graph array order, writes the count prefix, sizes the region.
  Status BeginArray(Stage stage, int which, const char* what,
                    uint64_t element_count, size_t element_bytes);
  Status EndArray(Stage stage, const char* what);
  /// u32 id + u64 length + body, all at the cursor (library/space).
  Status WriteWholeSection(uint32_t id, std::string_view body);

  std::fstream file_;
  size_t buffer_cap_;
  Status status_ = Status::OK();
  Stage stage_ = Stage::kHeader;
  SnapshotStreamStats stats_;

  uint64_t cursor_ = 0;  ///< end of the laid-out file so far

  // Patch slots.
  uint64_t payload_len_slot_ = 0;
  uint64_t checksum_slot_ = 0;
  uint64_t payload_start_ = 0;
  uint64_t graph_len_slot_ = 0;
  uint64_t graph_body_start_ = 0;

  // Active array state.
  Region blob_region_;     // dictionary blob / single sequential arrays
  Region offsets_region_;  // dictionary offsets table
  Region preds_region_;    // adjacency predicate ids
  Region flags_region_;    // adjacency forward flags
  uint64_t expected_elems_ = 0;
  uint64_t appended_elems_ = 0;
  uint64_t dict_blob_off_ = 0;  // running offset inside the dictionary blob
  int array_index_ = 0;         // next graph array expected (canonical order)
};

/// Convenience check used by generators: true when `path` now holds a
/// well-formed kgpack file (magic + version + CRC all verify). Reads the
/// file in chunks; never loads it whole.
Result<bool> VerifySnapshotFileChecksum(const std::string& path);

}  // namespace kgsearch

#endif  // KGSEARCH_KG_SNAPSHOT_STREAM_H_
