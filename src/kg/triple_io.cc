#include "kg/triple_io.h"

#include <array>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace kgsearch {

namespace {

/// Extracts the local part of an IRI given its expected prefix, or the full
/// IRI when the prefix does not match.
std::string_view LocalPart(std::string_view iri, std::string_view prefix) {
  if (StartsWith(iri, prefix)) return iri.substr(prefix.size());
  return iri;
}

/// Scans an IRI token `<...>` starting at *i; advances *i past it.
Status ScanIri(std::string_view line, size_t* i, std::string* out, int lineno) {
  if (*i >= line.size() || line[*i] != '<') {
    return Status::ParseError(
        StrFormat("line %d: expected '<' at column %zu", lineno, *i));
  }
  size_t end = line.find('>', *i + 1);
  if (end == std::string_view::npos) {
    return Status::ParseError(StrFormat("line %d: unterminated IRI", lineno));
  }
  out->assign(line.substr(*i + 1, end - *i - 1));
  *i = end + 1;
  return Status::OK();
}

/// Scans a literal token `"..."` with escapes (optionally followed by a
/// language tag or datatype, which are accepted and dropped).
Status ScanLiteral(std::string_view line, size_t* i, std::string* out,
                   int lineno) {
  KG_CHECK(*i < line.size() && line[*i] == '"');
  out->clear();
  size_t j = *i + 1;
  while (j < line.size()) {
    char c = line[j];
    if (c == '\\') {
      if (j + 1 >= line.size()) {
        return Status::ParseError(
            StrFormat("line %d: dangling escape in literal", lineno));
      }
      char esc = line[j + 1];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        default:
          return Status::ParseError(
              StrFormat("line %d: unsupported escape '\\%c'", lineno, esc));
      }
      j += 2;
    } else if (c == '"') {
      *i = j + 1;
      // Skip optional @lang or ^^<datatype>.
      if (*i < line.size() && line[*i] == '@') {
        while (*i < line.size() && line[*i] != ' ' && line[*i] != '\t') ++*i;
      } else if (*i + 1 < line.size() && line[*i] == '^' &&
                 line[*i + 1] == '^') {
        *i += 2;
        std::string ignored;
        return ScanIri(line, i, &ignored, lineno);
      }
      return Status::OK();
    } else {
      *out += c;
      ++j;
    }
  }
  return Status::ParseError(
      StrFormat("line %d: unterminated literal", lineno));
}

void SkipWs(std::string_view line, size_t* i) {
  while (*i < line.size() && (line[*i] == ' ' || line[*i] == '\t')) ++*i;
}

}  // namespace

Status NTriplesParser::ParseLine(std::string_view line,
                                 NTriplesStatement* out, bool* is_blank) {
  *is_blank = false;
  std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    *is_blank = true;
    return Status::OK();
  }
  size_t i = 0;
  SkipWs(trimmed, &i);
  KG_RETURN_NOT_OK(ScanIri(trimmed, &i, &out->subject, line_));
  SkipWs(trimmed, &i);
  KG_RETURN_NOT_OK(ScanIri(trimmed, &i, &out->predicate, line_));
  SkipWs(trimmed, &i);
  if (i < trimmed.size() && trimmed[i] == '"') {
    out->object_is_literal = true;
    KG_RETURN_NOT_OK(ScanLiteral(trimmed, &i, &out->object, line_));
  } else {
    out->object_is_literal = false;
    KG_RETURN_NOT_OK(ScanIri(trimmed, &i, &out->object, line_));
  }
  SkipWs(trimmed, &i);
  if (i >= trimmed.size() || trimmed[i] != '.') {
    return Status::ParseError(
        StrFormat("line %d: expected terminating '.'", line_));
  }
  return Status::OK();
}

Status NTriplesParser::Next(NTriplesStatement* out, bool* done) {
  while (pos_ < text_.size()) {
    size_t eol = text_.find('\n', pos_);
    std::string_view line = (eol == std::string_view::npos)
                                ? text_.substr(pos_)
                                : text_.substr(pos_, eol - pos_);
    pos_ = (eol == std::string_view::npos) ? text_.size() : eol + 1;
    ++line_;
    bool is_blank = false;
    KG_RETURN_NOT_OK(ParseLine(line, out, &is_blank));
    if (!is_blank) {
      *done = false;
      return Status::OK();
    }
  }
  *done = true;
  return Status::OK();
}

Result<std::unique_ptr<KnowledgeGraph>> ParseNTriples(std::string_view text) {
  auto graph = std::make_unique<KnowledgeGraph>();
  NTriplesParser parser(text);

  // Two passes over statements collected in memory: rdf:type statements may
  // appear after an entity's first use, and node types are fixed at AddNode.
  std::vector<NTriplesStatement> statements;
  NTriplesStatement st;
  bool done = false;
  while (true) {
    Status s = parser.Next(&st, &done);
    if (!s.ok()) return s;
    if (done) break;
    statements.push_back(st);
  }

  std::unordered_map<std::string, std::string> types;
  for (const auto& stmt : statements) {
    if (stmt.predicate == kRdfType && !stmt.object_is_literal) {
      types[std::string(LocalPart(stmt.subject, kEntityPrefix))] =
          std::string(LocalPart(stmt.object, kTypePrefix));
    }
  }
  auto type_of = [&](const std::string& name) -> std::string_view {
    auto it = types.find(name);
    return it == types.end() ? std::string_view("Thing")
                             : std::string_view(it->second);
  };

  for (const auto& stmt : statements) {
    if (stmt.predicate == kRdfType || stmt.predicate == kRdfsLabel) continue;
    if (stmt.object_is_literal) {
      return Status::ParseError(
          "literal objects are only allowed for rdfs:label");
    }
    std::string head(LocalPart(stmt.subject, kEntityPrefix));
    std::string tail(LocalPart(stmt.object, kEntityPrefix));
    std::string pred(LocalPart(stmt.predicate, kPredicatePrefix));
    NodeId h = graph->AddNode(head, type_of(head));
    NodeId t = graph->AddNode(tail, type_of(tail));
    graph->AddEdge(h, pred, t);
  }
  // Entities that only appear in rdf:type statements still become nodes.
  for (const auto& [name, type] : types) {
    graph->AddNode(name, type);
  }
  graph->Finalize();
  return graph;
}

std::string WriteNTriples(const KnowledgeGraph& graph) {
  std::string out;
  out.reserve(graph.NumEdges() * 80 + graph.NumNodes() * 60);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    out += '<';
    out += kEntityPrefix;
    out += graph.NodeName(u);
    out += "> <";
    out += kRdfType;
    out += "> <";
    out += kTypePrefix;
    out += graph.NodeTypeName(u);
    out += "> .\n";
  }
  for (const Triple& t : graph.triples()) {
    out += '<';
    out += kEntityPrefix;
    out += graph.NodeName(t.head);
    out += "> <";
    out += kPredicatePrefix;
    out += graph.PredicateName(t.predicate);
    out += "> <";
    out += kEntityPrefix;
    out += graph.NodeName(t.tail);
    out += "> .\n";
  }
  return out;
}

Result<std::unique_ptr<KnowledgeGraph>> ParseTsvTriples(
    std::string_view text) {
  auto graph = std::make_unique<KnowledgeGraph>();
  std::vector<std::array<std::string, 3>> edges;
  std::unordered_map<std::string, std::string> types;
  int lineno = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() : eol + 1;
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(trimmed, '\t');
    if (fields.size() != 3) {
      return Status::ParseError(
          StrFormat("line %d: expected 3 tab-separated fields", lineno));
    }
    if (fields[1] == "a") {
      types[fields[0]] = fields[2];
    } else {
      edges.push_back({fields[0], fields[1], fields[2]});
    }
  }
  auto type_of = [&](const std::string& name) -> std::string_view {
    auto it = types.find(name);
    return it == types.end() ? std::string_view("Thing")
                             : std::string_view(it->second);
  };
  for (const auto& e : edges) {
    NodeId h = graph->AddNode(e[0], type_of(e[0]));
    NodeId t = graph->AddNode(e[2], type_of(e[2]));
    graph->AddEdge(h, e[1], t);
  }
  for (const auto& [name, type] : types) graph->AddNode(name, type);
  graph->Finalize();
  return graph;
}

std::string WriteTsvTriples(const KnowledgeGraph& graph) {
  std::string out;
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    out += graph.NodeName(u);
    out += "\ta\t";
    out += graph.NodeTypeName(u);
    out += '\n';
  }
  for (const Triple& t : graph.triples()) {
    out += graph.NodeName(t.head);
    out += '\t';
    out += graph.PredicateName(t.predicate);
    out += '\t';
    out += graph.NodeName(t.tail);
    out += '\n';
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace kgsearch
