// Hand-rolled RDF I/O: N-Triples subset and a TSV triple format.
//
// N-Triples lines look like
//   <http://kg/e/Audi_TT> <http://kg/p/assembly> <http://kg/e/Germany> .
//   <http://kg/e/Audi_TT> <rdf:type> <http://kg/t/Automobile> .
//   <http://kg/e/Audi_TT> <rdfs:label> "Audi TT" .
// Entity/type/predicate IRIs use the kg/e/, kg/t/, kg/p/ prefixes; rdf:type
// assigns the node type, rdfs:label an optional display label (our node name
// is the IRI local part, which is unique).
//
// The TSV format is one triple per line: head<TAB>predicate<TAB>tail, with
// node types declared by lines: name<TAB>a<TAB>Type.
#ifndef KGSEARCH_KG_TRIPLE_IO_H_
#define KGSEARCH_KG_TRIPLE_IO_H_

#include <string>
#include <string_view>

#include "kg/graph.h"
#include "util/status.h"

namespace kgsearch {

/// IRI prefixes used by the writer and recognized by the parser.
inline constexpr std::string_view kEntityPrefix = "http://kg/e/";
inline constexpr std::string_view kTypePrefix = "http://kg/t/";
inline constexpr std::string_view kPredicatePrefix = "http://kg/p/";
inline constexpr std::string_view kRdfType = "rdf:type";
inline constexpr std::string_view kRdfsLabel = "rdfs:label";

/// One parsed N-Triples statement.
struct NTriplesStatement {
  std::string subject;    // IRI (full)
  std::string predicate;  // IRI (full)
  std::string object;     // IRI or literal value (unescaped)
  bool object_is_literal = false;
};

/// Streaming N-Triples parser over in-memory text.
///
/// Supports the subset needed for knowledge graphs: IRIs in angle brackets,
/// plain and language-tagged string literals with \" \\ \n \t escapes,
/// comments (#...) and blank lines. Reports the line number on errors.
class NTriplesParser {
 public:
  explicit NTriplesParser(std::string_view text) : text_(text) {}

  /// Parses the next statement into *out. Returns OK and sets *done=true at
  /// end of input; ParseError on malformed lines.
  Status Next(NTriplesStatement* out, bool* done);

  int line_number() const { return line_; }

 private:
  Status ParseLine(std::string_view line, NTriplesStatement* out,
                   bool* is_blank);

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 0;
};

/// Parses a full N-Triples document into a KnowledgeGraph.
///
/// Nodes are named by the IRI local part (after kEntityPrefix); types default
/// to "Thing" until an rdf:type statement is seen. The graph is finalized.
Result<std::unique_ptr<KnowledgeGraph>> ParseNTriples(std::string_view text);

/// Serializes a graph to N-Triples (types via rdf:type, names as IRIs).
std::string WriteNTriples(const KnowledgeGraph& graph);

/// Parses the TSV triple format (see file comment) into a finalized graph.
Result<std::unique_ptr<KnowledgeGraph>> ParseTsvTriples(std::string_view text);

/// Serializes a graph to the TSV triple format.
std::string WriteTsvTriples(const KnowledgeGraph& graph);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, replacing existing content.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace kgsearch

#endif  // KGSEARCH_KG_TRIPLE_IO_H_
