// The node-match relation φ (Definition 3), implemented over a knowledge
// graph and a transformation library.
#ifndef KGSEARCH_MATCH_NODE_MATCHER_H_
#define KGSEARCH_MATCH_NODE_MATCHER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kg/graph.h"
#include "match/transformation_library.h"
#include "util/lru_cache.h"
#include "util/string_util.h"

namespace kgsearch {

/// Shared memo of φ candidate lists. The graph and library are immutable
/// after construction, so cached lists never go stale; one cache can back
/// every matcher over the same (graph, library) pair — the serving layer
/// installs one instance into both the SGQ and TBQ engines.
///
/// Keys are std::string (owned) but lookups are heterogeneous string_views,
/// so the MatchByName/MatchByType hot path allocates no temporary string on
/// a cache hit; only the Put after a miss materializes the key.
struct MatcherCandidateCache {
  using Cache =
      LruCache<std::string, std::vector<NodeId>, StringViewHash, StringViewEq>;

  explicit MatcherCandidateCache(size_t capacity)
      : by_name(capacity), by_type(capacity) {}

  Cache by_name;
  Cache by_type;

  uint64_t hits() const { return by_name.hits() + by_type.hits(); }
  uint64_t misses() const { return by_name.misses() + by_type.misses(); }
};

/// Resolves query node labels to knowledge-graph node candidates.
///
/// Specific nodes (name known) resolve by name; target nodes (type known)
/// resolve by type. Both go through the transformation library's identical /
/// synonym / abbreviation records.
class NodeMatcher {
 public:
  NodeMatcher(const KnowledgeGraph* graph, const TransformationLibrary* library)
      : graph_(graph), library_(library) {
    KG_CHECK(graph != nullptr && library != nullptr);
  }

  /// Installs (or clears, with null) a candidate-list cache. The cache may
  /// be shared across matchers over the same graph + library.
  void set_candidate_cache(std::shared_ptr<MatcherCandidateCache> cache) {
    cache_ = std::move(cache);
  }
  const std::shared_ptr<MatcherCandidateCache>& candidate_cache() const {
    return cache_;
  }

  /// φ for a specific node: KG nodes whose (unique) name resolves from
  /// `query_name`. Empty when nothing matches.
  std::vector<NodeId> MatchByName(std::string_view query_name) const {
    std::vector<NodeId> out;
    if (cache_ && cache_->by_name.Get(query_name, &out)) {
      return out;
    }
    for (const Resolution& r : library_->ResolveName(query_name)) {
      NodeId u = graph_->FindNode(r.canonical);
      if (u != kInvalidNode) out.push_back(u);
    }
    if (cache_) cache_->by_name.Put(std::string(query_name), out);
    return out;
  }

  /// Resolves a query type label to KG TypeIds. Empty when nothing matches.
  std::vector<TypeId> MatchTypes(std::string_view query_type) const {
    std::vector<TypeId> out;
    for (const Resolution& r : library_->ResolveType(query_type)) {
      TypeId t = graph_->FindType(r.canonical);
      if (t != kInvalidSymbol) out.push_back(t);
    }
    return out;
  }

  /// φ for a target node: all KG nodes whose type resolves from `query_type`.
  std::vector<NodeId> MatchByType(std::string_view query_type) const {
    std::vector<NodeId> out;
    if (cache_ && cache_->by_type.Get(query_type, &out)) {
      return out;
    }
    for (TypeId t : MatchTypes(query_type)) {
      auto members = graph_->NodesOfType(t);
      out.insert(out.end(), members.begin(), members.end());
    }
    if (cache_) cache_->by_type.Put(std::string(query_type), out);
    return out;
  }

  const KnowledgeGraph* graph() const { return graph_; }
  const TransformationLibrary* library() const { return library_; }

 private:
  const KnowledgeGraph* graph_;
  const TransformationLibrary* library_;
  std::shared_ptr<MatcherCandidateCache> cache_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_MATCH_NODE_MATCHER_H_
