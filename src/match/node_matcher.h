// The node-match relation φ (Definition 3), implemented over a knowledge
// graph and a transformation library.
#ifndef KGSEARCH_MATCH_NODE_MATCHER_H_
#define KGSEARCH_MATCH_NODE_MATCHER_H_

#include <string_view>
#include <vector>

#include "kg/graph.h"
#include "match/transformation_library.h"

namespace kgsearch {

/// Resolves query node labels to knowledge-graph node candidates.
///
/// Specific nodes (name known) resolve by name; target nodes (type known)
/// resolve by type. Both go through the transformation library's identical /
/// synonym / abbreviation records.
class NodeMatcher {
 public:
  NodeMatcher(const KnowledgeGraph* graph, const TransformationLibrary* library)
      : graph_(graph), library_(library) {
    KG_CHECK(graph != nullptr && library != nullptr);
  }

  /// φ for a specific node: KG nodes whose (unique) name resolves from
  /// `query_name`. Empty when nothing matches.
  std::vector<NodeId> MatchByName(std::string_view query_name) const {
    std::vector<NodeId> out;
    for (const Resolution& r : library_->ResolveName(query_name)) {
      NodeId u = graph_->FindNode(r.canonical);
      if (u != kInvalidNode) out.push_back(u);
    }
    return out;
  }

  /// Resolves a query type label to KG TypeIds. Empty when nothing matches.
  std::vector<TypeId> MatchTypes(std::string_view query_type) const {
    std::vector<TypeId> out;
    for (const Resolution& r : library_->ResolveType(query_type)) {
      TypeId t = graph_->FindType(r.canonical);
      if (t != kInvalidSymbol) out.push_back(t);
    }
    return out;
  }

  /// φ for a target node: all KG nodes whose type resolves from `query_type`.
  std::vector<NodeId> MatchByType(std::string_view query_type) const {
    std::vector<NodeId> out;
    for (TypeId t : MatchTypes(query_type)) {
      auto members = graph_->NodesOfType(t);
      out.insert(out.end(), members.begin(), members.end());
    }
    return out;
  }

  const KnowledgeGraph* graph() const { return graph_; }
  const TransformationLibrary* library() const { return library_; }

 private:
  const KnowledgeGraph* graph_;
  const TransformationLibrary* library_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_MATCH_NODE_MATCHER_H_
