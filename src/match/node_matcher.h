// The node-match relation φ (Definition 3), implemented over a knowledge
// graph view and a transformation library.
#ifndef KGSEARCH_MATCH_NODE_MATCHER_H_
#define KGSEARCH_MATCH_NODE_MATCHER_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kg/graph.h"
#include "kg/graph_view.h"
#include "match/transformation_library.h"
#include "util/lru_cache.h"
#include "util/string_util.h"

namespace kgsearch {

/// A memoized φ candidate list, stamped with the graph epoch it was computed
/// against (kg/graph_view.h). Epoch 0 is the pristine base graph; every
/// delta-overlay commit bumps it. A matcher serving epoch E treats an entry
/// stamped with any other epoch as a miss and overwrites it, so live ingest
/// can never surface a stale candidate list — while the common case (a long
/// run of queries against one epoch) still hits.
struct CachedCandidates {
  uint64_t epoch = 0;
  std::vector<NodeId> ids;
};

/// Shared memo of φ candidate lists. One cache can back every matcher over
/// the same (base graph, library) pair across all epochs — the serving layer
/// installs one instance into both the SGQ and TBQ engines, and per-request
/// matchers pinned to a delta snapshot share it too.
///
/// Keys are std::string (owned) but lookups are heterogeneous string_views,
/// so the MatchByName/MatchByType hot path allocates no temporary string on
/// a cache hit; only the Put after a miss materializes the key.
struct MatcherCandidateCache {
  using Cache =
      LruCache<std::string, CachedCandidates, StringViewHash, StringViewEq>;

  explicit MatcherCandidateCache(size_t capacity)
      : by_name(capacity), by_type(capacity) {}

  Cache by_name;
  Cache by_type;
  /// Lookups that found an entry from a different epoch (recomputed; the
  /// underlying LruCache counted them as hits, so true hits are
  /// hits() - stale_hits()).
  std::atomic<uint64_t> stale{0};

  uint64_t hits() const { return by_name.hits() + by_type.hits(); }
  uint64_t misses() const { return by_name.misses() + by_type.misses(); }
  uint64_t stale_hits() const {
    return stale.load(std::memory_order_relaxed);
  }
};

/// Resolves query node labels to knowledge-graph node candidates.
///
/// Specific nodes (name known) resolve by name; target nodes (type known)
/// resolve by type. Both go through the transformation library's identical /
/// synonym / abbreviation records. The matcher reads through a GraphView,
/// so one constructed over a pinned delta snapshot also matches nodes and
/// types the overlay added.
class NodeMatcher {
 public:
  NodeMatcher(const KnowledgeGraph* graph, const TransformationLibrary* library)
      : view_(*graph), library_(library) {
    KG_CHECK(graph != nullptr && library != nullptr);
  }
  NodeMatcher(GraphView view, const TransformationLibrary* library)
      : view_(view), library_(library) {
    KG_CHECK(library != nullptr);
  }

  /// Installs (or clears, with null) a candidate-list cache. The cache may
  /// be shared across matchers and epochs over the same base graph +
  /// library (entries are epoch-stamped; see MatcherCandidateCache).
  void set_candidate_cache(std::shared_ptr<MatcherCandidateCache> cache) {
    cache_ = std::move(cache);
  }
  const std::shared_ptr<MatcherCandidateCache>& candidate_cache() const {
    return cache_;
  }

  /// φ for a specific node: KG nodes whose (unique) name resolves from
  /// `query_name`. Empty when nothing matches.
  std::vector<NodeId> MatchByName(std::string_view query_name) const {
    if (cache_) {
      CachedCandidates entry;
      if (cache_->by_name.Get(query_name, &entry)) {
        if (entry.epoch == view_.epoch()) return std::move(entry.ids);
        cache_->stale.fetch_add(1, std::memory_order_relaxed);
      }
    }
    std::vector<NodeId> out;
    for (const Resolution& r : library_->ResolveName(query_name)) {
      NodeId u = view_.FindNode(r.canonical);
      if (u != kInvalidNode) out.push_back(u);
    }
    if (cache_) {
      cache_->by_name.Put(std::string(query_name),
                          CachedCandidates{view_.epoch(), out});
    }
    return out;
  }

  /// Resolves a query type label to KG TypeIds. Empty when nothing matches.
  std::vector<TypeId> MatchTypes(std::string_view query_type) const {
    std::vector<TypeId> out;
    for (const Resolution& r : library_->ResolveType(query_type)) {
      TypeId t = view_.FindType(r.canonical);
      if (t != kInvalidSymbol) out.push_back(t);
    }
    return out;
  }

  /// φ for a target node: all KG nodes whose type resolves from `query_type`.
  std::vector<NodeId> MatchByType(std::string_view query_type) const {
    if (cache_) {
      CachedCandidates entry;
      if (cache_->by_type.Get(query_type, &entry)) {
        if (entry.epoch == view_.epoch()) return std::move(entry.ids);
        cache_->stale.fetch_add(1, std::memory_order_relaxed);
      }
    }
    std::vector<NodeId> out;
    for (TypeId t : MatchTypes(query_type)) {
      auto members = view_.NodesOfType(t);
      out.insert(out.end(), members.begin(), members.end());
    }
    if (cache_) {
      cache_->by_type.Put(std::string(query_type),
                          CachedCandidates{view_.epoch(), out});
    }
    return out;
  }

  const GraphView& view() const { return view_; }
  const KnowledgeGraph* graph() const { return &view_.base(); }
  const TransformationLibrary* library() const { return library_; }

 private:
  GraphView view_;
  const TransformationLibrary* library_;
  std::shared_ptr<MatcherCandidateCache> cache_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_MATCH_NODE_MATCHER_H_
