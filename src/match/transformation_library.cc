#include "match/transformation_library.h"

#include <algorithm>

#include "util/string_util.h"

namespace kgsearch {

void TransformationLibrary::AddRecord(RecordMap* map, std::string_view alias,
                                      std::string_view canonical,
                                      MatchKind kind) {
  auto& records = (*map)[ToLower(alias)];
  for (const Record& r : records) {
    if (r.canonical == canonical) return;  // duplicate record
  }
  records.push_back(Record{std::string(canonical), kind});
}

std::vector<Resolution> TransformationLibrary::Resolve(
    const RecordMap& map, std::string_view query) {
  std::vector<Resolution> out;
  out.push_back(Resolution{std::string(query), MatchKind::kIdentical});
  auto it = map.find(ToLower(query));
  if (it != map.end()) {
    for (const Record& r : it->second) {
      if (r.canonical == query) continue;  // identical already listed
      out.push_back(Resolution{r.canonical, r.kind});
    }
  }
  return out;
}

std::string TransformationLibrary::Serialize() const {
  // A thin TSV formatter over the one canonical export order.
  std::string out;
  for (const ExportedRecord& r : ExportRecords()) {
    out += (r.kind == MatchKind::kSynonym) ? "synonym" : "abbreviation";
    out += '\t';
    out += r.type_scope ? "type" : "name";
    out += '\t';
    out += r.alias;
    out += '\t';
    out += r.canonical;
    out += '\n';
  }
  return out;
}

std::vector<TransformationLibrary::ExportedRecord>
TransformationLibrary::ExportRecords() const {
  std::vector<ExportedRecord> out;
  out.reserve(CountRecords(type_records_) + CountRecords(name_records_));
  auto emit = [&out](const RecordMap& map, bool type_scope) {
    std::vector<const std::string*> aliases;
    aliases.reserve(map.size());
    for (const auto& [alias, _] : map) aliases.push_back(&alias);
    std::sort(aliases.begin(), aliases.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    for (const std::string* alias : aliases) {
      for (const Record& r : map.at(*alias)) {
        out.push_back(ExportedRecord{type_scope, r.kind, *alias, r.canonical});
      }
    }
  };
  emit(type_records_, true);
  emit(name_records_, false);
  return out;
}

Result<TransformationLibrary> TransformationLibrary::Deserialize(
    std::string_view text) {
  TransformationLibrary lib;
  int lineno = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = (eol == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() : eol + 1;
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> f = Split(trimmed, '\t');
    if (f.size() != 4) {
      return Status::ParseError(
          StrFormat("line %d: expected 4 fields", lineno));
    }
    MatchKind kind;
    if (f[0] == "synonym") {
      kind = MatchKind::kSynonym;
    } else if (f[0] == "abbreviation") {
      kind = MatchKind::kAbbreviation;
    } else {
      return Status::ParseError(StrFormat("line %d: bad kind '%s'", lineno,
                                          f[0].c_str()));
    }
    if (f[1] == "type") {
      if (kind == MatchKind::kSynonym) {
        lib.AddTypeSynonym(f[2], f[3]);
      } else {
        lib.AddTypeAbbreviation(f[2], f[3]);
      }
    } else if (f[1] == "name") {
      if (kind == MatchKind::kSynonym) {
        lib.AddNameSynonym(f[2], f[3]);
      } else {
        lib.AddNameAbbreviation(f[2], f[3]);
      }
    } else {
      return Status::ParseError(StrFormat("line %d: bad scope '%s'", lineno,
                                          f[1].c_str()));
    }
  }
  return lib;
}

}  // namespace kgsearch
