// Synonym/abbreviation transformation library for node matching
// (Definition 3; Table III in the paper).
//
// The paper builds this from BabelNet; we expose the same interface over
// records supplied by the dataset generator or loaded from a TSV file.
#ifndef KGSEARCH_MATCH_TRANSFORMATION_LIBRARY_H_
#define KGSEARCH_MATCH_TRANSFORMATION_LIBRARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace kgsearch {

/// How a query label matched a knowledge-graph label (Definition 3).
enum class MatchKind {
  kNone = 0,
  kIdentical,
  kSynonym,
  kAbbreviation,
};

inline const char* MatchKindName(MatchKind k) {
  switch (k) {
    case MatchKind::kNone: return "none";
    case MatchKind::kIdentical: return "identical";
    case MatchKind::kSynonym: return "synonym";
    case MatchKind::kAbbreviation: return "abbreviation";
  }
  return "?";
}

/// A resolved label: the canonical KG label plus how it was reached.
struct Resolution {
  std::string canonical;
  MatchKind kind = MatchKind::kNone;
};

/// Maps query-side labels (types and names) to canonical KG labels via
/// identical / synonym / abbreviation records. Lookups are case-sensitive
/// on canonical labels and case-insensitive on aliases (BabelNet-style).
class TransformationLibrary {
 public:
  TransformationLibrary() = default;

  /// Registers `alias` as a synonym of canonical type `canonical`.
  void AddTypeSynonym(std::string_view alias, std::string_view canonical) {
    AddRecord(&type_records_, alias, canonical, MatchKind::kSynonym);
  }
  /// Registers `alias` as an abbreviation of canonical type `canonical`.
  void AddTypeAbbreviation(std::string_view alias,
                           std::string_view canonical) {
    AddRecord(&type_records_, alias, canonical, MatchKind::kAbbreviation);
  }
  /// Registers `alias` as a synonym of canonical entity name `canonical`.
  void AddNameSynonym(std::string_view alias, std::string_view canonical) {
    AddRecord(&name_records_, alias, canonical, MatchKind::kSynonym);
  }
  /// Registers `alias` as an abbreviation of canonical entity name.
  void AddNameAbbreviation(std::string_view alias,
                           std::string_view canonical) {
    AddRecord(&name_records_, alias, canonical, MatchKind::kAbbreviation);
  }

  /// Resolves a query type label to canonical KG type labels.
  /// The identical mapping is always included first.
  std::vector<Resolution> ResolveType(std::string_view query_type) const {
    return Resolve(type_records_, query_type);
  }

  /// Resolves a query entity name to canonical KG entity names.
  std::vector<Resolution> ResolveName(std::string_view query_name) const {
    return Resolve(name_records_, query_name);
  }

  size_t NumTypeRecords() const { return CountRecords(type_records_); }
  size_t NumNameRecords() const { return CountRecords(name_records_); }

  /// Serializes to TSV: kind<TAB>scope<TAB>alias<TAB>canonical per line,
  /// where kind is "synonym"/"abbreviation" and scope is "type"/"name".
  std::string Serialize() const;

  /// Parses Serialize() output.
  static Result<TransformationLibrary> Deserialize(std::string_view text);

  /// One exported alias record (the stored, lower-cased alias key).
  struct ExportedRecord {
    bool type_scope;  ///< true = type record, false = name record
    MatchKind kind;
    std::string alias;
    std::string canonical;
  };

  /// All records in deterministic order: type records before name records,
  /// aliases sorted, and records under one alias in insertion order — so
  /// re-adding them in order rebuilds a library whose Resolve() output is
  /// identical (the snapshot round-trip guarantee).
  std::vector<ExportedRecord> ExportRecords() const;

 private:
  struct Record {
    std::string canonical;
    MatchKind kind;
  };
  using RecordMap = std::unordered_map<std::string, std::vector<Record>>;

  static void AddRecord(RecordMap* map, std::string_view alias,
                        std::string_view canonical, MatchKind kind);
  static std::vector<Resolution> Resolve(const RecordMap& map,
                                         std::string_view query);
  static size_t CountRecords(const RecordMap& map) {
    size_t n = 0;
    for (const auto& [_, v] : map) n += v.size();
    return n;
  }

  RecordMap type_records_;
  RecordMap name_records_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_MATCH_TRANSFORMATION_LIBRARY_H_
