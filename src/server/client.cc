#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>

#include "util/string_util.h"

namespace kgsearch {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Result<NdjsonClient> NdjsonClient::Connect(const std::string& host,
                                           uint16_t port,
                                           int read_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  // Request lines are small and latency-sensitive; don't batch them.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NdjsonClient client;
  client.fd_ = fd;
  client.read_timeout_ms_ = read_timeout_ms;
  return client;
}

Status NdjsonClient::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  std::string framed(line);
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> NdjsonClient::ReadLine() {
  if (fd_ < 0) return Status::IOError("client is not connected");
  const auto take_line = [this]() -> std::optional<std::string> {
    const size_t pos = buffer_.find('\n');
    if (pos == std::string::npos) return std::nullopt;
    std::string line = buffer_.substr(0, pos);
    buffer_.erase(0, pos + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  };
  if (auto line = take_line()) return *line;

  int remaining_ms = read_timeout_ms_;
  char chunk[4096];
  while (true) {
    pollfd p{fd_, POLLIN, 0};
    const int wait_ms = remaining_ms < 0 ? -1 : std::min(remaining_ms, 100);
    const int ready = ::poll(&p, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready > 0) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        return Status::IOError("server closed the connection");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("recv");
      }
      buffer_.append(chunk, static_cast<size_t>(n));
      if (auto line = take_line()) return *line;
      continue;
    }
    if (remaining_ms >= 0) {
      remaining_ms -= wait_ms;
      if (remaining_ms <= 0) {
        return Status::TimedOut("no complete response line within timeout");
      }
    }
  }
}

Result<std::string> NdjsonClient::Call(std::string_view line) {
  KG_RETURN_NOT_OK(SendLine(line));
  return ReadLine();
}

void NdjsonClient::ShutdownSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NdjsonClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace kgsearch
