// NdjsonClient: a minimal blocking client for the TcpServer wire protocol,
// shared by bench_serving, the server tests, and anyone scripting a server
// from C++. One line out, one line in; Call() pairs them. The socket is
// plain blocking TCP with poll-based read timeouts, so a hung or stopped
// server surfaces as Status::TimedOut instead of a stuck thread.
//
// Not thread-safe, deliberately: one client per thread (or external
// synchronization). SendLine and ReadLine may be driven from two dedicated
// threads for pipelined use (the open-loop benchmark does this) as long as
// each side has exactly one caller — the send path touches only fd_ and
// the read path owns buffer_, so the split needs no lock. Because the
// class is single-owner there is nothing for the thread-safety analysis
// (util/thread_annotations.h) to guard; adding an internal Mutex would
// only hide misuse TSan can catch.
#ifndef KGSEARCH_SERVER_CLIENT_H_
#define KGSEARCH_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace kgsearch {

class NdjsonClient {
 public:
  NdjsonClient() = default;
  /// Closes the socket.
  ~NdjsonClient() { Close(); }

  NdjsonClient(NdjsonClient&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        read_timeout_ms_(other.read_timeout_ms_),
        buffer_(std::move(other.buffer_)) {}
  NdjsonClient& operator=(NdjsonClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      read_timeout_ms_ = other.read_timeout_ms_;
      buffer_ = std::move(other.buffer_);
    }
    return *this;
  }
  NdjsonClient(const NdjsonClient&) = delete;
  NdjsonClient& operator=(const NdjsonClient&) = delete;

  /// Connects to a numeric IPv4 host ("127.0.0.1"). `read_timeout_ms`
  /// bounds every subsequent ReadLine (and the Call() reply wait).
  static Result<NdjsonClient> Connect(const std::string& host, uint16_t port,
                                      int read_timeout_ms = 10'000);

  /// Sends `line` plus the terminating newline. kIOError when the
  /// connection is gone.
  Status SendLine(std::string_view line);

  /// The next newline-terminated line, without its terminator. kTimedOut
  /// after read_timeout_ms without a complete line; kIOError when the
  /// server closed the connection first.
  Result<std::string> ReadLine();

  /// SendLine + ReadLine: one request/response exchange.
  Result<std::string> Call(std::string_view line);

  /// Half-closes the write side (the server sees EOF once it has drained
  /// pipelined requests; responses still flow back).
  void ShutdownSend();

  /// Closes the socket entirely (mid-request disconnect, in tests).
  void Close();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  int read_timeout_ms_ = 10'000;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace kgsearch

#endif  // KGSEARCH_SERVER_CLIENT_H_
