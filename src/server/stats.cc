#include "server/stats.h"

namespace kgsearch {

JsonValue EncodeServiceStats(const ServiceStatsSnapshot& stats,
                             double interval_qps) {
  JsonValue json = JsonValue::Object();
  json.Set("generation", JsonValue::Uint(stats.generation));
  json.Set("queries_total", JsonValue::Uint(stats.queries_total));
  json.Set("queries_failed", JsonValue::Uint(stats.queries_failed));
  json.Set("sgq_queries", JsonValue::Uint(stats.sgq_queries));
  json.Set("tbq_queries", JsonValue::Uint(stats.tbq_queries));
  json.Set("queries_rejected", JsonValue::Uint(stats.queries_rejected));
  json.Set("queries_cancelled", JsonValue::Uint(stats.queries_cancelled));
  json.Set("queries_deadline_exceeded",
           JsonValue::Uint(stats.queries_deadline_exceeded));
  json.Set("decomposition_cache_hits",
           JsonValue::Uint(stats.decomposition_cache_hits));
  json.Set("decomposition_cache_misses",
           JsonValue::Uint(stats.decomposition_cache_misses));
  json.Set("matcher_cache_hits", JsonValue::Uint(stats.matcher_cache_hits));
  json.Set("matcher_cache_misses",
           JsonValue::Uint(stats.matcher_cache_misses));
  json.Set("matcher_cache_stale_hits",
           JsonValue::Uint(stats.matcher_cache_stale_hits));
  json.Set("in_flight", JsonValue::Uint(stats.in_flight));
  json.Set("queue_depth", JsonValue::Uint(stats.queue_depth));
  json.Set("executor_queue_depth",
           JsonValue::Uint(stats.executor_queue_depth));
  json.Set("admitted_outstanding",
           JsonValue::Uint(stats.admitted_outstanding));
  json.Set("uptime_seconds", JsonValue::Number(stats.uptime_seconds));
  // The cumulative figure keeps its lifetime semantics on the wire under an
  // explicit name; the interval rate is the one to chart.
  json.Set("qps_lifetime", JsonValue::Number(stats.qps));
  json.Set("qps_interval", JsonValue::Number(interval_qps));
  json.Set("latency_p50_ms", JsonValue::Number(stats.latency_p50_ms));
  json.Set("latency_p95_ms", JsonValue::Number(stats.latency_p95_ms));
  json.Set("latency_max_ms", JsonValue::Number(stats.latency_max_ms));
  return json;
}

}  // namespace kgsearch
