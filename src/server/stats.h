// /stats endpoint support: JSON encoding of ServiceStatsSnapshot plus the
// interval-rate bookkeeping that turns cumulative counters into rates a
// dashboard can chart.
//
// ServiceStatsSnapshot::qps is a lifetime average (cumulative completions /
// uptime) — on a long-lived server it decays toward the long-run mean and
// stops reflecting current load. The wire document therefore reports BOTH:
// "qps_lifetime" (the cumulative figure, useful for totals) and
// "qps_interval" (the rate since the previous /stats read of the same
// dataset, computed via IntervalQps from successive snapshots — the number
// to dashboard).
#ifndef KGSEARCH_SERVER_STATS_H_
#define KGSEARCH_SERVER_STATS_H_

#include <map>
#include <string>

#include "service/service_stats.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgsearch {

/// Encodes one snapshot as a flat JSON object. `interval_qps` is the
/// caller-computed rate since its previous snapshot (see StatsRateTracker);
/// the snapshot's own qps field is reported as "qps_lifetime".
JsonValue EncodeServiceStats(const ServiceStatsSnapshot& stats,
                             double interval_qps);

/// Remembers the previous snapshot per dataset and turns successive reads
/// into interval rates. The first read of a dataset has no predecessor, so
/// it reports the lifetime average (== IntervalQps against an empty
/// snapshot); a read straddling a blue-green dataset swap (the snapshot's
/// generation changed, so the counters reset underneath the name) does the
/// same instead of reporting a bogus zero rate. Thread-safe.
class StatsRateTracker {
 public:
  /// The completion rate since the previous Update for `dataset` (lifetime
  /// average on the first call); remembers `current` for the next call.
  double Update(const std::string& dataset,
                const ServiceStatsSnapshot& current) EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    ServiceStatsSnapshot& prev = prev_[dataset];
    const double rate = IntervalQps(prev, current);
    prev = current;
    return rate;
  }

 private:
  Mutex mutex_;
  std::map<std::string, ServiceStatsSnapshot> prev_ GUARDED_BY(mutex_);
};

}  // namespace kgsearch

#endif  // KGSEARCH_SERVER_STATS_H_
