#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace kgsearch {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

/// Writes `line` + '\n'; false when the client is gone. MSG_NOSIGNAL so a
/// dead peer surfaces as EPIPE instead of killing the process.
bool WriteLine(int fd, std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// True when the peer has orderly-shutdown its write side (or the socket
/// errored) with nothing left to read. Pipelined request bytes waiting in
/// the buffer keep this false — the connection is still alive then.
bool ClientGone(int fd) {
  char probe;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;
  if (n < 0) {
    return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  }
  return false;
}

}  // namespace

TcpServer::TcpServer(KgSession* session, TcpServerOptions options)
    : session_(session),
      options_(std::move(options)),
      clock_(SystemClock::Default()),
      start_micros_(clock_->NowMicros()) {
  KG_CHECK(session_ != nullptr);
  if (options_.poll_interval_ms <= 0) options_.poll_interval_ms = 20;
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("TcpServer::Start called twice");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    started_ = false;
    return Status::InvalidArgument("not a numeric IPv4 address: " +
                                   options_.host);
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    started_ = false;
    return Errno("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const Status status = Errno("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    started_ = false;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    started_ = false;
    return status;
  }
  port_ = ntohs(bound.sin_port);
  // Non-blocking listener: the accept loop polls with a timeout so Stop()
  // never waits on a blocked accept.
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
  start_micros_ = clock_->NowMicros();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Either never started or another Stop is (or was) already running;
    // joining below is single-owner, so bail out.
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is gone, so nothing mutates the list anymore — but
  // take custody under the lock anyway: the unlocked iteration here used
  // to be unprovable (and one list-touching refactor away from a real
  // race). Swapping the list out keeps the teardown lock-free afterwards
  // without ever touching guarded state unlocked.
  std::list<std::unique_ptr<Connection>> remaining;
  {
    MutexLock lock(&conn_mutex_);
    remaining.swap(connections_);
  }
  for (auto& conn : remaining) {
    // Revoke the in-flight query (the engine aborts between expansions)
    // and unblock any read; the thread notices stopping_ on its next
    // poll tick regardless.
    conn->cancel.Cancel();
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : remaining) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  remaining.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::ReapFinishedConnections() {
  MutexLock lock(&conn_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_) {
    ReapFinishedConnections();
    pollfd p{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, options_.poll_interval_ms);
    if (stopping_) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // The connection analogue of admission control: say no in
      // microseconds instead of queueing the client invisibly.
      WriteLine(fd, EncodeErrorJson(Status::ResourceExhausted(StrFormat(
                        "server over capacity: %zu connections",
                        options_.max_connections))));
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(&conn_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      ServeConnection(raw);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void TcpServer::ServeConnection(Connection* conn) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_) {
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (Trim(line).empty()) continue;  // blank lines are keep-alives
      if (!HandleLine(conn, line)) return;
      if (stopping_) return;
    }
    if (buffer.size() > options_.max_line_bytes) {
      // The stream cannot be resynchronized against an over-long line;
      // answer precisely, then close.
      WriteLine(conn->fd,
                EncodeErrorJson(Status::InvalidArgument(StrFormat(
                    "request line exceeds %zu bytes",
                    options_.max_line_bytes))));
      return;
    }
    pollfd p{conn->fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, options_.poll_interval_ms);
    if (stopping_) return;
    if (ready <= 0) continue;
    const ssize_t got = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (got == 0) return;  // orderly EOF
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return;
    }
    buffer.append(chunk, static_cast<size_t>(got));
  }
}

namespace {

/// True when the raw line carries an "ingest" JSON *key* (the quoted token
/// followed by a colon). A plain substring test is not enough: a query for
/// a dataset literally named "ingest" contains the bytes `"ingest"` as a
/// string value, but a value is followed by ',' or '}', never ':'. Interior
/// quotes in JSON strings are escaped, so the quoted token itself cannot be
/// forged inside a longer string. A line where the key is nested (not the
/// top-level member) just decodes to a clean error on the ingest path.
bool LooksLikeIngest(const std::string& line) {
  size_t pos = 0;
  while ((pos = line.find("\"ingest\"", pos)) != std::string::npos) {
    size_t after = pos + std::string_view("\"ingest\"").size();
    while (after < line.size() &&
           (line[after] == ' ' || line[after] == '\t')) {
      ++after;
    }
    if (after < line.size() && line[after] == ':') return true;
    pos = after;
  }
  return false;
}

}  // namespace

bool TcpServer::HandleLine(Connection* conn, const std::string& line) {
  std::string response;
  if (line.rfind("GET", 0) == 0) {
    response = HandleGet(line);
  } else if (LooksLikeIngest(line)) {
    response = ExecuteIngest(line);
  } else {
    response = ExecuteQuery(conn, line);
  }
  return WriteLine(conn->fd, response);
}

Result<JsonValue> TcpServer::DatasetStats(const std::string& name) {
  Result<ServiceStatsSnapshot> stats = session_->Stats(name);
  KG_RETURN_NOT_OK(stats.status());
  const double interval_qps =
      rate_tracker_.Update(name, stats.ValueOrDie());
  return EncodeServiceStats(stats.ValueOrDie(), interval_qps);
}

std::string TcpServer::HandleGet(std::string_view line) {
  const std::string_view target = Trim(line.substr(3));
  if (target == "/healthz") {
    // Deliberately no admission, no engines, no per-dataset locks beyond
    // the registry: health must answer while every slot is flooded.
    JsonValue json = JsonValue::Object();
    json.Set("v", JsonValue::Int(kApiProtocolVersion));
    json.Set("status", JsonValue::String("ok"));
    json.Set("datasets",
             JsonValue::Uint(session_->ListDatasets().size()));
    json.Set("active_connections", JsonValue::Uint(active_connections()));
    json.Set("uptime_seconds",
             JsonValue::Number(
                 static_cast<double>(clock_->NowMicros() - start_micros_) /
                 1e6));
    return json.Dump();
  }
  if (target == "/stats" || target.rfind("/stats/", 0) == 0) {
    JsonValue datasets = JsonValue::Object();
    if (target == "/stats") {
      for (const DatasetInfo& info : session_->ListDatasets()) {
        Result<JsonValue> stats = DatasetStats(info.name);
        // Datasets cannot be unregistered, so this cannot fail; keep the
        // error path total anyway.
        if (stats.ok()) datasets.Set(info.name, stats.ValueOrDie());
      }
    } else {
      const std::string name(target.substr(std::string_view("/stats/")
                                               .size()));
      Result<JsonValue> stats = DatasetStats(name);
      if (!stats.ok()) return EncodeErrorJson(stats.status());
      datasets.Set(name, stats.ValueOrDie());
    }
    JsonValue json = JsonValue::Object();
    json.Set("v", JsonValue::Int(kApiProtocolVersion));
    json.Set("datasets", std::move(datasets));
    return json.Dump();
  }
  return EncodeErrorJson(Status::InvalidArgument(
      "unknown GET target (want /healthz, /stats, /stats/<dataset>): " +
      std::string(target)));
}

std::string TcpServer::ExecuteIngest(const std::string& line) {
  // Synchronous on the connection thread: commits are O(|delta|) memory
  // operations, not engine work, so they need neither the pool nor
  // admission. Per-connection ordering also makes the common
  // ingest-then-query script read its own writes.
  return session_->IngestJson(line);
}

std::string TcpServer::ExecuteQuery(Connection* conn,
                                    const std::string& line) {
  Result<QueryRequest> request = DecodeQueryRequestJson(line);
  if (!request.ok()) return EncodeErrorJson(request.status());
  // Through the facade, exactly like an in-process caller: admission,
  // deadline stamping, priority, and counters all behave identically
  // (the server differential tests assert bit-identical answers).
  std::future<Result<QueryResponse>> future =
      session_->Submit(std::move(request).ValueOrDie(), &conn->cancel);
  const auto tick = std::chrono::milliseconds(options_.poll_interval_ms);
  while (future.wait_for(tick) != std::future_status::ready) {
    // A client that hung up mid-request gets its query revoked so the
    // admission slot comes back now, not when the engine finishes.
    if (stopping_ || ClientGone(conn->fd)) conn->cancel.Cancel();
  }
  Result<QueryResponse> response = future.get();
  if (!response.ok()) return EncodeErrorJson(response.status());
  return EncodeQueryResponseJson(response.ValueOrDie());
}

}  // namespace kgsearch
