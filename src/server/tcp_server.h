// TcpServer: the wire protocol (api/protocol.h) over real sockets.
//
// Transport is newline-delimited JSON over TCP: one QueryRequest document
// per line in, one QueryResponse (or {"error":...}) document per line out,
// answered in request order per connection. Ingest documents
// ({"v":1,"ingest":{...}} — live mutation batches, api/protocol.h) ride the
// same framing and are routed by their "ingest" JSON key: the quoted token
// followed by a colon. The colon check matters — a query for a dataset
// literally named "ingest" contains the same bytes as a string *value*, and
// values are never followed by ':'. Two GET-style verbs ride along for
// operators:
//
//   GET /healthz          -> {"v":1,"status":"ok",...}
//   GET /stats            -> per-dataset ServiceStatsSnapshot documents
//   GET /stats/<dataset>  -> one dataset's counters
//
// Every query routes through the owning KgSession facade, so deadlines,
// priorities, admission slots, and answers behave identically to in-process
// calls (the server differential tests assert bit-identical answers). The
// verbs never touch admission control — /healthz answers even when every
// slot is taken by a request flood.
//
// Execution model: one accept loop plus one reader thread per connection.
// The reader decodes a line, submits it through KgSession::Submit with a
// per-connection CancelToken, and while waiting polls the socket — a client
// that disconnects mid-request cancels its own query, so its admission slot
// is returned promptly instead of leaking until the engine finishes.
// Hostile input is bounded twice: lines over max_line_bytes answer a clean
// error and close the connection, and the JSON decoders themselves are
// total (depth-limited, size-capped, UTF-8-validated — see util/json.h).
//
// Thread-safety: Start/Stop/port/gauges may be called from any thread;
// Stop (idempotent, also run by the destructor) cancels in-flight queries
// and joins every thread before returning.
#ifndef KGSEARCH_SERVER_TCP_SERVER_H_
#define KGSEARCH_SERVER_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "api/session.h"
#include "server/stats.h"
#include "util/cancel.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgsearch {

struct TcpServerOptions {
  /// Bind address (numeric IPv4). The default stays loopback-only; expose a
  /// server deliberately with "0.0.0.0".
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Concurrent connections; over-limit clients get one
  /// {"error": ResourceExhausted} line and are closed — the connection
  /// analogue of admission control's fail-fast rejection.
  size_t max_connections = 64;
  /// Longest accepted request line. Longer lines answer a clean
  /// InvalidArgument error and close the connection (the stream cannot be
  /// resynchronized against a hostile sender). Defaults to the wire
  /// protocol's own document cap.
  size_t max_line_bytes = kMaxWireRequestBytes;
  /// Cadence of the stop-flag / client-disconnect polls. Bounds how stale a
  /// disconnect can go unnoticed while a query runs.
  int poll_interval_ms = 20;
};

/// Serves a KgSession's datasets over TCP. The session must outlive the
/// server and is shared: in-process callers and other servers may keep
/// using it concurrently.
class TcpServer {
 public:
  explicit TcpServer(KgSession* session, TcpServerOptions options = {});
  /// Stops and joins everything.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept loop. kIOError with the errno
  /// message when the address cannot be bound; kInvalidArgument on a bad
  /// host or a second Start.
  Status Start();

  /// Cancels in-flight queries, closes every connection and the listener,
  /// and joins all threads. Idempotent.
  void Stop() EXCLUDES(conn_mutex_);

  /// The bound port (the resolved one when options.port was 0); 0 before a
  /// successful Start.
  uint16_t port() const { return port_; }
  bool running() const { return started_ && !stopping_; }

  /// Connections currently being served (a load signal, racy by nature).
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }
  /// Connections accepted over the server's lifetime, including ones
  /// rejected over max_connections.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Cancels this connection's in-flight query on disconnect/shutdown.
    CancelToken cancel;
  };

  void AcceptLoop() EXCLUDES(conn_mutex_);
  /// Joins and erases finished connections (called from the accept loop).
  /// Joining under conn_mutex_ is deadlock-free: connection threads never
  /// take the lock (see the lock-ordering note in util/mutex.h).
  void ReapFinishedConnections() EXCLUDES(conn_mutex_);
  /// Reads lines and answers them until EOF, error, or shutdown.
  void ServeConnection(Connection* conn);
  /// Answers one request line; false when the connection must close.
  bool HandleLine(Connection* conn, const std::string& line);
  /// A GET verb line ("GET /healthz", "GET /stats[/<dataset>]").
  std::string HandleGet(std::string_view line);
  /// Decode -> Submit -> wait (polling for disconnect) -> encode.
  std::string ExecuteQuery(Connection* conn, const std::string& line);
  /// An {"v":1,"ingest":{...}} line: decode -> commit -> encode.
  std::string ExecuteIngest(const std::string& line);
  /// One dataset's stats document, with the interval rate filled in.
  Result<JsonValue> DatasetStats(const std::string& name);

  KgSession* session_;
  TcpServerOptions options_;
  const Clock* clock_;

  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  /// Guards the connection list against the accept loop's push/reap;
  /// Stop() swaps the list out under this lock before tearing it down.
  Mutex conn_mutex_;
  std::list<std::unique_ptr<Connection>> connections_
      GUARDED_BY(conn_mutex_);
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> connections_accepted_{0};

  StatsRateTracker rate_tracker_;
  int64_t start_micros_ = 0;
};

}  // namespace kgsearch

#endif  // KGSEARCH_SERVER_TCP_SERVER_H_
