// Admission control for the serving layer: bounded acceptance of work with
// fail-fast backpressure instead of unbounded queueing.
//
// The model is one outstanding-request gauge per service covering every
// admitted request from admission until completion (executing or waiting in
// the shared executor's queue), with two capacity knobs:
//
//   max_in_flight  — capacity for requests that execute immediately
//                    (synchronous calls run on the caller's thread);
//   max_queued     — additional capacity reserved for asynchronous
//                    submissions, which tolerate waiting behind a busy pool.
//
// A synchronous request is admitted iff outstanding < max_in_flight; an
// asynchronous one iff outstanding < max_in_flight + max_queued. Anything
// over the limit is rejected immediately with kResourceExhausted — the
// caller learns about overload in microseconds rather than by timing out at
// the back of a queue. High-priority requests (RequestPriority::kHigh)
// bypass both limits (they are still counted, so they shrink the capacity
// visible to normal traffic — the intended starvation direction under
// overload). max_in_flight == 0 disables admission control entirely
// (backward-compatible default).
//
// Note that execution parallelism itself is bounded by the executor's
// worker count; admission bounds how much work the service *accepts*, which
// is what keeps tail latency flat when demand exceeds capacity (see
// bench_admission).
//
// Deliberately lock-free: the gate is one CAS loop over a single atomic
// gauge, so there is nothing for the thread-safety analysis
// (util/thread_annotations.h) to guard. TryAdmit is [[nodiscard]] — a
// dropped admission decision is either a leaked slot or an unenforced
// limit, both accounting bugs.
#ifndef KGSEARCH_SERVICE_ADMISSION_H_
#define KGSEARCH_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"
#include "util/string_util.h"

namespace kgsearch {

/// Scheduling class of one request. Wire-encoded by api/protocol, honored
/// by QueryService admission.
enum class RequestPriority {
  kNormal = 0,  ///< subject to admission limits (the default)
  kHigh = 1,    ///< bypasses admission limits (health checks, operators)
};

inline const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kNormal: return "normal";
    case RequestPriority::kHigh: return "high";
  }
  return "?";
}

inline Result<RequestPriority> ParseRequestPriorityName(
    std::string_view name) {
  if (name == "normal") return RequestPriority::kNormal;
  if (name == "high") return RequestPriority::kHigh;
  return Status::InvalidArgument("unknown priority: " + std::string(name));
}

/// Lock-free outstanding-request gate. TryAdmit/Release may be called
/// concurrently from any thread; the outstanding gauge can never exceed
/// max_in_flight + max_queued through normal-priority admissions.
class AdmissionController {
 public:
  /// Limits of 0 for max_in_flight disable the gate entirely.
  AdmissionController(size_t max_in_flight, size_t max_queued)
      : max_in_flight_(max_in_flight), max_queued_(max_queued) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// True when admission control is active.
  [[nodiscard]] bool enabled() const { return max_in_flight_ > 0; }

  /// Attempts to admit one request; on success the caller owes exactly one
  /// Release() when the request finishes (however it finishes). On failure
  /// the rejection counter is bumped and nothing is owed.
  [[nodiscard]] bool TryAdmit(bool async, RequestPriority priority) {
    if (!enabled() || priority == RequestPriority::kHigh) {
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const size_t limit =
        async ? max_in_flight_ + max_queued_ : max_in_flight_;
    size_t current = outstanding_.load(std::memory_order_relaxed);
    while (current < limit) {
      if (outstanding_.compare_exchange_weak(current, current + 1,
                                             std::memory_order_relaxed)) {
        return true;
      }
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void Release() { outstanding_.fetch_sub(1, std::memory_order_relaxed); }

  /// The kResourceExhausted status a failed TryAdmit is reported as;
  /// `subject` names what is overloaded (e.g. "service", a dataset).
  Status OverCapacityStatus(bool async, std::string_view subject) const {
    if (async) {
      return Status::ResourceExhausted(StrFormat(
          "%.*s over capacity: %zu requests outstanding (max_in_flight "
          "%zu + max_queued %zu)",
          static_cast<int>(subject.size()), subject.data(), outstanding(),
          max_in_flight_, max_queued_));
    }
    return Status::ResourceExhausted(StrFormat(
        "%.*s over capacity: %zu requests outstanding (max_in_flight %zu)",
        static_cast<int>(subject.size()), subject.data(), outstanding(),
        max_in_flight_));
  }

  size_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  size_t max_in_flight() const { return max_in_flight_; }
  size_t max_queued() const { return max_queued_; }

 private:
  const size_t max_in_flight_;
  const size_t max_queued_;
  std::atomic<size_t> outstanding_{0};
  std::atomic<uint64_t> rejected_{0};
};

/// RAII custody of one admitted slot: releases on destruction, so the slot
/// cannot leak even when execution throws. Null-safe and movable; the gate
/// must outlive the slot.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  /// Takes over a slot the caller already acquired via TryAdmit.
  explicit AdmissionSlot(AdmissionController* gate) : gate_(gate) {}
  AdmissionSlot(AdmissionSlot&& other) noexcept
      : gate_(std::exchange(other.gate_, nullptr)) {}
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      if (gate_ != nullptr) gate_->Release();
      gate_ = std::exchange(other.gate_, nullptr);
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() {
    if (gate_ != nullptr) gate_->Release();
  }

 private:
  AdmissionController* gate_ = nullptr;
};

}  // namespace kgsearch

#endif  // KGSEARCH_SERVICE_ADMISSION_H_
