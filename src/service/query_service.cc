#include "service/query_service.h"

#include <utility>

#include "util/cancel.h"
#include "util/string_util.h"

namespace kgsearch {

namespace {

/// Monotone process-wide source of ServiceStatsSnapshot::generation values;
/// starts at 1 so a default-constructed snapshot (generation 0) never
/// matches a real service.
uint64_t NextServiceGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

std::string QuerySignature(const QueryGraph& query, PivotStrategy strategy,
                           size_t n_hat, uint64_t seed) {
  // Node and edge labels separated by unit separators; '\x1f' cannot occur
  // in sane labels, so distinct queries cannot collide.
  std::string sig;
  sig.reserve(64 + query.NumNodes() * 16 + query.NumEdges() * 16);
  sig += StrFormat("s%d;n%zu;r%llu", static_cast<int>(strategy), n_hat,
                   static_cast<unsigned long long>(seed));
  for (const QueryNode& node : query.nodes()) {
    sig += '\x1f';
    sig += node.type;
    sig += '\x1e';
    sig += node.name;
  }
  for (const QueryEdge& edge : query.edges()) {
    sig += StrFormat("\x1f%d-%d:", edge.from, edge.to);
    sig += edge.predicate;
  }
  return sig;
}

/// RAII guard over one query execution: construction marks the query in
/// flight, Finish(ok) records latency and outcome. If an exception skips
/// Finish, the destructor records the query as failed so the in-flight
/// gauge and totals can never drift.
class QueryService::FlightTracker {
 public:
  FlightTracker(QueryService* service, std::atomic<uint64_t>* mode_counter)
      : service_(service), mode_counter_(mode_counter), watch_(service->clock_) {
    service_->in_flight_.fetch_add(1, std::memory_order_relaxed);
  }

  ~FlightTracker() {
    if (!finished_) Finish(false);
  }

  void Finish(bool ok) {
    finished_ = true;
    service_->latency_.RecordMicros(watch_.ElapsedMicros());
    service_->queries_total_.fetch_add(1, std::memory_order_relaxed);
    mode_counter_->fetch_add(1, std::memory_order_relaxed);
    if (!ok) service_->queries_failed_.fetch_add(1, std::memory_order_relaxed);
    service_->in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  QueryService* service_;
  std::atomic<uint64_t>* mode_counter_;
  StopWatch watch_;
  bool finished_ = false;
};

QueryService::QueryService(const KnowledgeGraph* graph,
                           const PredicateSpace* space,
                           const TransformationLibrary* library,
                           QueryServiceOptions options, const Clock* clock)
    : clock_(clock),
      generation_(NextServiceGeneration()),
      sgq_(graph, space, library, clock),
      tbq_(graph, space, library, clock),
      decomposition_cache_(options.decomposition_cache_capacity),
      admission_(options.max_in_flight, options.max_queued),
      start_micros_(clock->NowMicros()),
      external_pool_(options.executor),
      owned_pool_(options.executor != nullptr
                      ? nullptr
                      : std::make_unique<ThreadPool>(
                            DefaultPoolThreads(options.num_threads))) {
  if (options.matcher_cache_capacity > 0) {
    matcher_cache_ = std::make_shared<MatcherCandidateCache>(
        options.matcher_cache_capacity);
    sgq_.mutable_matcher()->set_candidate_cache(matcher_cache_);
    tbq_.mutable_matcher()->set_candidate_cache(matcher_cache_);
  }
}

QueryService::~QueryService() {
  // Async tasks capture `this`; they must all finish before members are
  // destroyed. With an owned pool its destructor would drain them anyway,
  // but an external executor outlives the service, so wait explicitly.
  outstanding_.Wait();
}

Result<Decomposition> QueryService::CachedDecomposition(
    const QueryGraph& query, PivotStrategy strategy, size_t n_hat,
    uint64_t seed, const GraphView& view) {
  // Plan cache: DecomposeQuery is pure in (query, strategy, n_hat, seed,
  // graph). The graph is no longer immutable under live ingest, so the
  // view's epoch joins the key — a hit replays the exact plan for exactly
  // that graph state (epoch 0 = the pristine base).
  std::string key = QuerySignature(query, strategy, n_hat, seed);
  key += StrFormat("\x1f" "e%llu",
                   static_cast<unsigned long long>(view.epoch()));
  Decomposition decomposition;
  if (decomposition_cache_.Get(key, &decomposition)) return decomposition;
  Result<Decomposition> computed = DecomposeQuery(
      query, MakeDecomposeOptions(view, strategy, n_hat, seed));
  if (!computed.ok()) return computed.status();
  decomposition_cache_.Put(key, computed.ValueOrDie());
  return computed;
}

void QueryService::ClassifyOutcome(const Status& status) {
  if (status.code() == StatusCode::kCancelled) {
    queries_cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    queries_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<QueryResult> QueryService::ExecuteSgq(const QueryGraph& query,
                                             EngineOptions options) {
  options.executor = executor();
  FlightTracker tracker(this, &sgq_queries_);
  // Fail before paying for decomposition when the request arrived already
  // expired or revoked (an async task may have waited out its own budget
  // in the queue). The engine re-polls the same policy between expansions.
  Status interrupted =
      CheckInterrupt(options.cancel, options.deadline_micros, clock_);
  if (!interrupted.ok()) {
    tracker.Finish(false);
    ClassifyOutcome(interrupted);
    return interrupted;
  }
  const GraphView view =
      options.view != nullptr ? *options.view : GraphView(sgq_.graph());
  Result<Decomposition> decomposition = CachedDecomposition(
      query, options.pivot_strategy, options.n_hat, options.seed, view);
  if (!decomposition.ok()) {
    tracker.Finish(false);
    return decomposition.status();
  }
  Result<QueryResult> result =
      sgq_.QueryDecomposed(query, decomposition.ValueOrDie(), options);
  tracker.Finish(result.ok());
  if (!result.ok()) ClassifyOutcome(result.status());
  return result;
}

Result<QueryResult> QueryService::QueryAdmitted(const QueryGraph& query,
                                                EngineOptions options) {
  return ExecuteSgq(query, std::move(options));
}

Result<QueryResult> QueryService::Query(const QueryGraph& query,
                                        EngineOptions options,
                                        RequestPriority priority) {
  if (!admission_.TryAdmit(/*async=*/false, priority)) {
    return admission_.OverCapacityStatus(/*async=*/false, "service");
  }
  AdmissionSlot slot(&admission_);  // released even if execution throws
  return ExecuteSgq(query, std::move(options));
}

template <typename ResultT, typename RunFn>
std::future<ResultT> QueryService::SubmitImpl(RunFn run,
                                              RequestPriority priority) {
  // Admission is decided at submission so overload is reported in
  // microseconds; the slot is held until the task finishes (it covers the
  // queue wait) and returned on the shutdown-rejection path too.
  if (!admission_.TryAdmit(/*async=*/true, priority)) {
    std::promise<ResultT> rejected;
    rejected.set_value(
        ResultT(admission_.OverCapacityStatus(/*async=*/true, "service")));
    return rejected.get_future();
  }
  return SubmitTracked<ResultT>(
      executor(), &outstanding_, &queued_,
      [this, run = std::move(run)]() mutable {
        AdmissionSlot slot(&admission_);  // released even if run() throws
        return run();
      },
      ResultT(Status::Internal("query service is shutting down")),
      /*on_reject=*/[this] { admission_.Release(); });
}

std::future<Result<QueryResult>> QueryService::Submit(
    QueryGraph query, EngineOptions options, RequestPriority priority) {
  return SubmitImpl<Result<QueryResult>>(
      [this, query = std::move(query), options]() {
        return ExecuteSgq(query, options);
      },
      priority);
}

Result<TimeBoundedResult> QueryService::ExecuteTbq(
    const QueryGraph& query, TimeBoundedOptions options) {
  options.executor = executor();
  FlightTracker tracker(this, &tbq_queries_);
  Status interrupted =
      CheckInterrupt(options.cancel, options.deadline_micros, clock_);
  if (!interrupted.ok()) {
    tracker.Finish(false);
    ClassifyOutcome(interrupted);
    return interrupted;
  }
  const GraphView view =
      options.view != nullptr ? *options.view : GraphView(sgq_.graph());
  Result<Decomposition> decomposition = CachedDecomposition(
      query, options.pivot_strategy, options.n_hat, options.seed, view);
  if (!decomposition.ok()) {
    tracker.Finish(false);
    return decomposition.status();
  }
  Result<TimeBoundedResult> result =
      tbq_.QueryDecomposed(query, decomposition.ValueOrDie(), options);
  tracker.Finish(result.ok());
  if (!result.ok()) ClassifyOutcome(result.status());
  return result;
}

Result<TimeBoundedResult> QueryService::QueryTimeBoundedAdmitted(
    const QueryGraph& query, TimeBoundedOptions options) {
  return ExecuteTbq(query, std::move(options));
}

Result<TimeBoundedResult> QueryService::QueryTimeBounded(
    const QueryGraph& query, TimeBoundedOptions options,
    RequestPriority priority) {
  if (!admission_.TryAdmit(/*async=*/false, priority)) {
    return admission_.OverCapacityStatus(/*async=*/false, "service");
  }
  AdmissionSlot slot(&admission_);  // released even if execution throws
  return ExecuteTbq(query, std::move(options));
}

std::future<Result<TimeBoundedResult>> QueryService::SubmitTimeBounded(
    QueryGraph query, TimeBoundedOptions options, RequestPriority priority) {
  return SubmitImpl<Result<TimeBoundedResult>>(
      [this, query = std::move(query), options]() {
        return ExecuteTbq(query, options);
      },
      priority);
}

ServiceStatsSnapshot QueryService::Stats() const {
  ServiceStatsSnapshot s;
  s.generation = generation_;
  s.queries_total = queries_total_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.sgq_queries = sgq_queries_.load(std::memory_order_relaxed);
  s.tbq_queries = tbq_queries_.load(std::memory_order_relaxed);
  s.queries_rejected = admission_.rejected();
  s.queries_cancelled = queries_cancelled_.load(std::memory_order_relaxed);
  s.queries_deadline_exceeded =
      queries_deadline_exceeded_.load(std::memory_order_relaxed);
  s.decomposition_cache_hits = decomposition_cache_.hits();
  s.decomposition_cache_misses = decomposition_cache_.misses();
  if (matcher_cache_) {
    s.matcher_cache_hits = matcher_cache_->hits();
    s.matcher_cache_misses = matcher_cache_->misses();
    s.matcher_cache_stale_hits = matcher_cache_->stale_hits();
  }
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.queue_depth = queued_.load(std::memory_order_relaxed);
  s.executor_queue_depth = executor()->queue_depth();
  s.admitted_outstanding = admission_.outstanding();
  s.uptime_seconds =
      static_cast<double>(clock_->NowMicros() - start_micros_) / 1e6;
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.queries_total) / s.uptime_seconds
              : 0.0;
  s.latency_p50_ms = latency_.PercentileMicros(0.50) / 1000.0;
  s.latency_p95_ms = latency_.PercentileMicros(0.95) / 1000.0;
  s.latency_max_ms = static_cast<double>(latency_.max_micros()) / 1000.0;
  return s;
}

}  // namespace kgsearch
