// QueryService: concurrent serving of SGQ and TBQ queries over one shared
// process-wide executor.
//
// The engines themselves are stateless per query (const Query methods over
// immutable graph/space/library), so the serving layer's job is resource
// multiplexing and memoization:
//  - one ThreadPool shared by every in-flight query; sub-query A* searches
//    run as caller-participating batches (RunOnPool), so a pool saturated
//    with queries still makes progress on each query's own sub-queries;
//  - an LRU cache of query decompositions (DecomposeQuery is pure in the
//    query + options, so cached plans are bit-identical to fresh ones);
//  - a shared LRU cache of node-matcher candidate lists, installed into
//    both engines' matchers;
//  - per-service counters: QPS, cache hit rates, queue depth, in-flight
//    gauge, and a p50/p95/max latency histogram;
//  - overload safety: a bounded admission gate (service/admission.h) that
//    fails fast with kResourceExhausted instead of queueing without limit,
//    plus per-request deadlines and cooperative cancellation
//    (EngineOptions::deadline_micros / ::cancel) that stop a running query
//    between node expansions with kDeadlineExceeded / kCancelled.
//
// Thread-safety: all public methods may be called concurrently from any
// thread. The service holds no naked locks of its own — its mutable state
// is the annotated LruCaches (util/lru_cache.h), the lock-free admission
// gate and counters, and the pool-layer WaitGroup, each of which
// synchronizes itself; the Clang thread-safety build proves the cache and
// pool lock discipline (see util/thread_annotations.h, and the lock
// ordering in util/mutex.h: service-layer cache locks may be taken while
// the session registry lock is held, never the reverse).
// Results are bit-identical to direct serial SgqEngine execution
// for the same query and options (the differential tests assert this);
// admission control and never-firing deadlines/tokens do not change any
// accepted query's answer.
#ifndef KGSEARCH_SERVICE_QUERY_SERVICE_H_
#define KGSEARCH_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/time_bounded.h"
#include "service/admission.h"
#include "service/service_stats.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace kgsearch {

/// Serving-layer knobs (per-query knobs stay in EngineOptions /
/// TimeBoundedOptions).
struct QueryServiceOptions {
  /// Worker threads in the shared pool; 0 = std::thread::hardware_concurrency
  /// (minimum 2 so async queries overlap even on tiny machines). Ignored
  /// when `executor` is set.
  size_t num_threads = 0;
  /// Non-owning process-wide executor. When set, the service runs all
  /// queries on it instead of owning a pool, so many services (e.g. one per
  /// dataset in a KgSession) multiplex over one pool. Must outlive the
  /// service.
  ThreadPool* executor = nullptr;
  /// Entries in the decomposition plan cache; 0 disables it.
  size_t decomposition_cache_capacity = 512;
  /// Entries per kind (name/type) in the shared matcher candidate cache;
  /// 0 disables it.
  size_t matcher_cache_capacity = 4096;
  /// Admission control (see service/admission.h): capacity for requests
  /// admitted to execute immediately. 0 = admission control off (the
  /// backward-compatible default, matching pre-admission behavior).
  size_t max_in_flight = 0;
  /// Additional admission capacity reserved for async submissions waiting
  /// on the executor. Over-limit requests fail fast with
  /// kResourceExhausted. Meaningless while max_in_flight == 0.
  size_t max_queued = 0;
};

/// A stable cache key for (query graph, decomposition-relevant options).
/// Exposed for tests.
std::string QuerySignature(const QueryGraph& query, PivotStrategy strategy,
                           size_t n_hat, uint64_t seed);

/// Multiplexes many concurrent SGQ/TBQ queries over one shared executor.
class QueryService {
 public:
  /// All pointers must outlive the service.
  QueryService(const KnowledgeGraph* graph, const PredicateSpace* space,
               const TransformationLibrary* library,
               QueryServiceOptions options = {},
               const Clock* clock = SystemClock::Default());

  /// Waits for every submitted async query to finish; when the pool is
  /// owned (no external executor), then joins it.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Synchronous SGQ query on the shared executor. `options.executor` and
  /// `options.threads` are overridden by the service's pool. With
  /// admission control on, over-limit requests return kResourceExhausted
  /// without executing; an expired `options.deadline_micros` or cancelled
  /// `options.cancel` returns kDeadlineExceeded / kCancelled.
  Result<QueryResult> Query(const QueryGraph& query, EngineOptions options,
                            RequestPriority priority =
                                RequestPriority::kNormal);

  /// Asynchronous SGQ query: enqueues on the shared pool and returns a
  /// future. Admission is decided HERE (fail fast), not when the task
  /// starts; an absolute deadline therefore counts queue wait.
  std::future<Result<QueryResult>> Submit(QueryGraph query,
                                          EngineOptions options,
                                          RequestPriority priority =
                                              RequestPriority::kNormal);

  /// Synchronous TBQ query on the shared executor.
  Result<TimeBoundedResult> QueryTimeBounded(const QueryGraph& query,
                                             TimeBoundedOptions options,
                                             RequestPriority priority =
                                                 RequestPriority::kNormal);

  /// Asynchronous TBQ query.
  std::future<Result<TimeBoundedResult>> SubmitTimeBounded(
      QueryGraph query, TimeBoundedOptions options,
      RequestPriority priority = RequestPriority::kNormal);

  /// Execution for a caller that already holds a slot on
  /// mutable_admission() (the KgSession facade admits async requests at
  /// submission time so its session-level queue stays bounded, then runs
  /// them here without a second gate). The caller owes exactly one
  /// Release() — use AdmissionSlot. Deadline/cancel handling and all
  /// counters behave exactly as in Query/QueryTimeBounded.
  Result<QueryResult> QueryAdmitted(const QueryGraph& query,
                                    EngineOptions options);
  Result<TimeBoundedResult> QueryTimeBoundedAdmitted(
      const QueryGraph& query, TimeBoundedOptions options);

  /// Point-in-time counter snapshot.
  [[nodiscard]] ServiceStatsSnapshot Stats() const;

  size_t num_threads() const { return executor()->num_threads(); }
  /// Admission-gate introspection (limits + gauges), for tests and demos.
  const AdmissionController& admission() const { return admission_; }
  /// The gate itself, for callers that admit ahead of QueryAdmitted.
  AdmissionController* mutable_admission() { return &admission_; }
  /// The executor queries run on (owned or externally shared).
  ThreadPool* executor() const {
    return external_pool_ != nullptr ? external_pool_ : owned_pool_.get();
  }
  const SgqEngine& sgq_engine() const { return sgq_; }
  const TbqEngine& tbq_engine() const { return tbq_; }

 private:
  /// RAII guard updating the in-flight gauge, latency histogram, and
  /// success/failure counters around one query execution.
  class FlightTracker;

  /// Shared machinery behind Submit/SubmitTimeBounded: admission at
  /// submission time, enqueue `run` on the pool tracking queue depth,
  /// resolve the promise with an error when the pool is shutting down.
  /// `run` must be the post-admission execution (ExecuteSgq/ExecuteTbq).
  template <typename ResultT, typename RunFn>
  std::future<ResultT> SubmitImpl(RunFn run, RequestPriority priority);

  /// Execution after admission: deadline fast path, decomposition cache,
  /// engine call, outcome classification. Both sync entry points and the
  /// async tasks land here; the admission slot is released by the caller.
  Result<QueryResult> ExecuteSgq(const QueryGraph& query,
                                 EngineOptions options);
  Result<TimeBoundedResult> ExecuteTbq(const QueryGraph& query,
                                       TimeBoundedOptions options);

  /// Bumps the cancelled/deadline-exceeded counters for a finished query.
  void ClassifyOutcome(const Status& status);

  /// The decomposition plan, via the LRU cache (both SGQ and TBQ traffic).
  /// `view` is the graph the query will actually run against (a pinned
  /// live-ingest snapshot, or the base graph); its epoch is part of the
  /// cache key, so a plan computed against one epoch is never replayed
  /// against another — DecomposeQuery reads the graph's average degree,
  /// which moves under ingest.
  Result<Decomposition> CachedDecomposition(const QueryGraph& query,
                                            PivotStrategy strategy,
                                            size_t n_hat, uint64_t seed,
                                            const GraphView& view);

  const Clock* clock_;
  /// Process-unique instance id stamped into every stats snapshot, so rate
  /// trackers can tell a blue-green service replacement from counter
  /// movement (see ServiceStatsSnapshot::generation).
  const uint64_t generation_;
  SgqEngine sgq_;
  TbqEngine tbq_;
  std::shared_ptr<MatcherCandidateCache> matcher_cache_;  ///< may be null
  LruCache<std::string, Decomposition> decomposition_cache_;

  AdmissionController admission_;
  std::atomic<uint64_t> queries_total_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> sgq_queries_{0};
  std::atomic<uint64_t> tbq_queries_{0};
  std::atomic<uint64_t> queries_cancelled_{0};
  std::atomic<uint64_t> queries_deadline_exceeded_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> queued_{0};
  LatencyHistogram latency_;
  int64_t start_micros_ = 0;

  /// Async submissions not yet finished; the destructor waits on this
  /// before any member is torn down, which keeps destruction safe even
  /// when the tasks run on an external (longer-lived) executor.
  WaitGroup outstanding_;
  ThreadPool* external_pool_ = nullptr;  ///< non-owning; null when owned
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null with an external pool
};

}  // namespace kgsearch

#endif  // KGSEARCH_SERVICE_QUERY_SERVICE_H_
