// Serving-layer observability: lock-free latency histogram and the
// aggregate counter snapshot exposed by QueryService::Stats().
//
// Thread-safety: LatencyHistogram is all relaxed atomics — recording on
// the query hot path must never contend on a Mutex, so there is nothing
// here for the thread-safety analysis to guard. The price is advisory
// reads: Percentile/count/max are each internally consistent but a
// concurrent Record may land between them. ServiceStatsSnapshot is a plain
// value: one thread fills it, then it is data. Fields that must be read
// together under a lock live behind StatsRateTracker (server/stats.h).
#ifndef KGSEARCH_SERVICE_SERVICE_STATS_H_
#define KGSEARCH_SERVICE_SERVICE_STATS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>

namespace kgsearch {

/// Geometric-bucket latency histogram (16 buckets per decade, 1us..~100s).
/// Record and Percentile are safe to call concurrently; percentiles are
/// approximate to within one bucket width (~15%).
class LatencyHistogram {
 public:
  static constexpr size_t kBucketsPerDecade = 16;
  static constexpr size_t kNumBuckets = kBucketsPerDecade * 8;  // 8 decades

  void RecordMicros(int64_t micros) {
    buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
    int64_t prev = max_micros_.load(std::memory_order_relaxed);
    while (micros > prev && !max_micros_.compare_exchange_weak(
                                prev, micros, std::memory_order_relaxed)) {
    }
  }

  /// The q-quantile (q in [0,1]) in microseconds, as the geometric center
  /// of the bucket holding it, clamped to the true observed maximum — the
  /// raw bucket center can land above every recorded sample (e.g. a single
  /// 1000us sample sits in the bucket centered at ~1154us), and no
  /// percentile may exceed the max. 0 when nothing was recorded.
  [[nodiscard]] double PercentileMicros(double q) const {
    uint64_t total = 0;
    std::array<uint64_t, kNumBuckets> counts;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0.0;
    const double max = static_cast<double>(max_micros());
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) return std::min(BucketCenterMicros(i), max);
    }
    return std::min(BucketCenterMicros(kNumBuckets - 1), max);
  }

  [[nodiscard]] uint64_t count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  [[nodiscard]] int64_t max_micros() const {
    return max_micros_.load(std::memory_order_relaxed);
  }

 private:
  static size_t BucketOf(int64_t micros) {
    if (micros <= 1) return 0;
    const double idx =
        std::log10(static_cast<double>(micros)) * kBucketsPerDecade;
    const size_t b = static_cast<size_t>(idx);
    return b >= kNumBuckets ? kNumBuckets - 1 : b;
  }
  static double BucketCenterMicros(size_t bucket) {
    return std::pow(10.0, (static_cast<double>(bucket) + 0.5) /
                              kBucketsPerDecade);
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> max_micros_{0};
};

/// Point-in-time view of a QueryService's counters.
struct ServiceStatsSnapshot {
  /// Identity of the QueryService instance that produced this snapshot
  /// (process-unique, assigned at service construction, never 0 for a real
  /// snapshot). A blue-green dataset swap (api/session.h) installs a FRESH
  /// service under the same dataset name, so two snapshots read under one
  /// name may come from different services; their counters are then
  /// incomparable, and IntervalQps detects that via this field instead of
  /// reporting a bogus 0 (the old behavior: the new service's small uptime
  /// made the window length negative).
  uint64_t generation = 0;

  uint64_t queries_total = 0;   ///< completed queries (SGQ + TBQ)
  uint64_t queries_failed = 0;  ///< completed with a non-OK status
  uint64_t sgq_queries = 0;
  uint64_t tbq_queries = 0;

  /// Requests turned away by admission control (kResourceExhausted). They
  /// never executed, so they are NOT part of queries_total/queries_failed.
  uint64_t queries_rejected = 0;
  /// Completed with kCancelled (also counted in queries_failed).
  uint64_t queries_cancelled = 0;
  /// Completed with kDeadlineExceeded (also counted in queries_failed).
  uint64_t queries_deadline_exceeded = 0;

  uint64_t decomposition_cache_hits = 0;
  uint64_t decomposition_cache_misses = 0;
  uint64_t matcher_cache_hits = 0;
  uint64_t matcher_cache_misses = 0;
  /// Matcher-cache lookups that found an entry stamped with a different
  /// graph epoch (live ingest moved the graph on); recomputed, not served.
  /// Also counted in matcher_cache_hits — subtract for true hits.
  uint64_t matcher_cache_stale_hits = 0;

  size_t in_flight = 0;    ///< queries currently executing
  /// THIS service's async submissions not yet started. Always per-service,
  /// even when many services share one executor (each service counts its
  /// own submissions; see the queue-depth test in query_service_test.cc).
  size_t queue_depth = 0;
  /// Tasks waiting in the executor the service runs on. With an external
  /// shared pool this is a pool-wide gauge (other services' queries and
  /// sub-query batches included) — a load signal, not a per-service count.
  size_t executor_queue_depth = 0;
  /// Admitted requests not yet finished (executing or queued); bounded by
  /// max_in_flight + max_queued when admission control is on.
  size_t admitted_outstanding = 0;

  double uptime_seconds = 0.0;
  /// CUMULATIVE average: queries_total / uptime over the service's whole
  /// lifetime. On a long-lived server this decays toward the long-run mean
  /// and stops tracking current load — for "qps right now", diff two
  /// snapshots with IntervalQps (the /stats endpoint reports both, as
  /// "qps_lifetime" and "qps_interval").
  double qps = 0.0;

  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_max_ms = 0.0;

  double decomposition_cache_hit_rate() const {
    const uint64_t n = decomposition_cache_hits + decomposition_cache_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(decomposition_cache_hits) /
                        static_cast<double>(n);
  }
  double matcher_cache_hit_rate() const {
    const uint64_t n = matcher_cache_hits + matcher_cache_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(matcher_cache_hits) /
                        static_cast<double>(n);
  }
};

/// Completion rate between two successive snapshots of the SAME service:
/// queries completed in the window divided by the window length. This is
/// the "current load" figure; ServiceStatsSnapshot::qps is the lifetime
/// average.
///
/// When the two snapshots come from different service generations — the
/// first read ever (default-constructed `prev`, generation 0), or a read
/// straddling a blue-green dataset swap/compaction, which replaces the
/// QueryService behind the name — the counters are incomparable and the
/// function degenerates to the NEW service's lifetime average (its whole
/// life fits inside the window, so that IS the window rate). Within one
/// generation, 0 when the window is empty or not advancing (counters are
/// monotone, so a negative delta means mismatched snapshots).
inline double IntervalQps(const ServiceStatsSnapshot& prev,
                          const ServiceStatsSnapshot& curr) {
  if (prev.generation != curr.generation) return curr.qps;
  const double dt = curr.uptime_seconds - prev.uptime_seconds;
  if (dt <= 0.0 || curr.queries_total < prev.queries_total) return 0.0;
  return static_cast<double>(curr.queries_total - prev.queries_total) / dt;
}

}  // namespace kgsearch

#endif  // KGSEARCH_SERVICE_SERVICE_STATS_H_
