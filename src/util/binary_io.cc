#include "util/binary_io.h"

#include <array>

namespace kgsearch {

namespace {

/// Byte-at-a-time table for the reflected CRC-32 polynomial.
std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  // The running value is stored finalized (xor-out applied), so chaining
  // from a previous return value means undoing the xor, folding, redoing it.
  uint32_t state = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state ^ 0xFFFFFFFFu;
}

}  // namespace kgsearch
