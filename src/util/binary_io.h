// Flat little-endian binary encoding, the substrate of the kgpack snapshot
// format (kg/snapshot.h).
//
// BinaryWriter appends fixed-width scalars, length-prefixed strings, and
// whole trivially-copyable vectors (one bulk memcpy each) to a growing byte
// buffer. BinaryReader is the bounds-checked mirror: every read validates
// against the remaining bytes and returns a precise Status instead of
// crashing, so corrupt or truncated input is always a recoverable error.
// Floats and doubles round-trip bit-exactly (raw IEEE-754 bits, no text).
#ifndef KGSEARCH_UTIL_BINARY_IO_H_
#define KGSEARCH_UTIL_BINARY_IO_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace kgsearch {

// The format stores native little-endian bytes; big-endian hosts would need
// byte swapping that nothing in the target environments exercises.
static_assert(std::endian::native == std::endian::little,
              "kgpack binary I/O assumes a little-endian host");

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Crc32("123456789")
/// == 0xCBF43926, the standard check value.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Incremental CRC-32 over chunked input: start from 0, fold each chunk in
/// order. Crc32Update over any chunking of a byte stream equals the
/// one-shot Crc32 of the whole stream, so writers that never hold the full
/// payload (kg/snapshot_stream.h) produce header checksums byte-identical
/// to the in-memory encoder's.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

/// Append-only byte buffer with typed little-endian writers.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  /// Raw bytes, no length prefix.
  void WriteRaw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  /// Overwrites a previously written scalar at `offset` (its byte position
  /// as returned by size() before the write). Lets encoders reserve a
  /// length/checksum slot and fill it once the body size is known, instead
  /// of buffering the body separately and copying it in.
  void PatchU32(size_t offset, uint32_t v) {
    KG_CHECK(offset + sizeof(v) <= buffer_.size());
    std::memcpy(buffer_.data() + offset, &v, sizeof(v));
  }
  void PatchU64(size_t offset, uint64_t v) {
    KG_CHECK(offset + sizeof(v) <= buffer_.size());
    std::memcpy(buffer_.data() + offset, &v, sizeof(v));
  }

  /// u64 byte length + bytes. Embedded NULs are preserved.
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// u64 element count + one bulk copy of the element bytes. T must be
  /// trivially copyable with no padding, so the bytes are well defined.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    // Padding-free element bytes; floating-point types are exempt from the
    // unique-representation trait (it is false for them by definition) but
    // their raw IEEE-754 bits copy exactly.
    static_assert(std::is_trivially_copyable_v<T> &&
                  (std::is_floating_point_v<T> ||
                   std::has_unique_object_representations_v<T>));
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked little-endian reader over a borrowed byte span.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadFloat(float* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadRaw(void* out, size_t size) {
    KG_RETURN_NOT_OK(Require(size));
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  /// Mirrors WriteString. The length is validated against the remaining
  /// bytes before any allocation, so corrupt lengths cannot OOM.
  Status ReadString(std::string* out) {
    std::string_view view;
    KG_RETURN_NOT_OK(ReadStringView(&view));
    out->assign(view.data(), view.size());
    return Status::OK();
  }

  /// Zero-copy variant of ReadString; the view borrows the reader's bytes.
  Status ReadStringView(std::string_view* out) {
    uint64_t size = 0;
    KG_RETURN_NOT_OK(ReadU64(&size));
    KG_RETURN_NOT_OK(Require(size));
    *out = data_.substr(pos_, size);
    pos_ += size;
    return Status::OK();
  }

  /// Mirrors WriteVector: validates count * sizeof(T) against the remaining
  /// bytes, then bulk-copies into a resized vector.
  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    // Padding-free element bytes; floating-point types are exempt from the
    // unique-representation trait (it is false for them by definition) but
    // their raw IEEE-754 bits copy exactly.
    static_assert(std::is_trivially_copyable_v<T> &&
                  (std::is_floating_point_v<T> ||
                   std::has_unique_object_representations_v<T>));
    uint64_t count = 0;
    KG_RETURN_NOT_OK(ReadU64(&count));
    if (count > remaining() / sizeof(T)) {
      return Status::ParseError(StrCat_("vector of ", count,
                                        " elements exceeds remaining bytes"));
    }
    out->resize(count);
    if (count != 0) {
      std::memcpy(out->data(), data_.data() + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  static std::string StrCat_(const char* a, uint64_t n, const char* b) {
    return std::string(a) + std::to_string(n) + b;
  }

  Status Require(uint64_t size) {
    if (size > remaining()) {
      return Status::ParseError(StrCat_("unexpected end of input: need ",
                                        size, " more bytes"));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_BINARY_IO_H_
