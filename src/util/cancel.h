// Cooperative cancellation and per-request deadlines for the serving stack.
//
// A CancelToken is a one-way latch the request owner flips to revoke work;
// a deadline is an absolute point on the engine's injected Clock. Engines
// poll both between node expansions (never inside one), so a cancelled or
// expired query stops at a well-defined point and surfaces a precise
// Status (kCancelled / kDeadlineExceeded) instead of running to
// completion. Polling is wait-free; neither primitive ever blocks the
// worker being interrupted.
//
// Deliberately lock-free: there is nothing here for the thread-safety
// analysis (util/thread_annotations.h) to guard — the latch is a single
// release/acquire atomic and deadlines are immutable int64 values. Keep it
// that way; a poll on the engine hot path must never contend on a Mutex.
#ifndef KGSEARCH_UTIL_CANCEL_H_
#define KGSEARCH_UTIL_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "util/clock.h"
#include "util/status.h"

namespace kgsearch {

/// One-way cancellation latch, shared between a request's owner (who calls
/// Cancel) and the workers executing it (who poll cancelled()). Cancel may
/// be called from any thread, any number of times; the token cannot be
/// reset, so one token serves exactly one logical request (or one batch
/// that should be revoked as a unit).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Converts a caller-relative time budget in milliseconds into an absolute
/// deadline on `clock` (the representation EngineOptions carries, so queue
/// wait counts against the budget). 0 means "no deadline" and stays 0;
/// negative budgets are the caller's validation problem and also map to 0.
/// Budgets too large to represent saturate to the far future instead of
/// overflowing (wire clients may send any int64).
[[nodiscard]] inline int64_t DeadlineFromNowMs(int64_t deadline_ms,
                                               const Clock* clock) {
  if (deadline_ms <= 0) return 0;
  const int64_t max = std::numeric_limits<int64_t>::max();
  if (deadline_ms > max / 1000) return max;
  const int64_t delta = deadline_ms * 1000;
  const int64_t now = clock->NowMicros();
  if (now > max - delta) return max;
  return now + delta;
}

/// The one interruption policy every execution layer shares: cancellation
/// is checked before the deadline (a revoked request reports kCancelled
/// even when it also expired), and a deadline of 0 means none. OK when the
/// work may keep running.
// (Status is class-level [[nodiscard]], so an ignored interrupt check is
// a compile error.)
inline Status CheckInterrupt(const CancelToken* cancel,
                             int64_t deadline_micros, const Clock* clock) {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("request cancelled by caller");
  }
  if (deadline_micros > 0 && clock->NowMicros() >= deadline_micros) {
    return Status::DeadlineExceeded("request deadline expired");
  }
  return Status::OK();
}

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_CANCEL_H_
