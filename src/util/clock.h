// Clock abstraction so time-bounded search (Section VI) is testable with a
// deterministic manual clock.
//
// Thread-safety: every clock here is safe to read from any thread without
// locks — SystemClock is stateless and ManualClock is a single atomic, so
// there is nothing for the thread-safety analysis to guard. StopWatch is
// single-owner (one thread constructs, restarts, and reads it).
#ifndef KGSEARCH_UTIL_CLOCK_H_
#define KGSEARCH_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace kgsearch {

/// Monotonic clock interface reporting microseconds.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current monotonic time in microseconds.
  [[nodiscard]] virtual int64_t NowMicros() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Shared process-wide instance.
  static const SystemClock* Default() {
    static SystemClock clock;
    return &clock;
  }
};

/// Deterministic clock advanced explicitly by tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_.load(); }

  void AdvanceMicros(int64_t delta) { now_.fetch_add(delta); }
  void SetMicros(int64_t t) { now_.store(t); }

 private:
  std::atomic<int64_t> now_;
};

/// Stopwatch over an injectable clock.
class StopWatch {
 public:
  explicit StopWatch(const Clock* clock = SystemClock::Default())
      : clock_(clock), start_(clock_->NowMicros()) {}

  void Restart() { start_ = clock_->NowMicros(); }
  [[nodiscard]] int64_t ElapsedMicros() const {
    return clock_->NowMicros() - start_;
  }
  [[nodiscard]] double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_CLOCK_H_
