#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace kgsearch {

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  KG_CHECK(is_object());
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  KG_CHECK(is_object());
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      if (is_int_ != other.is_int_ || is_uint_ != other.is_uint_) {
        return false;
      }
      if (is_int_) return int_ == other.int_;
      if (is_uint_) return uint_ == other.uint_;
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return items_ == other.items_;
    case Kind::kObject:
      return members_ == other.members_;
  }
  return false;
}

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in. This is the
    // one value class that does not round-trip (see the header comment) —
    // a decoder reading the field will report it missing/mistyped.
    *out += "null";
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  KG_CHECK(ec == std::errc());
  std::string_view token(buf, static_cast<size_t>(ptr - buf));
  *out += token;
  // A whole-valued double prints as "-1"; keep it a non-integer on reparse
  // so Parse(Dump(x)) == x preserves the number flavor.
  if (token.find_first_of(".eE") == std::string_view::npos) *out += ".0";
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (is_int_) {
        *out += std::to_string(int_);
      } else if (is_uint_) {
        *out += std::to_string(uint_);
      } else {
        AppendNumber(number_, out);
      }
      break;
    case Kind::kString:
      AppendEscaped(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        items_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendEscaped(members_[i].first, out);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over the input; depth-limited so adversarial
/// nesting cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    KG_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid token");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        KG_RETURN_NOT_OK(Expect("null"));
        *out = JsonValue::Null();
        return Status::OK();
      case 't':
        KG_RETURN_NOT_OK(Expect("true"));
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        KG_RETURN_NOT_OK(Expect("false"));
        *out = JsonValue::Bool(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("invalid number");
    if (integral) {
      int64_t i = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        *out = JsonValue::Int(i);
        return Status::OK();
      }
      if (token[0] != '-') {
        uint64_t u = 0;
        auto [uptr, uec] =
            std::from_chars(token.data(), token.data() + token.size(), u);
        if (uec == std::errc() && uptr == token.data() + token.size()) {
          *out = JsonValue::Uint(u);
          return Status::OK();
        }
      }
      // Integral but out of uint64/int64 range: fall through to double.
    }
    double d = 0.0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("invalid number");
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    *out = code;
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    std::string s;
    KG_RETURN_NOT_OK(ParseRawString(&s));
    *out = JsonValue::String(std::move(s));
    return Status::OK();
  }

  /// Validates and appends one complete UTF-8 sequence starting at pos_
  /// (whose lead byte is >= 0x80). Rejects stray continuation bytes,
  /// truncated sequences, overlong encodings, surrogate code points, and
  /// anything above U+10FFFF.
  Status ConsumeUtf8Sequence(std::string* out) {
    const unsigned char lead = static_cast<unsigned char>(text_[pos_]);
    size_t len;
    unsigned min_code;
    unsigned code;
    if ((lead & 0xE0) == 0xC0) {
      len = 2, min_code = 0x80, code = lead & 0x1Fu;
    } else if ((lead & 0xF0) == 0xE0) {
      len = 3, min_code = 0x800, code = lead & 0x0Fu;
    } else if ((lead & 0xF8) == 0xF0) {
      len = 4, min_code = 0x10000, code = lead & 0x07u;
    } else {
      // 0x80..0xBF (continuation with no lead) or 0xF8..0xFF (never valid).
      return Error("invalid UTF-8 lead byte in string");
    }
    if (pos_ + len > text_.size()) {
      return Error("truncated UTF-8 sequence in string");
    }
    for (size_t i = 1; i < len; ++i) {
      const unsigned char cont = static_cast<unsigned char>(text_[pos_ + i]);
      if ((cont & 0xC0) != 0x80) {
        return Error("invalid UTF-8 continuation byte in string");
      }
      code = (code << 6) | (cont & 0x3Fu);
    }
    if (code < min_code) {
      return Error("overlong UTF-8 encoding in string");
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      return Error("UTF-8 encoded surrogate code point in string");
    }
    if (code > 0x10FFFF) {
      return Error("UTF-8 code point above U+10FFFF in string");
    }
    out->append(text_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (static_cast<unsigned char>(c) >= 0x80) {
        // Raw multibyte input: validate the whole UTF-8 sequence (length,
        // continuation bytes, overlongs, surrogates, <= U+10FFFF) rather
        // than passing arbitrary bytes through into our strings. Hostile
        // senders probe exactly this path.
        --pos_;
        KG_RETURN_NOT_OK(ConsumeUtf8Sequence(out));
        continue;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          KG_RETURN_NOT_OK(ParseHex4(&code));
          // A high surrogate must pair with a following \uDC00-\uDFFF low
          // surrogate; the pair decodes to one supplementary code point
          // (standard clients escape non-BMP characters this way).
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (text_.substr(pos_, 2) != "\\u") {
              return Error("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            KG_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate in \\u escape");
            }
            const unsigned point =
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            out->push_back(static_cast<char>(0xF0 | (point >> 18)));
            out->push_back(static_cast<char>(0x80 | ((point >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((point >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (point & 0x3F)));
            break;
          }
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate in \\u escape");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    KG_CHECK(Consume('['));
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(array);
      return Status::OK();
    }
    while (true) {
      JsonValue element;
      KG_RETURN_NOT_OK(ParseValue(&element, depth + 1));
      array.Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
    *out = std::move(array);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    KG_CHECK(Consume('{'));
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(object);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      KG_RETURN_NOT_OK(ParseRawString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      KG_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
    *out = std::move(object);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Status MissingKey(std::string_view key, const char* type) {
  return Status::InvalidArgument(StrFormat(
      "missing or non-%s field \"%.*s\"", type,
      static_cast<int>(key.size()), key.data()));
}

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Parse();
}

Result<std::string> JsonGetString(const JsonValue& object,
                                  std::string_view key) {
  if (!object.is_object()) return MissingKey(key, "string");
  const JsonValue* v = object.Find(key);
  if (v == nullptr || !v->is_string()) return MissingKey(key, "string");
  return v->string_value();
}

Result<double> JsonGetNumber(const JsonValue& object, std::string_view key) {
  if (!object.is_object()) return MissingKey(key, "number");
  const JsonValue* v = object.Find(key);
  if (v == nullptr || !v->is_number()) return MissingKey(key, "number");
  return v->number_value();
}

Result<int64_t> JsonGetInt(const JsonValue& object, std::string_view key) {
  if (!object.is_object()) return MissingKey(key, "integer");
  const JsonValue* v = object.Find(key);
  if (v == nullptr || !v->is_int()) return MissingKey(key, "integer");
  return v->int_value();
}

Result<uint64_t> JsonGetUint(const JsonValue& object, std::string_view key) {
  if (!object.is_object()) return MissingKey(key, "unsigned integer");
  const JsonValue* v = object.Find(key);
  if (v == nullptr || !v->is_uint()) {
    return MissingKey(key, "unsigned integer");
  }
  return v->uint_value();
}

Result<bool> JsonGetBool(const JsonValue& object, std::string_view key) {
  if (!object.is_object()) return MissingKey(key, "bool");
  const JsonValue* v = object.Find(key);
  if (v == nullptr || !v->is_bool()) return MissingKey(key, "bool");
  return v->bool_value();
}

Result<std::string> JsonGetStringOr(const JsonValue& object,
                                    std::string_view key,
                                    std::string fallback) {
  if (object.is_object() && object.Find(key) == nullptr) return fallback;
  return JsonGetString(object, key);
}

Result<double> JsonGetNumberOr(const JsonValue& object, std::string_view key,
                               double fallback) {
  if (object.is_object() && object.Find(key) == nullptr) return fallback;
  return JsonGetNumber(object, key);
}

Result<int64_t> JsonGetIntOr(const JsonValue& object, std::string_view key,
                             int64_t fallback) {
  if (object.is_object() && object.Find(key) == nullptr) return fallback;
  return JsonGetInt(object, key);
}

Result<uint64_t> JsonGetUintOr(const JsonValue& object, std::string_view key,
                               uint64_t fallback) {
  if (object.is_object() && object.Find(key) == nullptr) return fallback;
  return JsonGetUint(object, key);
}

Result<bool> JsonGetBoolOr(const JsonValue& object, std::string_view key,
                           bool fallback) {
  if (object.is_object() && object.Find(key) == nullptr) return fallback;
  return JsonGetBool(object, key);
}

}  // namespace kgsearch
