// Minimal JSON document model, writer, and parser for the public API's
// wire protocol (api/protocol.h).
//
// Scope is deliberately small: the subset of RFC 8259 the request/response
// DTOs need. Objects preserve insertion order (so encode/decode round-trips
// are byte-stable), integers stay exact across the full int64/uint64 range,
// and doubles are written with shortest-round-trip precision so
// Parse(Dump(x)) == x holds exactly — with one carve-out: JSON has no
// Inf/NaN, so non-finite doubles Dump as null and do not round-trip.
// Recoverable syntax errors surface as Status::ParseError with the
// offending byte offset, never as exceptions or aborts.
#ifndef KGSEARCH_UTIL_JSON_H_
#define KGSEARCH_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace kgsearch {

/// One JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Defaults to null.
  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  /// A non-integral number (written with round-trip precision).
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  /// An integral number (written without a decimal point).
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = static_cast<double>(i);
    v.int_ = i;
    v.is_int_ = true;
    return v;
  }
  /// An unsigned integral number; values above int64 range stay exact on
  /// the wire (encoded as the plain decimal, reparsed as unsigned).
  static JsonValue Uint(uint64_t u) {
    if (u <= static_cast<uint64_t>(INT64_MAX)) {
      return Int(static_cast<int64_t>(u));
    }
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = static_cast<double>(u);
    v.uint_ = u;
    v.is_uint_ = true;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  /// True for numbers parsed/built without a fractional or exponent part
  /// that fit int64.
  bool is_int() const { return kind_ == Kind::kNumber && is_int_; }
  /// True for integral numbers representable as uint64 (non-negative ints
  /// plus the above-int64 range).
  bool is_uint() const {
    return kind_ == Kind::kNumber && (is_uint_ || (is_int_ && int_ >= 0));
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const {
    KG_CHECK(is_bool());
    return bool_;
  }
  double number_value() const {
    KG_CHECK(is_number());
    return number_;
  }
  int64_t int_value() const {
    KG_CHECK(is_int());
    return int_;
  }
  uint64_t uint_value() const {
    KG_CHECK(is_uint());
    return is_uint_ ? uint_ : static_cast<uint64_t>(int_);
  }
  const std::string& string_value() const {
    KG_CHECK(is_string());
    return string_;
  }

  // ----- arrays -----

  /// Appends an element (value must be an array).
  JsonValue& Append(JsonValue element) {
    KG_CHECK(is_array());
    items_.push_back(std::move(element));
    return *this;
  }
  size_t size() const {
    KG_CHECK(is_array() || is_object());
    return is_array() ? items_.size() : members_.size();
  }
  const JsonValue& at(size_t i) const {
    KG_CHECK(is_array() && i < items_.size());
    return items_[i];
  }
  const std::vector<JsonValue>& items() const {
    KG_CHECK(is_array());
    return items_;
  }

  // ----- objects -----

  /// Sets (or replaces) a member; insertion order is preserved.
  JsonValue& Set(std::string_view key, JsonValue value);
  /// The member value, or nullptr when absent (value must be an object).
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    KG_CHECK(is_object());
    return members_;
  }

  /// Structural equality (object member order matters; an integral number
  /// only equals another integral number with the same value).
  bool operator==(const JsonValue& other) const;

  /// Compact serialization (no whitespace), UTF-8 passthrough with the
  /// mandatory escapes. Numbers round-trip exactly through Parse.
  std::string Dump() const;

  /// Parses one JSON document; trailing non-whitespace is a ParseError.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  uint64_t uint_ = 0;     ///< only for integral values above int64 range
  bool is_int_ = false;
  bool is_uint_ = false;  ///< mutually exclusive with is_int_
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// ----- typed object-member accessors used by protocol decoders -----
// Each returns kInvalidArgument naming the key when it is absent or has the
// wrong type; the *Or variants fall back to a default when absent.

Result<std::string> JsonGetString(const JsonValue& object,
                                  std::string_view key);
Result<double> JsonGetNumber(const JsonValue& object, std::string_view key);
Result<int64_t> JsonGetInt(const JsonValue& object, std::string_view key);
Result<uint64_t> JsonGetUint(const JsonValue& object, std::string_view key);
Result<bool> JsonGetBool(const JsonValue& object, std::string_view key);

Result<std::string> JsonGetStringOr(const JsonValue& object,
                                    std::string_view key,
                                    std::string fallback);
Result<double> JsonGetNumberOr(const JsonValue& object, std::string_view key,
                               double fallback);
Result<int64_t> JsonGetIntOr(const JsonValue& object, std::string_view key,
                             int64_t fallback);
Result<uint64_t> JsonGetUintOr(const JsonValue& object, std::string_view key,
                               uint64_t fallback);
Result<bool> JsonGetBoolOr(const JsonValue& object, std::string_view key,
                           bool fallback);

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_JSON_H_
