#include "util/logging.h"

#include <atomic>

#include "util/mutex.h"

namespace kgsearch {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

/// Serializes sink writes: one fprintf call per message is atomic on POSIX
/// stdio, but the lock makes the no-interleaving guarantee explicit and
/// independent of platform stdio locking.
Mutex g_sink_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    // Keep only the basename for brevity.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::string formatted = stream_.str();
    MutexLock lock(&g_sink_mutex);
    std::fprintf(stderr, "%s\n", formatted.c_str());
  }
}

}  // namespace internal
}  // namespace kgsearch
