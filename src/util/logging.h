// Minimal leveled logging to stderr.
//
// Thread-safety: KG_LOG may be used from any thread. The level gate is a
// lock-free atomic; message emission is serialized under an internal
// annotated Mutex (util/mutex.h), so concurrent messages never interleave.
#ifndef KGSEARCH_UTIL_LOGGING_H_
#define KGSEARCH_UTIL_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace kgsearch {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define KG_LOG(level)                                                       \
  ::kgsearch::internal::LogMessage(::kgsearch::LogLevel::k##level, __FILE__, \
                                   __LINE__)

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_LOGGING_H_
