// Thread-safe LRU cache keyed by hashable keys, used by the serving layer
// to memoize query decompositions and node-matcher candidate lists.
#ifndef KGSEARCH_UTIL_LRU_CACHE_H_
#define KGSEARCH_UTIL_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgsearch {

/// Bounded map with least-recently-used eviction. Get/Put are mutually
/// exclusive under one mutex — values are copied out rather than referenced,
/// so callers never hold pointers into the cache. A capacity of 0 disables
/// the cache entirely (every Get misses, Put is a no-op).
///
/// When `Hash`/`Eq` are transparent (declare `is_transparent`), Get accepts
/// any key type they can compare — e.g. a string_view probing a
/// string-keyed cache without constructing a temporary std::string on the
/// hot hit path (the node-matcher candidate caches rely on this).
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Copies the cached value into `*out` and returns true on a hit; the
  /// entry becomes most-recently-used.
  template <typename LookupKey = K>
  bool Get(const LookupKey& key, V* out) EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    ++hits_;
    *out = it->second->second;
    return true;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when the cache is full.
  void Put(const K& key, V value) EXCLUDES(mutex_) {
    if (capacity_ == 0) return;
    MutexLock lock(&mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
  }

  size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return entries_.size();
  }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return hits_;
  }
  uint64_t misses() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return misses_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  /// Most-recently-used first.
  std::list<std::pair<K, V>> entries_ GUARDED_BY(mutex_);
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash,
                     Eq>
      index_ GUARDED_BY(mutex_);
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t misses_ GUARDED_BY(mutex_) = 0;
};

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_LRU_CACHE_H_
