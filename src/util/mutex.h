// Annotated mutex wrappers: the one place in the codebase where the raw
// std::mutex / std::condition_variable primitives are allowed to appear
// (tools/check_invariants.py rejects them anywhere else in src/).
//
// Mutex / MutexLock / CondVar carry the Clang Thread Safety Analysis
// attributes from util/thread_annotations.h, so a Clang build proves, at
// compile time and over every path, that each GUARDED_BY field is only
// touched with its lock held and every REQUIRES contract is honored.
// Under other compilers they behave identically and the annotations
// vanish.
//
// ---------------------------------------------------------------------
// Cross-class lock ordering (acquire strictly left to right):
//
//     server  (TcpServer::conn_mutex_, StatsRateTracker::mutex_)
//   → session (KgSession::mutex_, the dataset registry)
//   → overlay (DeltaOverlay::mutex_: writer serialization + snapshot
//              publication for one dataset's live-mutation delta)
//   → service (QueryService's caches: LruCache::mutex_)
//   → pool    (ThreadPool::mutex_, WaitGroup::mutex_)
//
// A thread holding a lock from a lower layer must never acquire one from
// a higher layer: connection threads may take the registry lock while
// serving a line, the registry lock may be held while an overlay snapshot
// is pinned (dataset resolution) or a service's cache lock is taken
// (registration), and anything may enqueue on the pool — but pool
// workers and cache code never reach back up into server or session
// locks. The overlay lock is effectively a leaf: Commit/Snapshot/Retire
// do pure data work and acquire nothing while holding it; compaction
// retires the overlay (releasing its lock) BEFORE folding and before
// taking the registry lock to swap, precisely so overlay → session never
// occurs. No two locks of the SAME layer are ever held together (each
// service's caches are independent; each dataset's overlay is
// independent; WaitGroup and ThreadPool locks nest only pool-internally,
// via Submit-side tracking that takes them one at a time). This ordering
// makes the whole stack deadlock-free by construction; document any new
// lock's layer here before adding it.
// ---------------------------------------------------------------------
#ifndef KGSEARCH_UTIL_MUTEX_H_
#define KGSEARCH_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace kgsearch {

/// Annotated exclusive mutex. Prefer MutexLock for scoped acquisition;
/// Lock/Unlock exist for the rare split-scope pattern and for CondVar.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock on a Mutex, held for the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to Mutex. Wait atomically releases the mutex
/// and re-acquires it before returning, so REQUIRES(mu) holds on both
/// sides of the call; the analysis (correctly) treats the lock as held
/// across it. Spurious wakeups are possible — use the predicate overload
/// or an external while loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken).
  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then hand
    // ownership back so the MutexLock destructor stays the one unlocker.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Blocks until `pred()` is true, re-checking after every wakeup.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until notified or `timeout` elapses; true when notified
  /// before the timeout (callers must still re-check their predicate).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_MUTEX_H_
