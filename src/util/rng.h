// Seeded random number generators with convenience samplers.
//
// All stochastic components (generators, TransE negative sampling, noise
// injection, simulated annotators) take an explicit Rng so experiments are
// reproducible from a single seed.
//
// Portability contract: every sampler is implemented here from raw 64-bit
// engine output with fully specified arithmetic — none of the
// implementation-defined std::*_distribution adaptors are used — so a seed
// produces the same sample stream on every standard library. The integer
// samplers (UniformInt, UniformIndex, Shuffle, SampleIndices) and
// UniformReal/Bernoulli are bit-exact everywhere; Normal and Zipf
// additionally call libm (sqrt/log/pow), which is bit-exact on any
// correctly-rounded libm (glibc, llvm-libm) — the environments the golden
// hash tests pin.
#ifndef KGSEARCH_UTIL_RNG_H_
#define KGSEARCH_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/status.h"

namespace kgsearch {

/// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
/// generators"): 3 multiplies + shifts per draw, full 64-bit period, and a
/// one-word state that is cheap to construct — the engine of choice when a
/// generator needs millions of independent per-item streams (one seeded per
/// node id) rather than one long stream.
class SplitMix64 {
 public:
  using result_type = uint64_t;

  explicit SplitMix64(uint64_t seed = 42) : state_(seed) {}

  uint64_t operator()() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return UINT64_MAX; }

 private:
  uint64_t state_;
};

/// Mixes a stream id into a base seed (SplitMix64 finalizer over the XOR),
/// giving statistically independent child seeds for per-item streams:
/// FastRng(MixSeed(seed, node_id)).
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed ^ (stream + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Sampler layer over a raw 64-bit engine. The engine only supplies
/// uniform u64 words; every distribution is derived here with portable
/// arithmetic (see the header comment for the exact portability contract).
template <typename Engine>
class BasicRng {
 public:
  static_assert(Engine::min() == 0 && Engine::max() == UINT64_MAX,
                "BasicRng requires a full-range 64-bit engine");

  explicit BasicRng(uint64_t seed = 42) : engine_(seed) {}

  /// One raw engine word, uniform over [0, 2^64).
  uint64_t NextU64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi. Unbiased:
  /// draws are rejected below the (2^64 mod range) threshold, so every
  /// value is exactly equally likely.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KG_CHECK(lo <= hi);
    const uint64_t range =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (range == 0) return static_cast<int64_t>(NextU64());  // full domain
    // (2^64 mod range) computed in 64 bits as ((0 - range) mod range).
    const uint64_t threshold = (0 - range) % range;
    uint64_t r = NextU64();
    while (r < threshold) r = NextU64();
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + r % range);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    KG_CHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform real in [lo, hi): the top 53 engine bits scaled by 2^-53 give
  /// a uniform double in [0, 1) with every representable step equally
  /// likely, then affinely mapped.
  double UniformReal(double lo = 0.0, double hi = 1.0) {
    const double unit =
        static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * unit;
  }

  /// Gaussian sample via the Marsaglia polar method. No spare is cached, so
  /// the draw count per call depends only on the engine stream, never on
  /// call history.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double v1, v2, s;
    do {
      v1 = UniformReal(-1.0, 1.0);
      v2 = UniformReal(-1.0, 1.0);
      s = v1 * v1 + v2 * v2;
    } while (s >= 1.0 || s == 0.0);
    return mean + stddev * v1 * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Zipf-like sample over [0, n): heavily skewed toward low ranks, with
  /// larger alpha meaning stronger skew. Uses the continuous power-law
  /// inverse CDF (exact for the continuous analogue, close enough for
  /// workload generation) so sampling is O(1) regardless of n.
  size_t Zipf(size_t n, double alpha) {
    KG_CHECK(n > 0);
    const double u = UniformReal();
    double x;
    if (alpha >= 0.999) {
      // P(X <= x) ~ log(x+1): log-uniform, the alpha -> 1 limit.
      x = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
    } else {
      // P(X <= x) ~ x^(1-alpha)  =>  X = n * u^(1/(1-alpha)).
      x = static_cast<double>(n) * std::pow(u, 1.0 / (1.0 - alpha));
    }
    size_t k = static_cast<size_t>(x);
    return k >= n ? n - 1 : k;
  }

  /// Bounded-Pareto sample in [lo, hi]: P(X >= x) ~ x^-alpha truncated to
  /// the bound, the classic heavy-tail degree model. Requires 0 < lo <= hi
  /// and alpha > 0.
  size_t BoundedPareto(size_t lo, size_t hi, double alpha) {
    KG_CHECK(lo > 0 && lo <= hi && alpha > 0.0);
    if (lo == hi) return lo;
    const double l = static_cast<double>(lo);
    const double h = static_cast<double>(hi) + 1.0;  // sample in [lo, hi+1)
    const double u = UniformReal();
    const double la = std::pow(l, -alpha), ha = std::pow(h, -alpha);
    const double x = std::pow(la - u * (la - ha), -1.0 / alpha);
    size_t k = static_cast<size_t>(x);
    if (k < lo) k = lo;
    return k > hi ? hi : k;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    KG_CHECK(k <= n);
    if (k * 4 >= n) {
      // Dense case: shuffle a full index vector and take a prefix.
      std::vector<size_t> all(n);
      for (size_t i = 0; i < n; ++i) all[i] = i;
      Shuffle(&all);
      all.resize(k);
      return all;
    }
    // Sparse case: rejection against the (small) result set.
    std::vector<size_t> result;
    result.reserve(k);
    while (result.size() < k) {
      size_t candidate = UniformIndex(n);
      bool dup = false;
      for (size_t c : result) {
        if (c == candidate) {
          dup = true;
          break;
        }
      }
      if (!dup) result.push_back(candidate);
    }
    return result;
  }

 private:
  Engine engine_;
};

/// The default generator: mt19937_64's output sequence per seed is fully
/// specified by the C++ standard, so existing seeds keep their streams.
using Rng = BasicRng<std::mt19937_64>;

/// Cheap-to-construct generator for per-item streams (one per graph node).
using FastRng = BasicRng<SplitMix64>;

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_RNG_H_
