// Seeded random number generator with convenience samplers.
//
// All stochastic components (generators, TransE negative sampling, noise
// injection, simulated annotators) take an explicit Rng so experiments are
// reproducible from a single seed.
#ifndef KGSEARCH_UTIL_RNG_H_
#define KGSEARCH_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/status.h"

namespace kgsearch {

/// Thin wrapper over std::mt19937_64 with common sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KG_CHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    KG_CHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian sample.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Zipf-like sample over [0, n): heavily skewed toward low ranks, with
  /// larger alpha meaning stronger skew. Uses the continuous power-law
  /// inverse CDF (exact for the continuous analogue, close enough for
  /// workload generation) so sampling is O(1) regardless of n.
  size_t Zipf(size_t n, double alpha) {
    KG_CHECK(n > 0);
    const double u = UniformReal();
    double x;
    if (alpha >= 0.999) {
      // P(X <= x) ~ log(x+1): log-uniform, the alpha -> 1 limit.
      x = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
    } else {
      // P(X <= x) ~ x^(1-alpha)  =>  X = n * u^(1/(1-alpha)).
      x = static_cast<double>(n) * std::pow(u, 1.0 / (1.0 - alpha));
    }
    size_t k = static_cast<size_t>(x);
    return k >= n ? n - 1 : k;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    KG_CHECK(k <= n);
    if (k * 4 >= n) {
      // Dense case: shuffle a full index vector and take a prefix.
      std::vector<size_t> all(n);
      for (size_t i = 0; i < n; ++i) all[i] = i;
      Shuffle(&all);
      all.resize(k);
      return all;
    }
    // Sparse case: rejection against the (small) result set.
    std::vector<size_t> result;
    result.reserve(k);
    while (result.size() < k) {
      size_t candidate = UniformIndex(n);
      bool dup = false;
      for (size_t c : result) {
        if (c == candidate) {
          dup = true;
          break;
        }
      }
      if (!dup) result.push_back(candidate);
    }
    return result;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_RNG_H_
