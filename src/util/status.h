// Status / Result error-handling primitives (Arrow-style).
//
// Recoverable errors cross API boundaries as Status or Result<T> values, never
// as exceptions. Internal invariant violations use KG_CHECK and abort.
#ifndef KGSEARCH_UTIL_STATUS_H_
#define KGSEARCH_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace kgsearch {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kParseError,
  kInternal,
  kTimedOut,
  kUnimplemented,
  kCancelled,          ///< caller revoked the request (CancelToken)
  kDeadlineExceeded,   ///< per-request deadline expired before completion
  kResourceExhausted,  ///< admission control rejected the request (overload)
  kFailedPrecondition, ///< operation illegal in the object's current state
};

/// Returns a human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
  }
  return "Unknown";
}

/// Outcome of an operation: OK or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation); error messages allocate.
///
/// Class-level [[nodiscard]]: every function returning a Status by value
/// is implicitly must-use, so a call site cannot silently drop an error —
/// the compiler flags it (and -Werror fails the build). Handle the status
/// or propagate it; never cast it to void (tools/check_invariants.py
/// rejects that too).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. [[nodiscard]] like
/// Status: dropping a Result drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return *value_;
  }
  T& ValueOrDie() & {
    CheckOk();
    return *value_;
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when holding an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status to the caller.
#define KG_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::kgsearch::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Aborts with a message when `cond` is false. For invariants, not user input.
#define KG_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "KG_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_STATUS_H_
