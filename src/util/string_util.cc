#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace kgsearch {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
          s[begin] == '\n')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r' ||
          s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string Join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace kgsearch
