// Small string helpers shared across parsers and reporters.
#ifndef KGSEARCH_UTIL_STRING_UTIL_H_
#define KGSEARCH_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kgsearch {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items,
                 std::string_view separator);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True when `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Transparent hashing/equality so unordered containers keyed by std::string
/// (or string_view) accept string_view lookups without constructing a
/// temporary std::string.
struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>()(s);
  }
};
struct StringViewEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_STRING_UTIL_H_
