// Portable Clang Thread Safety Analysis annotations.
//
// These macros expose Clang's -Wthread-safety attributes (a compile-time
// proof of the locking discipline over ALL paths, not just the
// interleavings a sanitizer happens to execute) while expanding to nothing
// on compilers without the attributes (gcc, MSVC). Annotate:
//
//   - data with the lock that guards it:      int x_ GUARDED_BY(mutex_);
//   - functions with the locks they need:     void F() REQUIRES(mutex_);
//   - functions that must NOT hold a lock:    void G() EXCLUDES(mutex_);
//   - lock-wrapper methods with their effect: void Lock() ACQUIRE();
//
// util/mutex.h provides the annotated Mutex / MutexLock / CondVar wrappers
// every mutex-protected structure in this codebase uses; naked std::mutex
// outside util/mutex.h is rejected by tools/check_invariants.py, and a
// Clang build (CI job "static-analysis", or tools/run_static_analysis.sh)
// compiles the tree with -Wthread-safety -Wthread-safety-beta -Werror.
//
// NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort: it is
// reserved for util/ internals whose correctness argument is genuinely
// outside the lock model (check_invariants.py enforces that scope), and
// every use must carry a one-line justification.
#ifndef KGSEARCH_UTIL_THREAD_ANNOTATIONS_H_
#define KGSEARCH_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define KGSEARCH_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define KGSEARCH_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex" names the kind).
#define CAPABILITY(x) KGSEARCH_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY KGSEARCH_THREAD_ANNOTATION__(scoped_lockable)

/// Data members: readable/writable only while holding the given lock.
#define GUARDED_BY(x) KGSEARCH_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer members: the pointed-to data is protected by the given lock
/// (the pointer itself may be read freely).
#define PT_GUARDED_BY(x) KGSEARCH_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Functions: the caller must hold the given lock(s) exclusively.
#define REQUIRES(...) \
  KGSEARCH_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Functions: the caller must hold the given lock(s) at least shared.
#define REQUIRES_SHARED(...) \
  KGSEARCH_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the given lock(s); the function may
/// take them itself (deadlock-prevention annotation).
#define EXCLUDES(...) \
  KGSEARCH_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Lock-wrapper methods: acquires the lock (exclusively / shared).
#define ACQUIRE(...) \
  KGSEARCH_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  KGSEARCH_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Lock-wrapper methods: releases the lock (exclusive / shared / either).
#define RELEASE(...) \
  KGSEARCH_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  KGSEARCH_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  KGSEARCH_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Lock-wrapper methods: acquires the lock iff the returned value equals
/// the first argument (e.g. TRY_ACQUIRE(true) for a bool TryLock()).
#define TRY_ACQUIRE(...) \
  KGSEARCH_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  KGSEARCH_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability
/// (lets accessors expose a member mutex for annotation purposes).
#define RETURN_CAPABILITY(x) KGSEARCH_THREAD_ANNOTATION__(lock_returned(x))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume it from here on.
#define ASSERT_CAPABILITY(x) \
  KGSEARCH_THREAD_ANNOTATION__(assert_capability(x))

/// Escape hatch: skips analysis for one function. Reserved for util/
/// internals (enforced by tools/check_invariants.py); justify every use.
#define NO_THREAD_SAFETY_ANALYSIS \
  KGSEARCH_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // KGSEARCH_UTIL_THREAD_ANNOTATIONS_H_
