#include "util/thread_pool.h"

#include "util/status.h"

namespace kgsearch {

ThreadPool::ThreadPool(size_t num_threads) {
  KG_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    KG_CHECK(!shutting_down_);
    tasks_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void RunParallel(std::vector<std::function<void()>> tasks,
                 size_t num_threads) {
  if (tasks.empty()) return;
  if (num_threads <= 1 || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }
  ThreadPool pool(std::min(num_threads, tasks.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) futures.push_back(pool.Submit(std::move(t)));
  for (auto& f : futures) f.get();
}

}  // namespace kgsearch
