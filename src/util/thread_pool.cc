#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/status.h"

namespace kgsearch {

void WaitGroup::Add(size_t n) {
  MutexLock lock(&mutex_);
  count_ += n;
}

void WaitGroup::Done() {
  MutexLock lock(&mutex_);
  KG_CHECK(count_ > 0);
  if (--count_ == 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  MutexLock lock(&mutex_);
  while (count_ != 0) cv_.Wait(&mutex_);
}

ThreadPool::ThreadPool(size_t num_threads) {
  KG_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    MutexLock lock(&mutex_);
    KG_CHECK(!shutting_down_);
    tasks_.push(std::move(wrapped));
  }
  cv_.NotifyOne();
  return fut;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    if (shutting_down_) return false;
    tasks_.push(std::packaged_task<void()>(std::move(task)));
  }
  cv_.NotifyOne();
  return true;
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mutex_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && tasks_.empty()) cv_.Wait(&mutex_);
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

size_t DefaultPoolThreads(size_t requested) {
  if (requested > 0) return requested;
  const size_t hw = std::thread::hardware_concurrency();
  return hw < 2 ? 2 : hw;
}

void RunParallel(std::vector<std::function<void()>> tasks,
                 size_t num_threads) {
  if (tasks.empty()) return;
  if (num_threads <= 1 || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }
  ThreadPool pool(std::min(num_threads, tasks.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) futures.push_back(pool.Submit(std::move(t)));
  for (auto& f : futures) f.get();
}

void RunOnPool(ThreadPool* pool, std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (pool == nullptr || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }

  // Shared claim state: helpers enqueued on the pool and the caller all
  // draw tasks from one atomic cursor. The state is shared_ptr-owned so a
  // helper that fires after the caller returned finds an (empty) batch
  // rather than dangling memory.
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> next{0};
    WaitGroup wg;
    Mutex error_mutex;
    std::exception_ptr error GUARDED_BY(error_mutex);
  };
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  batch->wg.Add(batch->tasks.size());

  // A throwing task must still mark itself done (or the join below hangs);
  // the first exception is captured and rethrown to the caller, matching
  // how RunParallel surfaces task exceptions through future.get().
  auto drain = [batch] {
    for (;;) {
      const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->tasks.size()) return;
      try {
        batch->tasks[i]();
      } catch (...) {
        MutexLock lock(&batch->error_mutex);
        if (!batch->error) batch->error = std::current_exception();
      }
      batch->wg.Done();
    }
  };

  // Offer up to (batch size - 1) helper jobs: the caller is the remaining
  // executor. Rejection (pool shutting down) is fine — the caller drains.
  const size_t helpers =
      std::min(batch->tasks.size() - 1, pool->num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    if (!pool->TrySubmit(drain)) break;
  }
  drain();
  batch->wg.Wait();
  // The join above is the happens-before edge that publishes `error`, but
  // the lock is what the analysis (and any future re-ordering of this
  // code) can rely on — take it for the read.
  std::exception_ptr error;
  {
    MutexLock lock(&batch->error_mutex);
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace kgsearch
