// Fixed-size thread pool used to run one A* semantic search per sub-query
// graph concurrently (Section V remark: "multithreaded manner").
#ifndef KGSEARCH_UTIL_THREAD_POOL_H_
#define KGSEARCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgsearch {

/// Simple FIFO thread pool. Tasks may not block on other pool tasks.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

/// Runs `tasks` to completion, using `num_threads` workers (or inline when
/// num_threads <= 1). Convenience for fork-join parallelism.
void RunParallel(std::vector<std::function<void()>> tasks, size_t num_threads);

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_THREAD_POOL_H_
