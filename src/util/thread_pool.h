// Process-wide thread pool shared by many in-flight queries (the serving
// model), plus the fork-join helpers used to run one A* semantic search per
// sub-query graph concurrently (Section V remark: "multithreaded manner").
//
// Two execution regimes coexist:
//  - RunParallel spins up a private pool for one fork-join batch (the
//    original single-query path; still used when no executor is injected).
//  - RunOnPool runs a batch on a long-lived shared pool with
//    caller-participation: the submitting thread claims and executes tasks
//    from its own batch alongside any pool workers that pick up helper
//    jobs. Joining a batch therefore never blocks pool progress — even a
//    pool worker executing a query can fork sub-query batches and join
//    them without risk of deadlock, because in the worst case it simply
//    runs its whole batch itself.
#ifndef KGSEARCH_UTIL_THREAD_POOL_H_
#define KGSEARCH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgsearch {

/// Counts outstanding work items; Wait() blocks until the count reaches
/// zero. Done() establishes a happens-before edge with the matching Wait().
class WaitGroup {
 public:
  /// Registers `n` more outstanding items.
  void Add(size_t n) EXCLUDES(mutex_);
  /// Marks one item complete.
  void Done() EXCLUDES(mutex_);
  /// Blocks until every added item is done.
  void Wait() EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  CondVar cv_;
  size_t count_ GUARDED_BY(mutex_) = 0;
};

/// Simple FIFO thread pool. Tasks may not block on other pool tasks;
/// fork-join inside a task must go through RunOnPool, whose caller
/// participation keeps joins deadlock-free.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it finishes.
  /// Fails a KG_CHECK when the pool is shutting down.
  std::future<void> Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Enqueues a task if the pool is accepting work; returns false (and
  /// drops the task) when the pool is shutting down. Used by batch helpers
  /// that can tolerate rejection because the caller runs the work itself.
  [[nodiscard]] bool TrySubmit(std::function<void()> task) EXCLUDES(mutex_);

  /// Immutable after construction, so unguarded reads are safe.
  size_t num_threads() const { return workers_.size(); }

  /// Tasks enqueued but not yet started (a load signal, racy by nature).
  size_t queue_depth() const EXCLUDES(mutex_);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ GUARDED_BY(mutex_);
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

/// Pool-sizing policy shared by every owner of a serving pool: `requested`
/// when > 0, otherwise std::thread::hardware_concurrency() with a floor of
/// 2 so async work overlaps even on tiny machines.
size_t DefaultPoolThreads(size_t requested);

/// Async-submission pattern shared by the serving layers (QueryService,
/// KgSession): enqueues `run` on `pool` and returns a future of its result.
/// `queued` counts the task from submission until it starts (a queue-depth
/// gauge); `outstanding` tracks it until it has fully finished, and Done()
/// is the task's very last action — so a destructor that Wait()s on
/// `outstanding` before tearing anything down can never race the task,
/// even when `pool` outlives the owner. A throwing `run` reaches the
/// client through the future; when the pool is shutting down the future
/// resolves to `rejected` instead, after invoking `on_reject` (owners use
/// it to return admission slots or other resources reserved at submission
/// time that `run` would normally release).
template <typename ResultT, typename RunFn>
std::future<ResultT> SubmitTracked(ThreadPool* pool, WaitGroup* outstanding,
                                   std::atomic<size_t>* queued, RunFn run,
                                   ResultT rejected,
                                   std::function<void()> on_reject = {}) {
  auto promise = std::make_shared<std::promise<ResultT>>();
  std::future<ResultT> fut = promise->get_future();
  queued->fetch_add(1, std::memory_order_relaxed);
  outstanding->Add(1);
  const bool accepted = pool->TrySubmit(
      [promise, queued, outstanding,
       run = std::optional<RunFn>(std::move(run))]() mutable {
        queued->fetch_sub(1, std::memory_order_relaxed);
        try {
          promise->set_value((*run)());
        } catch (...) {
          promise->set_exception(std::current_exception());
        }
        // Destroy the task closure BEFORE Done(): leases and other
        // resources captured in it release from their destructors, and
        // after Done() the owner's destructor may proceed — a release
        // running later on this worker would touch freed state.
        run.reset();
        outstanding->Done();
      });
  if (!accepted) {
    queued->fetch_sub(1, std::memory_order_relaxed);
    if (on_reject) on_reject();
    outstanding->Done();
    promise->set_value(std::move(rejected));
  }
  return fut;
}

/// Runs `tasks` to completion, using `num_threads` workers (or inline when
/// num_threads <= 1). Convenience for fork-join parallelism with a private
/// pool per call.
void RunParallel(std::vector<std::function<void()>> tasks, size_t num_threads);

/// Runs `tasks` to completion on a shared pool, with the calling thread
/// claiming and executing tasks alongside pool workers (caller
/// participation / helping). Safe to call from inside a pool task: the
/// caller drains its own batch even when every worker is busy, so the join
/// cannot deadlock. Runs inline when `pool` is null. If tasks throw, every
/// task still completes or is claimed, and the first exception is rethrown
/// to the caller after the join.
void RunOnPool(ThreadPool* pool, std::vector<std::function<void()>> tasks);

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_THREAD_POOL_H_
