// Bounded top-k heap keeping the k largest items by score.
#ifndef KGSEARCH_UTIL_TOPK_HEAP_H_
#define KGSEARCH_UTIL_TOPK_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace kgsearch {

/// Keeps the k items with the largest scores seen so far.
///
/// Push is O(log k); extraction returns items in descending score order.
/// Ties are broken by insertion order (earlier insertions win), which keeps
/// top-k results deterministic across runs.
template <typename T>
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  /// Offers an item; keeps it only if it is among the k best so far.
  void Push(double score, T item) {
    if (k_ == 0) return;
    Entry e{score, counter_++, std::move(item)};
    if (heap_.size() < k_) {
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return;
    }
    if (Better(e, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
      heap_.back() = std::move(e);
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    }
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  size_t capacity() const { return k_; }

  /// Smallest retained score; meaningful only when size() == capacity().
  double MinScore() const { return heap_.empty() ? 0.0 : heap_.front().score; }

  /// True when the heap is full and `score` cannot enter it.
  bool WouldReject(double score) const {
    return heap_.size() == k_ &&
           (k_ == 0 || score <= heap_.front().score);
  }

  /// Extracts all retained items in descending score order. Clears the heap.
  std::vector<std::pair<double, T>> TakeSortedDescending() {
    std::sort(heap_.begin(), heap_.end(),
              [](const Entry& a, const Entry& b) { return Better(a, b); });
    std::vector<std::pair<double, T>> out;
    out.reserve(heap_.size());
    for (auto& e : heap_) out.emplace_back(e.score, std::move(e.item));
    heap_.clear();
    return out;
  }

 private:
  struct Entry {
    double score;
    uint64_t seq;
    T item;
  };

  /// True when a ranks strictly better than b.
  static bool Better(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.seq < b.seq;
  }
  /// Heap comparator putting the worst entry at front.
  static bool MinFirst(const Entry& a, const Entry& b) { return Better(a, b); }

  size_t k_;
  uint64_t counter_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace kgsearch

#endif  // KGSEARCH_UTIL_TOPK_HEAP_H_
