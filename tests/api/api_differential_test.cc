// Facade parity: KgSession responses must be bit-identical (same answer
// ids, scores, order) to direct QueryService and direct engine execution
// on the synthetic workload, for both the SGQ and the TBQ path — the
// facade is a pure adapter, never a different engine.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "api/session.h"
#include "core/time_bounded.h"
#include "eval/harness.h"
#include "gen/car_domain.h"
#include "gen/synthetic_kg.h"
#include "gen/workload.h"

namespace kgsearch {
namespace {

class ApiDifferentialTest : public ::testing::Test {
 protected:
  // One session holding both corpora; the generated parts move into the
  // session, so direct engines borrow the session's pointers — both sides
  // run over literally the same data.
  static void SetUpTestSuite() {
    session_ = new KgSession();

    auto car = MakeCarDomainDataset(150, 117);
    ASSERT_TRUE(car.ok()) << car.status().ToString();
    ASSERT_TRUE(session_
                    ->RegisterDataset(
                        "car", std::move(car.ValueOrDie()->graph),
                        std::move(car.ValueOrDie()->space),
                        std::move(car.ValueOrDie()->library))
                    .ok());

    auto dbp = GenerateDataset(DbpediaLikeSpec(0.3, 42));
    ASSERT_TRUE(dbp.ok()) << dbp.status().ToString();
    // The workload builder needs the intact GeneratedDataset; keep it and
    // register non-owning copies is impossible, so build the workload
    // first, then move the parts into the session.
    GeneratedDataset* ds = dbp.ValueOrDie().get();
    workload_ = new std::vector<QueryWithGold>(MakeStandardWorkload(*ds, 8));
    ASSERT_FALSE(workload_->empty());
    ASSERT_TRUE(session_
                    ->RegisterDataset("dbpedia", std::move(ds->graph),
                                      std::move(ds->space),
                                      std::move(ds->library))
                    .ok());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete session_;
    session_ = nullptr;
  }

  static KgSession* session_;
  static std::vector<QueryWithGold>* workload_;
};

KgSession* ApiDifferentialTest::session_ = nullptr;
std::vector<QueryWithGold>* ApiDifferentialTest::workload_ = nullptr;

/// Asserts the facade response mirrors an engine-level match list exactly.
void ExpectBitIdentical(const QueryResponse& response,
                        const std::vector<FinalMatch>& matches,
                        const KnowledgeGraph& graph,
                        const std::string& context) {
  ASSERT_EQ(response.answers.size(), matches.size()) << context;
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(response.answers[i].id, matches[i].pivot_match)
        << context << " rank " << i;
    EXPECT_EQ(response.answers[i].score, matches[i].score)
        << context << " rank " << i;
    EXPECT_EQ(response.answers[i].name,
              std::string(graph.NodeName(matches[i].pivot_match)))
        << context << " rank " << i;
  }
}

// SGQ: session vs direct QueryService vs direct SgqEngine, over the full
// mixed workload, via both the QueryGraph and (where expressible) requests
// built from the same graph.
TEST_F(ApiDifferentialTest, SgqBitIdenticalToServiceAndEngine) {
  const KnowledgeGraph* graph = session_->graph("dbpedia");
  const PredicateSpace* space = session_->space("dbpedia");
  const TransformationLibrary* library = session_->library("dbpedia");
  ASSERT_NE(graph, nullptr);

  SgqEngine direct(graph, space, library);
  QueryService standalone(graph, space, library, {.num_threads = 4});

  RequestOptions api_options;
  api_options.k = 25;
  const EngineOptions engine_options = ToEngineOptions(api_options);

  for (const QueryWithGold& q : *workload_) {
    QueryRequest request;
    request.dataset = "dbpedia";
    request.query_graph = q.query;
    request.options = api_options;

    auto api = session_->Query(request);
    auto service = standalone.Query(q.query, engine_options);
    auto engine = direct.Query(q.query, engine_options);

    ASSERT_EQ(api.ok(), engine.ok()) << q.description;
    ASSERT_EQ(service.ok(), engine.ok()) << q.description;
    if (!engine.ok()) continue;
    ExpectBitIdentical(api.ValueOrDie(), engine.ValueOrDie().matches, *graph,
                       q.description + " (vs engine)");
    ExpectBitIdentical(api.ValueOrDie(), service.ValueOrDie().matches,
                       *graph, q.description + " (vs service)");
  }
}

// The batch path must go through the same machinery: answers identical to
// the sync facade path for the whole workload.
TEST_F(ApiDifferentialTest, BatchBitIdenticalToSync) {
  std::vector<QueryRequest> requests;
  for (const QueryWithGold& q : *workload_) {
    QueryRequest request;
    request.dataset = "dbpedia";
    request.query_graph = q.query;
    request.options.k = 20;
    requests.push_back(std::move(request));
  }
  std::vector<Result<QueryResponse>> batch = session_->QueryBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto sync = session_->Query(requests[i]);
    ASSERT_EQ(batch[i].ok(), sync.ok()) << (*workload_)[i].description;
    if (!sync.ok()) continue;
    EXPECT_EQ(batch[i].ValueOrDie().answers, sync.ValueOrDie().answers)
        << (*workload_)[i].description;
  }
}

// TBQ with a generous bound is exact and deterministic (Lemma 7 territory):
// the facade must be bit-identical to a direct TbqEngine run, and both must
// equal the unbounded SGQ answers.
TEST_F(ApiDifferentialTest, TbqBitIdenticalToDirectEngine) {
  const KnowledgeGraph* graph = session_->graph("car");
  const PredicateSpace* space = session_->space("car");
  const TransformationLibrary* library = session_->library("car");
  ASSERT_NE(graph, nullptr);

  TbqEngine direct(graph, space, library);
  RequestOptions api_options;
  api_options.k = 15;
  api_options.time_bound_micros = 30'000'000;  // generous: nothing stops
  const TimeBoundedOptions tbq_options = ToTimeBoundedOptions(api_options);

  for (int variant = 1; variant <= 4; ++variant) {
    const QueryGraph query = MakeQ117Variant(variant);
    QueryRequest request;
    request.dataset = "car";
    request.mode = QueryMode::kTbq;
    request.query_graph = query;
    request.options = api_options;

    auto api = session_->Query(request);
    auto engine = direct.Query(query, tbq_options);
    ASSERT_EQ(api.ok(), engine.ok()) << "variant " << variant;
    if (!engine.ok()) continue;
    ASSERT_FALSE(engine.ValueOrDie().stopped_by_time);
    EXPECT_FALSE(api.ValueOrDie().stopped_by_time);
    ExpectBitIdentical(api.ValueOrDie(), engine.ValueOrDie().matches,
                       *graph, "TBQ variant " + std::to_string(variant));

    // And the generous TBQ answers equal unbounded SGQ exactly.
    QueryRequest sgq_request = request;
    sgq_request.mode = QueryMode::kSgq;
    auto sgq = session_->Query(sgq_request);
    ASSERT_TRUE(sgq.ok());
    EXPECT_EQ(api.ValueOrDie().answers, sgq.ValueOrDie().answers)
        << "TBQ != SGQ, variant " << variant;
  }
}

// Warm facade caches must not change answers: rerunning the workload
// through the session reproduces the cold answers exactly.
TEST_F(ApiDifferentialTest, WarmCachesDoNotChangeAnswers) {
  std::vector<std::vector<AnswerDto>> cold;
  for (const QueryWithGold& q : *workload_) {
    QueryRequest request;
    request.dataset = "dbpedia";
    request.query_graph = q.query;
    request.options.k = 20;
    auto r = session_->Query(request);
    ASSERT_TRUE(r.ok()) << q.description;
    cold.push_back(r.ValueOrDie().answers);
  }
  for (size_t i = 0; i < workload_->size(); ++i) {
    QueryRequest request;
    request.dataset = "dbpedia";
    request.query_graph = (*workload_)[i].query;
    request.options.k = 20;
    auto r = session_->Query(request);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie().answers, cold[i])
        << (*workload_)[i].description;
  }
}

// Text-built and graph-built requests for the same intent are identical:
// the parser is a front end, not a different query.
TEST_F(ApiDifferentialTest, TextAndGraphRequestsAgree) {
  // Q117 variant 4 in text form: exact type, exact predicate.
  QueryRequest text_request;
  text_request.dataset = "car";
  text_request.query_text = "?Automobile assembly Germany";
  text_request.options.k = 20;

  QueryRequest graph_request = text_request;
  graph_request.query_text.clear();
  graph_request.query_graph = MakeQ117Variant(4);

  auto from_text = session_->Query(text_request);
  auto from_graph = session_->Query(graph_request);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_graph.ok()) << from_graph.status().ToString();
  EXPECT_EQ(from_text.ValueOrDie().answers,
            from_graph.ValueOrDie().answers);
}

}  // namespace
}  // namespace kgsearch
