// Metamorphic batch properties of the facade: reordering a QueryBatch and
// splitting it into sub-batches are answer-preserving transformations.
// Each request is independent and deterministic (TBQ requests use a
// generous bound that never stops a search), so the per-query responses —
// and their JSON wire documents, once environmental timings are zeroed —
// must be identical under both transformations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/session.h"
#include "gen/car_domain.h"

namespace kgsearch {
namespace {

class BatchMetamorphicTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new KgSession();
    auto dataset = MakeCarDomainDataset(150, 117);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    GeneratedDataset& ds = *dataset.ValueOrDie();
    ASSERT_TRUE(session_
                    ->RegisterDataset("car", std::move(ds.graph),
                                      std::move(ds.space),
                                      std::move(ds.library))
                    .ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
  static KgSession* session_;
};

KgSession* BatchMetamorphicTest::session_ = nullptr;

/// A mixed batch: all four Q117 variants as graphs at two ks, one text
/// query, and a generously-bounded (hence deterministic) TBQ request.
std::vector<QueryRequest> MakeBatch() {
  std::vector<QueryRequest> batch;
  for (int variant = 1; variant <= 4; ++variant) {
    for (size_t k : {5u, 15u}) {
      QueryRequest request;
      request.dataset = "car";
      request.query_graph = MakeQ117Variant(variant);
      request.options.k = k;
      batch.push_back(std::move(request));
    }
  }
  QueryRequest text;
  text.dataset = "car";
  text.query_text = "?Automobile assembly Germany";
  text.options.k = 10;
  batch.push_back(std::move(text));

  QueryRequest tbq;
  tbq.dataset = "car";
  tbq.mode = QueryMode::kTbq;
  tbq.query_graph = MakeQ117Variant(3);
  tbq.options.k = 10;
  tbq.options.time_bound_micros = 1'000'000'000;  // never binds
  tbq.options.per_match_assembly_micros = 0.5;
  batch.push_back(std::move(tbq));
  return batch;
}

/// Wire document with environmental fields (wall-clock timings) zeroed;
/// everything else — answers, scores, stats, flags — must be bit-equal.
std::string NormalizedJson(const Result<QueryResponse>& result) {
  if (!result.ok()) return "error:" + result.status().ToString();
  QueryResponse response = result.ValueOrDie();
  response.timings = ResponseTimings{};
  return EncodeQueryResponseJson(response);
}

std::vector<std::string> NormalizedJsonAll(
    const std::vector<Result<QueryResponse>>& results) {
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(NormalizedJson(r));
  return out;
}

TEST_F(BatchMetamorphicTest, PermutingABatchPermutesNothingElse) {
  const std::vector<QueryRequest> batch = MakeBatch();
  const std::vector<std::string> baseline =
      NormalizedJsonAll(session_->QueryBatch(batch));

  // A fixed non-trivial permutation (reversal) and a rotated one.
  std::vector<size_t> reversal(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    reversal[i] = batch.size() - 1 - i;
  }
  std::vector<size_t> rotation(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    rotation[i] = (i + 3) % batch.size();
  }
  for (const std::vector<size_t>& perm : {reversal, rotation}) {
    std::vector<QueryRequest> permuted;
    permuted.reserve(batch.size());
    for (size_t i : perm) permuted.push_back(batch[i]);
    const std::vector<std::string> shuffled =
        NormalizedJsonAll(session_->QueryBatch(permuted));
    ASSERT_EQ(shuffled.size(), baseline.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      EXPECT_EQ(shuffled[i], baseline[perm[i]])
          << "response " << i << " after permutation";
    }
  }
}

TEST_F(BatchMetamorphicTest, SplittingABatchChangesNothing) {
  const std::vector<QueryRequest> batch = MakeBatch();
  const std::vector<std::string> baseline =
      NormalizedJsonAll(session_->QueryBatch(batch));

  // Split points chosen to produce uneven sub-batches (1 | rest, and an
  // approximately even 3-way split).
  for (size_t split_ways : {2u, 3u}) {
    std::vector<std::string> stitched;
    const size_t chunk =
        (batch.size() + split_ways - 1) / split_ways;
    for (size_t begin = 0; begin < batch.size(); begin += chunk) {
      const size_t end = std::min(begin + chunk, batch.size());
      std::vector<QueryRequest> sub(batch.begin() + static_cast<long>(begin),
                                    batch.begin() + static_cast<long>(end));
      for (std::string& doc : NormalizedJsonAll(session_->QueryBatch(sub))) {
        stitched.push_back(std::move(doc));
      }
    }
    EXPECT_EQ(stitched, baseline) << split_ways << "-way split";
  }
}

TEST_F(BatchMetamorphicTest, SingletonBatchesEqualSyncExecution) {
  const std::vector<QueryRequest> batch = MakeBatch();
  for (const QueryRequest& request : batch) {
    const std::string sync = NormalizedJson(session_->Query(request));
    const std::vector<std::string> single =
        NormalizedJsonAll(session_->QueryBatch({request}));
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0], sync);
  }
}

}  // namespace
}  // namespace kgsearch
