// Decoder-hardening sweep: every document in the hostile corpus must come
// back as a clean error Status (or error document) from each wire entry
// point — never an abort, hang, or sanitizer report. The same corpus runs
// against a live socket in tests/server/tcp_server_test.cc.
#include <gtest/gtest.h>

#include <string>

#include "api/protocol.h"
#include "api/session.h"
#include "testing/car_fixture.h"
#include "testing/hostile_json.h"
#include "util/json.h"

namespace kgsearch {
namespace {

using testing_fixture::HostileWireDocs;
using testing_fixture::RegisterCars;

TEST(ProtocolRobustnessTest, HostileDocsRejectedByRequestDecoder) {
  for (const auto& doc : HostileWireDocs()) {
    Result<QueryRequest> decoded = DecodeQueryRequestJson(doc.text);
    ASSERT_FALSE(decoded.ok()) << doc.label;
    const StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kParseError ||
                code == StatusCode::kInvalidArgument)
        << doc.label << ": " << decoded.status().ToString();
    EXPECT_FALSE(decoded.status().message().empty()) << doc.label;
  }
}

TEST(ProtocolRobustnessTest, HostileDocsAnsweredAsErrorDocumentsByQueryJson) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  for (const auto& doc : HostileWireDocs()) {
    const std::string answer = session.QueryJson(doc.text);
    // The answer itself must be a well-formed error document.
    Result<JsonValue> parsed = JsonValue::Parse(answer);
    ASSERT_TRUE(parsed.ok()) << doc.label << " answered: " << answer;
    const JsonValue* error = parsed.ValueOrDie().Find("error");
    ASSERT_NE(error, nullptr) << doc.label << " answered: " << answer;
    EXPECT_NE(error->Find("code"), nullptr) << doc.label;
    EXPECT_NE(error->Find("message"), nullptr) << doc.label;
  }
}

TEST(ProtocolRobustnessTest, OversizedDocumentRejectedBeforeParsing) {
  // Just over the cap: rejected with a message naming the limit.
  std::string big = "{\"v\":1,\"query_text\":\"";
  big.append(kMaxWireRequestBytes, 'x');
  big += "\"}";
  ASSERT_GT(big.size(), kMaxWireRequestBytes);
  Result<QueryRequest> decoded = DecodeQueryRequestJson(big);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("wire"), std::string::npos);

  // At the cap exactly: the size guard passes and the parser judges the
  // content on its merits (here: a valid request shape).
  std::string at_cap = "{\"v\":1,\"dataset\":\"d\",\"query_text\":\"";
  at_cap.append(kMaxWireRequestBytes - at_cap.size() - 2, 'y');
  at_cap += "\"}";
  ASSERT_EQ(at_cap.size(), kMaxWireRequestBytes);
  EXPECT_TRUE(DecodeQueryRequestJson(at_cap).ok());
}

TEST(ProtocolRobustnessTest, ValidUtf8RoundTripsThroughTheCodec) {
  // The UTF-8 validator must reject mangled bytes without harming real
  // multibyte text: two-, three-, and four-byte sequences plus escapes.
  QueryRequest request;
  request.dataset = "cars";
  request.query_text = "?Auto länder 日本 𝄞 Ⅻ";
  Result<QueryRequest> decoded =
      DecodeQueryRequestJson(EncodeQueryRequestJson(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().query_text, request.query_text);

  // Escaped supplementary-plane input decodes to the same raw UTF-8.
  Result<JsonValue> escaped = JsonValue::Parse("\"\\uD834\\uDD1E\"");
  ASSERT_TRUE(escaped.ok());
  EXPECT_EQ(escaped.ValueOrDie().string_value(), "𝄞");
}

TEST(ProtocolRobustnessTest, InvalidUtf8ErrorsNameTheDefect) {
  auto code_of = [](const char* text) {
    return JsonValue::Parse(text).status();
  };
  EXPECT_NE(code_of("\"\xC0\xAF\"").message().find("overlong"),
            std::string::npos);
  EXPECT_NE(code_of("\"\xED\xA0\x80\"").message().find("surrogate"),
            std::string::npos);
  EXPECT_NE(code_of("\"\xF4\x90\x80\x80\"").message().find("U+10FFFF"),
            std::string::npos);
  EXPECT_NE(code_of("\"\x80\"").message().find("lead"), std::string::npos);
  // A closing quote where a continuation byte belongs is a continuation
  // error; the sequence running off the end of the document is truncation.
  EXPECT_NE(code_of("\"\xE2\x82\"").message().find("continuation"),
            std::string::npos);
  EXPECT_NE(code_of("\"\xE2\x82").message().find("truncated"),
            std::string::npos);
}

}  // namespace
}  // namespace kgsearch
