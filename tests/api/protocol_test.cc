#include "api/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "api/query_text.h"

namespace kgsearch {
namespace {

QueryGraph MakeChainQuery() {
  return ParseQueryText("?Automobile engine ?Device; ?Device made_in Germany")
      .ValueOrDie();
}

QueryRequest MakeFullRequest() {
  QueryRequest request;
  request.dataset = "dbpedia";
  request.mode = QueryMode::kTbq;
  request.query_graph = MakeChainQuery();
  request.options.k = 25;
  request.options.tau = 0.65;
  request.options.n_hat = 3;
  request.options.pivot_strategy = PivotStrategy::kRandom;
  request.options.seed = 7;
  request.options.dedup = DedupMode::kExactState;
  request.options.max_expansions = 1'000'000;
  request.options.budget_factor = 5;
  request.options.max_retry_rounds = 1;
  request.options.matches_per_target = 2;
  request.options.time_bound_micros = 50'000;
  request.options.alert_ratio = 0.75;
  request.options.per_match_assembly_micros = 2.5;
  request.options.match_cap = 128;
  request.options.stop_check_interval = 32;
  request.deadline_ms = 750;
  request.priority = RequestPriority::kHigh;
  return request;
}

QueryResponse MakeFullResponse() {
  QueryResponse response;
  response.dataset = "dbpedia";
  response.mode = QueryMode::kTbq;
  response.stopped_by_time = true;
  response.answers.push_back(AnswerDto{12, "Audi TT", "Automobile", 1.961});
  response.answers.push_back(AnswerDto{7, "BMW 320", "Automobile", 1.875});
  response.timings = ResponseTimings{0.031, 4.25, 4.5};
  response.stats.subqueries = 2;
  response.stats.expanded = 1234;
  response.stats.generated = 77;
  response.stats.ta_sorted_accesses = 40;
  response.stats.ta_early_terminated = true;
  response.deadline_ms = 750;
  response.priority = RequestPriority::kHigh;
  return response;
}

TEST(QueryModeTest, NamesRoundTrip) {
  EXPECT_STREQ(QueryModeName(QueryMode::kSgq), "sgq");
  EXPECT_STREQ(QueryModeName(QueryMode::kTbq), "tbq");
  EXPECT_EQ(ParseQueryModeName("sgq").ValueOrDie(), QueryMode::kSgq);
  EXPECT_EQ(ParseQueryModeName("tbq").ValueOrDie(), QueryMode::kTbq);
  EXPECT_FALSE(ParseQueryModeName("SGQ").ok());
  EXPECT_FALSE(ParseQueryModeName("").ok());
}

TEST(RequestOptionsTest, DefaultsMatchEngineDefaults) {
  const RequestOptions options;
  const EngineOptions engine = ToEngineOptions(options);
  const EngineOptions engine_defaults;
  EXPECT_EQ(engine.k, engine_defaults.k);
  EXPECT_EQ(engine.tau, engine_defaults.tau);
  EXPECT_EQ(engine.n_hat, engine_defaults.n_hat);
  EXPECT_EQ(engine.pivot_strategy, engine_defaults.pivot_strategy);
  EXPECT_EQ(engine.seed, engine_defaults.seed);
  EXPECT_EQ(engine.budget_factor, engine_defaults.budget_factor);
  EXPECT_EQ(engine.max_retry_rounds, engine_defaults.max_retry_rounds);
  EXPECT_EQ(engine.max_expansions, engine_defaults.max_expansions);
  EXPECT_EQ(engine.dedup, engine_defaults.dedup);
  EXPECT_EQ(engine.matches_per_target, engine_defaults.matches_per_target);
  EXPECT_EQ(engine.threads, engine_defaults.threads);
  EXPECT_EQ(engine.executor, nullptr);

  const TimeBoundedOptions tbq = ToTimeBoundedOptions(options);
  const TimeBoundedOptions tbq_defaults;
  EXPECT_EQ(tbq.k, tbq_defaults.k);
  EXPECT_EQ(tbq.tau, tbq_defaults.tau);
  EXPECT_EQ(tbq.n_hat, tbq_defaults.n_hat);
  EXPECT_EQ(tbq.time_bound_micros, tbq_defaults.time_bound_micros);
  EXPECT_EQ(tbq.alert_ratio, tbq_defaults.alert_ratio);
  EXPECT_EQ(tbq.per_match_assembly_micros,
            tbq_defaults.per_match_assembly_micros);
  EXPECT_EQ(tbq.match_cap, tbq_defaults.match_cap);
  EXPECT_EQ(tbq.stop_check_interval, tbq_defaults.stop_check_interval);
  EXPECT_EQ(tbq.max_expansions, tbq_defaults.max_expansions);
  EXPECT_EQ(tbq.dedup, tbq_defaults.dedup);
}

TEST(QueryGraphCodecTest, RoundTrip) {
  const QueryGraph query = MakeChainQuery();
  auto decoded = DecodeQueryGraph(EncodeQueryGraph(query));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.ValueOrDie() == query);
}

TEST(QueryGraphCodecTest, RejectsMalformedDocuments) {
  // Out-of-range endpoint and self-loop must fail softly, not KG_CHECK.
  auto out_of_range = DecodeQueryGraph(
      JsonValue::Parse("{\"nodes\":[{\"type\":\"A\"},{\"type\":\"B\","
                       "\"name\":\"b\"}],\"edges\":[{\"from\":0,\"to\":5,"
                       "\"predicate\":\"p\"}]}")
          .ValueOrDie());
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);

  auto self_loop = DecodeQueryGraph(
      JsonValue::Parse("{\"nodes\":[{\"type\":\"A\"},{\"type\":\"B\","
                       "\"name\":\"b\"}],\"edges\":[{\"from\":0,\"to\":0,"
                       "\"predicate\":\"p\"}]}")
          .ValueOrDie());
  ASSERT_FALSE(self_loop.ok());
  EXPECT_EQ(self_loop.status().code(), StatusCode::kInvalidArgument);

  auto no_edges = DecodeQueryGraph(
      JsonValue::Parse("{\"nodes\":[{\"type\":\"A\"}]}").ValueOrDie());
  EXPECT_FALSE(no_edges.ok());

  // An explicitly empty "name" is a client bug, not a target node.
  auto empty_name = DecodeQueryGraph(
      JsonValue::Parse("{\"nodes\":[{\"type\":\"A\"},{\"type\":\"B\","
                       "\"name\":\"\"}],\"edges\":[{\"from\":0,\"to\":1,"
                       "\"predicate\":\"p\"}]}")
          .ValueOrDie());
  ASSERT_FALSE(empty_name.ok());
  EXPECT_EQ(empty_name.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestCodecTest, DefaultRequestRoundTrip) {
  QueryRequest request;
  request.dataset = "car";
  request.query_text = "?Car product GER";
  auto decoded = DecodeQueryRequestJson(EncodeQueryRequestJson(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.ValueOrDie() == request);
}

TEST(RequestCodecTest, Uint64OptionsSurviveTheWire) {
  // seed and max_expansions are uint64; values above int64 range must not
  // wrap negative on the wire (decode(encode(x)) == x holds everywhere).
  QueryRequest request;
  request.dataset = "car";
  request.query_text = "?Car product GER";
  request.options.seed = 1ull << 63;
  request.options.max_expansions = UINT64_MAX;
  auto decoded = DecodeQueryRequestJson(EncodeQueryRequestJson(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().options.seed, 1ull << 63);
  EXPECT_EQ(decoded.ValueOrDie().options.max_expansions, UINT64_MAX);
  EXPECT_TRUE(decoded.ValueOrDie() == request);
}

TEST(RequestCodecTest, FullRequestRoundTrip) {
  const QueryRequest request = MakeFullRequest();
  auto decoded = DecodeQueryRequestJson(EncodeQueryRequestJson(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.ValueOrDie() == request);
  // Byte-stable too: re-encoding the decoded request is identical.
  EXPECT_EQ(EncodeQueryRequestJson(decoded.ValueOrDie()),
            EncodeQueryRequestJson(request));
}

TEST(RequestCodecTest, OmittedOptionsAreDefaults) {
  auto decoded = DecodeQueryRequestJson(
      "{\"v\":1,\"dataset\":\"car\",\"query_text\":\"?Car product GER\"}");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.ValueOrDie().options == RequestOptions{});
  EXPECT_EQ(decoded.ValueOrDie().mode, QueryMode::kSgq);
  EXPECT_FALSE(decoded.ValueOrDie().query_graph.has_value());
}

TEST(RequestCodecTest, DecodeErrors) {
  // Not JSON at all.
  EXPECT_EQ(DecodeQueryRequestJson("{oops").status().code(),
            StatusCode::kParseError);
  // Wrong or missing version.
  EXPECT_FALSE(DecodeQueryRequestJson("{\"dataset\":\"d\"}").ok());
  EXPECT_FALSE(DecodeQueryRequestJson("{\"v\":2,\"dataset\":\"d\"}").ok());
  // Missing dataset.
  EXPECT_FALSE(DecodeQueryRequestJson("{\"v\":1}").ok());
  // Bad mode / bad option values.
  EXPECT_FALSE(
      DecodeQueryRequestJson("{\"v\":1,\"dataset\":\"d\",\"mode\":\"x\"}")
          .ok());
  EXPECT_FALSE(DecodeQueryRequestJson(
                   "{\"v\":1,\"dataset\":\"d\",\"options\":{\"k\":-3}}")
                   .ok());
  EXPECT_FALSE(DecodeQueryRequestJson(
                   "{\"v\":1,\"dataset\":\"d\",\"options\":{\"dedup\":"
                   "\"bogus\"}}")
                   .ok());
  EXPECT_FALSE(DecodeQueryRequestJson(
                   "{\"v\":1,\"dataset\":\"d\",\"options\":3}")
                   .ok());
}

TEST(ResponseCodecTest, RoundTrip) {
  const QueryResponse response = MakeFullResponse();
  auto decoded = DecodeQueryResponseJson(EncodeQueryResponseJson(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.ValueOrDie() == response);
  EXPECT_EQ(EncodeQueryResponseJson(decoded.ValueOrDie()),
            EncodeQueryResponseJson(response));
}

TEST(ResponseCodecTest, EmptyAnswersRoundTrip) {
  QueryResponse response;
  response.dataset = "car";
  auto decoded = DecodeQueryResponseJson(EncodeQueryResponseJson(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.ValueOrDie() == response);
}

TEST(ResponseCodecTest, DecodeErrors) {
  EXPECT_FALSE(DecodeQueryResponseJson("[]").ok());
  EXPECT_FALSE(DecodeQueryResponseJson("{\"v\":1}").ok());  // no dataset
  EXPECT_FALSE(
      DecodeQueryResponseJson("{\"v\":1,\"dataset\":\"d\"}").ok());  // answers
  EXPECT_FALSE(DecodeQueryResponseJson(
                   "{\"v\":9,\"dataset\":\"d\",\"answers\":[]}")
                   .ok());
  // An answer id beyond uint32 must be rejected, not silently truncated.
  auto truncated = DecodeQueryResponseJson(
      "{\"v\":1,\"dataset\":\"d\",\"answers\":[{\"id\":4294967296,"
      "\"name\":\"x\",\"type\":\"T\",\"score\":1.0}]}");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
}

TEST(OverloadFieldsCodecTest, DeadlineAndPriorityRoundTrip) {
  QueryRequest request;
  request.dataset = "car";
  request.query_text = "?Car product GER";
  request.deadline_ms = 1234;
  request.priority = RequestPriority::kHigh;
  auto decoded = DecodeQueryRequestJson(EncodeQueryRequestJson(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().deadline_ms, 1234);
  EXPECT_EQ(decoded.ValueOrDie().priority, RequestPriority::kHigh);
  EXPECT_TRUE(decoded.ValueOrDie() == request);
}

TEST(OverloadFieldsCodecTest, AbsentFieldsDecodeToPreDeadlineDefaults) {
  // A v1 document from a pre-deadline client must keep its old meaning:
  // no deadline, normal priority.
  auto request = DecodeQueryRequestJson(
      "{\"v\":1,\"dataset\":\"car\",\"query_text\":\"?Car product GER\"}");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.ValueOrDie().deadline_ms, 0);
  EXPECT_EQ(request.ValueOrDie().priority, RequestPriority::kNormal);

  auto response = DecodeQueryResponseJson(
      "{\"v\":1,\"dataset\":\"car\",\"answers\":[]}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.ValueOrDie().deadline_ms, 0);
  EXPECT_EQ(response.ValueOrDie().priority, RequestPriority::kNormal);
}

TEST(OverloadFieldsCodecTest, MalformedOverloadFieldsAreRejected) {
  auto negative = DecodeQueryRequestJson(
      "{\"v\":1,\"dataset\":\"c\",\"query_text\":\"?T p N\","
      "\"deadline_ms\":-5}");
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  auto bad_priority = DecodeQueryRequestJson(
      "{\"v\":1,\"dataset\":\"c\",\"query_text\":\"?T p N\","
      "\"priority\":\"urgent\"}");
  ASSERT_FALSE(bad_priority.ok());
  EXPECT_EQ(bad_priority.status().code(), StatusCode::kInvalidArgument);

  // The response decoder enforces the same rule as the request decoder.
  auto negative_echo = DecodeQueryResponseJson(
      "{\"v\":1,\"dataset\":\"c\",\"answers\":[],\"deadline_ms\":-5}");
  ASSERT_FALSE(negative_echo.ok());
  EXPECT_EQ(negative_echo.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorCodecTest, EncodesCodeAndMessage) {
  const std::string doc =
      EncodeErrorJson(Status::NotFound("unknown dataset: \"x\""));
  auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* error = parsed.ValueOrDie().Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string_value(), "NotFound");
  EXPECT_EQ(error->Find("message")->string_value(),
            "unknown dataset: \"x\"");
}

}  // namespace
}  // namespace kgsearch
