#include "api/query_text.h"

#include <gtest/gtest.h>

#include <memory>

namespace kgsearch {
namespace {

std::unique_ptr<KnowledgeGraph> MakeGraph() {
  auto graph = std::make_unique<KnowledgeGraph>();
  graph->AddNode("Germany", "Country");
  graph->AddNode("Audi_TT", "Automobile");
  KG_CHECK(graph->AddTriple("Audi_TT", "assembly", "Germany").ok());
  graph->Finalize();
  return graph;
}

TEST(ParseQueryTextTest, SingleEdge) {
  auto parsed = ParseQueryText("?Automobile assembly Germany");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QueryGraph& q = parsed.ValueOrDie();
  ASSERT_EQ(q.NumNodes(), 2u);
  ASSERT_EQ(q.NumEdges(), 1u);
  EXPECT_FALSE(q.node(0).is_specific());
  EXPECT_EQ(q.node(0).type, "Automobile");
  EXPECT_TRUE(q.node(1).is_specific());
  EXPECT_EQ(q.node(1).name, "Germany");
  EXPECT_EQ(q.edge(0).predicate, "assembly");
  EXPECT_EQ(q.edge(0).from, 0);
  EXPECT_EQ(q.edge(0).to, 1);
}

TEST(ParseQueryTextTest, SpecificTypeInferredFromGraph) {
  auto graph = MakeGraph();
  auto with_graph =
      ParseQueryText("?Automobile assembly Germany", graph.get());
  ASSERT_TRUE(with_graph.ok());
  EXPECT_EQ(with_graph.ValueOrDie().node(1).type, "Country");

  auto without_graph = ParseQueryText("?Automobile assembly Germany");
  ASSERT_TRUE(without_graph.ok());
  EXPECT_EQ(without_graph.ValueOrDie().node(1).type, "Thing");

  // Unknown entities fall back to Thing even with a graph.
  auto unknown = ParseQueryText("?Automobile assembly Atlantis", graph.get());
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.ValueOrDie().node(1).type, "Thing");
}

TEST(ParseQueryTextTest, ChainSharesNodesByToken) {
  auto parsed = ParseQueryText(
      "?Automobile engine ?Device; ?Device made_in Germany");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QueryGraph& q = parsed.ValueOrDie();
  EXPECT_EQ(q.NumNodes(), 3u);  // ?Device appears once
  EXPECT_EQ(q.NumEdges(), 2u);
  EXPECT_EQ(q.edge(0).to, q.edge(1).from);  // the shared ?Device node
}

TEST(ParseQueryTextTest, ExtraWhitespaceTolerated) {
  auto parsed =
      ParseQueryText("  ?Car   product   GER  ;  ?Car made_by  VW ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.ValueOrDie().NumEdges(), 2u);
}

TEST(ParseQueryTextErrorTest, EmptyQuery) {
  for (const char* text : {"", "   ", "\t \n"}) {
    auto parsed = ParseQueryText(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: '" << text << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParseQueryTextErrorTest, DanglingSemicolon) {
  auto trailing = ParseQueryText("?Car product GER;");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kParseError);
  EXPECT_NE(trailing.status().message().find("dangling"), std::string::npos);

  auto doubled = ParseQueryText("?Car product GER;; ?Car made_by VW");
  ASSERT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.status().code(), StatusCode::kParseError);

  auto leading = ParseQueryText("; ?Car product GER");
  ASSERT_FALSE(leading.ok());
  EXPECT_EQ(leading.status().code(), StatusCode::kParseError);
}

TEST(ParseQueryTextErrorTest, MalformedEdgeShape) {
  for (const char* text :
       {"?Car product", "?Car", "?Car product GER extra"}) {
    auto parsed = ParseQueryText(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: '" << text << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
  }
}

TEST(ParseQueryTextErrorTest, UnknownNodeTokenShape) {
  // A bare '?' is a target node without a type.
  auto bare = ParseQueryText("? product GER");
  ASSERT_FALSE(bare.ok());
  EXPECT_EQ(bare.status().code(), StatusCode::kParseError);

  // A predicate token must not look like a target node.
  auto predicate = ParseQueryText("?Car ?product GER");
  ASSERT_FALSE(predicate.ok());
  EXPECT_EQ(predicate.status().code(), StatusCode::kParseError);
}

TEST(ParseQueryTextErrorTest, SelfLoopEdge) {
  // Same token on both sides — target and specific flavors. Must be a
  // Status, not the KG_CHECK abort inside QueryGraph::AddEdge.
  auto target_loop = ParseQueryText("?Car similar_to ?Car");
  ASSERT_FALSE(target_loop.ok());
  EXPECT_EQ(target_loop.status().code(), StatusCode::kInvalidArgument);

  auto specific_loop = ParseQueryText("GER borders GER");
  ASSERT_FALSE(specific_loop.ok());
  EXPECT_EQ(specific_loop.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseQueryTextErrorTest, StructurallyInvalidQueriesFailValidate) {
  // All-target query: no specific node to anchor the search.
  auto no_specific = ParseQueryText("?Car product ?Country");
  ASSERT_FALSE(no_specific.ok());
  EXPECT_EQ(no_specific.status().code(), StatusCode::kInvalidArgument);

  // All-specific query: nothing to answer.
  auto no_target = ParseQueryText("Audi_TT assembly Germany");
  ASSERT_FALSE(no_target.ok());
  EXPECT_EQ(no_target.status().code(), StatusCode::kInvalidArgument);

  // Two connected components.
  auto disconnected =
      ParseQueryText("?Car product GER; ?Phone made_by Samsung");
  ASSERT_FALSE(disconnected.ok());
  EXPECT_EQ(disconnected.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kgsearch
