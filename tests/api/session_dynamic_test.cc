// Dynamic-graph facade tests: live ingest through the session (epoch
// visibility, validation, wire form), atomic blue-green replacement with
// drain (the name-collision bugfix), compaction folding, and the
// replace_existing load path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "testing/car_fixture.h"
#include "util/json.h"

namespace kgsearch {
namespace {

using testing_fixture::CarParts;
using testing_fixture::CarRequest;
using testing_fixture::MakeCarParts;
using testing_fixture::RegisterCars;

std::vector<std::string> AnswerNames(const QueryResponse& response) {
  std::vector<std::string> out;
  for (const AnswerDto& a : response.answers) out.push_back(a.name);
  return out;
}

IngestRequest AddCar(const std::string& name) {
  IngestRequest request;
  request.dataset = "cars";
  IngestOpDto op;
  op.head = name;
  op.predicate = "assembly";
  op.tail = "Germany";
  op.head_type = "Automobile";
  request.ops.push_back(std::move(op));
  return request;
}

bool Contains(const std::vector<std::string>& names,
              const std::string& name) {
  for (const std::string& n : names) {
    if (n == name) return true;
  }
  return false;
}

TEST(SessionIngestTest, CommittedBatchBecomesVisibleToNewQueries) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const QueryRequest query = CarRequest("?Car product GER");

  auto before = session.Query(query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(Contains(AnswerNames(before.ValueOrDie()), "VW_Golf"));
  ASSERT_EQ(session.DatasetEpoch("cars").ValueOrDie(), 0u);

  Result<IngestResponse> ingested = session.Ingest(AddCar("VW_Golf"));
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(ingested.ValueOrDie().epoch, 1u);
  EXPECT_EQ(ingested.ValueOrDie().ops_applied, 1u);
  EXPECT_EQ(session.DatasetEpoch("cars").ValueOrDie(), 1u);

  auto after = session.Query(query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(Contains(AnswerNames(after.ValueOrDie()), "VW_Golf"));
}

TEST(SessionIngestTest, RetractHidesABaseTriple) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const QueryRequest query = CarRequest("?Car product GER");
  auto before = session.Query(query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(Contains(AnswerNames(before.ValueOrDie()), "BMW_320"));

  IngestRequest retract;
  retract.dataset = "cars";
  IngestOpDto op;
  op.retract = true;
  op.head = "BMW_320";
  op.predicate = "assembly";
  op.tail = "Germany";
  retract.ops.push_back(std::move(op));
  ASSERT_TRUE(session.Ingest(retract).ok());

  auto after = session.Query(query);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(Contains(AnswerNames(after.ValueOrDie()), "BMW_320"));
}

TEST(SessionIngestTest, ValidationErrors) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());

  IngestRequest unknown_dataset = AddCar("VW_Golf");
  unknown_dataset.dataset = "nope";
  EXPECT_EQ(session.Ingest(unknown_dataset).status().code(),
            StatusCode::kNotFound);

  IngestRequest no_ops;
  no_ops.dataset = "cars";
  EXPECT_EQ(session.Ingest(no_ops).status().code(),
            StatusCode::kInvalidArgument);

  // Adds must use predicates the predicate space has embedding rows for.
  IngestRequest new_predicate = AddCar("VW_Golf");
  new_predicate.ops[0].predicate = "invented_just_now";
  EXPECT_EQ(session.Ingest(new_predicate).status().code(),
            StatusCode::kInvalidArgument);

  // A failed batch publishes nothing.
  EXPECT_EQ(session.DatasetEpoch("cars").ValueOrDie(), 0u);
}

TEST(SessionIngestTest, ListDatasetsReportsLiveViewCountsAndEpoch) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const DatasetInfo before = session.ListDatasets()[0];

  ASSERT_TRUE(session.Ingest(AddCar("VW_Golf")).ok());
  const DatasetInfo after = session.ListDatasets()[0];
  EXPECT_EQ(after.nodes, before.nodes + 1);
  EXPECT_EQ(after.edges, before.edges + 1);
  EXPECT_EQ(after.predicates, before.predicates);
  EXPECT_EQ(after.epoch, 1u);
}

TEST(SessionIngestTest, IngestJsonRoundTrip) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());

  const std::string ok = session.IngestJson(
      R"({"v":1,"ingest":{"dataset":"cars","ops":[)"
      R"({"op":"add","head":"VW_Golf","predicate":"assembly",)"
      R"("tail":"Germany","head_type":"Automobile"}]}})");
  Result<IngestResponse> decoded = DecodeIngestResponseJson(ok);
  ASSERT_TRUE(decoded.ok()) << ok;
  EXPECT_EQ(decoded.ValueOrDie().epoch, 1u);
  EXPECT_EQ(decoded.ValueOrDie().ops_applied, 1u);

  const std::string bad = session.IngestJson("{\"v\":1}");
  EXPECT_NE(bad.find("\"error\""), std::string::npos);
}

TEST(SessionReplaceTest, RegisterCollisionStaysAlreadyExists) {
  // Regression guard for the name-collision bugfix: plain RegisterDataset
  // must still refuse, only the explicit replace verbs swap.
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  EXPECT_EQ(RegisterCars(&session).code(), StatusCode::kAlreadyExists);
}

TEST(SessionReplaceTest, ReplaceSwapsAtomicallyAndResetsEpoch) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  ASSERT_TRUE(session.Ingest(AddCar("VW_Golf")).ok());
  ASSERT_EQ(session.DatasetEpoch("cars").ValueOrDie(), 1u);
  const KnowledgeGraph* old_graph = session.graph("cars");

  CarParts parts = MakeCarParts();
  ASSERT_TRUE(session
                  .ReplaceDataset("cars", std::move(parts.graph),
                                  std::move(parts.space),
                                  std::move(parts.library))
                  .ok());
  // Fresh generation: new graph pointer, pristine overlay — the ingested
  // VW_Golf lived in the replaced generation and is gone.
  EXPECT_NE(session.graph("cars"), old_graph);
  EXPECT_EQ(session.DatasetEpoch("cars").ValueOrDie(), 0u);
  auto after = session.Query(CarRequest("?Car product GER"));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(Contains(AnswerNames(after.ValueOrDie()), "VW_Golf"));
}

TEST(SessionReplaceTest, ReplaceUnderLiveQueriesNeverFailsOne) {
  // The drain contract: queries in flight during a swap finish on the old
  // generation; queries after it run on the new one. No query ever fails.
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      const QueryRequest query = CarRequest("?Car product GER");
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = session.Query(query);
        executed.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok() || result.ValueOrDie().answers.empty()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Keep swapping until the readers have demonstrably executed queries
  // across several generations (bounded so a wedged reader can't hang CI).
  for (int swap = 0; swap < 2000 && executed.load() < 200; ++swap) {
    CarParts parts = MakeCarParts();
    ASSERT_TRUE(session
                    .ReplaceDataset("cars", std::move(parts.graph),
                                    std::move(parts.space),
                                    std::move(parts.library))
                    .ok());
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(executed.load(), 0u);
}

TEST(SessionReplaceTest, StatsGenerationChangesAcrossSwap) {
  // The wire stats carry a process-unique generation so rate trackers
  // (server/stats.h) can detect a swapped-out service instead of diffing
  // counters across generations.
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const uint64_t gen1 = session.Stats("cars").ValueOrDie().generation;
  EXPECT_NE(gen1, 0u);

  CarParts parts = MakeCarParts();
  ASSERT_TRUE(session
                  .ReplaceDataset("cars", std::move(parts.graph),
                                  std::move(parts.space),
                                  std::move(parts.library))
                  .ok());
  const uint64_t gen2 = session.Stats("cars").ValueOrDie().generation;
  EXPECT_NE(gen2, 0u);
  EXPECT_NE(gen2, gen1);
}

TEST(SessionCompactTest, CompactionFoldsDeltaAndPreservesAnswers) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  ASSERT_TRUE(session.Ingest(AddCar("VW_Golf")).ok());
  const QueryRequest query = CarRequest("?Car product GER");
  auto before = session.Query(query);
  ASSERT_TRUE(before.ok());
  const KnowledgeGraph* old_graph = session.graph("cars");

  ASSERT_TRUE(session.CompactDataset("cars").ok());
  // Fresh base graph at epoch 0, delta folded in, answers bit-identical.
  EXPECT_NE(session.graph("cars"), old_graph);
  EXPECT_EQ(session.DatasetEpoch("cars").ValueOrDie(), 0u);
  EXPECT_EQ(session.graph("cars")->NumEdges(), 6u);  // 5 base + 1 ingested
  auto after = session.Query(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().answers, before.ValueOrDie().answers);

  // Ingest keeps working against the compacted generation.
  ASSERT_TRUE(session.Ingest(AddCar("VW_Polo")).ok());
  EXPECT_EQ(session.DatasetEpoch("cars").ValueOrDie(), 1u);
}

TEST(SessionCompactTest, CompactionAtEpochZeroIsANoop) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const KnowledgeGraph* old_graph = session.graph("cars");
  ASSERT_TRUE(session.CompactDataset("cars").ok());
  EXPECT_EQ(session.graph("cars"), old_graph);  // no swap happened
  EXPECT_TRUE(session.Ingest(AddCar("VW_Golf")).ok());  // not left retired
  EXPECT_EQ(session.CompactDataset("nope").code(), StatusCode::kNotFound);
}

TEST(SessionLoadTest, ReplaceExistingControlsTheCollisionOutcome) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const std::string path =
      ::testing::TempDir() + "/session_dynamic_cars.kgpack";
  ASSERT_TRUE(session.SaveDataset("cars", path).ok());

  DatasetLoadOptions options;
  options.graph_path = path;
  EXPECT_EQ(session.LoadDataset("cars", options).code(),
            StatusCode::kAlreadyExists);
  options.replace_existing = true;
  EXPECT_TRUE(session.LoadDataset("cars", options).ok());
  auto answer = session.Query(CarRequest("?Car product GER"));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.ValueOrDie().answers.empty());
  std::remove(path.c_str());
}

TEST(SessionLoadTest, SaveDatasetSnapshotsTheLiveView) {
  // Saving after ingest folds base+delta, so a reload serves the merged
  // state (at epoch 0) rather than silently dropping the delta.
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  ASSERT_TRUE(session.Ingest(AddCar("VW_Golf")).ok());
  const std::string path =
      ::testing::TempDir() + "/session_dynamic_live.kgpack";
  ASSERT_TRUE(session.SaveDataset("cars", path).ok());

  KgSession fresh;
  DatasetLoadOptions options;
  options.graph_path = path;
  ASSERT_TRUE(fresh.LoadDataset("cars", options).ok());
  EXPECT_EQ(fresh.DatasetEpoch("cars").ValueOrDie(), 0u);
  auto answer = fresh.Query(CarRequest("?Car product GER"));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(Contains(AnswerNames(answer.ValueOrDie()), "VW_Golf"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgsearch
