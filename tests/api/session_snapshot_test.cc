// KgSession snapshot wiring: SaveDataset writes a kgpack any LoadDataset
// restores through the magic-sniffing fast path, with the same answers and
// precise Status errors on misuse (unknown dataset, conflicting options,
// corrupt file, unwritable path).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "kg/snapshot.h"
#include "kg/triple_io.h"

namespace kgsearch {
namespace {

struct CarParts {
  std::unique_ptr<KnowledgeGraph> graph;
  std::unique_ptr<PredicateSpace> space;
  TransformationLibrary library;
};

CarParts MakeCarParts() {
  CarParts parts;
  parts.graph = std::make_unique<KnowledgeGraph>();
  KnowledgeGraph& g = *parts.graph;
  NodeId audi = g.AddNode("Audi_TT", "Automobile");
  NodeId bmw = g.AddNode("BMW_320", "Automobile");
  NodeId germany = g.AddNode("Germany", "Country");
  NodeId regensburg = g.AddNode("Regensburg", "City");
  g.AddEdge(bmw, "assembly", germany);
  g.AddEdge(audi, "assembly", regensburg);
  g.AddEdge(regensburg, "country", germany);
  g.InternPredicate("product");
  g.Finalize();

  auto vec = [](double cosine) {
    return FloatVec{
        static_cast<float>(cosine),
        static_cast<float>(std::sqrt(std::max(0.0, 1.0 - cosine * cosine)))};
  };
  std::vector<FloatVec> vectors(g.NumPredicates());
  std::vector<std::string> names(g.NumPredicates());
  auto set_vec = [&](const char* predicate, double cosine) {
    PredicateId p = g.FindPredicate(predicate);
    vectors[p] = vec(cosine);
    names[p] = predicate;
  };
  set_vec("product", 1.0);
  set_vec("assembly", 0.98);
  set_vec("country", 0.91);
  parts.space =
      std::make_unique<PredicateSpace>(std::move(vectors), std::move(names));

  parts.library.AddTypeSynonym("Car", "Automobile");
  parts.library.AddNameAbbreviation("GER", "Germany");
  return parts;
}

QueryRequest CarRequest() {
  QueryRequest request;
  request.dataset = "cars";
  request.query_text = "?Car product GER";
  request.options.k = 5;
  request.options.tau = 0.6;
  request.options.n_hat = 3;
  return request;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(KgSessionSnapshotTest, SaveThenLoadServesIdenticalAnswers) {
  const std::string path = TempPath("session_snapshot.kgpack");

  KgSession saver;
  CarParts parts = MakeCarParts();
  ASSERT_TRUE(saver
                  .RegisterDataset("cars", std::move(parts.graph),
                                   std::move(parts.space),
                                   std::move(parts.library))
                  .ok());
  ASSERT_TRUE(saver.SaveDataset("cars", path).ok());
  auto saved_answers = saver.Query(CarRequest());
  ASSERT_TRUE(saved_answers.ok());
  ASSERT_FALSE(saved_answers.ValueOrDie().answers.empty());

  KgSession loader;
  DatasetLoadOptions load;
  load.graph_path = path;  // sniffed as kgpack, no parsing/training
  ASSERT_TRUE(loader.LoadDataset("cars", load).ok());
  auto loaded_answers = loader.Query(CarRequest());
  ASSERT_TRUE(loaded_answers.ok());
  EXPECT_EQ(loaded_answers.ValueOrDie().answers,
            saved_answers.ValueOrDie().answers);

  const std::vector<DatasetInfo> listed = loader.ListDatasets();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].nodes, 4u);
  EXPECT_EQ(listed[0].edges, 3u);
  std::remove(path.c_str());
}

TEST(KgSessionSnapshotTest, SaveUnknownDatasetIsNotFound) {
  KgSession session;
  Status st = session.SaveDataset("nope", TempPath("never_written.kgpack"));
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(KgSessionSnapshotTest, SaveToUnwritablePathIsIOError) {
  KgSession session;
  CarParts parts = MakeCarParts();
  ASSERT_TRUE(session
                  .RegisterDataset("cars", std::move(parts.graph),
                                   std::move(parts.space),
                                   std::move(parts.library))
                  .ok());
  Status st = session.SaveDataset("cars", "/nonexistent/dir/out.kgpack");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(KgSessionSnapshotTest, SnapshotLoadRejectsConflictingOptions) {
  const std::string path = TempPath("session_snapshot_conflict.kgpack");
  KgSession saver;
  CarParts parts = MakeCarParts();
  ASSERT_TRUE(saver
                  .RegisterDataset("cars", std::move(parts.graph),
                                   std::move(parts.space),
                                   std::move(parts.library))
                  .ok());
  ASSERT_TRUE(saver.SaveDataset("cars", path).ok());

  KgSession loader;
  DatasetLoadOptions bad;
  bad.graph_path = path;
  bad.train_transe = true;  // meaningless for a bundled snapshot
  Status st = loader.LoadDataset("cars", bad);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  DatasetLoadOptions bad_space = DatasetLoadOptions{};
  bad_space.graph_path = path;
  bad_space.space_path = "some_space.txt";
  EXPECT_EQ(loader.LoadDataset("cars", bad_space).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(KgSessionSnapshotTest, CorruptSnapshotIsAParseErrorNotACrash) {
  const std::string path = TempPath("session_snapshot_corrupt.kgpack");
  KgSession saver;
  CarParts parts = MakeCarParts();
  ASSERT_TRUE(saver
                  .RegisterDataset("cars", std::move(parts.graph),
                                   std::move(parts.space),
                                   std::move(parts.library))
                  .ok());
  ASSERT_TRUE(saver.SaveDataset("cars", path).ok());

  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = bytes.ValueOrDie();
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x42);
  ASSERT_TRUE(WriteStringToFile(path, corrupt).ok());

  KgSession loader;
  DatasetLoadOptions load;
  load.graph_path = path;
  Status st = loader.LoadDataset("cars", load);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_FALSE(loader.HasDataset("cars"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgsearch
