#include "api/session.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "kg/triple_io.h"

namespace kgsearch {
namespace {

/// The Figure 2 miniature: cars connected to Germany via semantically
/// equivalent paths, plus a designer/nationality distractor.
struct CarParts {
  std::unique_ptr<KnowledgeGraph> graph;
  std::unique_ptr<PredicateSpace> space;
  TransformationLibrary library;
};

CarParts MakeCarParts() {
  CarParts parts;
  parts.graph = std::make_unique<KnowledgeGraph>();
  KnowledgeGraph& g = *parts.graph;
  NodeId audi = g.AddNode("Audi_TT", "Automobile");
  NodeId bmw = g.AddNode("BMW_320", "Automobile");
  NodeId kia = g.AddNode("KIA_K5", "Automobile");
  NodeId germany = g.AddNode("Germany", "Country");
  NodeId regensburg = g.AddNode("Regensburg", "City");
  NodeId schreyer = g.AddNode("Peter_Schreyer", "Person");
  g.AddEdge(bmw, "assembly", germany);
  g.AddEdge(audi, "assembly", regensburg);
  g.AddEdge(regensburg, "country", germany);
  g.AddEdge(kia, "designer", schreyer);
  g.AddEdge(schreyer, "nationality", germany);
  g.InternPredicate("product");
  g.Finalize();

  auto vec = [](double cosine) {
    return FloatVec{
        static_cast<float>(cosine),
        static_cast<float>(std::sqrt(std::max(0.0, 1.0 - cosine * cosine)))};
  };
  std::vector<FloatVec> vectors(g.NumPredicates());
  std::vector<std::string> names(g.NumPredicates());
  auto set_vec = [&](const char* predicate, double cosine) {
    PredicateId p = g.FindPredicate(predicate);
    vectors[p] = vec(cosine);
    names[p] = predicate;
  };
  set_vec("product", 1.0);
  set_vec("assembly", 0.98);
  set_vec("country", 0.91);
  set_vec("designer", 0.55);
  set_vec("nationality", 0.50);
  parts.space =
      std::make_unique<PredicateSpace>(std::move(vectors), std::move(names));

  parts.library.AddTypeSynonym("Car", "Automobile");
  parts.library.AddNameAbbreviation("GER", "Germany");
  return parts;
}

Status RegisterCars(KgSession* session, const std::string& name = "cars") {
  CarParts parts = MakeCarParts();
  return session->RegisterDataset(name, std::move(parts.graph),
                                  std::move(parts.space),
                                  std::move(parts.library));
}

QueryRequest CarRequest(const std::string& text) {
  QueryRequest request;
  request.dataset = "cars";
  request.query_text = text;
  request.options.k = 5;
  request.options.tau = 0.6;
  request.options.n_hat = 3;
  return request;
}

std::vector<std::string> AnswerNames(const QueryResponse& response) {
  std::vector<std::string> out;
  for (const AnswerDto& a : response.answers) out.push_back(a.name);
  return out;
}

TEST(KgSessionRegistryTest, RegisterListAndIntrospect) {
  KgSession session;
  EXPECT_FALSE(session.HasDataset("cars"));
  ASSERT_TRUE(RegisterCars(&session).ok());
  EXPECT_TRUE(session.HasDataset("cars"));

  const std::vector<DatasetInfo> listed = session.ListDatasets();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].name, "cars");
  EXPECT_EQ(listed[0].nodes, 6u);
  EXPECT_EQ(listed[0].edges, 5u);
  EXPECT_EQ(listed[0].predicates, 5u);

  EXPECT_NE(session.service("cars"), nullptr);
  EXPECT_NE(session.graph("cars"), nullptr);
  EXPECT_NE(session.space("cars"), nullptr);
  EXPECT_NE(session.library("cars"), nullptr);
  EXPECT_EQ(session.service("nope"), nullptr);
  EXPECT_EQ(session.graph("nope"), nullptr);
}

TEST(KgSessionRegistryTest, DuplicateAndInvalidRegistrations) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  Status duplicate = RegisterCars(&session);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);

  CarParts parts = MakeCarParts();
  EXPECT_EQ(session
                .RegisterDataset("", std::move(parts.graph),
                                 std::move(parts.space), {})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.RegisterDataset("x", nullptr, nullptr, {}).code(),
            StatusCode::kInvalidArgument);

  // Unfinalized graphs are rejected up front.
  CarParts parts2 = MakeCarParts();
  auto unfinalized = std::make_unique<KnowledgeGraph>();
  unfinalized->AddNode("a", "T");
  EXPECT_EQ(session
                .RegisterDataset("y", std::move(unfinalized),
                                 std::move(parts2.space), {})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(KgSessionQueryTest, TextQueryThroughLibraryRecords) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  // ?Car needs the type synonym, GER the abbreviation, product the
  // semantic space — the full pipeline through one request.
  auto result = session.Query(CarRequest("?Car product GER"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResponse& response = result.ValueOrDie();
  EXPECT_EQ(AnswerNames(response),
            (std::vector<std::string>{"BMW_320", "Audi_TT"}));
  EXPECT_EQ(response.answers[0].type, "Automobile");
  EXPECT_GT(response.answers[0].score, response.answers[1].score);
  EXPECT_EQ(response.dataset, "cars");
  EXPECT_EQ(response.mode, QueryMode::kSgq);
  EXPECT_EQ(response.stats.subqueries, 1u);
  EXPECT_GT(response.stats.expanded, 0u);
  EXPECT_GE(response.timings.total_ms, response.timings.engine_ms);
}

TEST(KgSessionQueryTest, ExplicitQueryGraphWinsOverText) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  QueryRequest request = CarRequest("?Car designer Nobody");
  QueryGraph graph_query;
  int car = graph_query.AddTargetNode("Automobile");
  int ger = graph_query.AddSpecificNode("Country", "Germany");
  graph_query.AddEdge(car, ger, "assembly");
  request.query_graph = graph_query;

  auto result = session.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(AnswerNames(result.ValueOrDie())[0], "BMW_320");
  // No text was parsed on the graph path.
  EXPECT_EQ(result.ValueOrDie().timings.parse_ms, 0.0);
}

TEST(KgSessionQueryTest, TbqModeAnswersWithGenerousBound) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  QueryRequest request = CarRequest("?Car product GER");
  request.mode = QueryMode::kTbq;
  request.options.time_bound_micros = 10'000'000;  // generous: exact answers
  auto result = session.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(AnswerNames(result.ValueOrDie()),
            (std::vector<std::string>{"BMW_320", "Audi_TT"}));
  EXPECT_FALSE(result.ValueOrDie().stopped_by_time);
  EXPECT_EQ(result.ValueOrDie().mode, QueryMode::kTbq);
}

TEST(KgSessionQueryTest, ErrorPathsReturnStatusNotAbort) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());

  EXPECT_EQ(session.Query(CarRequest("?Car product GER;")).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(session.Query(CarRequest("")).status().code(),
            StatusCode::kInvalidArgument);

  QueryRequest unknown = CarRequest("?Car product GER");
  unknown.dataset = "missing";
  EXPECT_EQ(session.Query(unknown).status().code(), StatusCode::kNotFound);

  QueryRequest bad_version = CarRequest("?Car product GER");
  bad_version.version = 99;
  EXPECT_EQ(session.Query(bad_version).status().code(),
            StatusCode::kInvalidArgument);

  // A malformed explicit QueryGraph hits the Validate() boundary check.
  QueryRequest malformed = CarRequest("");
  QueryGraph no_edges;
  no_edges.AddTargetNode("Automobile");
  malformed.query_graph = no_edges;
  EXPECT_EQ(session.Query(malformed).status().code(),
            StatusCode::kInvalidArgument);

  QueryGraph disconnected;
  int a = disconnected.AddTargetNode("Automobile");
  int b = disconnected.AddSpecificNode("Country", "Germany");
  disconnected.AddEdge(a, b, "assembly");
  disconnected.AddTargetNode("Person");  // isolated node
  QueryRequest disconnected_request = CarRequest("");
  disconnected_request.query_graph = disconnected;
  EXPECT_EQ(session.Query(disconnected_request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KgSessionQueryTest, SubmitAndBatchMatchSync) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const QueryRequest request = CarRequest("?Car product GER");
  auto sync = session.Query(request);
  ASSERT_TRUE(sync.ok());

  auto async = session.Submit(request).get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(AnswerNames(async.ValueOrDie()),
            AnswerNames(sync.ValueOrDie()));

  // A batch mixing good and bad requests: results in order, failures
  // isolated per entry.
  std::vector<QueryRequest> batch{request, CarRequest("?Car product GER;"),
                                  request};
  std::vector<Result<QueryResponse>> results = session.QueryBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  // Every batch entry has started (and finished) by now.
  EXPECT_EQ(session.queue_depth(), 0u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(AnswerNames(results[0].ValueOrDie()),
            AnswerNames(sync.ValueOrDie()));
  EXPECT_EQ(AnswerNames(results[2].ValueOrDie()),
            AnswerNames(sync.ValueOrDie()));
}

TEST(KgSessionQueryTest, QueryJsonWireRoundTrip) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const std::string response_json = session.QueryJson(
      EncodeQueryRequestJson(CarRequest("?Car product GER")));
  auto response = DecodeQueryResponseJson(response_json);
  ASSERT_TRUE(response.ok()) << response_json;
  EXPECT_EQ(AnswerNames(response.ValueOrDie()),
            (std::vector<std::string>{"BMW_320", "Audi_TT"}));

  // Malformed request documents come back as error documents.
  const std::string parse_error = session.QueryJson("{not json");
  auto parsed = JsonValue::Parse(parse_error);
  ASSERT_TRUE(parsed.ok()) << parse_error;
  ASSERT_NE(parsed.ValueOrDie().Find("error"), nullptr);
  EXPECT_EQ(parsed.ValueOrDie().Find("error")->Find("code")->string_value(),
            "ParseError");

  const std::string not_found = session.QueryJson(
      "{\"v\":1,\"dataset\":\"missing\",\"query_text\":\"?A p B\"}");
  auto nf = JsonValue::Parse(not_found);
  ASSERT_TRUE(nf.ok());
  EXPECT_EQ(nf.ValueOrDie().Find("error")->Find("code")->string_value(),
            "NotFound");
}

/// Parks every worker of the session's shared pool until Release() is
/// called; the constructor returns once all workers are parked, so
/// subsequent submissions verifiably stay queued.
struct SessionPoolBlocker {
  explicit SessionPoolBlocker(KgSession* session,
                              const std::string& dataset) {
    ThreadPool* pool = session->service(dataset)->executor();
    const size_t workers = pool->num_threads();
    std::vector<std::future<void>> running;
    for (size_t i = 0; i < workers; ++i) {
      auto started = std::make_shared<std::promise<void>>();
      running.push_back(started->get_future());
      done.push_back(pool->Submit([this, started] {
        started->set_value();
        gate_future.wait();
      }));
    }
    for (auto& r : running) r.wait();
  }
  void Release() {
    gate.set_value();
    for (auto& d : done) d.wait();
  }
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::vector<std::future<void>> done;
};

TEST(KgSessionOverloadTest, SubmitAdmissionIsDecidedAtSubmissionTime) {
  KgSessionOptions options;
  options.num_threads = 2;
  options.max_in_flight = 1;
  options.max_queued = 1;
  KgSession session(options);
  ASSERT_TRUE(RegisterCars(&session).ok());

  SessionPoolBlocker blocker(&session, "cars");
  // Async capacity = 1 + 1 = 2. With every worker parked, the first two
  // submissions hold their slots in the session queue; the third must
  // come back rejected immediately — before any queueing.
  auto f1 = session.Submit(CarRequest("?Car product GER"));
  auto f2 = session.Submit(CarRequest("?Car product GER"));
  auto f3 = session.Submit(CarRequest("?Car product GER"));
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "over-capacity submission must fail fast, not queue";
  auto rejected = f3.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  blocker.Release();
  ASSERT_TRUE(f1.get().ok());
  ASSERT_TRUE(f2.get().ok());
  const ServiceStatsSnapshot stats = session.Stats("cars").ValueOrDie();
  EXPECT_EQ(stats.queries_rejected, 1u);
  EXPECT_EQ(stats.queries_total, 2u);
  EXPECT_EQ(stats.admitted_outstanding, 0u);
}

TEST(KgSessionOverloadTest, BudgetSpentInQueueIsCountedByTheService) {
  ManualClock clock(1'000'000);
  KgSessionOptions options;
  options.num_threads = 2;
  KgSession session(options, &clock);
  ASSERT_TRUE(RegisterCars(&session).ok());

  SessionPoolBlocker blocker(&session, "cars");
  QueryRequest request = CarRequest("?Car product GER");
  request.deadline_ms = 5;  // stamped now; burns away while queued
  auto future = session.Submit(request);
  clock.AdvanceMicros(10'000);
  blocker.Release();
  auto r = future.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // The expiry is the service's outcome, not a facade short-circuit, so
  // the per-dataset overload counters record it.
  const ServiceStatsSnapshot stats = session.Stats("cars").ValueOrDie();
  EXPECT_EQ(stats.queries_deadline_exceeded, 1u);
  EXPECT_EQ(stats.queries_failed, 1u);
}

TEST(KgSessionOverloadTest, UntrustedPriorityIsClampedToNormal) {
  // A session serving untrusted wire clients can refuse to honor
  // "priority": "high", so self-promoted requests cannot bypass the
  // admission limits the operator configured.
  KgSessionOptions options;
  options.num_threads = 2;
  options.max_in_flight = 1;
  options.max_queued = 0;
  options.honor_request_priority = false;
  KgSession session(options);
  ASSERT_TRUE(RegisterCars(&session).ok());

  SessionPoolBlocker blocker(&session, "cars");
  auto admitted = session.Submit(CarRequest("?Car product GER"));
  QueryRequest promoted = CarRequest("?Car product GER");
  promoted.priority = RequestPriority::kHigh;
  auto rejected_future = session.Submit(promoted);
  ASSERT_EQ(rejected_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto rejected = rejected_future.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  blocker.Release();
  ASSERT_TRUE(admitted.get().ok());
  EXPECT_EQ(session.Stats("cars").ValueOrDie().queries_rejected, 1u);
}

TEST(KgSessionOverloadTest, TrustedPriorityStillBypassesLimits) {
  // The default (in-process callers): kHigh is honored and admitted past
  // the limits.
  KgSessionOptions options;
  options.num_threads = 2;
  options.max_in_flight = 1;
  options.max_queued = 0;
  KgSession session(options);
  ASSERT_TRUE(RegisterCars(&session).ok());

  SessionPoolBlocker blocker(&session, "cars");
  auto first = session.Submit(CarRequest("?Car product GER"));
  QueryRequest promoted = CarRequest("?Car product GER");
  promoted.priority = RequestPriority::kHigh;
  auto second = session.Submit(promoted);  // over limit, but high priority
  blocker.Release();
  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(second.get().ok());
  EXPECT_EQ(session.Stats("cars").ValueOrDie().queries_rejected, 0u);
}

TEST(KgSessionOverloadTest, GenerousDeadlineAndPriorityAreEchoedNotBinding) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  const QueryRequest plain = CarRequest("?Car product GER");
  auto reference = session.Query(plain);
  ASSERT_TRUE(reference.ok());

  QueryRequest bounded = plain;
  bounded.deadline_ms = 3'600'000;  // one hour: never binds
  bounded.priority = RequestPriority::kHigh;
  CancelToken token;  // never cancelled
  auto r = session.Query(bounded, &token);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(AnswerNames(r.ValueOrDie()),
            AnswerNames(reference.ValueOrDie()));
  EXPECT_EQ(r.ValueOrDie().deadline_ms, 3'600'000);
  EXPECT_EQ(r.ValueOrDie().priority, RequestPriority::kHigh);
  // The unconstrained response advertises the defaults.
  EXPECT_EQ(reference.ValueOrDie().deadline_ms, 0);
  EXPECT_EQ(reference.ValueOrDie().priority, RequestPriority::kNormal);
}

TEST(KgSessionOverloadTest, CancelledTokenSurfacesThroughFacade) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  CancelToken token;
  token.Cancel();
  // Sync, async, and batch all observe the revocation and surface
  // kCancelled; the dataset's serving counters prove it reached the
  // service layer rather than being short-circuited in the facade only.
  auto sync = session.Query(CarRequest("?Car product GER"), &token);
  ASSERT_FALSE(sync.ok());
  EXPECT_EQ(sync.status().code(), StatusCode::kCancelled);

  auto async = session.Submit(CarRequest("?Car product GER"), &token).get();
  ASSERT_FALSE(async.ok());
  EXPECT_EQ(async.status().code(), StatusCode::kCancelled);

  std::vector<Result<QueryResponse>> batch = session.QueryBatch(
      {CarRequest("?Car product GER"), CarRequest("?Car product GER")},
      &token);
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& r : batch) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  // All four outcomes were decided (and counted) by the service layer.
  EXPECT_EQ(session.Stats("cars").ValueOrDie().queries_cancelled, 4u);
}

TEST(KgSessionOverloadTest, NegativeDeadlineIsInvalidEverywhere) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  QueryRequest request = CarRequest("?Car product GER");
  request.deadline_ms = -1;
  EXPECT_EQ(session.Query(request).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Submit(request).get().status().code(),
            StatusCode::kInvalidArgument);
  // The wire decoder rejects it before execution, as an error document.
  const std::string doc = session.QueryJson(
      "{\"v\":1,\"dataset\":\"cars\",\"query_text\":\"?Car product GER\","
      "\"deadline_ms\":-1}");
  auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().Find("error")->Find("code")->string_value(),
            "InvalidArgument");
}

TEST(KgSessionOverloadTest, AdmissionLimitsPropagateToDatasetServices) {
  KgSessionOptions options;
  options.max_in_flight = 3;
  options.max_queued = 5;
  KgSession session(options);
  ASSERT_TRUE(RegisterCars(&session).ok());
  ASSERT_TRUE(RegisterCars(&session, "cars2").ok());
  for (const char* name : {"cars", "cars2"}) {
    const QueryService* service = session.service(name);
    ASSERT_NE(service, nullptr);
    EXPECT_TRUE(service->admission().enabled()) << name;
    EXPECT_EQ(service->admission().max_in_flight(), 3u) << name;
    EXPECT_EQ(service->admission().max_queued(), 5u) << name;
  }
  // Sequential traffic never overlaps, so nothing is rejected.
  ASSERT_TRUE(session.Query(CarRequest("?Car product GER")).ok());
  EXPECT_EQ(session.Stats("cars").ValueOrDie().queries_rejected, 0u);
}

TEST(KgSessionQueryTest, ParseQueryUsesDatasetGraphForTypes) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  auto parsed = session.ParseQuery("cars", "?Automobile assembly Germany");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().node(1).type, "Country");
  EXPECT_EQ(session.ParseQuery("missing", "?A p B").status().code(),
            StatusCode::kNotFound);
}

TEST(KgSessionQueryTest, StatsCountQueriesPerDataset) {
  KgSession session;
  ASSERT_TRUE(RegisterCars(&session).ok());
  ASSERT_TRUE(session.Query(CarRequest("?Car product GER")).ok());
  ASSERT_TRUE(session.Query(CarRequest("?Car product GER")).ok());
  auto stats = session.Stats("cars");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.ValueOrDie().queries_total, 2u);
  EXPECT_EQ(stats.ValueOrDie().sgq_queries, 2u);
  EXPECT_EQ(session.Stats("missing").status().code(), StatusCode::kNotFound);
}

TEST(KgSessionLoadTest, LoadsTsvGraphAndTrainsTransE) {
  const std::string dir = ::testing::TempDir();
  const std::string graph_path = dir + "/session_test_kg.tsv";
  // A small but trainable graph: a few cars assembled in two countries.
  std::string tsv;
  for (int i = 0; i < 6; ++i) {
    const std::string car = "Car_" + std::to_string(i);
    tsv += car + "\ta\tAutomobile\n";
    tsv += car + "\tassembly\t" + (i % 2 == 0 ? "Germany" : "France") + "\n";
  }
  tsv += "Germany\ta\tCountry\nFrance\ta\tCountry\n";
  ASSERT_TRUE(WriteStringToFile(graph_path, tsv).ok());

  const std::string library_path = dir + "/session_test_lib.tsv";
  TransformationLibrary library;
  library.AddNameAbbreviation("GER", "Germany");
  ASSERT_TRUE(WriteStringToFile(library_path, library.Serialize()).ok());

  KgSession session;
  DatasetLoadOptions load;
  load.graph_path = graph_path;
  load.library_path = library_path;
  load.transe_config.dim = 8;
  load.transe_config.epochs = 10;
  ASSERT_TRUE(session.LoadDataset("disk", load).ok());

  QueryRequest request;
  request.dataset = "disk";
  request.query_text = "?Automobile assembly GER";
  request.options.tau = 0.5;
  auto result = session.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The abbreviation resolves through the loaded library; the exact-match
  // edge guarantees the German cars are answered.
  EXPECT_GE(result.ValueOrDie().answers.size(), 3u);

  // Error paths: duplicate name, missing file, empty path.
  EXPECT_EQ(session.LoadDataset("disk", load).code(),
            StatusCode::kAlreadyExists);
  DatasetLoadOptions missing = load;
  missing.graph_path = dir + "/does_not_exist.tsv";
  EXPECT_EQ(session.LoadDataset("missing", missing).code(),
            StatusCode::kIOError);
  DatasetLoadOptions empty;
  EXPECT_EQ(session.LoadDataset("empty", empty).code(),
            StatusCode::kInvalidArgument);
}

TEST(KgSessionTeardownTest, DestructionDrainsInFlightSubmissions) {
  // The WaitGroup-drained destructor path: destroy the session while async
  // requests are still queued/running. The dtor must block until every
  // task finished (no use-after-free; TSan covers the ordering), and every
  // future must be fulfilled afterwards.
  std::vector<std::future<Result<QueryResponse>>> futures;
  {
    KgSessionOptions options;
    options.num_threads = 2;
    KgSession session(options);
    ASSERT_TRUE(RegisterCars(&session).ok());
    for (int i = 0; i < 16; ++i) {
      futures.push_back(session.Submit(CarRequest("?Car product GER")));
    }
    // Session destroyed here with most submissions still pending.
  }
  size_t answered = 0;
  for (auto& fut : futures) {
    auto r = fut.get();  // must not throw broken_promise
    if (r.ok()) {
      EXPECT_EQ(r.ValueOrDie().answers.size(), 2u);
      ++answered;
    }
  }
  // The destructor drains, it does not cancel: everything submitted before
  // teardown ran to completion.
  EXPECT_EQ(answered, futures.size());
}

TEST(KgSessionMultiDatasetTest, DatasetsShareOnePoolButNotCaches) {
  KgSessionOptions options;
  options.num_threads = 3;
  KgSession session(options);
  ASSERT_TRUE(RegisterCars(&session, "a").ok());
  ASSERT_TRUE(RegisterCars(&session, "b").ok());
  EXPECT_EQ(session.num_threads(), 3u);
  // Both services run on the session's pool.
  EXPECT_EQ(session.service("a")->num_threads(), 3u);
  EXPECT_EQ(session.service("b")->num_threads(), 3u);

  QueryRequest request = CarRequest("?Car product GER");
  request.dataset = "a";
  ASSERT_TRUE(session.Query(request).ok());
  request.dataset = "b";
  ASSERT_TRUE(session.Query(request).ok());
  // Stats are per dataset.
  EXPECT_EQ(session.Stats("a").ValueOrDie().queries_total, 1u);
  EXPECT_EQ(session.Stats("b").ValueOrDie().queries_total, 1u);
}

}  // namespace
}  // namespace kgsearch
