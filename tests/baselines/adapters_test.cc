#include "baselines/adapters.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/metrics.h"
#include "gen/car_domain.h"

namespace kgsearch {
namespace {

class AdaptersTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = MakeCarDomainDataset(150, 117);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = std::move(result).ValueOrDie().release();
    context_ = MethodContext{dataset_->graph.get(), dataset_->space.get(),
                             &dataset_->library};
    gold_ = dataset_->GoldIds(kCarProducedIntent, kCarGermanyAnchor);
    std::sort(gold_.begin(), gold_.end());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static MethodContext context_;
  static std::vector<NodeId> gold_;
};

GeneratedDataset* AdaptersTest::dataset_ = nullptr;
MethodContext AdaptersTest::context_;
std::vector<NodeId> AdaptersTest::gold_;

TEST_F(AdaptersTest, SgqMethodBeatsExactBaselinesOnF1) {
  SgqMethod sgq(context_, EngineOptions{});
  auto result = sgq.QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Prf prf = ComputePrf(result.ValueOrDie(), gold_);
  EXPECT_GT(prf.f1, 0.6);
  EXPECT_EQ(sgq.name(), "SGQ");
}

TEST_F(AdaptersTest, SgqHandlesAllVariants) {
  SgqMethod sgq(context_, EngineOptions{});
  for (int v = 1; v <= 4; ++v) {
    auto result = sgq.QueryTopK(MakeQ117Variant(v), 0, 30);
    ASSERT_TRUE(result.ok()) << "variant " << v;
    EXPECT_FALSE(result.ValueOrDie().empty()) << "variant " << v;
  }
}

TEST_F(AdaptersTest, TbqMethodApproachesSgqWithGenerousBound) {
  SgqMethod sgq(context_, EngineOptions{});
  TimeBoundedOptions toptions;
  toptions.time_bound_micros = 5'000'000;  // generous
  TbqMethod tbq("TBQ-test", context_, toptions);
  EXPECT_EQ(tbq.name(), "TBQ-test");

  auto a = sgq.QueryTopK(MakeQ117Variant(4), 0, 40);
  auto b = tbq.QueryTopK(MakeQ117Variant(4), 0, 40);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(Jaccard(a.ValueOrDie(), b.ValueOrDie()), 0.8);
}

TEST_F(AdaptersTest, TbqTimeBoundIsAdjustable) {
  TimeBoundedOptions toptions;
  toptions.time_bound_micros = 1'000'000;
  TbqMethod tbq("TBQ-0.9", context_, toptions);
  tbq.set_time_bound_micros(500);
  auto result = tbq.QueryTopK(MakeQ117Variant(4), 0, 40);
  ASSERT_TRUE(result.ok());  // may be partial but must not error
}

}  // namespace
}  // namespace kgsearch
