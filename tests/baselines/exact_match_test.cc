#include "baselines/exact_match.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/metrics.h"
#include "gen/car_domain.h"

namespace kgsearch {
namespace {

class ExactMatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = MakeCarDomainDataset(150, 117);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = std::move(result).ValueOrDie().release();
    context_ = MethodContext{dataset_->graph.get(), dataset_->space.get(),
                             &dataset_->library};
    gold_ = dataset_->GoldIds(kCarProducedIntent, kCarGermanyAnchor);
    std::sort(gold_.begin(), gold_.end());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static MethodContext context_;
  static std::vector<NodeId> gold_;
};

GeneratedDataset* ExactMatchTest::dataset_ = nullptr;
MethodContext ExactMatchTest::context_;
std::vector<NodeId> ExactMatchTest::gold_;

TEST_F(ExactMatchTest, GStoreFailsNodeMismatchVariants) {
  auto gstore = MakeGStore(context_);
  // G1Q: type <Car> unresolvable without the library.
  auto g1 = gstore->QueryTopK(MakeQ117Variant(1), 0, 100);
  ASSERT_FALSE(g1.ok());
  EXPECT_EQ(g1.status().code(), StatusCode::kNotFound);
  // G2Q: name GER unresolvable.
  EXPECT_FALSE(gstore->QueryTopK(MakeQ117Variant(2), 0, 100).ok());
  // G3Q: predicate product labels no edges.
  EXPECT_FALSE(gstore->QueryTopK(MakeQ117Variant(3), 0, 100).ok());
}

TEST_F(ExactMatchTest, GStorePerfectPrecisionLowRecallOnG4) {
  auto gstore = MakeGStore(context_);
  auto result = gstore->QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Prf prf = ComputePrf(result.ValueOrDie(), gold_);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_GT(prf.recall, 0.1);
  EXPECT_LT(prf.recall, 0.8);  // only the direct-assembly slice
}

TEST_F(ExactMatchTest, SlqHandlesAllVariants) {
  auto slq = MakeSlq(context_);
  for (int variant = 1; variant <= 4; ++variant) {
    auto result =
        slq->QueryTopK(MakeQ117Variant(variant), 0, gold_.size());
    ASSERT_TRUE(result.ok())
        << "variant " << variant << ": " << result.status().ToString();
    Prf prf = ComputePrf(result.ValueOrDie(), gold_);
    EXPECT_DOUBLE_EQ(prf.precision, 1.0) << "variant " << variant;
    EXPECT_GT(prf.recall, 0.1) << "variant " << variant;
    EXPECT_LT(prf.recall, 0.8) << "variant " << variant;
  }
}

TEST_F(ExactMatchTest, QgaFailsTypeSynonymButHandlesNames) {
  auto qga = MakeQga(context_);
  // G1Q uses a type synonym -> QGA cannot resolve it (Table I).
  EXPECT_FALSE(qga->QueryTopK(MakeQ117Variant(1), 0, 100).ok());
  // G2Q (abbreviation on a name) and G3Q/G4Q work.
  for (int variant = 2; variant <= 4; ++variant) {
    auto result = qga->QueryTopK(MakeQ117Variant(variant), 0, gold_.size());
    ASSERT_TRUE(result.ok()) << "variant " << variant;
    Prf prf = ComputePrf(result.ValueOrDie(), gold_);
    EXPECT_DOUBLE_EQ(prf.precision, 1.0) << "variant " << variant;
  }
}

TEST_F(ExactMatchTest, PredicateMappingRedirectsToClosestRealPredicate) {
  // SLQ on G3Q (product has no edges) must behave like G4Q (assembly).
  auto slq = MakeSlq(context_);
  auto g3 = slq->QueryTopK(MakeQ117Variant(3), 0, gold_.size());
  auto g4 = slq->QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  ASSERT_TRUE(g3.ok() && g4.ok());
  EXPECT_EQ(g3.ValueOrDie(), g4.ValueOrDie());
}

TEST_F(ExactMatchTest, RespectsK) {
  auto slq = MakeSlq(context_);
  auto result = slq->QueryTopK(MakeQ117Variant(4), 0, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.ValueOrDie().size(), 3u);
}

TEST_F(ExactMatchTest, MultiLegQueryIntersects) {
  // ?car assembly Germany AND ?car assembly Italy: only cars assembled in
  // both countries (typically none or few).
  QueryGraph q;
  int car = q.AddTargetNode("Automobile");
  q.AddEdge(car, q.AddSpecificNode("Country", "Germany"), "assembly");
  q.AddEdge(car, q.AddSpecificNode("Country", "Italy"), "assembly");
  auto slq = MakeSlq(context_);
  auto both = slq->QueryTopK(q, car, 1000);
  ASSERT_TRUE(both.ok());
  auto single = slq->QueryTopK(MakeQ117Variant(4), 0, 1000);
  ASSERT_TRUE(single.ok());
  EXPECT_LE(both.ValueOrDie().size(), single.ValueOrDie().size());
}

}  // namespace
}  // namespace kgsearch
