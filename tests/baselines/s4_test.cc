#include "baselines/s4.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/metrics.h"
#include "gen/car_domain.h"
#include "util/rng.h"

namespace kgsearch {
namespace {

class S4Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = MakeCarDomainDataset(150, 117);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = std::move(result).ValueOrDie().release();
    context_ = MethodContext{dataset_->graph.get(), dataset_->space.get(),
                             &dataset_->library};
    gold_ = dataset_->GoldIds(kCarProducedIntent, kCarGermanyAnchor);
    std::sort(gold_.begin(), gold_.end());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  /// Prior knowledge: a fraction of gold (car, Germany) pairs.
  static std::vector<std::pair<NodeId, NodeId>> PriorPairs(double fraction) {
    NodeId germany = dataset_->graph->FindNode("Germany");
    std::vector<std::pair<NodeId, NodeId>> out;
    size_t take = static_cast<size_t>(
        static_cast<double>(gold_.size()) * fraction);
    for (size_t i = 0; i < take; ++i) out.emplace_back(gold_[i], germany);
    return out;
  }

  static GeneratedDataset* dataset_;
  static MethodContext context_;
  static std::vector<NodeId> gold_;
};

GeneratedDataset* S4Test::dataset_ = nullptr;
MethodContext S4Test::context_;
std::vector<NodeId> S4Test::gold_;

TEST_F(S4Test, MiningRecoversPlantedPatterns) {
  auto patterns = MineS4Patterns(*dataset_->graph, PriorPairs(0.6), 2, 2);
  ASSERT_FALSE(patterns.empty());
  // The direct assembly edge must be among the strongest patterns.
  PredicateId assembly = dataset_->graph->FindPredicate("assembly");
  bool found_direct = false;
  for (const S4Pattern& p : patterns) {
    if (p.predicates == std::vector<PredicateId>{assembly}) {
      found_direct = true;
    }
    EXPECT_GE(p.support, 2u);
  }
  EXPECT_TRUE(found_direct);
  // Sorted by support descending.
  for (size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_GE(patterns[i - 1].support, patterns[i].support);
  }
}

TEST_F(S4Test, MinSupportFiltersRarePatterns) {
  auto loose = MineS4Patterns(*dataset_->graph, PriorPairs(0.5), 2, 1);
  auto strict = MineS4Patterns(*dataset_->graph, PriorPairs(0.5), 2, 10);
  EXPECT_GE(loose.size(), strict.size());
}

TEST_F(S4Test, QueryAppliesMinedPatterns) {
  std::map<std::string, std::vector<S4Pattern>> patterns;
  patterns["assembly"] =
      MineS4Patterns(*dataset_->graph, PriorPairs(0.6), 2, 2);
  S4Method s4(context_, std::move(patterns));
  auto result = s4.QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Prf prf = ComputePrf(result.ValueOrDie(), gold_);
  EXPECT_GT(prf.recall, 0.3);
  EXPECT_GT(prf.precision, 0.3);
}

TEST_F(S4Test, AccuracyDependsOnPriorKnowledgeCoverage) {
  // The paper's Section I point: S4 is sensitive to prior knowledge.
  auto run = [&](double fraction) {
    std::map<std::string, std::vector<S4Pattern>> patterns;
    patterns["assembly"] =
        MineS4Patterns(*dataset_->graph, PriorPairs(fraction), 2, 2);
    S4Method s4(context_, std::move(patterns));
    auto result = s4.QueryTopK(MakeQ117Variant(4), 0, gold_.size());
    if (!result.ok()) return 0.0;
    return ComputePrf(result.ValueOrDie(), gold_).recall;
  };
  const double rich = run(0.8);
  const double poor = run(0.05);
  EXPECT_GE(rich, poor);
  EXPECT_GT(rich, 0.3);
}

TEST_F(S4Test, NoPatternsMeansNotFound) {
  S4Method s4(context_, {});
  auto result = s4.QueryTopK(MakeQ117Variant(4), 0, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(S4Test, NoNodeSimilaritySupport) {
  std::map<std::string, std::vector<S4Pattern>> patterns;
  patterns["assembly"] =
      MineS4Patterns(*dataset_->graph, PriorPairs(0.5), 2, 2);
  S4Method s4(context_, std::move(patterns));
  // G1Q (Car) and G2Q (GER) fail: S4 has exact labels only (Table II).
  EXPECT_FALSE(s4.QueryTopK(MakeQ117Variant(1), 0, 10).ok());
  EXPECT_FALSE(s4.QueryTopK(MakeQ117Variant(2), 0, 10).ok());
}

}  // namespace
}  // namespace kgsearch
