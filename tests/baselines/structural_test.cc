#include "baselines/structural.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/metrics.h"
#include "gen/car_domain.h"

namespace kgsearch {
namespace {

class StructuralTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = MakeCarDomainDataset(150, 117);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = std::move(result).ValueOrDie().release();
    context_ = MethodContext{dataset_->graph.get(), dataset_->space.get(),
                             &dataset_->library};
    gold_ = dataset_->GoldIds(kCarProducedIntent, kCarGermanyAnchor);
    std::sort(gold_.begin(), gold_.end());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static MethodContext context_;
  static std::vector<NodeId> gold_;
};

GeneratedDataset* StructuralTest::dataset_ = nullptr;
MethodContext StructuralTest::context_;
std::vector<NodeId> StructuralTest::gold_;

TEST_F(StructuralTest, NeMaFindsGoldButAlsoDistractors) {
  auto nema = MakeNeMa(context_);
  auto result = nema->QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Prf prf = ComputePrf(result.ValueOrDie(), gold_);
  // Edge-to-path without predicate semantics: decent recall, sub-1
  // precision (designer/nationality distractor answers leak in).
  EXPECT_GT(prf.recall, 0.3);
  EXPECT_LT(prf.precision, 1.0);
}

TEST_F(StructuralTest, NeMaResolvesSynonymVariants) {
  auto nema = MakeNeMa(context_);
  EXPECT_TRUE(nema->QueryTopK(MakeQ117Variant(1), 0, 50).ok());
  EXPECT_TRUE(nema->QueryTopK(MakeQ117Variant(2), 0, 50).ok());
}

TEST_F(StructuralTest, GraBFailsMismatchVariantsExactLabelsOnly) {
  auto grab = MakeGraB(context_);
  EXPECT_FALSE(grab->QueryTopK(MakeQ117Variant(1), 0, 50).ok());
  EXPECT_FALSE(grab->QueryTopK(MakeQ117Variant(2), 0, 50).ok());
  auto g4 = grab->QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  ASSERT_TRUE(g4.ok());
  EXPECT_FALSE(g4.ValueOrDie().empty());
}

TEST_F(StructuralTest, PHomPrecisionTrailsNeMa) {
  auto nema = MakeNeMa(context_);
  auto phom = MakePHom(context_);
  auto a = nema->QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  auto b = phom->QueryTopK(MakeQ117Variant(4), 0, gold_.size());
  ASSERT_TRUE(a.ok() && b.ok());
  Prf nema_prf = ComputePrf(a.ValueOrDie(), gold_);
  Prf phom_prf = ComputePrf(b.ValueOrDie(), gold_);
  // Distance-aware scoring ranks the gold direct-schema answers higher.
  EXPECT_GE(nema_prf.precision, phom_prf.precision);
}

TEST_F(StructuralTest, CandidatesRespectTargetType) {
  auto nema = MakeNeMa(context_);
  auto result = nema->QueryTopK(MakeQ117Variant(4), 0, 200);
  ASSERT_TRUE(result.ok());
  for (NodeId u : result.ValueOrDie()) {
    EXPECT_EQ(dataset_->graph->NodeTypeName(u), "Automobile");
  }
}

TEST_F(StructuralTest, RespectsK) {
  auto nema = MakeNeMa(context_);
  auto result = nema->QueryTopK(MakeQ117Variant(4), 0, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.ValueOrDie().size(), 5u);
}

TEST_F(StructuralTest, UnresolvableTypeFails) {
  auto nema = MakeNeMa(context_);
  QueryGraph q;
  int t = q.AddTargetNode("Spaceship");
  q.AddEdge(t, q.AddSpecificNode("Country", "Germany"), "assembly");
  auto result = nema->QueryTopK(q, 0, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace kgsearch
