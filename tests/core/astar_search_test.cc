#include "core/astar_search.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing/test_world.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgsearch {
namespace {

using testing_helpers::BruteForceBestPss;
using testing_helpers::MakeSingleEdgeSubQuery;
using testing_helpers::MakeSpaceWithCosines;

/// Figure 8-style world: one anchor (Germany) connected to automobiles via
/// a 1-hop strong schema, a 2-hop strong schema, and a 2-hop weak schema.
struct CarWorld {
  KnowledgeGraph graph;
  std::unique_ptr<PredicateSpace> space;
  NodeId germany;

  CarWorld() {
    germany = graph.AddNode("Germany", "Country");
    NodeId bmw = graph.AddNode("BMW_320", "Automobile");
    NodeId audi = graph.AddNode("Audi_TT", "Automobile");
    NodeId kia = graph.AddNode("KIA_K5", "Automobile");
    NodeId regensburg = graph.AddNode("Regensburg", "City");
    NodeId schreyer = graph.AddNode("Peter_Schreyer", "Person");
    graph.AddEdge(bmw, "assembly", germany);               // pss 0.98
    graph.AddEdge(audi, "assembly", regensburg);
    graph.AddEdge(regensburg, "country", germany);         // pss ~0.93
    graph.AddEdge(kia, "designer", schreyer);
    graph.AddEdge(schreyer, "nationality", germany);       // pss ~0.52
    graph.InternPredicate("q");
    graph.Finalize();
    space = MakeSpaceWithCosines(graph, {{"assembly", 0.98},
                                         {"country", 0.88},
                                         {"designer", 0.55},
                                         {"nationality", 0.50}});
  }
};

TEST(AStarSearchTest, InputValidation) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;

  ResolvedSubQuery empty = sub;
  empty.edge_predicates.clear();
  EXPECT_FALSE(AStarSearch(world.graph, *world.space, empty, config).ok());

  AStarConfig bad = config;
  bad.n_hat = 0;
  EXPECT_FALSE(AStarSearch(world.graph, *world.space, sub, bad).ok());
  bad = config;
  bad.tau = 0.0;
  EXPECT_FALSE(AStarSearch(world.graph, *world.space, sub, bad).ok());
  bad = config;
  bad.anytime = true;  // without should_stop
  EXPECT_FALSE(AStarSearch(world.graph, *world.space, sub, bad).ok());
}

TEST(AStarSearchTest, RanksByPathSemanticSimilarity) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.k = 10;
  config.tau = 0.4;
  config.n_hat = 4;

  SearchStats stats;
  auto result = AStarSearch(world.graph, *world.space, sub, config, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& matches = result.ValueOrDie();
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(world.graph.NodeName(matches[0].target()), "BMW_320");
  EXPECT_NEAR(matches[0].pss, 0.98, 1e-6);
  EXPECT_EQ(world.graph.NodeName(matches[1].target()), "Audi_TT");
  EXPECT_NEAR(matches[1].pss, std::sqrt(0.98 * 0.88), 1e-6);
  EXPECT_EQ(world.graph.NodeName(matches[2].target()), "KIA_K5");
  EXPECT_NEAR(matches[2].pss, std::sqrt(0.55 * 0.50), 1e-6);
  // Descending pss.
  EXPECT_GE(matches[0].pss, matches[1].pss);
  EXPECT_GE(matches[1].pss, matches[2].pss);
  EXPECT_EQ(stats.goals_emitted, 3u);
}

TEST(AStarSearchTest, PathMatchCarriesFullPath) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.4;
  auto result = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_TRUE(result.ok());
  const PathMatch& audi = result.ValueOrDie()[1];
  ASSERT_EQ(audi.nodes.size(), 3u);
  EXPECT_EQ(world.graph.NodeName(audi.nodes[0]), "Germany");
  EXPECT_EQ(world.graph.NodeName(audi.nodes[1]), "Regensburg");
  EXPECT_EQ(world.graph.NodeName(audi.nodes[2]), "Audi_TT");
  ASSERT_EQ(audi.predicates.size(), 2u);
  ASSERT_EQ(audi.weights.size(), 2u);
  EXPECT_NEAR(audi.weights[0] * audi.weights[1], 0.98 * 0.88, 1e-6);
  ASSERT_EQ(audi.stage_ends.size(), 1u);
  EXPECT_EQ(audi.stage_ends[0], 2u);
  EXPECT_EQ(audi.MatchOfQueryNode(0), audi.nodes[0]);
  EXPECT_EQ(audi.MatchOfQueryNode(1), audi.nodes[2]);
}

TEST(AStarSearchTest, TauPrunesWeakMatches) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.8;  // the designer/nationality path (~0.52) must vanish
  SearchStats stats;
  auto result = AStarSearch(world.graph, *world.space, sub, config, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().size(), 2u);
  EXPECT_GT(stats.pruned_tau, 0u);
}

TEST(AStarSearchTest, TopKLimitsOutput) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.k = 1;
  config.tau = 0.4;
  auto result = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.ValueOrDie().size(), 1u);
  EXPECT_EQ(world.graph.NodeName(result.ValueOrDie()[0].target()), "BMW_320");
}

TEST(AStarSearchTest, NHatBoundsPathLength) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.4;
  config.n_hat = 1;  // only the direct assembly edge qualifies
  auto result = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.ValueOrDie().size(), 1u);
  EXPECT_EQ(world.graph.NodeName(result.ValueOrDie()[0].target()), "BMW_320");
}

TEST(AStarSearchTest, EstimateIsAdmissibleSoFirstGoalIsBest) {
  // A deceptive world: a greedy first hop (0.99) leads only to a weak
  // completion, while a modest first hop (0.9) completes strongly. The
  // admissible estimate must still surface the globally best match first.
  KnowledgeGraph g;
  NodeId s = g.AddNode("S", "Anchor");
  NodeId trap = g.AddNode("Trap", "Mid");
  NodeId good = g.AddNode("Good", "Mid");
  NodeId t1 = g.AddNode("T1", "Target");
  NodeId t2 = g.AddNode("T2", "Target");
  g.AddEdge(s, "shiny", trap);    // 0.99
  g.AddEdge(trap, "dull", t1);    // 0.30 -> pss ~ sqrt(0.297) = 0.545
  g.AddEdge(s, "solid", good);    // 0.90
  g.AddEdge(good, "solid2", t2);  // 0.88 -> pss ~ sqrt(0.792) = 0.89
  g.InternPredicate("q");
  g.Finalize();
  auto space = MakeSpaceWithCosines(
      g, {{"shiny", 0.99}, {"dull", 0.30}, {"solid", 0.90}, {"solid2", 0.88}});

  ResolvedSubQuery sub = MakeSingleEdgeSubQuery(g, s, "q", "Target");
  AStarConfig config;
  config.k = 2;
  config.tau = 0.2;
  auto result = AStarSearch(g, *space, sub, config);
  ASSERT_TRUE(result.ok());
  const auto& matches = result.ValueOrDie();
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(g.NodeName(matches[0].target()), "T2");
  EXPECT_NEAR(matches[0].pss, std::sqrt(0.90 * 0.88), 1e-6);
}

TEST(AStarSearchTest, MultiEdgeSubQueryRespectsIntermediateConstraint) {
  // Query path: anchor --e1-- ?Device --e2-- ?Automobile. The intermediate
  // node must have type Device; a same-shape path through a Person must not
  // match even with perfect weights.
  KnowledgeGraph g;
  NodeId anchor = g.AddNode("Germany", "Country");
  NodeId engine = g.AddNode("EA211", "Device");
  NodeId person = g.AddNode("Dr_Mueller", "Person");
  NodeId car1 = g.AddNode("Lamando", "Automobile");
  NodeId car2 = g.AddNode("Phaeton", "Automobile");
  g.AddEdge(engine, "made_in", anchor);
  g.AddEdge(car1, "engine", engine);
  g.AddEdge(person, "made_in", anchor);  // wrong intermediate type
  g.AddEdge(car2, "engine", person);
  g.InternPredicate("q");
  g.InternPredicate("q2");
  g.Finalize();
  std::vector<FloatVec> vecs(g.NumPredicates(), FloatVec{1.0f, 0.0f});
  std::vector<std::string> names;
  for (PredicateId p = 0; p < g.NumPredicates(); ++p) {
    names.emplace_back(g.PredicateName(p));
  }
  PredicateSpace space(std::move(vecs), std::move(names));  // all sims = 1

  ResolvedSubQuery sub;
  sub.edge_predicates = {g.FindPredicate("q"), g.FindPredicate("q2")};
  NodeConstraint start_c;
  start_c.specific = true;
  start_c.nodes = {anchor};
  NodeConstraint mid_c;
  mid_c.specific = false;
  mid_c.types = {g.FindType("Device")};
  NodeConstraint target_c;
  target_c.specific = false;
  target_c.types = {g.FindType("Automobile")};
  sub.node_constraints = {start_c, mid_c, target_c};
  sub.start_candidates = {anchor};

  AStarConfig config;
  config.tau = 0.5;
  auto result = AStarSearch(g, space, sub, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.ValueOrDie().size(), 1u);
  const PathMatch& m = result.ValueOrDie()[0];
  EXPECT_EQ(g.NodeName(m.target()), "Lamando");
  ASSERT_EQ(m.stage_ends.size(), 2u);
  EXPECT_EQ(g.NodeName(m.MatchOfQueryNode(1)), "EA211");
}

TEST(AStarSearchTest, PaperModeUsesVisitedSetPruning) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.4;
  config.dedup = DedupMode::kPaperNodeVisited;
  SearchStats paper_stats;
  auto paper = AStarSearch(world.graph, *world.space, sub, config,
                           &paper_stats);
  config.dedup = DedupMode::kExactState;
  SearchStats exact_stats;
  auto exact = AStarSearch(world.graph, *world.space, sub, config,
                           &exact_stats);
  ASSERT_TRUE(paper.ok() && exact.ok());
  // Both modes reach the same targets and agree on the best match; the
  // exact mode may report higher pss for lower-ranked targets because it
  // optimizes over walks (e.g. bouncing Germany->Regensburg->Germany
  // inflates a geometric mean), which the paper's visited set forbids.
  ASSERT_EQ(paper.ValueOrDie().size(), exact.ValueOrDie().size());
  EXPECT_EQ(paper.ValueOrDie()[0].target(), exact.ValueOrDie()[0].target());
  EXPECT_NEAR(paper.ValueOrDie()[0].pss, exact.ValueOrDie()[0].pss, 1e-9);
  for (size_t i = 0; i < paper.ValueOrDie().size(); ++i) {
    EXPECT_LE(paper.ValueOrDie()[i].pss,
              exact.ValueOrDie()[i].pss + 1e-9);
    // Every paper-mode match is a simple path (no repeated nodes).
    const auto& nodes = paper.ValueOrDie()[i].nodes;
    std::set<NodeId> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), nodes.size());
  }
  EXPECT_LE(paper_stats.pushed, exact_stats.pushed);
}

TEST(AStarSearchTest, MaxExpansionsIsHonored) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.4;
  config.max_expansions = 1;
  SearchStats stats;
  auto result = AStarSearch(world.graph, *world.space, sub, config, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(stats.popped, 1u);
}

TEST(AStarSearchTest, AnytimeCollectsOnGenerationAndStops) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.4;
  config.anytime = true;
  config.stop_check_interval = 1;
  size_t calls = 0;
  config.should_stop = [&calls](size_t) { return ++calls > 1000; };
  SearchStats stats;
  auto result = AStarSearch(world.graph, *world.space, sub, config, &stats);
  ASSERT_TRUE(result.ok());
  // All three matches found before exhaustion; sorted by pss descending.
  ASSERT_EQ(result.ValueOrDie().size(), 3u);
  EXPECT_GE(result.ValueOrDie()[0].pss, result.ValueOrDie()[1].pss);
  EXPECT_TRUE(stats.exhausted);
}

TEST(AStarSearchTest, AnytimeStopSignalTruncatesSearch) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.4;
  config.anytime = true;
  config.stop_check_interval = 1;
  config.should_stop = [](size_t) { return true; };  // stop immediately
  SearchStats stats;
  auto result = AStarSearch(world.graph, *world.space, sub, config, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_LE(stats.popped, 2u);
}

TEST(AStarSearchTest, AnytimeMatchCapKeepsBest) {
  CarWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.germany, "q", "Automobile");
  AStarConfig config;
  config.tau = 0.4;
  config.anytime = true;
  config.anytime_match_cap = 1;
  config.should_stop = [](size_t) { return false; };
  auto result = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.ValueOrDie().size(), 1u);
  EXPECT_EQ(world.graph.NodeName(result.ValueOrDie()[0].target()), "BMW_320");
}

/// Random-graph property sweep: the exact-state mode must agree with the
/// brute-force DP on every target's best pss, across seeds.
class AStarRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(AStarRandomSweep, ExactModeMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  KnowledgeGraph g;
  const int num_nodes = 24;
  const char* preds[] = {"p0", "p1", "p2", "p3", "p4"};
  const double cosines[] = {0.95, 0.85, 0.7, 0.55, 0.35};
  NodeId anchor = g.AddNode("anchor", "Anchor");
  for (int i = 0; i < num_nodes; ++i) {
    g.AddNode(StrFormat("n%d", i),
              rng.Bernoulli(0.3) ? "Target" : "Mid");
  }
  const size_t total = g.NumNodes();
  for (int e = 0; e < 70; ++e) {
    NodeId a = static_cast<NodeId>(rng.UniformIndex(total));
    NodeId b = static_cast<NodeId>(rng.UniformIndex(total));
    if (a == b) continue;
    g.AddEdge(a, preds[rng.UniformIndex(5)], b);
  }
  g.InternPredicate("q");
  g.Finalize();
  std::map<std::string, double> cos_map;
  for (int i = 0; i < 5; ++i) cos_map[preds[i]] = cosines[i];
  auto space = MakeSpaceWithCosines(g, cos_map);

  if (g.FindType("Target") == kInvalidSymbol) GTEST_SKIP();
  ResolvedSubQuery sub = MakeSingleEdgeSubQuery(g, anchor, "q", "Target");

  const double tau = 0.3;
  const size_t n_hat = 3;
  auto truth = BruteForceBestPss(g, *space, sub, n_hat, tau);

  AStarConfig config;
  config.k = 1000;
  config.tau = tau;
  config.n_hat = n_hat;
  config.dedup = DedupMode::kExactState;
  auto result = AStarSearch(g, *space, sub, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& matches = result.ValueOrDie();

  ASSERT_EQ(matches.size(), truth.size())
      << "seed " << GetParam() << ": search found " << matches.size()
      << " targets, brute force " << truth.size();
  for (const PathMatch& m : matches) {
    auto it = truth.find(m.target());
    ASSERT_NE(it, truth.end());
    EXPECT_NEAR(m.pss, it->second, 1e-9)
        << "target " << g.NodeName(m.target()) << " seed " << GetParam();
  }
  // Matches sorted by descending pss.
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].pss + 1e-12, matches[i].pss);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarRandomSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace kgsearch
