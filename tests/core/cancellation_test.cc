// Cooperative cancellation and hard deadlines inside the engines: the
// interrupt must fire between node expansions (deterministically, under a
// ManualClock or counting interrupt), surface kCancelled /
// kDeadlineExceeded as a Status, and — when it never fires — leave results
// bit-identical to an unconstrained run.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "core/time_bounded.h"
#include "gen/car_domain.h"
#include "testing/test_world.h"
#include "util/cancel.h"

namespace kgsearch {
namespace {

using testing_helpers::MakeSingleEdgeSubQuery;
using testing_helpers::MakeSpaceWithCosines;

/// Clock that advances one microsecond per read; with interrupt polling
/// enabled this turns "wall time" into a deterministic poll budget.
class AdvancingClock : public Clock {
 public:
  explicit AdvancingClock(CancelToken* cancel_after_token = nullptr,
                          int64_t cancel_after_reads = 0)
      : token_(cancel_after_token), cancel_at_(cancel_after_reads) {}

  int64_t NowMicros() const override {
    const int64_t t = ++reads_;
    if (token_ != nullptr && t >= cancel_at_) token_->Cancel();
    return t;
  }

 private:
  mutable int64_t reads_ = 0;
  CancelToken* token_;
  int64_t cancel_at_;
};

/// A small dense world whose single-edge search pops enough states to
/// guarantee several interrupt polls at stop_check_interval = 1.
struct ChainWorld {
  KnowledgeGraph graph;
  std::unique_ptr<PredicateSpace> space;
  NodeId anchor;

  ChainWorld() {
    anchor = graph.AddNode("Anchor", "Country");
    std::vector<NodeId> hubs;
    for (int i = 0; i < 6; ++i) {
      hubs.push_back(graph.AddNode("Hub" + std::to_string(i), "City"));
      graph.AddEdge(anchor, "near", hubs.back());
    }
    for (int i = 0; i < 18; ++i) {
      NodeId car = graph.AddNode("Car" + std::to_string(i), "Automobile");
      graph.AddEdge(hubs[static_cast<size_t>(i) % hubs.size()], "made",
                    car);
    }
    graph.InternPredicate("q");
    graph.Finalize();
    space = MakeSpaceWithCosines(graph, {{"near", 0.95}, {"made", 0.92}});
  }
};

TEST(AStarInterruptTest, NonOkInterruptAbortsOptimalSearch) {
  ChainWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.anchor, "q", "Automobile");
  AStarConfig config;
  config.n_hat = 2;
  config.tau = 0.5;
  config.k = 100;
  config.stop_check_interval = 1;
  size_t polls = 0;
  config.interrupt = [&polls]() {
    return ++polls >= 3 ? Status::DeadlineExceeded("test wall")
                        : Status::OK();
  };
  auto result = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(polls, 3u);
}

TEST(AStarInterruptTest, NonOkInterruptAbortsAnytimeSearch) {
  ChainWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.anchor, "q", "Automobile");
  AStarConfig config;
  config.n_hat = 2;
  config.tau = 0.5;
  config.anytime = true;
  config.should_stop = [](size_t) { return false; };
  config.stop_check_interval = 1;
  config.interrupt = []() { return Status::Cancelled("revoked"); };
  auto result = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(AStarInterruptTest, ZeroCheckIntervalIsClampedNotDivByZero) {
  ChainWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.anchor, "q", "Automobile");
  AStarConfig config;
  config.n_hat = 2;
  config.tau = 0.5;
  config.stop_check_interval = 0;  // treated as "poll every pop"
  config.interrupt = []() { return Status::Cancelled("revoked"); };
  auto result = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(AStarInterruptTest, NeverFiringInterruptKeepsMatchesBitIdentical) {
  ChainWorld world;
  ResolvedSubQuery sub =
      MakeSingleEdgeSubQuery(world.graph, world.anchor, "q", "Automobile");
  AStarConfig config;
  config.n_hat = 2;
  config.tau = 0.5;
  config.k = 100;
  auto plain = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_TRUE(plain.ok());

  config.stop_check_interval = 1;
  config.interrupt = []() { return Status::OK(); };
  auto polled = AStarSearch(world.graph, *world.space, sub, config);
  ASSERT_TRUE(polled.ok());

  const auto& a = plain.ValueOrDie();
  const auto& b = polled.ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].pss, b[i].pss);
  }
}

class EngineCancellationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = MakeCarDomainDataset(120, 117);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = std::move(result).ValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static GeneratedDataset* dataset_;
};

GeneratedDataset* EngineCancellationTest::dataset_ = nullptr;

TEST_F(EngineCancellationTest, SgqAlreadyExpiredDeadlineFailsFast) {
  ManualClock clock(1'000'000);
  SgqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library, &clock);
  EngineOptions options;
  options.deadline_micros = 500'000;  // in the past
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(EngineCancellationTest, SgqPreCancelledTokenFailsFast) {
  SgqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library);
  CancelToken token;
  token.Cancel();
  EngineOptions options;
  options.cancel = &token;
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(EngineCancellationTest, SgqDeadlineExpiringMidSearchAborts) {
  // Every clock read advances 1us; the entry check passes and a poll a few
  // dozen expansions later crosses the 10us "deadline" deterministically.
  AdvancingClock clock;
  SgqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library, &clock);
  EngineOptions options;
  options.k = 40;
  options.threads = 1;
  options.deadline_micros = 10;
  options.stop_check_interval = 1;  // poll every pop: precise abort point
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(EngineCancellationTest, SgqCancelledMidSearchAborts) {
  // The clock latches the token after 40 reads; deadline is generous, so
  // the abort can only come from cancellation.
  CancelToken token;
  AdvancingClock clock(&token, 40);
  SgqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library, &clock);
  EngineOptions options;
  options.k = 40;
  options.threads = 1;
  options.deadline_micros = 1'000'000'000;
  options.cancel = &token;
  options.stop_check_interval = 1;
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(EngineCancellationTest, SgqGenerousDeadlineIsBitIdentical) {
  SgqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library);
  EngineOptions plain;
  plain.k = 25;
  plain.threads = 1;
  auto reference = engine.Query(MakeQ117Variant(4), plain);
  ASSERT_TRUE(reference.ok());

  CancelToken token;  // never cancelled
  EngineOptions bounded = plain;
  bounded.deadline_micros =
      SystemClock::Default()->NowMicros() + 3'600'000'000LL;  // +1 hour
  bounded.cancel = &token;
  auto constrained = engine.Query(MakeQ117Variant(4), bounded);
  ASSERT_TRUE(constrained.ok());

  const QueryResult& a = reference.ValueOrDie();
  const QueryResult& b = constrained.ValueOrDie();
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].pivot_match, b.matches[i].pivot_match);
    EXPECT_EQ(a.matches[i].score, b.matches[i].score);
  }
}

TEST_F(EngineCancellationTest, TbqAlreadyExpiredDeadlineFailsFast) {
  ManualClock clock(1'000'000);
  TbqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library, &clock);
  TimeBoundedOptions options;
  options.deadline_micros = 999'999;
  options.per_match_assembly_micros = 0.5;
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(EngineCancellationTest, TbqPreCancelledTokenFailsFast) {
  TbqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library);
  CancelToken token;
  token.Cancel();
  TimeBoundedOptions options;
  options.cancel = &token;
  options.per_match_assembly_micros = 0.5;
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(EngineCancellationTest, TbqCancelledMidSearchAborts) {
  // Soft time bound and hard deadline are both far away; only the token —
  // latched by the clock after 20 reads (the per-pop estimator and
  // interrupt polls read ~2x per pop, and the tiny car graph exhausts in a
  // few dozen pops) — can stop the query, and it must surface as
  // kCancelled, not as a partial anytime result.
  CancelToken token;
  AdvancingClock clock(&token, 20);
  TbqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library, &clock);
  TimeBoundedOptions options;
  options.threads = 1;
  options.stop_check_interval = 1;
  options.time_bound_micros = 1'000'000'000'000LL;
  options.deadline_micros = 1'000'000'000'000LL;
  options.per_match_assembly_micros = 0.0001;
  options.cancel = &token;
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(EngineCancellationTest, TbqGenerousDeadlineKeepsAnytimeSemantics) {
  // A deadline that never binds must not disturb the paper's soft-budget
  // behavior: generous bound + generous deadline == generous bound alone.
  TbqEngine engine(dataset_->graph.get(), dataset_->space.get(),
                   &dataset_->library);
  TimeBoundedOptions plain;
  plain.k = 20;
  plain.threads = 1;
  plain.time_bound_micros = 1'000'000'000;
  plain.per_match_assembly_micros = 0.5;
  auto reference = engine.Query(MakeQ117Variant(4), plain);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference.ValueOrDie().stopped_by_time);

  CancelToken token;
  TimeBoundedOptions bounded = plain;
  bounded.deadline_micros =
      SystemClock::Default()->NowMicros() + 3'600'000'000LL;
  bounded.cancel = &token;
  auto constrained = engine.Query(MakeQ117Variant(4), bounded);
  ASSERT_TRUE(constrained.ok());
  EXPECT_FALSE(constrained.ValueOrDie().stopped_by_time);
  EXPECT_EQ(constrained.ValueOrDie().AnswerIds(),
            reference.ValueOrDie().AnswerIds());
}

}  // namespace
}  // namespace kgsearch
