#include "core/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/metrics.h"
#include "gen/car_domain.h"

namespace kgsearch {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = MakeCarDomainDataset(120, 117);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = std::move(result).ValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  SgqEngine MakeEngine() {
    return SgqEngine(dataset_->graph.get(), dataset_->space.get(),
                     &dataset_->library);
  }

  static GeneratedDataset* dataset_;
};

GeneratedDataset* EngineTest::dataset_ = nullptr;

TEST_F(EngineTest, Q117FindsGoldAnswersWithHighRecall) {
  SgqEngine engine = MakeEngine();
  std::vector<NodeId> gold =
      dataset_->GoldIds(kCarProducedIntent, kCarGermanyAnchor);
  ASSERT_FALSE(gold.empty());
  std::sort(gold.begin(), gold.end());

  EngineOptions options;
  options.k = gold.size();
  QueryGraph q = MakeQ117Variant(4);  // <Automobile> assembly Germany
  auto result = engine.Query(q, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& r = result.ValueOrDie();
  Prf prf = ComputePrf(r.AnswerIds(), gold);
  // The engine finds all gold schemas plus the "reasonable" schemas 5-7,
  // so precision sits below 1 while recall stays high (paper: 0.83/0.83).
  EXPECT_GT(prf.recall, 0.6) << "P=" << prf.precision << " R=" << prf.recall;
  EXPECT_GT(prf.precision, 0.6);
}

TEST_F(EngineTest, AllQ117VariantsResolveViaLibrary) {
  SgqEngine engine = MakeEngine();
  EngineOptions options;
  options.k = 20;
  for (int variant = 1; variant <= 4; ++variant) {
    QueryGraph q = MakeQ117Variant(variant);
    auto result = engine.Query(q, options);
    ASSERT_TRUE(result.ok())
        << "variant " << variant << ": " << result.status().ToString();
    EXPECT_FALSE(result.ValueOrDie().matches.empty())
        << "variant " << variant;
  }
}

TEST_F(EngineTest, MatchesAreRankedByScore) {
  SgqEngine engine = MakeEngine();
  EngineOptions options;
  options.k = 30;
  auto result = engine.Query(MakeQ117Variant(4), options);
  ASSERT_TRUE(result.ok());
  const auto& matches = result.ValueOrDie().matches;
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].score + 1e-12, matches[i].score);
  }
  for (const FinalMatch& m : matches) {
    ASSERT_EQ(m.parts.size(),
              result.ValueOrDie().decomposition.subqueries.size());
    EXPECT_EQ(m.parts[0].target(), m.pivot_match);
  }
}

TEST_F(EngineTest, HigherTauPrunesMore) {
  SgqEngine engine = MakeEngine();
  EngineOptions loose;
  loose.k = 60;
  loose.tau = 0.6;
  EngineOptions tight = loose;
  tight.tau = 0.95;
  auto a = engine.Query(MakeQ117Variant(4), loose);
  auto b = engine.Query(MakeQ117Variant(4), tight);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(a.ValueOrDie().matches.size(), b.ValueOrDie().matches.size());
  uint64_t pushed_loose = 0, pushed_tight = 0;
  for (const auto& s : a.ValueOrDie().subquery_stats) pushed_loose += s.pushed;
  for (const auto& s : b.ValueOrDie().subquery_stats) pushed_tight += s.pushed;
  EXPECT_GE(pushed_loose, pushed_tight);
}

TEST_F(EngineTest, SmallerNHatMissesLongSchemas) {
  SgqEngine engine = MakeEngine();
  std::vector<NodeId> gold =
      dataset_->GoldIds(kCarProducedIntent, kCarGermanyAnchor);
  std::sort(gold.begin(), gold.end());
  EngineOptions wide;
  wide.k = gold.size();
  EngineOptions narrow = wide;
  narrow.n_hat = 1;
  auto a = engine.Query(MakeQ117Variant(4), wide);
  auto b = engine.Query(MakeQ117Variant(4), narrow);
  ASSERT_TRUE(a.ok() && b.ok());
  Prf wide_prf = ComputePrf(a.ValueOrDie().AnswerIds(), gold);
  Prf narrow_prf = ComputePrf(b.ValueOrDie().AnswerIds(), gold);
  EXPECT_GT(wide_prf.recall, narrow_prf.recall);
}

TEST_F(EngineTest, InvalidOptionsRejected) {
  SgqEngine engine = MakeEngine();
  EngineOptions options;
  options.k = 0;
  EXPECT_FALSE(engine.Query(MakeQ117Variant(4), options).ok());
}

TEST_F(EngineTest, UnresolvableQueryReturnsNotFound) {
  SgqEngine engine = MakeEngine();
  QueryGraph q;
  int car = q.AddTargetNode("Spaceship");
  q.AddEdge(car, q.AddSpecificNode("Country", "Germany"), "assembly");
  auto result = engine.Query(q, EngineOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ExtractAnswersForNonPivotNode) {
  SgqEngine engine = MakeEngine();
  EngineOptions options;
  options.k = 10;
  QueryGraph q = MakeQ117Variant(4);
  auto result = engine.Query(q, options);
  ASSERT_TRUE(result.ok());
  const QueryResult& r = result.ValueOrDie();
  // Query node 1 is the specific Germany node; all its matches must be
  // Germany itself.
  std::vector<NodeId> anchors =
      ExtractAnswers(r.matches, r.decomposition, 1);
  ASSERT_EQ(anchors.size(), 1u);
  EXPECT_EQ(dataset_->graph->NodeName(anchors[0]), "Germany");
  // An uncovered node index yields nothing.
  EXPECT_TRUE(ExtractAnswers(r.matches, r.decomposition, 99).empty());
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  SgqEngine engine = MakeEngine();
  EngineOptions options;
  options.k = 25;
  auto a = engine.Query(MakeQ117Variant(4), options);
  auto b = engine.Query(MakeQ117Variant(4), options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.ValueOrDie().AnswerIds(), b.ValueOrDie().AnswerIds());
}

TEST_F(EngineTest, ExactStateModeFindsAtLeastAsMuch) {
  SgqEngine engine = MakeEngine();
  EngineOptions paper;
  paper.k = 40;
  EngineOptions exact = paper;
  exact.dedup = DedupMode::kExactState;
  auto a = engine.Query(MakeQ117Variant(4), paper);
  auto b = engine.Query(MakeQ117Variant(4), exact);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(b.ValueOrDie().matches.size(), a.ValueOrDie().matches.size());
}

}  // namespace
}  // namespace kgsearch
